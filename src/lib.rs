//! # quantumnat — noise-aware training for robust quantum neural networks
//!
//! Umbrella crate for the QuantumNAT reproduction (DAC 2022). Re-exports
//! the workspace crates:
//!
//! * [`sim`] — statevector / density-matrix quantum simulator with adjoint
//!   and parameter-shift gradients.
//! * [`noise`] — device noise models, error-gate injection, hardware
//!   emulators.
//! * [`compiler`] — transpiler to the IBMQ basis with routing and
//!   noise-adaptive layout.
//! * [`autodiff`] — the reverse-mode tape for the classical pipeline.
//! * [`data`] — synthetic benchmark datasets with the paper's
//!   preprocessing.
//! * [`core`] — QuantumNAT itself: the QNN model, post-measurement
//!   normalization, noise injection, quantization, training and deployment.
//! * [`serve`] — the long-lived serving layer: job queue, admission
//!   control, backpressure and priority lanes over the batch pool.
//! * [`transport`] — the HTTP front door over the serving engine, with a
//!   lossless JSON wire format and an in-repo blocking client.
//! * [`fleet`] — the multi-device router: noise- and health-scored device
//!   selection over a pool of serving engines, with failover, hedged
//!   retries and breaker-driven quarantine.
//!
//! ## Quickstart
//!
//! ```
//! use quantumnat::core::model::{Qnn, QnnConfig};
//! use quantumnat::noise::presets;
//!
//! let device = presets::santiago();
//! let qnn = Qnn::for_device(QnnConfig::standard(16, 4, 2, 2), &device, 0)?;
//! assert_eq!(qnn.n_params(), 48);
//! # Ok::<(), quantumnat::noise::device::InvalidDeviceError>(())
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub use qnat_autodiff as autodiff;
pub use qnat_compiler as compiler;
pub use qnat_core as core;
pub use qnat_data as data;
pub use qnat_fleet as fleet;
pub use qnat_noise as noise;
pub use qnat_serve as serve;
pub use qnat_sim as sim;
pub use qnat_transport as transport;
