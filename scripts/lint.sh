#!/usr/bin/env sh
# Workspace lint gate: clippy over every target with warnings promoted to
# errors. Library crates additionally carry
# `#![cfg_attr(not(test), deny(clippy::unwrap_used))]`, so an unwrap/expect
# on a library (non-test) path fails this script; tests, benches and the
# qnat-bench binaries are exempt.
set -eu
cd "$(dirname "$0")/.."
cargo clippy --workspace --all-targets -- -D warnings
