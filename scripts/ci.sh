#!/usr/bin/env sh
# Full CI gate, in the order a reviewer wants failures surfaced:
#   1. smoke:  fast deterministic breaker-trip smoke test (seconds; fails
#              first if the health state machine regresses)
#   2. tier-1: release build + the whole workspace test suite
#   3. health: the fleet-health suites — breaker unit tests, the
#              breaker-on-vs-off / deadline-budget e2e acceptance tests,
#              and the report-merge property tests
#   4. serve:  the serving-subsystem suites — engine unit tests, the
#              batch-replay property tests, the serving e2e acceptance
#              tests, and a deadlock-guarded smoke run of the serving
#              example against a fault-injecting backend (the example
#              itself asserts a nonzero completed-job count; the timeout
#              turns a queue deadlock into a loud failure)
#   5. transport: the HTTP front-door suites — wire-format and HTTP
#              parser unit tests, the replay-parity / status-contract
#              e2e tests, and a deadlock-guarded smoke run of the
#              http_serving example (ephemeral port, 50% fault
#              injection, submit/poll/wait over real TCP; the example
#              asserts a full graceful drain, the timeout turns an
#              accept-loop or drain deadlock into a loud failure)
#   6. fleet:  the multi-device routing suites — router unit tests, the
#              failover / quarantine-starvation / routing-accuracy e2e
#              acceptance tests, the bitwise-replay property tests, and
#              a deadlock-guarded smoke run of the fleet_routing example
#              (three devices, the preferred one goes terminally dark
#              mid-run; the example asserts failover keeps the
#              completed-job count at 100% with zero refusals)
#   7. calib:  the learned-calibration suites — tracker unit tests and
#              the calibration property pins (bitwise arrival-order
#              invariance of the tracker, decision replay, clamped
#              estimates under pathological report streams)
#   8. lint:   clippy -D warnings (scripts/lint.sh; the workspace sweep
#              includes qnat-serve's, qnat-transport's and qnat-fleet's
#              unwrap_used walls)
#   9. sim-bench: the simulator hot-path gate — the kernel bounds-check
#              regression tests re-run under --release (the checks must
#              survive optimized builds, not just debug_assert), then the
#              gate-kernel microbench plus the fused-vs-unfused
#              acceptance bench, which asserts fused execution of the
#              §4.2 QNN block sustains >= 2x unfused runs/sec and writes
#              latency percentiles to results/BENCH_sim.json
#  10. load:   the overload-robustness gate — the socket-level chaos
#              suite (resets, slow-loris, stalls, corruption against a
#              live server; no hung workers, no leaked connection
#              slots), then the open-loop load harness (Poisson +
#              bursty arrivals, mixed interactive/bulk/malformed
#              traffic, backend churn mid-run) which writes goodput and
#              p50/p90/p99/p999 to results/BENCH_load.json and asserts
#              the overload SLO: p99 stays flat under 429/503 shedding
#              and the pooled keep-alive client sustains >= 2x the
#              connection-per-call request rate
#  11. perf:   the batch-, serve-, transport- and fleet-throughput
#              acceptance benches, which assert the 4-worker pool /
#              serving engine / HTTP front door / routed fleet beats
#              single-threaded submission by >= 2x on a 64-job workload
#              with real wall-clock backoff (the transport and fleet
#              benches also write latency percentiles to
#              results/BENCH_transport.json and results/BENCH_fleet.json)
#  12. calib-bench: the calibration acceptance gate — drifting-fleet
#              scenarios (RandomWalk and StepRecalibration heavy drift)
#              asserting ScorePolicy::Predicted beats Static on
#              accuracy-per-attempt and the learned tracker beats a
#              frozen-preset baseline on attempt-weighted prequential
#              Brier score; writes results/BENCH_calib.json
#  13. mitigate: the error-mitigation gate — the de-panicked mitigation
#              math unit tests, the folding unitary-identity property
#              tests, the sweep bitwise-replay property tests, and the
#              ZNE acceptance bench, which asserts the served
#              gate-folding sweep beats the raw noisy expectation error
#              on the §4.2 block under Santiago emulator noise and
#              writes arm-by-arm errors plus sweep latency percentiles
#              to results/BENCH_zne.json
set -eu
cd "$(dirname "$0")/.."

echo "== smoke: deterministic breaker trip =="
cargo test -q -p qnat-core --test health_e2e breaker_trip_smoke

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== health: breaker unit + e2e + report-merge property suites =="
cargo test -q -p qnat-core --lib health::
cargo test -q -p qnat-core --test health_e2e
cargo test -q -p qnat-core --test report_props

echo "== serve: engine unit + replay property + e2e suites =="
cargo test -q -p qnat-serve

echo "== serve: example smoke gate (deadlock-guarded) =="
cargo build --release --example serving
timeout 120 cargo run --release --example serving

echo "== transport: wire/http unit + e2e suites =="
cargo test -q -p qnat-transport

echo "== transport: example smoke gate (deadlock-guarded) =="
cargo build --release --example http_serving
timeout 120 cargo run --release --example http_serving

echo "== fleet: router unit + e2e + replay property suites =="
cargo test -q -p qnat-fleet

echo "== fleet: example smoke gate (deadlock-guarded) =="
cargo build --release --example fleet_routing
timeout 120 cargo run --release --example fleet_routing

echo "== calib: tracker unit + property suites =="
cargo test -q -p qnat-calib

echo "== lint: scripts/lint.sh =="
./scripts/lint.sh

echo "== sim-bench: release-mode kernel bounds regression =="
cargo test -q --release -p qnat-sim --test kernel_bounds

echo "== sim-bench: fused-vs-unfused acceptance gate =="
cargo bench -p qnat-bench --bench sim_fused

echo "== load: socket-level chaos suite =="
cargo test -q --release -p qnat-transport --test transport_chaos

echo "== load: open-loop load harness SLO gate (deadlock-guarded) =="
cargo build --release -p qnat-bench --bin load_harness
timeout 180 cargo run --release -p qnat-bench --bin load_harness

echo "== bench: batch_throughput acceptance gate =="
cargo bench -p qnat-bench --bench batch_throughput

echo "== bench: serve_throughput acceptance gate =="
cargo bench -p qnat-bench --bench serve_throughput

echo "== bench: transport_throughput acceptance gate =="
cargo bench -p qnat-bench --bench transport_throughput

echo "== bench: fleet_routing acceptance gate =="
cargo bench -p qnat-bench --bench fleet_routing

echo "== bench: calib_tracking acceptance gate =="
cargo bench -p qnat-bench --bench calib_tracking

echo "== mitigate: de-panicked math + folding identity + sweep replay suites =="
cargo test -q -p qnat-core --lib mitigate::
cargo test -q -p qnat-compiler --test folding_props
cargo test -q -p qnat-serve --test mitigate_replay

echo "== mitigate: ZNE acceptance gate =="
cargo bench -p qnat-bench --bench zne_mitigation

echo "CI OK"
