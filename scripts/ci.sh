#!/usr/bin/env sh
# Full CI gate, in the order a reviewer wants failures surfaced:
#   1. tier-1: release build + the whole workspace test suite
#   2. lint:   clippy -D warnings (scripts/lint.sh)
#   3. perf:   the batch-throughput acceptance bench, which asserts the
#              4-worker pool beats single-threaded submission by >= 2x
#              on a 64-job batch with real wall-clock backoff
set -eu
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== lint: scripts/lint.sh =="
./scripts/lint.sh

echo "== bench: batch_throughput acceptance gate =="
cargo bench -p qnat-bench --bench batch_throughput

echo "CI OK"
