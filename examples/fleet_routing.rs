//! Fleet routing under fire: three devices front one workload, the
//! best-calibrated device goes terminally dark mid-run, and the router
//! keeps the completed-job count at 100% by failing over to the
//! survivors — with zero client-visible refusals.
//!
//! The CI smoke gate runs this example under a timeout: the final
//! assertions turn a routing regression (lost jobs, missing failover)
//! into a loud failure.
//!
//! ```sh
//! cargo run --release --example fleet_routing
//! ```

use quantumnat::core::batch::BatchJob;
use quantumnat::core::executor::{ResilientExecutor, RetryPolicy};
use quantumnat::fleet::{FleetConfig, FleetDevice, FleetRouter, QuarantinePolicy};
use quantumnat::noise::backend::SimulatorBackend;
use quantumnat::noise::fault::{DriftModel, FaultSpec, FaultyBackend};
use quantumnat::noise::presets;
use quantumnat::sim::circuit::Circuit;
use quantumnat::sim::gate::Gate;

const JOBS: usize = 120;
/// Global job index at which the preferred device stops answering.
const DARK_AT: u64 = 30;

fn job(k: usize) -> BatchJob {
    let mut c = Circuit::new(2);
    c.push(Gate::ry(0, 0.11 + 0.05 * k as f64));
    c.push(Gate::cx(0, 1));
    c.push(Gate::rz(1, 0.2 + 0.03 * k as f64));
    BatchJob::exact(c)
}

fn main() {
    // santiago: the best static calibration, so the router prefers it —
    // until a hard outage at global job index 30 (every attempt fails,
    // retries exhausted, breaker trips, quarantine follows).
    let outage_drift = FaultSpec {
        gate_drift_per_job: 0.01,
        readout_drift_per_job: 0.005,
        drift: DriftModel::RandomWalk,
        seed: 3,
        drift_seed: 3,
        ..FaultSpec::none()
    };
    let santiago = FleetDevice::new(presets::santiago(), move |global, seed| {
        let rate = if global < DARK_AT { 0.0 } else { 1.0 };
        let spec = FaultSpec {
            transient_failure_rate: rate,
            seed,
            ..outage_drift
        };
        Ok(ResilientExecutor::new(
            Box::new(FaultyBackend::starting_at(
                SimulatorBackend::new(seed),
                spec,
                global,
            )),
            RetryPolicy {
                max_attempts: 2,
                base_backoff_ms: 1,
                max_backoff_ms: 2,
                ..RetryPolicy::default()
            },
        ))
    })
    .with_faults(outage_drift);

    // athens: flaky (30% transient faults) but survivable with retries.
    let athens_faults = FaultSpec::transient(0.3, 17);
    let athens = FleetDevice::emulated(
        presets::athens(),
        2,
        athens_faults,
        RetryPolicy {
            base_backoff_ms: 1,
            max_backoff_ms: 2,
            ..RetryPolicy::default()
        },
    )
    .expect("athens slices to 2 qubits");

    // lima: the noisiest calibration of the three, but rock steady.
    let lima = FleetDevice::new(presets::lima(), |_global, seed| {
        Ok(ResilientExecutor::new(
            Box::new(SimulatorBackend::new(seed)),
            RetryPolicy::default(),
        ))
    });

    let config = FleetConfig {
        seed: 0xF1EE7,
        pilots: 2,
        engine_workers: 2,
        // Evict on the first breaker trip: a terminally dark device should
        // leave the candidate set immediately, not linger half-scored.
        quarantine: QuarantinePolicy {
            trip_threshold: 1,
            ..QuarantinePolicy::default()
        },
        ..FleetConfig::default()
    };
    let router =
        FleetRouter::new(config, vec![santiago, athens, lima]).expect("non-empty fleet builds");

    println!(
        "fleet: {:?}, {} jobs, preferred device goes dark at global index {DARK_AT}",
        router.device_names(),
        JOBS
    );

    let tickets: Vec<_> = (0..JOBS)
        .map(|k| router.submit(job(k)).expect("no submission refused"))
        .collect();
    let mut completed = 0usize;
    let mut rescued = 0usize;
    for (k, t) in tickets.into_iter().enumerate() {
        let outcome = router.wait(t).expect("every job delivered");
        assert!(
            outcome.result.is_ok(),
            "job {k} lost: {:?} on {}",
            outcome.result,
            outcome.device
        );
        completed += 1;
        if outcome.attempts > 1 {
            rescued += 1;
        }
    }

    let stats = router.stats();
    println!();
    println!("completed {completed}/{JOBS} jobs ({rescued} needed more than one attempt)");
    println!(
        "stats: failovers {}, hedges {} (wins {}), probes {}, quarantined {}, readmitted {}, idle breaker ticks {}",
        stats.failovers,
        stats.hedges,
        stats.hedge_wins,
        stats.probes,
        stats.quarantined,
        stats.readmitted,
        stats.idle_ticks
    );
    println!();
    println!("device health at drain:");
    for d in router.health().devices {
        let breaker = match d.breaker {
            Some(s) => format!(
                "{:?} (trips {}, recoveries {}, short-circuited {})",
                s.state, s.trips, s.recoveries, s.short_circuited
            ),
            None => "never tripped".to_owned(),
        };
        println!(
            "  {:<10} quarantined={:<5} noise≈{:.4} breaker: {breaker}",
            d.name, d.quarantined, d.noise_estimate
        );
    }

    // The smoke-gate contract: failover keeps completion at 100% with
    // zero refusals, and the outage demonstrably exercised failover.
    assert_eq!(completed, JOBS, "failover must keep completion at 100%");
    assert_eq!(stats.completed, JOBS as u64);
    assert_eq!(stats.refused_all_down, 0, "no client-visible refusals");
    assert!(stats.failovers > 0, "the outage must force failover");
    assert!(stats.quarantined > 0, "the dark device must be evicted");
    println!();
    println!("OK: 100% completion through a mid-run device outage.");
}
