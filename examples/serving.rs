//! Serving a QNN as a long-lived front end: deploy once onto persistent
//! per-block engines, then keep answering — interactive inferences, raw
//! circuit tickets polled or streamed, and a background hyper-parameter
//! grid on the bulk lane — while a fault-injecting primary backend fails
//! and trips the per-block admission breakers.
//!
//! ```sh
//! cargo run --release --example serving
//! ```
//!
//! Used by `scripts/ci.sh` as the serve smoke gate: exits nonzero unless
//! the engines complete a nonzero number of jobs across all three traffic
//! patterns.

use quantumnat::core::batch::BatchJob;
use quantumnat::core::executor::RetryPolicy;
use quantumnat::core::health::BreakerPolicy;
use quantumnat::core::infer::{infer, InferenceBackend, InferenceOptions};
use quantumnat::core::model::{Qnn, QnnConfig};
use quantumnat::core::sweep::SweepConfig;
use quantumnat::noise::fault::{DriftModel, FaultSpec};
use quantumnat::noise::presets;
use quantumnat::serve::{
    bulk_grid_sweep, DeployServing, Lane, OpenAction, Poll, ServeAdmission, ServingOptions,
};
use quantumnat::sim::circuit::Circuit;
use quantumnat::sim::gate::Gate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let device = presets::santiago();
    let qnn = Qnn::for_device(QnnConfig::standard(16, 4, 2, 2), &device, 7).expect("fits device");

    // A primary in trouble: 60% transient failures plus fleet-wide
    // calibration drift. The admission breaker's job is to notice and
    // route straight to the noise-model fallback.
    let faults = FaultSpec {
        drift: DriftModel::RandomWalk,
        readout_drift_per_job: 0.02,
        gate_drift_per_job: 0.01,
        drift_seed: 0xD21F,
        ..FaultSpec::transient(0.6, 41)
    };
    let serving = qnn
        .deploy_serving(
            &device,
            2,
            RetryPolicy::default(),
            Some(faults),
            &ServingOptions {
                workers: 4,
                seed: 11,
                admission: Some(ServeAdmission {
                    policy: BreakerPolicy::default(),
                    on_open: OpenAction::Fallback,
                }),
                ..ServingOptions::default()
            },
        )
        .expect("deployable");

    // 1. Interactive traffic: whole inferences through the serving
    //    backend, exactly like the batch backend but against live engines.
    let batch: Vec<Vec<f64>> = (0..16)
        .map(|k| (0..16).map(|j| ((k * 16 + j) as f64 * 0.017).sin()).collect())
        .collect();
    let mut rng = StdRng::seed_from_u64(0);
    let result = infer(
        &qnn,
        &batch,
        &InferenceBackend::Serving(&serving),
        &InferenceOptions::default(),
        &mut rng,
    )
    .expect("fallback keeps the service alive");
    println!(
        "interactive: {} samples served, report: {}",
        batch.len(),
        result.report.expect("serving carries a report")
    );

    // 2. Raw tickets against block 0's engine: subscribe to the result
    //    stream, submit a burst on the bulk lane, poll one ticket while
    //    the stream drains the rest.
    let engine = serving.engine(0);
    let stream = engine.subscribe();
    let tickets: Vec<_> = (0..8)
        .map(|k| {
            let mut c = Circuit::new(2);
            c.push(Gate::ry(0, 0.2 * k as f64 + 0.05));
            c.push(Gate::cx(0, 1));
            engine
                .submit(BatchJob::exact(c), Lane::Bulk)
                .expect("blocking lane accepts the burst")
        })
        .collect();
    let polled = loop {
        match engine.poll(tickets[0]) {
            Poll::Ready(outcome) => break outcome,
            Poll::Queued | Poll::Running => std::thread::yield_now(),
            Poll::Unknown => unreachable!("ticket was just submitted"),
        }
    };
    println!(
        "burst: ticket {} polled ({} attempts), streaming the rest…",
        tickets[0],
        polled.report.attempts
    );
    // The subscription started after phase 1 drained, so the stream
    // carries exactly the burst's completions.
    for _ in 0..tickets.len() {
        let (ticket, result) = stream.recv().expect("engine is alive");
        println!("  ticket {ticket}: {}", if result.is_ok() { "ok" } else { "failed" });
    }

    // 3. Background traffic: the §4.2 quantization grid on the bulk lane.
    let sweep = SweepConfig::default();
    let records = bulk_grid_sweep(&serving, &sweep, &batch, None, &InferenceOptions::default())
        .expect("grid serves through the bulk lane");
    println!("bulk sweep: {} grid points served", records.len());

    // Breaker verdicts and the smoke-gate assertion.
    for key in serving.health_registry().keys() {
        let snap = serving.health_registry().snapshot(&key).expect("listed key");
        println!(
            "{key}: {:?}, trips {}, short-circuited {}",
            snap.state, snap.trips, snap.short_circuited
        );
    }
    let stats = serving.drain();
    let completed: u64 = stats.iter().map(|s| s.completed).sum();
    println!("drained: {completed} jobs completed across {} block engines", stats.len());
    assert!(completed > 0, "serve smoke: engines must complete jobs");
}
