//! The serving engine behind its HTTP front door: bind an ephemeral
//! port, drive a submit/poll/wait round trip over real TCP with a 50%
//! fault-injecting primary, read `/healthz`, and drain gracefully.
//!
//! ```sh
//! cargo run --release --example http_serving
//! ```
//!
//! Used by `scripts/ci.sh` as the transport smoke gate (under a
//! timeout, so an accept-loop or drain deadlock fails loudly): exits
//! nonzero unless every submitted ticket completes, the poll/wait
//! round trip succeeds, and shutdown reports a full drain.

use quantumnat::core::batch::BatchJob;
use quantumnat::core::executor::{ResilientExecutor, RetryPolicy, ThreadSleeper};
use quantumnat::noise::backend::{BackendError, SimulatorBackend};
use quantumnat::noise::fault::{FaultSpec, FaultyBackend};
use quantumnat::serve::{Lane, ServeConfig, ServeEngine};
use quantumnat::sim::circuit::Circuit;
use quantumnat::sim::gate::Gate;
use quantumnat::transport::{TicketStatus, TransportClient, TransportConfig, TransportServer};

/// Flaky primary (50% transient faults), clean fallback, real but small
/// wall-clock backoff — the throughput benches' standard fault model.
fn factory(_job: u64, seed: u64) -> Result<ResilientExecutor, BackendError> {
    let policy = RetryPolicy {
        max_attempts: 4,
        base_backoff_ms: 3,
        max_backoff_ms: 12,
        ..RetryPolicy::default()
    };
    Ok(ResilientExecutor::with_fallback(
        Box::new(FaultyBackend::new(
            SimulatorBackend::new(seed),
            FaultSpec::transient(0.5, seed),
        )),
        Box::new(SimulatorBackend::new(seed ^ 0x5eed)),
        policy,
    )
    .with_sleeper(Box::new(ThreadSleeper::default())))
}

fn job(k: usize) -> BatchJob {
    let mut c = Circuit::new(2);
    c.push(Gate::ry(0, 0.07 * k as f64 + 0.1));
    c.push(Gate::cx(0, 1));
    BatchJob::exact(c)
}

fn main() {
    let engine = ServeEngine::new(
        ServeConfig {
            workers: 4,
            seed: 0xB47C,
            ..ServeConfig::default()
        },
        factory,
    );
    let server = TransportServer::bind("127.0.0.1:0", TransportConfig::default(), engine)
        .expect("bind an ephemeral port");
    let addr = server.local_addr();
    println!("front door listening on http://{addr}");
    let client = TransportClient::new(addr);

    // Submit a small workload over the wire.
    const N: usize = 12;
    let tickets: Vec<u64> = (0..N)
        .map(|k| {
            client
                .submit(&job(k), Lane::Interactive)
                .expect("the blocking lane accepts the workload")
        })
        .collect();
    println!("submitted {N} jobs, tickets 0..{}", N - 1);

    // One non-blocking poll: any answer is legal while workers churn —
    // the point is that the round trip itself works.
    match client.poll(tickets[0]).expect("poll round trip") {
        Some(TicketStatus::Ready(outcome)) => {
            let m = outcome.result.expect("fallback absorbs exhausted retries");
            println!("ticket 0 ready on first poll: {} expectations", m.expectations.len());
        }
        Some(status) => println!("ticket 0 still {status:?}"),
        None => unreachable!("ticket 0 was just submitted"),
    }

    // Wait out every ticket; the fallback guarantees success under the
    // 50% fault rate.
    let mut ok = 0;
    for &t in &tickets {
        if let Some(outcome) = client.wait(t).expect("wait round trip") {
            if outcome.result.is_ok() {
                ok += 1;
            }
        }
    }
    // Ticket 0 may have been consumed by the poll above.
    assert!(ok >= N - 1, "jobs complete under fault injection: {ok}/{N}");
    println!("{ok} waits returned ok results");

    let health = client.healthz().expect("healthz");
    println!("healthz: {}", health.to_json());

    // Graceful drain: every submitted ticket was completed, none shed.
    let stats = server.shutdown();
    assert_eq!(stats.submitted, N as u64);
    assert_eq!(stats.completed, N as u64, "graceful drain finishes everything");
    assert_eq!(stats.rejected_full + stats.shed_oldest + stats.shed_admission, 0);
    println!(
        "drained: {} submitted, {} completed — front door down cleanly",
        stats.submitted, stats.completed
    );
}
