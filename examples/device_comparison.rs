//! Device comparison (the Figure-1 story): the same trained model is
//! deployed on every preset device; accuracy tracks the device's error
//! rates, and QuantumNAT-style normalization recovers most of the loss.
//!
//! ```sh
//! cargo run --release --example device_comparison
//! ```

use quantumnat::core::forward::PipelineOptions;
use quantumnat::core::infer::{infer, InferenceBackend, InferenceOptions, NormMode};
use quantumnat::core::model::{Qnn, QnnConfig};
use quantumnat::core::train::{train, AdamConfig, TrainOptions};
use quantumnat::data::dataset::{build, Task, TaskConfig};
use quantumnat::noise::presets;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dataset = build(Task::Mnist2, &TaskConfig::small(3));
    // Train once with normalization, noise-free (device-agnostic model).
    let mut qnn = Qnn::for_device(
        QnnConfig::standard(16, 2, 2, 2),
        &presets::santiago(),
        5,
    )
    .expect("fits device");
    train(
        &mut qnn,
        &dataset,
        &TrainOptions {
            adam: AdamConfig {
                lr_max: 1.5e-2,
                warmup_epochs: 8,
                total_epochs: 40,
                ..AdamConfig::default()
            },
            batch_size: 32,
            pipeline: PipelineOptions {
                normalize: true,
                quantize: None,
                quant_penalty: 0.0,
                ..PipelineOptions::baseline()
            },
            seed: 5,
        },
    )
    .expect("training succeeds");

    let feats: Vec<Vec<f64>> = dataset.test.iter().map(|s| s.features.clone()).collect();
    let labels: Vec<usize> = dataset.test.iter().map(|s| s.label).collect();
    println!(
        "{:<16} {:>9} {:>9} {:>10} {:>10}",
        "device", "1q error", "2q error", "raw acc", "norm acc"
    );
    for device in presets::all_devices() {
        if device.n_qubits() < 4 {
            continue;
        }
        let dep = qnn.deploy(&device, 2).expect("deployable");
        let mut rng = StdRng::seed_from_u64(1);
        let raw = infer(
            &qnn,
            &feats,
            &InferenceBackend::Hardware(&dep),
            &InferenceOptions::baseline(),
            &mut rng,
        )
        .expect("inference succeeds")
        .accuracy(&labels);
        let norm = infer(
            &qnn,
            &feats,
            &InferenceBackend::Hardware(&dep),
            &InferenceOptions {
                normalize: NormMode::BatchStats,
                quantize: None,
                process_last: false,
            },
            &mut rng,
        )
        .expect("inference succeeds")
        .accuracy(&labels);
        println!(
            "{:<16} {:>9.1e} {:>9.1e} {:>10.3} {:>10.3}",
            device.name(),
            device.mean_single_qubit_error(),
            device.mean_two_qubit_error(),
            raw,
            norm
        );
    }
}
