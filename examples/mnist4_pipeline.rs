//! Full MNIST-4 ablation pipeline: trains the four Table-1 arms
//! (Baseline → +Normalization → +Gate insertion → +Quantization) against
//! the Yorktown noise model and reports hardware accuracy for each.
//!
//! ```sh
//! cargo run --release --example mnist4_pipeline
//! ```

use quantumnat::core::forward::PipelineOptions;
use quantumnat::core::infer::{infer, InferenceBackend, InferenceOptions, NormMode};
use quantumnat::core::model::{NoiseSource, Qnn, QnnConfig};
use quantumnat::core::train::{train, AdamConfig, TrainOptions};
use quantumnat::core::QuantizeSpec;
use quantumnat::data::dataset::{build, Task, TaskConfig};
use quantumnat::noise::presets;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dataset = build(
        Task::Mnist4,
        &TaskConfig {
            n_train: 192,
            n_valid: 64,
            n_test: 96,
            seed: 11,
        },
    );
    let device = presets::yorktown();
    let config = QnnConfig::standard(16, 4, 2, 2);
    let adam = AdamConfig {
        lr_max: 1.5e-2,
        warmup_epochs: 20,
        total_epochs: 100,
        ..AdamConfig::default()
    };
    let quant = QuantizeSpec::levels(6);

    let arms: Vec<(&str, PipelineOptions, Option<QuantizeSpec>, bool)> = vec![
        ("Baseline", PipelineOptions::baseline(), None, false),
        (
            "+ Post Norm.",
            PipelineOptions {
                normalize: true,
                quantize: None,
                quant_penalty: 0.0,
                ..PipelineOptions::baseline()
            },
            None,
            true,
        ),
        (
            "+ Gate Insert.",
            PipelineOptions {
                noise: NoiseSource::GateInsertion {
                    model: &device,
                    factor: 0.5,
                },
                readout: Some(&device),
                normalize: true,
                quantize: None,
                quant_penalty: 0.0,
                process_last: false,
            },
            None,
            true,
        ),
        (
            "+ Post Quant.",
            PipelineOptions {
                noise: NoiseSource::GateInsertion {
                    model: &device,
                    factor: 0.5,
                },
                readout: Some(&device),
                normalize: true,
                quantize: Some(quant),
                quant_penalty: 0.05,
                process_last: false,
            },
            Some(quant),
            true,
        ),
    ];

    let feats: Vec<Vec<f64>> = dataset.test.iter().map(|s| s.features.clone()).collect();
    let labels: Vec<usize> = dataset.test.iter().map(|s| s.label).collect();
    println!("MNIST-4 on {} (2 blocks × 2 layers)\n", device.name());
    for (label, pipeline, quantize, norm) in arms {
        let mut qnn = Qnn::for_device(config, &device, 7).expect("fits device");
        let report = train(
            &mut qnn,
            &dataset,
            &TrainOptions {
                adam,
                batch_size: 48,
                pipeline,
                seed: 7,
            },
        )
        .expect("training succeeds");
        let dep = qnn.deploy(&device, 2).expect("deployable");
        let mut rng = StdRng::seed_from_u64(0);
        let acc = infer(
            &qnn,
            &feats,
            &InferenceBackend::Hardware(&dep),
            &InferenceOptions {
                normalize: if norm {
                    NormMode::BatchStats
                } else {
                    NormMode::Off
                },
                quantize,
                process_last: false,
            },
            &mut rng,
        )
        .expect("inference succeeds")
        .accuracy(&labels);
        println!(
            "{label:16} valid(noise-free) {:.3}   hardware {acc:.3}",
            report.valid_acc
        );
    }
}
