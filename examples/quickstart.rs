//! Quickstart: build a QNN, train it noise-aware against a device noise
//! model, and compare baseline vs QuantumNAT accuracy on the emulated
//! hardware.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use quantumnat::core::forward::PipelineOptions;
use quantumnat::core::infer::{infer, InferenceBackend, InferenceOptions, NormMode};
use quantumnat::core::model::{NoiseSource, Qnn, QnnConfig};
use quantumnat::core::train::{train, AdamConfig, TrainOptions};
use quantumnat::data::dataset::{build, Task, TaskConfig};
use quantumnat::noise::presets;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A synthetic MNIST-2 dataset with the paper's preprocessing
    //    (center-crop 24×24, average-pool to 4×4).
    let dataset = build(Task::Mnist2, &TaskConfig::small(1));

    // 2. The target device: a synthetic IBMQ-Yorktown calibration model.
    let device = presets::yorktown();
    println!("device: {device}");

    // 3. Two models: a noise-unaware baseline and a QuantumNAT model
    //    trained with normalization + gate-insertion noise + quantization.
    //    Three layers per block: deep enough that gate noise visibly
    //    erodes the noise-unaware baseline (each CU3 layer compounds the
    //    ~4e-2 two-qubit error), shallow enough that both models train.
    let config = QnnConfig::standard(dataset.n_features, dataset.n_classes, 2, 3);
    let adam = AdamConfig {
        lr_max: 1.5e-2,
        warmup_epochs: 8,
        total_epochs: 40,
        ..AdamConfig::default()
    };

    let mut baseline = Qnn::for_device(config, &device, 7).expect("fits device");
    train(
        &mut baseline,
        &dataset,
        &TrainOptions {
            adam,
            batch_size: 32,
            pipeline: PipelineOptions::baseline(),
            seed: 7,
        },
    )
    .expect("training succeeds");

    let mut quantumnat = Qnn::for_device(config, &device, 7).expect("fits device");
    train(
        &mut quantumnat,
        &dataset,
        &TrainOptions {
            adam,
            batch_size: 32,
            pipeline: PipelineOptions {
                noise: NoiseSource::GateInsertion {
                    model: &device,
                    factor: 0.5,
                },
                readout: Some(&device),
                ..PipelineOptions::default()
            },
            seed: 7,
        },
    )
    .expect("training succeeds");

    // 4. Deploy both on the emulated hardware and compare.
    let feats: Vec<Vec<f64>> = dataset.test.iter().map(|s| s.features.clone()).collect();
    let labels: Vec<usize> = dataset.test.iter().map(|s| s.label).collect();
    let mut rng = StdRng::seed_from_u64(0);

    let dep_b = baseline.deploy(&device, 2).expect("deployable");
    let acc_base = infer(
        &baseline,
        &feats,
        &InferenceBackend::Hardware(&dep_b),
        &InferenceOptions::baseline(),
        &mut rng,
    )
    .expect("inference succeeds")
    .accuracy(&labels);

    let dep_q = quantumnat.deploy(&device, 2).expect("deployable");
    let acc_qnat = infer(
        &quantumnat,
        &feats,
        &InferenceBackend::Hardware(&dep_q),
        &InferenceOptions {
            normalize: NormMode::BatchStats,
            quantize: Some(quantumnat::core::QuantizeSpec::levels(5)),
            process_last: false,
        },
        &mut rng,
    )
    .expect("inference succeeds")
    .accuracy(&labels);

    println!("baseline  accuracy on noisy hardware: {acc_base:.3}");
    println!("QuantumNAT accuracy on noisy hardware: {acc_qnat:.3}");
    println!("noise-aware training gain: {:+.3}", acc_qnat - acc_base);
}
