//! The paper's §4.2 hyper-parameter selection: train one model per
//! (noise factor T, quantization levels) candidate and pick the combination
//! with the lowest validation loss.
//!
//! ```sh
//! cargo run --release --example hyperparameter_sweep
//! ```

use quantumnat::core::model::QnnConfig;
use quantumnat::core::sweep::{select_hyperparameters, SweepConfig};
use quantumnat::core::train::AdamConfig;
use quantumnat::data::dataset::{build, Task, TaskConfig};
use quantumnat::noise::presets;

fn main() {
    let dataset = build(Task::Mnist2, &TaskConfig::small(2));
    let device = presets::yorktown();
    // A reduced 2×2 grid for the example; the paper sweeps 4×4.
    let sweep = SweepConfig {
        t_factors: vec![0.1, 0.5],
        levels: vec![4, 6],
        adam: AdamConfig {
            lr_max: 1.5e-2,
            warmup_epochs: 4,
            total_epochs: 20,
            ..AdamConfig::default()
        },
        // Candidates are independent — fan them across a small pool. The
        // selected point is identical for any worker count.
        workers: 4,
        ..SweepConfig::default()
    };
    println!(
        "sweeping {} candidates on {} ({} workers) ...\n",
        sweep.t_factors.len() * sweep.levels.len(),
        device.name(),
        sweep.workers
    );
    let outcome = select_hyperparameters(
        QnnConfig::standard(16, 2, 2, 2),
        &dataset,
        &device,
        &sweep,
    )
    .expect("sweep succeeds");
    println!("{:>6} {:>7} {:>12} {:>11}", "T", "levels", "valid loss", "valid acc");
    for r in &outcome.records {
        let marker = if r.point == outcome.best { "  <-- selected" } else { "" };
        println!(
            "{:>6} {:>7} {:>12.4} {:>11.3}{marker}",
            r.point.t_factor, r.point.levels, r.valid_loss, r.valid_acc
        );
    }
    println!(
        "\nwinner: T = {}, {} quantization levels ({} trained parameters)",
        outcome.best.t_factor,
        outcome.best.levels,
        outcome.best_model.n_params()
    );
}
