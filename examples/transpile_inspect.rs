//! Transpiler tour: lower a QNN block to the IBMQ basis, route it onto a
//! real coupling map, compare optimization levels, and sample error-gate
//! insertion — everything that happens to a circuit before it "runs on
//! hardware".
//!
//! ```sh
//! cargo run --release --example transpile_inspect
//! ```

use quantumnat::compiler::transpile::{transpile, TranspileOptions};
use quantumnat::compiler::unitary::equiv_up_to_phase;
use quantumnat::noise::inject::{expected_overhead, insert_error_gates};
use quantumnat::noise::presets;
use quantumnat::sim::circuit::Circuit;
use quantumnat::sim::gate::Gate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A QuantumNAT block: RY encoder + one U3 layer + one CU3 ring.
    let mut block = Circuit::new(4);
    for q in 0..4 {
        block.push(Gate::ry(q, 0.3 + 0.2 * q as f64));
    }
    for q in 0..4 {
        block.push(Gate::u3(q, 0.5, -0.2, 0.8));
    }
    for q in 0..4 {
        block.push(Gate::cu3(q, (q + 1) % 4, 0.4, 0.1, -0.3));
    }
    println!(
        "logical block: {} gates, depth {}, {} two-qubit",
        block.len(),
        block.depth(),
        block.count_two_qubit()
    );

    let device = presets::santiago();
    println!("\ntarget: {device}");
    println!("coupling map: {:?}", device.coupling());

    for level in 0..=3u8 {
        let t = transpile(&block, &device, TranspileOptions::level(level))
            .expect("transpiles");
        println!(
            "opt level {level}: {} basis gates, depth {}, {} CX, window {:?}, layout {:?}",
            t.circuit.len(),
            t.circuit.depth(),
            t.circuit
                .count_kind(quantumnat::sim::GateKind::Cx),
            t.window,
            t.layout
        );
    }

    // The lowering is exact (up to global phase) — verify level 2.
    let t2 = transpile(&block, &device, TranspileOptions::level(2)).expect("transpiles");
    // Re-embed the logical circuit into the window register for comparison.
    let mut reference = Circuit::new(t2.circuit.n_qubits());
    for g in block.gates() {
        let mut wg = *g;
        for k in 0..g.arity() {
            wg.qubits[k] = t2.layout[g.qubits[k]];
        }
        reference.push(wg);
    }
    // Equivalence only holds when routing did not permute qubits mid-way;
    // check the cheap invariant instead when it did.
    if t2.layout == (0..4).collect::<Vec<_>>() {
        println!(
            "unitary equivalence vs logical: {}",
            equiv_up_to_phase(&reference, &t2.circuit, 1e-8)
        );
    }

    // Error-gate insertion on the compiled circuit.
    let noisy_dev = presets::yorktown();
    let t = transpile(&block, &noisy_dev, TranspileOptions::level(2)).expect("transpiles");
    let mut rng = StdRng::seed_from_u64(0);
    println!(
        "\nexpected insertion overhead on {}: {:.2}%",
        noisy_dev.name(),
        expected_overhead(&t.circuit, &t.device_view, 1.0) * 100.0
    );
    let (injected, stats) = insert_error_gates(&t.circuit, &t.device_view, 1.0, &mut rng);
    println!(
        "one sampled injection: {} → {} gates ({} error gates inserted)",
        t.circuit.len(),
        injected.len(),
        stats.inserted_gates
    );
}
