//! Fleet health on a batched deployment: a dying primary backend trips the
//! per-block circuit breaker, later jobs short-circuit to the noise-model
//! fallback, and a per-job deadline budget caps the backoff any single job
//! may spend. Compare the execution reports with the health layer off and
//! on — same answers, a fraction of the retry bill.
//!
//! ```sh
//! cargo run --release --example fleet_health
//! ```

use quantumnat::core::executor::RetryPolicy;
use quantumnat::core::health::{BreakerPolicy, DeadlinePolicy, HealthPolicy};
use quantumnat::core::infer::{infer, InferenceBackend, InferenceOptions};
use quantumnat::core::model::{Qnn, QnnConfig};
use quantumnat::noise::fault::{DriftModel, FaultSpec};
use quantumnat::noise::presets;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let device = presets::santiago();
    let qnn = Qnn::for_device(QnnConfig::standard(16, 4, 2, 2), &device, 7).expect("fits device");
    let batch: Vec<Vec<f64>> = (0..32)
        .map(|k| (0..16).map(|j| ((k * 16 + j) as f64 * 0.017).sin()).collect())
        .collect();

    // A primary in deep trouble: 95% transient failures plus a random-walk
    // calibration drift shared by the whole fleet (one trajectory, sampled
    // at each job's batch-global index).
    let faults = FaultSpec {
        drift: DriftModel::RandomWalk,
        readout_drift_per_job: 0.02,
        gate_drift_per_job: 0.01,
        drift_seed: 0xD21F,
        ..FaultSpec::transient(0.95, 41)
    };

    let policy = HealthPolicy {
        breaker: Some(BreakerPolicy::default()),
        deadline: Some(DeadlinePolicy::PerJob(200)),
    };

    for (label, health) in [("health off", None), ("health on ", Some(policy))] {
        let mut dep = qnn
            .deploy_batch(&device, 2, RetryPolicy::default(), Some(faults), 4, 11)
            .expect("deployable");
        if let Some(h) = health {
            dep = dep.with_health(h);
        }
        let mut rng = StdRng::seed_from_u64(0);
        let result = infer(
            &qnn,
            &batch,
            &InferenceBackend::Batch(&dep),
            &InferenceOptions::baseline(),
            &mut rng,
        )
        .expect("fallback keeps the batch alive");
        let report = result.report.expect("batch run carries a report");
        println!("{label}: {report}");
        let registry = dep.health_registry();
        for key in registry.keys() {
            let snap = registry.snapshot(&key).expect("listed key");
            println!(
                "  {key}: {:?}, trips {}, recoveries {}, short-circuited {}",
                snap.state, snap.trips, snap.recoveries, snap.short_circuited
            );
        }
    }
    println!();
    println!("The breaker remembers what each per-job executor would rediscover:");
    println!("after one epoch of failures the whole fleet routes around the dying");
    println!("primary, and the per-job deadline keeps any straggler's backoff");
    println!("spend bounded.");
}
