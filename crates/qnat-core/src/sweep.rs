//! Hyper-parameter selection (paper §4.2).
//!
//! "For each benchmark, we experiment with noise factor
//! `T = {0.1, 0.5, 1, 1.5}` and quantization level among `{3, 4, 5, 6}`
//! and select one out of 16 combinations with the lowest loss on the
//! validation set." This module runs that grid: each candidate trains a
//! fresh model with the full QuantumNAT pipeline, and the winner is the
//! candidate with the lowest noise-free validation loss.
//!
//! Candidates are independent, so the grid fans out across
//! [`SweepConfig::workers`] threads. Every candidate trains from the same
//! fixed seed and records land in grid order with ties broken toward the
//! earlier grid point, so the outcome is identical for any worker count —
//! the same worker-invariance contract the batch layer keeps even with
//! the fleet health layer enabled (see the epoch-driven breaker design in
//! [`crate::health`]).

use crate::forward::{PipelineOptions, QuantizeSpec};
use crate::model::{NoiseSource, Qnn, QnnConfig};
use crate::train::{train, AdamConfig, TrainOptions};
use qnat_data::dataset::Dataset;
use qnat_noise::device::DeviceModel;

/// One candidate of the sweep grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Noise factor `T`.
    pub t_factor: f64,
    /// Quantization levels.
    pub levels: usize,
}

/// Result of one sweep candidate.
#[derive(Debug, Clone)]
pub struct SweepRecord {
    /// The candidate.
    pub point: SweepPoint,
    /// Validation loss (selection criterion, lower is better).
    pub valid_loss: f64,
    /// Validation accuracy (reported, not used for selection).
    pub valid_acc: f64,
}

/// Grid + training settings for a sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Noise factors to try (paper: `{0.1, 0.5, 1, 1.5}`).
    pub t_factors: Vec<f64>,
    /// Quantization levels to try (paper: `{3, 4, 5, 6}`).
    pub levels: Vec<usize>,
    /// Optimizer/schedule per candidate.
    pub adam: AdamConfig,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Quantization penalty weight λ.
    pub quant_penalty: f64,
    /// Seed shared by all candidates (fair comparison).
    pub seed: u64,
    /// Threads to spread grid candidates across (clamped to ≥ 1). The
    /// selected point and all records are independent of this.
    pub workers: usize,
}

impl SweepConfig {
    /// The full candidate grid `t_factors × levels`, in grid order
    /// (`t` outer, `levels` inner) — the order records land in and ties
    /// break toward. Also the unit of work the `qnat-serve` bulk lane
    /// schedules.
    pub fn grid(&self) -> Vec<SweepPoint> {
        self.t_factors
            .iter()
            .flat_map(|&t| {
                self.levels.iter().map(move |&levels| SweepPoint {
                    t_factor: t,
                    levels,
                })
            })
            .collect()
    }
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            t_factors: vec![0.1, 0.5, 1.0, 1.5],
            levels: vec![3, 4, 5, 6],
            adam: AdamConfig::fast(40),
            batch_size: 32,
            quant_penalty: 0.05,
            seed: 7,
            workers: 1,
        }
    }
}

/// The outcome of a sweep: the winning trained model and all records.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The model trained at the winning candidate.
    pub best_model: Qnn,
    /// The winning candidate.
    pub best: SweepPoint,
    /// Every candidate's record, in grid order.
    pub records: Vec<SweepRecord>,
}

/// Runs the §4.2 grid: trains one full-pipeline model per `(T, levels)`
/// candidate against `device` and selects by validation loss.
///
/// # Errors
///
/// Returns [`crate::infer::InferError`] if a candidate's validation pass
/// fails.
///
/// # Panics
///
/// Panics if the grid is empty or the architecture does not fit the
/// device.
pub fn select_hyperparameters(
    config: QnnConfig,
    dataset: &Dataset,
    device: &DeviceModel,
    sweep: &SweepConfig,
) -> Result<SweepOutcome, crate::infer::InferError> {
    assert!(
        !sweep.t_factors.is_empty() && !sweep.levels.is_empty(),
        "empty sweep grid"
    );
    let points = sweep.grid();
    let n = points.len();
    let workers = sweep.workers.max(1).min(n);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let run_candidate = |point: SweepPoint| -> Result<(SweepRecord, Qnn), crate::infer::InferError> {
        // Same seed for every candidate (fair comparison) — and a pure
        // function of the grid point, so pooled execution cannot change
        // any candidate's training run.
        let mut qnn = Qnn::for_device(config, device, sweep.seed).expect("config fits device");
        let pipeline = PipelineOptions {
            noise: NoiseSource::GateInsertion {
                model: device,
                factor: point.t_factor,
            },
            readout: Some(device),
            normalize: true,
            quantize: Some(QuantizeSpec::levels(point.levels)),
            quant_penalty: sweep.quant_penalty,
            process_last: false,
        };
        let report = train(
            &mut qnn,
            dataset,
            &TrainOptions {
                adam: sweep.adam,
                batch_size: sweep.batch_size,
                pipeline,
                seed: sweep.seed,
            },
        )?;
        Ok((
            SweepRecord {
                point,
                valid_loss: report.valid_loss,
                valid_acc: report.valid_acc,
            },
            qnn,
        ))
    };
    type Finished = Vec<(usize, Result<(SweepRecord, Qnn), crate::infer::InferError>)>;
    let mut finished: Finished = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            done.push((i, run_candidate(points[i])));
                        }
                        done
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| {
                    h.join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                })
                .collect()
        });
    // Grid order: records deterministic, ties broken toward the earlier
    // point regardless of which worker finished first.
    finished.sort_by_key(|(i, _)| *i);
    let mut records = Vec::with_capacity(n);
    let mut best: Option<(f64, SweepPoint, Qnn)> = None;
    for (_, candidate) in finished {
        let (record, qnn) = candidate?;
        let better = match &best {
            Some((loss, _, _)) => record.valid_loss < *loss,
            None => true,
        };
        if better {
            best = Some((record.valid_loss, record.point, qnn));
        }
        records.push(record);
    }
    let Some((_, best_point, best_model)) = best else {
        unreachable!("non-empty grid");
    };
    Ok(SweepOutcome {
        best_model,
        best: best_point,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnat_data::dataset::{build, Task, TaskConfig};
    use qnat_noise::presets;

    #[test]
    fn sweep_selects_lowest_validation_loss() {
        let dataset = build(Task::Mnist2, &TaskConfig::small(1));
        let device = presets::yorktown();
        let sweep = SweepConfig {
            t_factors: vec![0.1, 1.0],
            levels: vec![4, 6],
            adam: AdamConfig::fast(6),
            ..SweepConfig::default()
        };
        let outcome = select_hyperparameters(
            QnnConfig::standard(16, 2, 2, 2),
            &dataset,
            &device,
            &sweep,
        )
        .unwrap();
        assert_eq!(outcome.records.len(), 4);
        let min_loss = outcome
            .records
            .iter()
            .map(|r| r.valid_loss)
            .fold(f64::INFINITY, f64::min);
        let winner = outcome
            .records
            .iter()
            .find(|r| r.point == outcome.best)
            .expect("winner recorded");
        assert!((winner.valid_loss - min_loss).abs() < 1e-12);
        assert!(outcome.best_model.n_params() > 0);
    }

    #[test]
    fn sweep_outcome_is_worker_count_invariant() {
        let dataset = build(Task::Mnist2, &TaskConfig::small(2));
        let device = presets::santiago();
        let run = |workers: usize| {
            let sweep = SweepConfig {
                t_factors: vec![0.5, 1.0],
                levels: vec![4],
                adam: AdamConfig::fast(3),
                workers,
                ..SweepConfig::default()
            };
            select_hyperparameters(QnnConfig::standard(16, 2, 1, 2), &dataset, &device, &sweep)
                .unwrap()
        };
        let serial = run(1);
        let pooled = run(3);
        assert_eq!(serial.best, pooled.best);
        assert_eq!(serial.records.len(), pooled.records.len());
        for (a, b) in serial.records.iter().zip(&pooled.records) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.valid_loss.to_bits(), b.valid_loss.to_bits());
            assert_eq!(a.valid_acc.to_bits(), b.valid_acc.to_bits());
        }
        for (a, b) in serial
            .best_model
            .parameters()
            .iter()
            .zip(pooled.best_model.parameters())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "empty sweep grid")]
    fn empty_grid_panics() {
        let dataset = build(Task::Mnist2, &TaskConfig::small(1));
        let sweep = SweepConfig {
            t_factors: vec![],
            ..SweepConfig::default()
        };
        let _ = select_hyperparameters(
            QnnConfig::standard(16, 2, 1, 1),
            &dataset,
            &presets::santiago(),
            &sweep,
        );
    }
}
