//! Hyper-parameter selection (paper §4.2).
//!
//! "For each benchmark, we experiment with noise factor
//! `T = {0.1, 0.5, 1, 1.5}` and quantization level among `{3, 4, 5, 6}`
//! and select one out of 16 combinations with the lowest loss on the
//! validation set." This module runs that grid: each candidate trains a
//! fresh model with the full QuantumNAT pipeline, and the winner is the
//! candidate with the lowest noise-free validation loss.

use crate::forward::{PipelineOptions, QuantizeSpec};
use crate::model::{NoiseSource, Qnn, QnnConfig};
use crate::train::{train, AdamConfig, TrainOptions};
use qnat_data::dataset::Dataset;
use qnat_noise::device::DeviceModel;

/// One candidate of the sweep grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Noise factor `T`.
    pub t_factor: f64,
    /// Quantization levels.
    pub levels: usize,
}

/// Result of one sweep candidate.
#[derive(Debug, Clone)]
pub struct SweepRecord {
    /// The candidate.
    pub point: SweepPoint,
    /// Validation loss (selection criterion, lower is better).
    pub valid_loss: f64,
    /// Validation accuracy (reported, not used for selection).
    pub valid_acc: f64,
}

/// Grid + training settings for a sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Noise factors to try (paper: `{0.1, 0.5, 1, 1.5}`).
    pub t_factors: Vec<f64>,
    /// Quantization levels to try (paper: `{3, 4, 5, 6}`).
    pub levels: Vec<usize>,
    /// Optimizer/schedule per candidate.
    pub adam: AdamConfig,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Quantization penalty weight λ.
    pub quant_penalty: f64,
    /// Seed shared by all candidates (fair comparison).
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            t_factors: vec![0.1, 0.5, 1.0, 1.5],
            levels: vec![3, 4, 5, 6],
            adam: AdamConfig::fast(40),
            batch_size: 32,
            quant_penalty: 0.05,
            seed: 7,
        }
    }
}

/// The outcome of a sweep: the winning trained model and all records.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The model trained at the winning candidate.
    pub best_model: Qnn,
    /// The winning candidate.
    pub best: SweepPoint,
    /// Every candidate's record, in grid order.
    pub records: Vec<SweepRecord>,
}

/// Runs the §4.2 grid: trains one full-pipeline model per `(T, levels)`
/// candidate against `device` and selects by validation loss.
///
/// # Errors
///
/// Returns [`crate::infer::InferError`] if a candidate's validation pass
/// fails.
///
/// # Panics
///
/// Panics if the grid is empty or the architecture does not fit the
/// device.
pub fn select_hyperparameters(
    config: QnnConfig,
    dataset: &Dataset,
    device: &DeviceModel,
    sweep: &SweepConfig,
) -> Result<SweepOutcome, crate::infer::InferError> {
    assert!(
        !sweep.t_factors.is_empty() && !sweep.levels.is_empty(),
        "empty sweep grid"
    );
    let mut records = Vec::with_capacity(sweep.t_factors.len() * sweep.levels.len());
    let mut best: Option<(f64, SweepPoint, Qnn)> = None;
    for &t in &sweep.t_factors {
        for &levels in &sweep.levels {
            let point = SweepPoint {
                t_factor: t,
                levels,
            };
            let mut qnn =
                Qnn::for_device(config, device, sweep.seed).expect("config fits device");
            let pipeline = PipelineOptions {
                noise: NoiseSource::GateInsertion {
                    model: device,
                    factor: t,
                },
                readout: Some(device),
                normalize: true,
                quantize: Some(QuantizeSpec::levels(levels)),
                quant_penalty: sweep.quant_penalty,
                process_last: false,
            };
            let report = train(
                &mut qnn,
                dataset,
                &TrainOptions {
                    adam: sweep.adam,
                    batch_size: sweep.batch_size,
                    pipeline,
                    seed: sweep.seed,
                },
            )?;
            records.push(SweepRecord {
                point,
                valid_loss: report.valid_loss,
                valid_acc: report.valid_acc,
            });
            let better = match &best {
                Some((loss, _, _)) => report.valid_loss < *loss,
                None => true,
            };
            if better {
                best = Some((report.valid_loss, point, qnn));
            }
        }
    }
    let (_, best_point, best_model) = best.expect("non-empty grid");
    Ok(SweepOutcome {
        best_model,
        best: best_point,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnat_data::dataset::{build, Task, TaskConfig};
    use qnat_noise::presets;

    #[test]
    fn sweep_selects_lowest_validation_loss() {
        let dataset = build(Task::Mnist2, &TaskConfig::small(1));
        let device = presets::yorktown();
        let sweep = SweepConfig {
            t_factors: vec![0.1, 1.0],
            levels: vec![4, 6],
            adam: AdamConfig::fast(6),
            ..SweepConfig::default()
        };
        let outcome = select_hyperparameters(
            QnnConfig::standard(16, 2, 2, 2),
            &dataset,
            &device,
            &sweep,
        )
        .unwrap();
        assert_eq!(outcome.records.len(), 4);
        let min_loss = outcome
            .records
            .iter()
            .map(|r| r.valid_loss)
            .fold(f64::INFINITY, f64::min);
        let winner = outcome
            .records
            .iter()
            .find(|r| r.point == outcome.best)
            .expect("winner recorded");
        assert!((winner.valid_loss - min_loss).abs() < 1e-12);
        assert!(outcome.best_model.n_params() > 0);
    }

    #[test]
    #[should_panic(expected = "empty sweep grid")]
    fn empty_grid_panics() {
        let dataset = build(Task::Mnist2, &TaskConfig::small(1));
        let sweep = SweepConfig {
            t_factors: vec![],
            ..SweepConfig::default()
        };
        let _ = select_hyperparameters(
            QnnConfig::standard(16, 2, 1, 1),
            &dataset,
            &presets::santiago(),
            &sweep,
        );
    }
}
