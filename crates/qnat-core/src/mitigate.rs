//! Error mitigation: zero-noise extrapolation and readout-confusion
//! inversion.
//!
//! Two families of inference-time mitigation live here:
//!
//! * **The paper's Table-4 std extrapolation.** QuantumNAT is orthogonal
//!   to classic error mitigation: the paper combines post-measurement
//!   normalization with an extrapolation step that estimates the
//!   *noise-free standard deviation* of each qubit's outcomes. The
//!   trained block's layers are repeated (3 → 6 → 9 → 12 layers — each
//!   repetition multiplies the noise while leaving the ideal
//!   distribution's spread comparable), the per-qubit std is measured at
//!   each depth, and a linear fit is extrapolated back to depth 0.
//!   Outcomes are then rescaled so their std matches the extrapolated
//!   noise-free value before the usual normalization.
//!
//! * **ZNE + readout inversion for served sweeps.** The gate-folding
//!   workload (`qnat-compiler::folding`, `qnat-serve::mitigate`) runs the
//!   same circuit at odd noise scales 1×/3×/5× and extrapolates each
//!   qubit's *expectation value* back to scale 0
//!   ([`extrapolate_expectation`], linear or Richardson), optionally
//!   after inverting the per-qubit readout confusion matrix
//!   ([`unconfuse_expectation`], [`unconfuse_distribution`]).
//!
//! Everything here returns a typed [`MitigateError`] on degenerate input
//! — no `assert!` on the public API, per the repo's no-panic library
//! convention (PR 1).

use qnat_sim::measure::Confusion;
use std::error::Error;
use std::fmt;

/// Confusion matrices with `|det|` below this are rejected as
/// near-singular by the inversion routines. For a row-stochastic 2×2
/// matrix `det = m00 + m11 − 1`, so a symmetric flip probability of
/// `p ≈ 0.5` (readout indistinguishable from a coin toss) sits at
/// `det ≈ 0` and inverting it would amplify noise by `1/det → ∞`.
pub const MIN_CONFUSION_DET: f64 = 1e-6;

/// Typed failure of a mitigation computation.
#[derive(Debug, Clone, PartialEq)]
pub enum MitigateError {
    /// Fewer than two (scale, observation) points were provided; nothing
    /// can be extrapolated.
    NotEnoughPoints {
        /// How many points arrived.
        points: usize,
    },
    /// `xs` and `ys` (or scales and observation rows) differ in length.
    ShapeMismatch {
        /// Number of x/scale entries.
        xs: usize,
        /// Number of y/observation entries.
        ys: usize,
    },
    /// Observation row `index` has a different width than row 0 — the
    /// per-qubit layout is ragged.
    RaggedRow {
        /// Which row is inconsistent.
        index: usize,
        /// Width of row 0.
        expected: usize,
        /// Width of the offending row.
        got: usize,
    },
    /// The fit's x-values are (near-)constant: the normal-equation
    /// denominator `n·Σx² − (Σx)²` is below 1e-12, so no slope exists.
    DegenerateFit {
        /// The offending denominator.
        denom: f64,
    },
    /// A value that must be finite (an observation or scale) was NaN or
    /// infinite.
    NonFinite {
        /// Which input was non-finite.
        what: &'static str,
    },
    /// A readout confusion matrix is too close to singular to invert
    /// (see [`MIN_CONFUSION_DET`]).
    SingularConfusion {
        /// The matrix determinant.
        det: f64,
    },
}

impl fmt::Display for MitigateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MitigateError::NotEnoughPoints { points } => {
                write!(f, "need at least two points to extrapolate, got {points}")
            }
            MitigateError::ShapeMismatch { xs, ys } => {
                write!(f, "shape mismatch: {xs} x-values vs {ys} observations")
            }
            MitigateError::RaggedRow {
                index,
                expected,
                got,
            } => write!(
                f,
                "ragged observations: row {index} has {got} qubits, row 0 has {expected}"
            ),
            MitigateError::DegenerateFit { denom } => {
                write!(f, "degenerate fit: near-constant x-values (denom {denom:.3e})")
            }
            MitigateError::NonFinite { what } => write!(f, "non-finite {what}"),
            MitigateError::SingularConfusion { det } => write!(
                f,
                "confusion matrix is near-singular (|det| {:.3e} < {MIN_CONFUSION_DET:.0e}); \
                 readout carries no invertible signal",
                det.abs()
            ),
        }
    }
}

impl Error for MitigateError {}

/// Validates that every value in `vals` is finite.
fn check_finite(vals: &[f64], what: &'static str) -> Result<(), MitigateError> {
    if vals.iter().any(|v| !v.is_finite()) {
        return Err(MitigateError::NonFinite { what });
    }
    Ok(())
}

/// Validates the `(scales, rows)` layout shared by [`extrapolate_std`]
/// and [`extrapolate_expectations`]; returns the per-qubit width.
fn check_rows(scales: &[f64], rows: &[Vec<f64>]) -> Result<usize, MitigateError> {
    if scales.len() != rows.len() {
        return Err(MitigateError::ShapeMismatch {
            xs: scales.len(),
            ys: rows.len(),
        });
    }
    if scales.len() < 2 {
        return Err(MitigateError::NotEnoughPoints {
            points: scales.len(),
        });
    }
    check_finite(scales, "noise scale")?;
    let n_q = rows[0].len();
    for (k, row) in rows.iter().enumerate() {
        if row.len() != n_q {
            return Err(MitigateError::RaggedRow {
                index: k,
                expected: n_q,
                got: row.len(),
            });
        }
        check_finite(row, "observation")?;
    }
    Ok(n_q)
}

/// Least-squares linear fit `y ≈ a·x + b`; returns `(a, b)`.
///
/// # Errors
///
/// [`MitigateError::NotEnoughPoints`] with fewer than two points,
/// [`MitigateError::ShapeMismatch`] on length disagreement,
/// [`MitigateError::NonFinite`] on NaN/∞ input, and
/// [`MitigateError::DegenerateFit`] when the x-values are near-constant.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Result<(f64, f64), MitigateError> {
    if xs.len() != ys.len() {
        return Err(MitigateError::ShapeMismatch {
            xs: xs.len(),
            ys: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(MitigateError::NotEnoughPoints { points: xs.len() });
    }
    check_finite(xs, "x-value")?;
    check_finite(ys, "y-value")?;
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() <= 1e-12 {
        return Err(MitigateError::DegenerateFit { denom });
    }
    let a = (n * sxy - sx * sy) / denom;
    let b = (sy - a * sx) / n;
    Ok((a, b))
}

/// Per-qubit standard deviations of a batch of outcomes.
pub fn batch_std(outputs: &[Vec<f64>]) -> Vec<f64> {
    let stats = crate::normalize::NormStats::from_batch(outputs);
    stats.std
}

/// Extrapolates per-qubit noise-free stds from measurements at several
/// noise scales.
///
/// `scales[k]` is the noise multiplier of measurement set `k` (e.g. layer
/// repetitions 1, 2, 3, 4) and `stds[k]` the per-qubit std observed there.
/// Returns the linear extrapolation to scale 0.
///
/// A steeply-shrinking std can extrapolate to a *negative* intercept —
/// non-physical, and feeding it to [`rescale_to_std`] would invert the
/// sign of every outcome (the old code clamped it to `1e-6`, which made
/// the subsequent rescale silently *amplify* by ~10⁶ instead). Such a
/// qubit now falls back to its smallest **observed** std — the least
/// noise-inflated measurement actually in hand — which biases that qubit
/// conservatively toward "no extrapolation gain" rather than exploding.
///
/// # Errors
///
/// [`MitigateError::NotEnoughPoints`] with fewer than two scales,
/// [`MitigateError::ShapeMismatch`]/[`MitigateError::RaggedRow`] on
/// inconsistent shapes, [`MitigateError::NonFinite`] on NaN/∞ input,
/// and [`MitigateError::DegenerateFit`] when the scales are
/// near-constant.
pub fn extrapolate_std(scales: &[f64], stds: &[Vec<f64>]) -> Result<Vec<f64>, MitigateError> {
    let n_q = check_rows(scales, stds)?;
    (0..n_q)
        .map(|q| {
            let ys: Vec<f64> = stds.iter().map(|s| s[q]).collect();
            let (_a, b) = linear_fit(scales, &ys)?;
            if b > 0.0 {
                Ok(b)
            } else {
                // Non-physical intercept: fall back to the smallest
                // observed std (see the doc comment above).
                Ok(ys.iter().copied().fold(f64::INFINITY, f64::min))
            }
        })
        .collect()
}

/// How a zero-noise extrapolation fits the per-scale expectations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZneMethod {
    /// Least-squares linear fit over all scales; the intercept at scale 0
    /// is the mitigated value. Robust to shot noise, first-order only.
    Linear,
    /// Richardson extrapolation: the degree-(k−1) Lagrange interpolant
    /// through all k `(scale, value)` points, evaluated at scale 0.
    /// Cancels noise terms up to order k−1 but amplifies shot noise — the
    /// classic ZNE trade-off.
    Richardson,
}

impl ZneMethod {
    /// Canonical lowercase name (`"linear"` / `"richardson"`), the wire
    /// encoding.
    pub fn name(self) -> &'static str {
        match self {
            ZneMethod::Linear => "linear",
            ZneMethod::Richardson => "richardson",
        }
    }

    /// Parses [`ZneMethod::name`] output.
    pub fn from_name(name: &str) -> Option<ZneMethod> {
        match name {
            "linear" => Some(ZneMethod::Linear),
            "richardson" => Some(ZneMethod::Richardson),
            _ => None,
        }
    }
}

/// Extrapolates one observable's expectation values at noise scales
/// `scales` back to the zero-noise limit.
///
/// The returned value is **not** clamped to `[-1, 1]`: Richardson
/// extrapolation legitimately overshoots under shot noise, and callers
/// aggregating full sweeps decide how to project back to the physical
/// range (see `qnat-serve::mitigate`).
///
/// # Errors
///
/// Shape/finiteness errors as in [`linear_fit`];
/// [`MitigateError::DegenerateFit`] when two scales (nearly) coincide,
/// which would divide by ~0 in the Lagrange weights.
pub fn extrapolate_expectation(
    scales: &[f64],
    ys: &[f64],
    method: ZneMethod,
) -> Result<f64, MitigateError> {
    match method {
        ZneMethod::Linear => linear_fit(scales, ys).map(|(_a, b)| b),
        ZneMethod::Richardson => {
            if scales.len() != ys.len() {
                return Err(MitigateError::ShapeMismatch {
                    xs: scales.len(),
                    ys: ys.len(),
                });
            }
            if scales.len() < 2 {
                return Err(MitigateError::NotEnoughPoints { points: scales.len() });
            }
            check_finite(scales, "noise scale")?;
            check_finite(ys, "expectation")?;
            // Lagrange interpolation evaluated at x = 0:
            //   f(0) = Σ_k y_k · Π_{j≠k} x_j / (x_j − x_k).
            let mut acc = 0.0;
            for (k, &yk) in ys.iter().enumerate() {
                let mut w = 1.0;
                for (j, &xj) in scales.iter().enumerate() {
                    if j == k {
                        continue;
                    }
                    let d = xj - scales[k];
                    if d.abs() <= 1e-9 {
                        return Err(MitigateError::DegenerateFit { denom: d });
                    }
                    w *= xj / d;
                }
                acc += yk * w;
            }
            Ok(acc)
        }
    }
}

/// Extrapolates every qubit's expectation to zero noise:
/// `values[k][q]` is qubit `q`'s expectation at `scales[k]`.
///
/// # Errors
///
/// As in [`extrapolate_expectation`], plus
/// [`MitigateError::RaggedRow`] when rows disagree on qubit count.
pub fn extrapolate_expectations(
    scales: &[f64],
    values: &[Vec<f64>],
    method: ZneMethod,
) -> Result<Vec<f64>, MitigateError> {
    let n_q = check_rows(scales, values)?;
    (0..n_q)
        .map(|q| {
            let ys: Vec<f64> = values.iter().map(|v| v[q]).collect();
            extrapolate_expectation(scales, &ys, method)
        })
        .collect()
}

/// Rescales a batch so each qubit's std equals `target_std` (keeping the
/// mean), then applies standard post-measurement normalization. This is the
/// "Normalization + Extrapolation" arm of Table 4.
pub fn rescale_to_std(outputs: &mut [Vec<f64>], target_std: &[f64]) {
    let stats = crate::normalize::NormStats::from_batch(outputs);
    for row in outputs.iter_mut() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = (*v - stats.mean[j]) / stats.std[j] * target_std[j] + stats.mean[j];
        }
    }
}

// ---- readout-confusion inversion --------------------------------------

/// Inverts a per-qubit readout confusion matrix.
///
/// The inverse generally has negative entries — applying it produces
/// *quasi*-probabilities that downstream code must project back to the
/// simplex (see [`unconfuse_distribution`]).
///
/// # Errors
///
/// [`MitigateError::SingularConfusion`] when `|det|` is below
/// [`MIN_CONFUSION_DET`] (e.g. a symmetric flip `p ≈ 0.5`), and
/// [`MitigateError::NonFinite`] on NaN/∞ entries.
pub fn invert_confusion(m: &Confusion) -> Result<Confusion, MitigateError> {
    check_finite(&[m[0][0], m[0][1], m[1][0], m[1][1]], "confusion entry")?;
    let det = m[0][0] * m[1][1] - m[0][1] * m[1][0];
    if det.abs() < MIN_CONFUSION_DET {
        return Err(MitigateError::SingularConfusion { det });
    }
    Ok([
        [m[1][1] / det, -m[0][1] / det],
        [-m[1][0] / det, m[0][0] / det],
    ])
}

/// Inverts the readout confusion on a single qubit's observed Z
/// expectation.
///
/// For a row-stochastic confusion the observed expectation is the affine
/// map `z_obs = det(M)·z + (m00 − m11)` (the γ·y + β of the paper's
/// Theorem 3.1 restricted to readout noise — see
/// [`qnat_sim::measure::confuse_expectation`]). Inverting solves for `z`
/// and clamps to `[-1, 1]`: shot noise can push the unconfused value
/// outside the physical range, and the clamp is the 1-qubit simplex
/// projection. **Bias:** clamping is nonlinear, so the estimator is no
/// longer unbiased near `|z| = 1` — it systematically pulls extreme
/// values inward by the clipped overshoot. That is the standard price of
/// a physical estimate; the unclamped value is recoverable as
/// `(z_obs − β)/γ` if an unbiased (but unphysical) reading is needed.
///
/// # Errors
///
/// [`MitigateError::SingularConfusion`] when `|det|` is below
/// [`MIN_CONFUSION_DET`], and [`MitigateError::NonFinite`] on NaN/∞
/// input.
pub fn unconfuse_expectation(z_obs: f64, m: &Confusion) -> Result<f64, MitigateError> {
    check_finite(&[z_obs], "observed expectation")?;
    check_finite(&[m[0][0], m[0][1], m[1][0], m[1][1]], "confusion entry")?;
    let gamma = m[0][0] * m[1][1] - m[0][1] * m[1][0];
    if gamma.abs() < MIN_CONFUSION_DET {
        return Err(MitigateError::SingularConfusion { det: gamma });
    }
    let beta = m[0][0] - m[1][1];
    Ok(((z_obs - beta) / gamma).clamp(-1.0, 1.0))
}

/// Inverts per-qubit readout confusion on every qubit of an expectation
/// vector: `confusions[q]` corrects `zs[q]`.
///
/// # Errors
///
/// [`MitigateError::ShapeMismatch`] when the lengths disagree, otherwise
/// as in [`unconfuse_expectation`].
pub fn unconfuse_expectations(
    zs: &[f64],
    confusions: &[Confusion],
) -> Result<Vec<f64>, MitigateError> {
    if zs.len() != confusions.len() {
        return Err(MitigateError::ShapeMismatch {
            xs: confusions.len(),
            ys: zs.len(),
        });
    }
    zs.iter()
        .zip(confusions)
        .map(|(&z, m)| unconfuse_expectation(z, m))
        .collect()
}

/// Projects a quasi-probability vector back onto the probability simplex
/// (in place): negative entries are clipped to 0 and the rest is
/// renormalized to total mass 1. Returns the clipped mass — a direct
/// observability hook for how non-physical the inversion was (0.0 means
/// the inverse was already a distribution).
///
/// **Bias:** clipping is a projection, not an unbiased correction — mass
/// that the inversion pushed negative is redistributed proportionally
/// over the remaining outcomes. If every entry clips to zero (possible
/// only for pathological quasi-distributions) the result is uniform.
pub fn clamp_to_simplex(probs: &mut [f64]) -> f64 {
    let mut clipped = 0.0;
    for p in probs.iter_mut() {
        if *p < 0.0 {
            clipped -= *p;
            *p = 0.0;
        }
    }
    let total: f64 = probs.iter().sum();
    if total > 0.0 {
        for p in probs.iter_mut() {
            *p /= total;
        }
    } else if !probs.is_empty() {
        let uniform = 1.0 / probs.len() as f64;
        for p in probs.iter_mut() {
            *p = uniform;
        }
    }
    clipped
}

/// Inverts a readout confusion matrix for qubit `q` on a joint
/// distribution over basis states (in place), then projects the result
/// back onto the simplex. Returns the clipped quasi-probability mass
/// (see [`clamp_to_simplex`] for the bias this introduces).
///
/// The forward map ([`qnat_sim::measure::apply_confusion`]) applies
/// `Mᵀ` per qubit; this applies `(M⁻¹)ᵀ` with the same stride walk.
///
/// # Errors
///
/// [`MitigateError::ShapeMismatch`] unless `probs.len()` is a power of
/// two with `q` in range, otherwise as in [`invert_confusion`].
pub fn unconfuse_distribution(
    probs: &mut [f64],
    q: usize,
    m: &Confusion,
) -> Result<f64, MitigateError> {
    if !probs.len().is_power_of_two() || (1usize << q) >= probs.len() {
        return Err(MitigateError::ShapeMismatch {
            xs: probs.len(),
            ys: 1 << q,
        });
    }
    check_finite(probs, "probability")?;
    let inv = invert_confusion(m)?;
    let bit = 1usize << q;
    let n = probs.len();
    let mut base = 0usize;
    while base < n {
        for low in base..base + bit {
            let p0 = probs[low];
            let p1 = probs[low | bit];
            probs[low] = inv[0][0] * p0 + inv[1][0] * p1;
            probs[low | bit] = inv[0][1] * p0 + inv[1][1] * p1;
        }
        base += bit << 1;
    }
    Ok(clamp_to_simplex(probs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnat_sim::measure::{apply_confusion, confuse_expectation};

    #[test]
    fn linear_fit_exact_line() {
        let (a, b) = linear_fit(&[1.0, 2.0, 3.0], &[3.0, 5.0, 7.0]).expect("fit");
        assert!((a - 2.0).abs() < 1e-12);
        assert!((b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_typed_errors() {
        assert_eq!(
            linear_fit(&[1.0], &[2.0]),
            Err(MitigateError::NotEnoughPoints { points: 1 })
        );
        assert_eq!(
            linear_fit(&[1.0, 2.0], &[2.0]),
            Err(MitigateError::ShapeMismatch { xs: 2, ys: 1 })
        );
        assert!(matches!(
            linear_fit(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]),
            Err(MitigateError::DegenerateFit { .. })
        ));
        assert_eq!(
            linear_fit(&[1.0, f64::NAN], &[1.0, 2.0]),
            Err(MitigateError::NonFinite { what: "x-value" })
        );
    }

    #[test]
    fn extrapolation_recovers_zero_noise_intercept() {
        // std shrinks linearly with noise scale: std = 1.0 − 0.1·scale.
        let scales = [1.0, 2.0, 3.0, 4.0];
        let stds: Vec<Vec<f64>> = scales
            .iter()
            .map(|&s| vec![1.0 - 0.1 * s, 0.8 - 0.05 * s])
            .collect();
        let zero = extrapolate_std(&scales, &stds).expect("extrapolate");
        assert!((zero[0] - 1.0).abs() < 1e-10);
        assert!((zero[1] - 0.8).abs() < 1e-10);
    }

    #[test]
    fn single_scale_rejected_with_typed_error() {
        assert_eq!(
            extrapolate_std(&[1.0], &[vec![0.5]]),
            Err(MitigateError::NotEnoughPoints { points: 1 })
        );
    }

    #[test]
    fn ragged_rows_rejected() {
        assert_eq!(
            extrapolate_std(&[1.0, 2.0], &[vec![0.5, 0.4], vec![0.3]]),
            Err(MitigateError::RaggedRow {
                index: 1,
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            extrapolate_std(&[1.0, 2.0, 3.0], &[vec![0.5], vec![0.4]]),
            Err(MitigateError::ShapeMismatch { xs: 3, ys: 2 })
        );
    }

    /// Regression for the silent-clamp bug: a steep negative slope used
    /// to extrapolate to a tiny positive clamp (1e-6), and the follow-up
    /// rescale would *amplify* outcomes by ~std/1e-6 ≈ 10⁶. The intercept
    /// here is 0.55 − 0.5·0 computed through scales 1..4 with std
    /// 0.55 − 0.5·s → negative from scale 2 on; the fallback must return
    /// the smallest observed std instead of a microscopic clamp.
    #[test]
    fn steep_negative_slope_falls_back_to_min_observed_std() {
        let scales: [f64; 4] = [1.0, 2.0, 3.0, 4.0];
        let stds: Vec<Vec<f64>> = scales
            .iter()
            .map(|&s| vec![(0.55 - 0.5 * s).abs().max(1e-3)])
            .collect();
        // Sanity: the raw linear intercept really is negative.
        let ys: Vec<f64> = stds.iter().map(|s| s[0]).collect();
        let (_a, b) = linear_fit(&scales, &ys).expect("fit");
        assert!(b < 0.0, "test premise: intercept must be negative, got {b}");
        let zero = extrapolate_std(&scales, &stds).expect("extrapolate");
        let min_observed = ys.iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(zero[0], min_observed);
        assert!(zero[0] > 1e-4, "fallback must not be a microscopic clamp");
    }

    #[test]
    fn rescale_changes_std_not_mean() {
        let mut batch = vec![
            vec![0.1, 0.5],
            vec![0.3, 0.1],
            vec![-0.2, 0.9],
            vec![0.6, -0.3],
        ];
        let before = crate::normalize::NormStats::from_batch(&batch);
        rescale_to_std(&mut batch, &[1.0, 2.0]);
        let after = crate::normalize::NormStats::from_batch(&batch);
        for j in 0..2 {
            assert!((after.mean[j] - before.mean[j]).abs() < 1e-10);
        }
        assert!((after.std[0] - 1.0).abs() < 1e-6);
        assert!((after.std[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn richardson_is_exact_on_polynomials() {
        // y = 0.7 − 0.2x + 0.05x²: three points determine it exactly, so
        // Richardson recovers the intercept 0.7 while linear does not.
        let f = |x: f64| 0.7 - 0.2 * x + 0.05 * x * x;
        let scales = [1.0, 3.0, 5.0];
        let ys: Vec<f64> = scales.iter().map(|&s| f(s)).collect();
        let r = extrapolate_expectation(&scales, &ys, ZneMethod::Richardson).expect("zne");
        assert!((r - 0.7).abs() < 1e-12, "richardson missed: {r}");
        let l = extrapolate_expectation(&scales, &ys, ZneMethod::Linear).expect("zne");
        assert!((l - 0.7).abs() > 1e-3, "linear should under-correct the quadratic");
    }

    #[test]
    fn richardson_rejects_coincident_scales() {
        assert!(matches!(
            extrapolate_expectation(&[1.0, 1.0 + 1e-12], &[0.5, 0.4], ZneMethod::Richardson),
            Err(MitigateError::DegenerateFit { .. })
        ));
    }

    #[test]
    fn extrapolate_expectations_per_qubit() {
        let scales = [1.0, 3.0, 5.0];
        let values: Vec<Vec<f64>> = scales
            .iter()
            .map(|&s| vec![0.9 - 0.1 * s, -0.4 + 0.05 * s])
            .collect();
        let z = extrapolate_expectations(&scales, &values, ZneMethod::Linear).expect("zne");
        assert!((z[0] - 0.9).abs() < 1e-10);
        assert!((z[1] + 0.4).abs() < 1e-10);
    }

    #[test]
    fn confusion_inversion_round_trips() {
        let m: Confusion = [[0.984, 0.016], [0.022, 0.978]];
        for z in [-0.9, -0.3, 0.0, 0.4, 0.85] {
            let observed = confuse_expectation(z, &m);
            let recovered = unconfuse_expectation(observed, &m).expect("invert");
            assert!((recovered - z).abs() < 1e-12, "z={z} → {recovered}");
        }
    }

    #[test]
    fn distribution_inversion_round_trips() {
        let m: Confusion = [[0.95, 0.05], [0.08, 0.92]];
        let ideal = vec![0.05, 0.15, 0.35, 0.45];
        let mut p = ideal.clone();
        apply_confusion(&mut p, 0, &m);
        apply_confusion(&mut p, 1, &m);
        let c1 = unconfuse_distribution(&mut p, 1, &m).expect("invert q1");
        let c0 = unconfuse_distribution(&mut p, 0, &m).expect("invert q0");
        assert_eq!((c0, c1), (0.0, 0.0), "exact inverse clips nothing");
        for (a, b) in p.iter().zip(&ideal) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn near_singular_confusion_rejected_not_nan() {
        // Symmetric flip p = 0.5: readout is a coin toss, det = 0.
        let coin: Confusion = [[0.5, 0.5], [0.5, 0.5]];
        assert!(matches!(
            invert_confusion(&coin),
            Err(MitigateError::SingularConfusion { .. })
        ));
        assert!(matches!(
            unconfuse_expectation(0.2, &coin),
            Err(MitigateError::SingularConfusion { .. })
        ));
        let mut p = vec![0.5, 0.5];
        assert!(matches!(
            unconfuse_distribution(&mut p, 0, &coin),
            Err(MitigateError::SingularConfusion { .. })
        ));
        // Just above the threshold still inverts to finite values.
        let near: Confusion = [[0.51, 0.49], [0.49, 0.51]];
        let inv = invert_confusion(&near).expect("invertible");
        assert!(inv.iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn quasi_probabilities_are_clamped_to_simplex() {
        // Shot noise pushes an observed distribution outside the image of
        // the confusion map; the inverse then has a negative entry.
        let m: Confusion = [[0.9, 0.1], [0.2, 0.8]];
        let mut p = vec![0.05, 0.95]; // more |1⟩ than the map can produce from a simplex point
        let clipped = unconfuse_distribution(&mut p, 0, &m).expect("invert");
        assert!(clipped > 0.0, "this case must clip");
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clamped_expectation_stays_physical() {
        let m: Confusion = [[0.9, 0.1], [0.2, 0.8]];
        // γ = 0.7, β = 0.1: z_obs = 0.95 would invert to ≈ 1.21.
        let z = unconfuse_expectation(0.95, &m).expect("invert");
        assert_eq!(z, 1.0);
    }
}
