//! Zero-noise extrapolation of measurement-outcome statistics (Table 4).
//!
//! QuantumNAT is orthogonal to classic error mitigation: the paper combines
//! post-measurement normalization with an extrapolation step that estimates
//! the *noise-free standard deviation* of each qubit's outcomes. The
//! trained block's layers are repeated (3 → 6 → 9 → 12 layers — each
//! repetition multiplies the noise while leaving the ideal distribution's
//! spread comparable), the per-qubit std is measured at each depth, and a
//! linear fit is extrapolated back to depth 0. Outcomes are then rescaled
//! so their std matches the extrapolated noise-free value before the usual
//! normalization.

/// Least-squares linear fit `y ≈ a·x + b`; returns `(a, b)`.
///
/// # Panics
///
/// Panics with fewer than two points.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert!(xs.len() >= 2 && xs.len() == ys.len(), "need ≥ 2 points");
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "degenerate fit");
    let a = (n * sxy - sx * sy) / denom;
    let b = (sy - a * sx) / n;
    (a, b)
}

/// Per-qubit standard deviations of a batch of outcomes.
pub fn batch_std(outputs: &[Vec<f64>]) -> Vec<f64> {
    let stats = crate::normalize::NormStats::from_batch(outputs);
    stats.std
}

/// Extrapolates per-qubit noise-free stds from measurements at several
/// noise scales.
///
/// `scales[k]` is the noise multiplier of measurement set `k` (e.g. layer
/// repetitions 1, 2, 3, 4) and `stds[k]` the per-qubit std observed there.
/// Returns the linear extrapolation to scale 0.
///
/// # Panics
///
/// Panics if fewer than two scales are provided or shapes are ragged.
pub fn extrapolate_std(scales: &[f64], stds: &[Vec<f64>]) -> Vec<f64> {
    assert_eq!(scales.len(), stds.len(), "one std vector per scale");
    assert!(scales.len() >= 2, "need at least two noise scales");
    let n_q = stds[0].len();
    (0..n_q)
        .map(|q| {
            let ys: Vec<f64> = stds.iter().map(|s| s[q]).collect();
            let (_a, b) = linear_fit(scales, &ys);
            b.max(1e-6)
        })
        .collect()
}

/// Rescales a batch so each qubit's std equals `target_std` (keeping the
/// mean), then applies standard post-measurement normalization. This is the
/// "Normalization + Extrapolation" arm of Table 4.
pub fn rescale_to_std(outputs: &mut [Vec<f64>], target_std: &[f64]) {
    let stats = crate::normalize::NormStats::from_batch(outputs);
    for row in outputs.iter_mut() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = (*v - stats.mean[j]) / stats.std[j] * target_std[j] + stats.mean[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_exact_line() {
        let (a, b) = linear_fit(&[1.0, 2.0, 3.0], &[3.0, 5.0, 7.0]);
        assert!((a - 2.0).abs() < 1e-12);
        assert!((b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extrapolation_recovers_zero_noise_intercept() {
        // std shrinks linearly with noise scale: std = 1.0 − 0.1·scale.
        let scales = [1.0, 2.0, 3.0, 4.0];
        let stds: Vec<Vec<f64>> = scales
            .iter()
            .map(|&s| vec![1.0 - 0.1 * s, 0.8 - 0.05 * s])
            .collect();
        let zero = extrapolate_std(&scales, &stds);
        assert!((zero[0] - 1.0).abs() < 1e-10);
        assert!((zero[1] - 0.8).abs() < 1e-10);
    }

    #[test]
    fn rescale_changes_std_not_mean() {
        let mut batch = vec![
            vec![0.1, 0.5],
            vec![0.3, 0.1],
            vec![-0.2, 0.9],
            vec![0.6, -0.3],
        ];
        let before = crate::normalize::NormStats::from_batch(&batch);
        rescale_to_std(&mut batch, &[1.0, 2.0]);
        let after = crate::normalize::NormStats::from_batch(&batch);
        for j in 0..2 {
            assert!((after.mean[j] - before.mean[j]).abs() < 1e-10);
        }
        assert!((after.std[0] - 1.0).abs() < 1e-6);
        assert!((after.std[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "need at least two noise scales")]
    fn single_scale_rejected() {
        extrapolate_std(&[1.0], &[vec![0.5]]);
    }
}
