//! Compiled-circuit cache: memoizes the transpile + lowering front half of
//! deployment per `(block circuit, device calibration, transpile level)`.
//!
//! Repeated served inference — the QuantumNAT workload — re-deploys the
//! same §4.2 QNN blocks against the same device over and over; routing,
//! noise-adaptive layout and symbolic lowering dominate that setup cost.
//! A [`PlanCache`] keyed on content fingerprints lets every deployment
//! after the first skip the compiler entirely.
//!
//! ## Keying and invalidation
//!
//! * **Circuit**: [`Circuit::fingerprint`](qnat_sim::circuit::Circuit::fingerprint)
//!   of the block's *logical* template — register size, gate kinds, qubit
//!   targets and exact parameter bits. Trainable parameters are rebound
//!   per row through [`SymbolicLowered::bind`], so a cached plan is valid
//!   for any binding of the same template.
//! * **Device**: [`DeviceModel::fingerprint`](qnat_noise::device::DeviceModel::fingerprint)
//!   over the full calibration JSON. Any drift, rescale or recalibration
//!   changes the fingerprint, which is exactly the invalidation rule the
//!   noise-adaptive layout (transpile level 3) needs: a layout chosen for
//!   stale calibration can never be served against fresh calibration.
//! * **Level**: the transpile optimization level, since levels produce
//!   different routings.
//!
//! Cache hits return the *same* [`BlockPlan`] (shared `Arc`), so a hit can
//! never change results — replay determinism is preserved by construction.
//!
//! [`SymbolicLowered::bind`]: qnat_compiler::symbolic::SymbolicLowered::bind

use crate::infer::BlockPlan;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache key: content fingerprints of everything the compiled plan
/// depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Fingerprint of the logical block circuit (structure + param bits).
    pub circuit: u64,
    /// Fingerprint of the device calibration state.
    pub device: u64,
    /// Transpile optimization level.
    pub opt_level: u8,
}

/// Hit/miss counters of a [`PlanCache`], taken atomically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Plans currently cached.
    pub entries: usize,
}

/// A thread-safe memo table from [`PlanKey`] to compiled [`BlockPlan`]s.
///
/// Intended to be shared (`Arc<PlanCache>`) across serving deployments and
/// fleet devices; compilation runs outside the lock so concurrent misses
/// never serialize behind each other.
#[derive(Debug, Default)]
pub struct PlanCache {
    map: Mutex<HashMap<PlanKey, Arc<BlockPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Looks up `key`, compiling with `build` on a miss.
    ///
    /// `build` runs *outside* the lock; if two threads miss the same key
    /// concurrently both compile, and the first insert wins — harmless,
    /// because compilation is deterministic (equal keys ⇒ equal plans).
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error on a miss; nothing is cached then.
    pub fn get_or_insert_with<E>(
        &self,
        key: PlanKey,
        build: impl FnOnce() -> Result<BlockPlan, E>,
    ) -> Result<Arc<BlockPlan>, E> {
        if let Some(plan) = self.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(plan));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(build()?);
        let mut map = self.lock();
        let entry = map.entry(key).or_insert_with(|| Arc::clone(&plan));
        Ok(Arc::clone(entry))
    }

    /// Snapshot of the hit/miss counters and entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.lock().len(),
        }
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compile so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Drops every cached plan (counters keep running).
    pub fn clear(&self) {
        self.lock().clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<PlanKey, Arc<BlockPlan>>> {
        // Plans are write-once values; a panic while holding the lock
        // cannot leave one half-updated, so a poisoned lock is still safe
        // to read through.
        match self.map.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Qnn, QnnConfig};
    use qnat_noise::presets;

    #[test]
    fn hit_returns_the_same_arc() {
        let qnn = Qnn::new(QnnConfig::standard(16, 4, 1, 2), 3);
        let device = presets::santiago();
        let cache = PlanCache::new();
        let a = qnn.route_plan_cached(&device, 2, &cache).unwrap();
        let before = cache.stats();
        assert_eq!(before.hits, 0);
        assert_eq!(before.misses as usize, qnn.blocks().len());
        let b = qnn.route_plan_cached(&device, 2, &cache).unwrap();
        let after = cache.stats();
        assert_eq!(after.hits as usize, qnn.blocks().len());
        assert_eq!(after.misses, before.misses);
        // Identical plans — and bitwise identical outputs follow.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.obs, y.obs);
            assert_eq!(x.lowered.circuit, y.lowered.circuit);
        }
    }

    #[test]
    fn cached_plans_match_uncached_route_plan() {
        let qnn = Qnn::new(QnnConfig::standard(16, 4, 2, 2), 7);
        let device = presets::yorktown();
        let cache = PlanCache::new();
        for level in [0u8, 2, 3] {
            let cached = qnn.route_plan_cached(&device, level, &cache).unwrap();
            let plain = qnn.route_plan(&device, level).unwrap();
            assert_eq!(cached.len(), plain.len());
            for (c, p) in cached.iter().zip(&plain) {
                assert_eq!(c.lowered.circuit, p.lowered.circuit);
                assert_eq!(c.obs, p.obs);
                assert_eq!(c.view.to_json(), p.view.to_json());
            }
        }
    }

    #[test]
    fn drifted_device_invalidates_plans() {
        let qnn = Qnn::new(QnnConfig::standard(16, 4, 1, 2), 3);
        let device = presets::santiago();
        let cache = PlanCache::new();
        qnn.route_plan_cached(&device, 3, &cache).unwrap();
        let misses = cache.misses();
        // Same device again: all hits.
        qnn.route_plan_cached(&device, 3, &cache).unwrap();
        assert_eq!(cache.misses(), misses);
        // Drifted calibration: the level-3 noise-adaptive layout may move,
        // so every block must recompile.
        qnn.route_plan_cached(&device.drifted(2.0, 1.0), 3, &cache).unwrap();
        assert_eq!(cache.misses() as usize, misses as usize + qnn.blocks().len());
        // Different opt level is also a distinct key.
        qnn.route_plan_cached(&device, 1, &cache).unwrap();
        assert_eq!(
            cache.misses() as usize,
            misses as usize + 2 * qnn.blocks().len()
        );
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let qnn = Qnn::new(QnnConfig::standard(16, 4, 1, 2), 3);
        let device = presets::santiago();
        let cache = PlanCache::new();
        qnn.route_plan_cached(&device, 2, &cache).unwrap();
        assert!(!cache.is_empty());
        let misses = cache.misses();
        cache.clear();
        assert!(cache.is_empty());
        qnn.route_plan_cached(&device, 2, &cache).unwrap();
        assert_eq!(cache.misses(), misses + qnn.blocks().len() as u64);
    }
}
