//! Fleet-wide backend health: shared circuit breakers, half-open recovery
//! probes, and deadline budgets.
//!
//! [`crate::executor::ResilientExecutor`] degrades *per executor*: in a
//! [`crate::batch::BatchExecutor`] pool, where every job gets a fresh
//! executor, a dying backend is rediscovered from scratch by every job —
//! each one pays the full retry/backoff tax before giving up. This module
//! is the layer that remembers: a [`CircuitBreaker`] per backend, held in
//! a [`HealthRegistry`] shared across the pool, so the first few failures
//! trip the breaker for the whole fleet and later jobs skip straight to
//! the fallback.
//!
//! ## State machine
//!
//! ```text
//!             failure rate ≥ threshold
//!             over the sliding window
//!   Closed ─────────────────────────────▶ Open
//!     ▲                                    │ cooldown_jobs
//!     │ a probe                            │ short-circuited
//!     │ succeeds                           ▼
//!     └────────────────────────────── HalfOpen
//!          ▲                               │
//!          └── any probe fails: reopen ◀───┘
//!              (full cooldown again)   probe_budget jobs try the
//!                                      primary, the rest short-circuit
//! ```
//!
//! ## Determinism contract
//!
//! Breaker decisions are driven *only* at epoch boundaries: the batch is
//! processed in chunks of [`BreakerPolicy::decision_interval`] jobs, the
//! breaker plans every admission of an epoch up front
//! ([`CircuitBreaker::plan_epoch`]), the pool runs the epoch, and the
//! outcomes are observed in job-index order
//! ([`CircuitBreaker::observe`]). Workers never touch the breaker, so
//! breaker-enabled batches remain **bitwise invariant in the worker
//! count** — the same contract the plain batch path offers, pinned by
//! `qnat-core/tests/health_e2e.rs`. The price is reaction latency: a
//! failure burst inside an epoch trips the breaker for the *next* epoch,
//! not mid-epoch.
//!
//! Two configurations relax the contract (documented, not accidental):
//! sharing one [`HealthRegistry`] across concurrently-running deployments
//! interleaves their epoch observations nondeterministically, and a
//! batch-wide [`DeadlinePolicy::Batch`] budget is consumed in completion
//! order, so *which* jobs exceed the deadline can vary with the worker
//! count even though the total cap always holds. Per-job budgets
//! ([`DeadlinePolicy::PerJob`]) are fully invariant.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub use crate::time::DeadlineSleeper;

/// Circuit-breaker thresholds and cadence.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerPolicy {
    /// Sliding window length (jobs) the failure rate is measured over.
    pub window: usize,
    /// Failure rate in `[0, 1]` that trips the breaker.
    pub failure_threshold: f64,
    /// Observations required in the window before it can trip — guards
    /// against tripping on the first unlucky job.
    pub min_samples: usize,
    /// Short-circuited jobs an open breaker waits before going half-open.
    pub cooldown_jobs: u64,
    /// Jobs per epoch allowed to probe the primary while half-open.
    pub probe_budget: usize,
    /// Epoch length: jobs per plan/observe cycle. Smaller reacts faster;
    /// larger amortizes the epoch barrier better.
    pub decision_interval: usize,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            window: 16,
            failure_threshold: 0.5,
            min_samples: 8,
            cooldown_jobs: 16,
            probe_budget: 2,
            decision_interval: 8,
        }
    }
}

/// Where a breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every job is admitted to the primary.
    Closed,
    /// Tripped: jobs short-circuit until the cooldown is served.
    Open {
        /// Short-circuited jobs left before going half-open.
        cooldown_left: u64,
    },
    /// Testing recovery: up to `probe_budget` jobs per epoch try the
    /// primary, the rest short-circuit.
    HalfOpen,
}

/// The breaker's verdict for one planned job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Run the primary normally (breaker closed).
    Primary,
    /// Run the primary as a recovery probe (breaker half-open).
    Probe,
    /// Skip the primary, serve from the fallback (breaker open).
    ShortCircuit,
}

/// The health signal one finished job feeds back to the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobSignal {
    /// The primary served the job.
    Success,
    /// The primary exhausted its retries (whether or not a fallback then
    /// rescued the job).
    Failure,
    /// The job says nothing about the primary (short-circuited, rejected
    /// in validation, factory failure, or out of deadline budget before
    /// reaching a verdict).
    Neutral,
}

/// A per-backend circuit breaker: sliding-window failure rate over
/// primary outcomes, cooldown while open, bounded half-open probes.
///
/// Drive it in epochs: [`CircuitBreaker::plan_epoch`] before submitting a
/// chunk, one [`CircuitBreaker::observe`] per job *in job-index order*
/// afterwards, then [`CircuitBreaker::end_epoch`]. All methods are pure
/// state-machine transitions — no clocks, no randomness — so a replay of
/// the same signals reproduces the same trips.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    state: BreakerState,
    /// Recent primary outcomes, `true` = failure (ring of ≤ `window`).
    window: std::collections::VecDeque<bool>,
    probe_successes: usize,
    probe_failures: usize,
    trips: u64,
    recoveries: u64,
    short_circuited: u64,
}

impl CircuitBreaker {
    /// A closed breaker under `policy`.
    pub fn new(policy: BreakerPolicy) -> Self {
        CircuitBreaker {
            policy,
            state: BreakerState::Closed,
            window: std::collections::VecDeque::new(),
            probe_successes: 0,
            probe_failures: 0,
            trips: 0,
            recoveries: 0,
            short_circuited: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker tripped open (including re-opens after a failed
    /// probe).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Times a successful probe re-closed the breaker.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Jobs short-circuited past the primary so far.
    pub fn short_circuited(&self) -> u64 {
        self.short_circuited
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open {
            cooldown_left: self.policy.cooldown_jobs,
        };
        self.trips += 1;
        self.window.clear();
        self.probe_successes = 0;
        self.probe_failures = 0;
    }

    /// Plans the admissions of the next `n` jobs. Cooldown is measured in
    /// planned (short-circuited) jobs; when it elapses mid-plan the
    /// breaker goes half-open and starts issuing probes within the same
    /// epoch.
    pub fn plan_epoch(&mut self, n: usize) -> Vec<Admission> {
        let mut admissions = Vec::with_capacity(n);
        let mut probes_issued = 0usize;
        for _ in 0..n {
            let admission = match self.state {
                BreakerState::Closed => Admission::Primary,
                BreakerState::Open { cooldown_left } => {
                    if cooldown_left == 0 {
                        self.state = BreakerState::HalfOpen;
                        self.probe_successes = 0;
                        self.probe_failures = 0;
                        probes_issued = 0;
                        // Re-match as half-open below.
                        if probes_issued < self.policy.probe_budget.max(1) {
                            probes_issued += 1;
                            Admission::Probe
                        } else {
                            Admission::ShortCircuit
                        }
                    } else {
                        self.state = BreakerState::Open {
                            cooldown_left: cooldown_left - 1,
                        };
                        Admission::ShortCircuit
                    }
                }
                BreakerState::HalfOpen => {
                    if probes_issued < self.policy.probe_budget.max(1) {
                        probes_issued += 1;
                        Admission::Probe
                    } else {
                        Admission::ShortCircuit
                    }
                }
            };
            if admission == Admission::ShortCircuit {
                self.short_circuited += 1;
            }
            admissions.push(admission);
        }
        admissions
    }

    /// Feeds back one finished job's outcome. Must be called in job-index
    /// order with the [`Admission`] the job was planned under. A failed
    /// probe re-opens the breaker immediately (full cooldown); closed-state
    /// outcomes update the sliding window and may trip it.
    pub fn observe(&mut self, admission: Admission, signal: JobSignal) {
        match (admission, signal) {
            // A trip earlier in this epoch (a sibling probe failed) voids
            // the remaining probe verdicts — hence the HalfOpen guards.
            (Admission::Probe, JobSignal::Success)
                if self.state == BreakerState::HalfOpen =>
            {
                self.probe_successes += 1;
            }
            (Admission::Probe, JobSignal::Failure)
                if self.state == BreakerState::HalfOpen =>
            {
                self.probe_failures += 1;
                self.trip();
            }
            (Admission::Primary, JobSignal::Success | JobSignal::Failure) => {
                // A trip earlier in this epoch voids the remaining
                // closed-state observations: they were decided under the
                // old plan.
                if self.state != BreakerState::Closed {
                    return;
                }
                self.window.push_back(signal == JobSignal::Failure);
                while self.window.len() > self.policy.window.max(1) {
                    self.window.pop_front();
                }
                if self.window.len() >= self.policy.min_samples.max(1) {
                    let failures = self.window.iter().filter(|&&f| f).count();
                    let rate = failures as f64 / self.window.len() as f64;
                    if rate >= self.policy.failure_threshold {
                        self.trip();
                    }
                }
            }
            _ => {}
        }
    }

    /// Closes out an epoch: a half-open breaker with at least one probe
    /// success and no probe failure re-closes; with no probe verdict at
    /// all it stays half-open and probes again next epoch.
    pub fn end_epoch(&mut self) {
        if self.state == BreakerState::HalfOpen && self.probe_failures == 0 && self.probe_successes > 0
        {
            self.state = BreakerState::Closed;
            self.recoveries += 1;
            self.window.clear();
        }
        self.probe_successes = 0;
        self.probe_failures = 0;
    }
}

/// A point-in-time view of one breaker, for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerSnapshot {
    /// Current state.
    pub state: BreakerState,
    /// Times tripped open.
    pub trips: u64,
    /// Times re-closed by a successful probe.
    pub recoveries: u64,
    /// Jobs short-circuited past the primary.
    pub short_circuited: u64,
}

/// The fleet's shared breaker table, keyed by backend name. One registry
/// per deployment keeps batches deterministic; sharing a registry across
/// concurrently-running deployments pools their health signal at the cost
/// of deterministic trip points (see the module docs).
#[derive(Debug, Default)]
pub struct HealthRegistry {
    breakers: Mutex<HashMap<String, CircuitBreaker>>,
}

impl HealthRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        HealthRegistry::default()
    }

    /// Runs `f` on the breaker registered under `key`, creating it with
    /// `policy` on first use.
    pub fn with_breaker<R>(
        &self,
        key: &str,
        policy: &BreakerPolicy,
        f: impl FnOnce(&mut CircuitBreaker) -> R,
    ) -> R {
        // A poisoned lock means a worker panicked mid-epoch; the breaker
        // state is still a valid state machine, so keep serving it.
        let mut map = self.breakers.lock().unwrap_or_else(|p| p.into_inner());
        let breaker = map
            .entry(key.to_string())
            .or_insert_with(|| CircuitBreaker::new(policy.clone()));
        f(breaker)
    }

    /// Snapshot of the breaker under `key`, if one has been created.
    pub fn snapshot(&self, key: &str) -> Option<BreakerSnapshot> {
        let map = self.breakers.lock().unwrap_or_else(|p| p.into_inner());
        map.get(key).map(|b| BreakerSnapshot {
            state: b.state(),
            trips: b.trips(),
            recoveries: b.recoveries(),
            short_circuited: b.short_circuited(),
        })
    }

    /// Keys of every breaker created so far, sorted.
    pub fn keys(&self) -> Vec<String> {
        let map = self.breakers.lock().unwrap_or_else(|p| p.into_inner());
        let mut keys: Vec<String> = map.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// A point-in-time view of *every* breaker, sorted by key, taken under
    /// one lock acquisition — the consistent fleet-wide view a router
    /// scores against and `/healthz` reports.
    pub fn snapshots(&self) -> Vec<(String, BreakerSnapshot)> {
        let map = self.breakers.lock().unwrap_or_else(|p| p.into_inner());
        let mut all: Vec<(String, BreakerSnapshot)> = map
            .iter()
            .map(|(k, b)| {
                (
                    k.clone(),
                    BreakerSnapshot {
                        state: b.state(),
                        trips: b.trips(),
                        recoveries: b.recoveries(),
                        short_circuited: b.short_circuited(),
                    },
                )
            })
            .collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Serves one idle cooldown epoch on `key`'s breaker when it is not
    /// closed, and reports the state afterwards (`None` if no breaker
    /// exists under `key`).
    ///
    /// Cooldown is measured in *planned* jobs, so a breaker that receives
    /// zero traffic — e.g. a quarantined fleet device the router stopped
    /// selecting — would otherwise stay open forever. Callers with an
    /// event stream of their own (a router routing jobs elsewhere) tick
    /// starved breakers once per event: a single planned-and-closed epoch
    /// of one job, mirroring the serving layer's epochs-of-one cadence.
    /// Closed breakers are left untouched, and a half-open breaker's
    /// unclaimed probe admission is harmless — with no verdict it simply
    /// stays half-open until real traffic probes it.
    pub fn tick_idle(&self, key: &str) -> Option<BreakerState> {
        let mut map = self.breakers.lock().unwrap_or_else(|p| p.into_inner());
        let breaker = map.get_mut(key)?;
        if breaker.state() == BreakerState::Closed {
            return Some(BreakerState::Closed);
        }
        let _ = breaker.plan_epoch(1);
        breaker.end_epoch();
        Some(breaker.state())
    }
}

/// Wall-clock deadline for batch execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlinePolicy {
    /// Every job gets its own backoff budget of this many milliseconds —
    /// fully worker-count invariant.
    PerJob(u64),
    /// The whole batch shares one backoff budget, consumed in completion
    /// order. The cap always holds, but *which* jobs run out of budget
    /// can vary with the worker count (see the module docs).
    Batch(u64),
}

/// A shareable, thread-safe backoff budget in milliseconds.
#[derive(Debug, Clone)]
pub struct DeadlineBudget {
    remaining_ms: Arc<AtomicU64>,
}

impl DeadlineBudget {
    /// A budget of `ms` milliseconds.
    pub fn new(ms: u64) -> Self {
        DeadlineBudget {
            remaining_ms: Arc::new(AtomicU64::new(ms)),
        }
    }

    /// Milliseconds left.
    pub fn remaining_ms(&self) -> u64 {
        self.remaining_ms.load(Ordering::Relaxed)
    }

    /// Atomically takes `ms` from the budget; `false` (taking nothing) if
    /// less than `ms` remains.
    pub fn try_consume(&self, ms: u64) -> bool {
        self.remaining_ms
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |rem| {
                rem.checked_sub(ms)
            })
            .is_ok()
    }
}

/// Opt-in health configuration for batch deployment: either knob may be
/// enabled independently.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthPolicy {
    /// Fleet-wide circuit breaking over the primary backend.
    pub breaker: Option<BreakerPolicy>,
    /// Wall-clock backoff budgets.
    pub deadline: Option<DeadlinePolicy>,
}

impl HealthPolicy {
    /// Breaker with default thresholds, no deadline.
    pub fn breaker_only() -> Self {
        HealthPolicy {
            breaker: Some(BreakerPolicy::default()),
            deadline: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BreakerPolicy {
        BreakerPolicy {
            window: 8,
            failure_threshold: 0.5,
            min_samples: 4,
            cooldown_jobs: 6,
            probe_budget: 2,
            decision_interval: 4,
        }
    }

    /// Runs one epoch of `n` jobs whose outcomes (for Primary/Probe
    /// admissions) come from `fail`, returning the admissions.
    fn epoch(b: &mut CircuitBreaker, n: usize, fail: impl Fn(usize) -> bool) -> Vec<Admission> {
        let admissions = b.plan_epoch(n);
        for (i, &a) in admissions.iter().enumerate() {
            let signal = match a {
                Admission::ShortCircuit => JobSignal::Neutral,
                _ if fail(i) => JobSignal::Failure,
                _ => JobSignal::Success,
            };
            b.observe(a, signal);
        }
        b.end_epoch();
        admissions
    }

    #[test]
    fn closed_breaker_admits_everything() {
        let mut b = CircuitBreaker::new(policy());
        let admissions = epoch(&mut b, 8, |_| false);
        assert!(admissions.iter().all(|&a| a == Admission::Primary));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!((b.trips(), b.short_circuited()), (0, 0));
    }

    #[test]
    fn failure_rate_over_threshold_trips_the_breaker() {
        let mut b = CircuitBreaker::new(policy());
        epoch(&mut b, 4, |_| true);
        assert_eq!(
            b.state(),
            BreakerState::Open { cooldown_left: 6 },
            "4 failures ≥ min_samples at 100% ≥ 50% must trip"
        );
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn min_samples_guards_against_early_trips() {
        let mut b = CircuitBreaker::new(policy());
        epoch(&mut b, 3, |_| true);
        assert_eq!(b.state(), BreakerState::Closed, "3 < min_samples=4");
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn below_threshold_failure_rate_never_trips() {
        let mut b = CircuitBreaker::new(policy());
        // One failure in four, spread out: every window prefix stays at
        // ≤ 25% < 50%.
        for _ in 0..10 {
            epoch(&mut b, 8, |i| i % 4 == 0);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn open_breaker_short_circuits_through_the_cooldown() {
        let mut b = CircuitBreaker::new(policy());
        epoch(&mut b, 4, |_| true); // trip; cooldown 6
        let a1 = epoch(&mut b, 4, |_| false);
        assert!(a1.iter().all(|&a| a == Admission::ShortCircuit));
        assert_eq!(b.state(), BreakerState::Open { cooldown_left: 2 });
        let a2 = epoch(&mut b, 4, |_| false);
        // Cooldown elapses after 2 more short circuits, then 2 probes.
        assert_eq!(
            a2,
            vec![
                Admission::ShortCircuit,
                Admission::ShortCircuit,
                Admission::Probe,
                Admission::Probe
            ]
        );
        assert_eq!(b.short_circuited(), 4 + 2);
    }

    #[test]
    fn successful_probe_recloses_the_breaker() {
        let mut b = CircuitBreaker::new(policy());
        epoch(&mut b, 4, |_| true);
        epoch(&mut b, 6, |_| false); // serve the full cooldown
        let a = epoch(&mut b, 4, |_| false); // probes succeed
        assert_eq!(a[0], Admission::Probe);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.recoveries(), 1);
        // Fully healthy again: next epoch admits everything.
        let a = epoch(&mut b, 4, |_| false);
        assert!(a.iter().all(|&x| x == Admission::Primary));
    }

    #[test]
    fn failed_probe_reopens_with_full_cooldown() {
        let mut b = CircuitBreaker::new(policy());
        epoch(&mut b, 4, |_| true);
        epoch(&mut b, 6, |_| false);
        epoch(&mut b, 4, |_| true); // probes fail
        assert!(matches!(b.state(), BreakerState::Open { .. }));
        assert_eq!(b.trips(), 2);
        assert_eq!(b.recoveries(), 0);
    }

    #[test]
    fn probe_budget_bounds_probes_per_epoch() {
        let mut b = CircuitBreaker::new(policy());
        epoch(&mut b, 4, |_| true);
        epoch(&mut b, 6, |_| false);
        // Half-open epoch of 8: exactly probe_budget=2 probes.
        let a = b.plan_epoch(8);
        assert_eq!(a.iter().filter(|&&x| x == Admission::Probe).count(), 2);
        assert_eq!(
            a.iter().filter(|&&x| x == Admission::ShortCircuit).count(),
            6
        );
    }

    #[test]
    fn half_open_with_no_probe_verdict_stays_half_open() {
        let mut b = CircuitBreaker::new(policy());
        epoch(&mut b, 4, |_| true);
        epoch(&mut b, 6, |_| false);
        // Probes come back Neutral (e.g. validation rejections).
        let a = b.plan_epoch(4);
        for &adm in &a {
            b.observe(adm, JobSignal::Neutral);
        }
        b.end_epoch();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Next epoch probes again.
        let a = b.plan_epoch(4);
        assert_eq!(a.iter().filter(|&&x| x == Admission::Probe).count(), 2);
    }

    #[test]
    fn trip_recovery_trip_cycle_counts() {
        let mut b = CircuitBreaker::new(policy());
        for _ in 0..3 {
            epoch(&mut b, 4, |_| true); // trip
            epoch(&mut b, 6, |_| false); // cooldown
            epoch(&mut b, 4, |_| false); // recover
        }
        assert_eq!(b.trips(), 3);
        assert_eq!(b.recoveries(), 3);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_replay_is_deterministic() {
        let run = || {
            let mut b = CircuitBreaker::new(policy());
            let mut log = Vec::new();
            for e in 0..12usize {
                log.push(epoch(&mut b, 5, |i| (e + i) % 3 != 0));
            }
            (log, b.state(), b.trips(), b.recoveries(), b.short_circuited())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn registry_creates_and_snapshots_breakers() {
        let reg = HealthRegistry::new();
        assert!(reg.snapshot("qpu-a").is_none());
        let p = policy();
        reg.with_breaker("qpu-a", &p, |b| {
            let a = b.plan_epoch(4);
            for &adm in &a {
                b.observe(adm, JobSignal::Failure);
            }
            b.end_epoch();
        });
        let snap = reg.snapshot("qpu-a").expect("created");
        assert_eq!(snap.trips, 1);
        assert!(matches!(snap.state, BreakerState::Open { .. }));
        // Distinct keys are independent breakers.
        reg.with_breaker("qpu-b", &p, |b| assert_eq!(b.state(), BreakerState::Closed));
        assert_eq!(reg.keys(), vec!["qpu-a".to_string(), "qpu-b".to_string()]);
    }

    #[test]
    fn registry_snapshots_views_the_whole_fleet_in_one_pass() {
        let reg = HealthRegistry::new();
        let p = policy();
        reg.with_breaker("qpu-b", &p, |_| {});
        reg.with_breaker("qpu-a", &p, |b| {
            let a = b.plan_epoch(4);
            for &adm in &a {
                b.observe(adm, JobSignal::Failure);
            }
            b.end_epoch();
        });
        let all = reg.snapshots();
        assert_eq!(
            all.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            vec!["qpu-a", "qpu-b"],
            "sorted by key"
        );
        assert!(matches!(all[0].1.state, BreakerState::Open { .. }));
        assert_eq!(all[1].1.state, BreakerState::Closed);
        // snapshots() agrees with per-key snapshot().
        for (k, s) in &all {
            assert_eq!(reg.snapshot(k), Some(*s));
        }
    }

    #[test]
    fn tick_idle_serves_cooldown_without_traffic() {
        // Regression for quarantine starvation: an open breaker on a
        // device receiving zero traffic must still reach half-open after
        // cooldown_jobs idle ticks, or it could never be re-admitted.
        let reg = HealthRegistry::new();
        let p = policy(); // cooldown_jobs: 6
        assert_eq!(reg.tick_idle("dead"), None, "no breaker yet");
        reg.with_breaker("dead", &p, |b| {
            let a = b.plan_epoch(4);
            for &adm in &a {
                b.observe(adm, JobSignal::Failure);
            }
            b.end_epoch();
        });
        // cooldown_jobs=6 ticks serve the cooldown; the next planned job
        // finds cooldown_left == 0 and flips to half-open.
        for tick in 0..6 {
            let state = reg.tick_idle("dead").expect("breaker exists");
            assert!(
                matches!(state, BreakerState::Open { .. }),
                "tick {tick}: {state:?}"
            );
        }
        assert_eq!(reg.tick_idle("dead"), Some(BreakerState::HalfOpen));
        // Idle ticks never produce a probe verdict, so further ticks park
        // at half-open — recovery needs real traffic.
        for _ in 0..4 {
            assert_eq!(reg.tick_idle("dead"), Some(BreakerState::HalfOpen));
        }
        // A closed breaker is untouched by idle ticks.
        reg.with_breaker("fine", &p, |_| {});
        assert_eq!(reg.tick_idle("fine"), Some(BreakerState::Closed));
        assert_eq!(reg.snapshot("fine").expect("exists").short_circuited, 0);
    }

    #[test]
    fn deadline_budget_is_exact_and_shareable() {
        let budget = DeadlineBudget::new(100);
        let clone = budget.clone();
        assert!(budget.try_consume(60));
        assert!(clone.try_consume(40), "budget is shared through clones");
        assert_eq!(budget.remaining_ms(), 0);
        assert!(!budget.try_consume(1));
        assert!(budget.try_consume(0), "zero consumption always fits");
    }
}
