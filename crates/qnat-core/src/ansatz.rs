//! Trainable quantum layers — the five design spaces of the paper.
//!
//! * `U3+CU3` (default, §4.1): U3 on every qubit alternating with CU3 on a
//!   ring — one U3 + one CU3 layer on 4 qubits is 24 parameters, matching
//!   the paper's count.
//! * `ZZ+RY` [Lloyd et al.]: parameterized ZZ ring + RY layer.
//! * `RXYZ` [McClean et al.]: √H, RX, RY, RZ, CZ-ring.
//! * `ZX+XX` [Farhi & Neven]: parameterized ZX ring + XX ring.
//! * `RXYZ+U1+CU3` [Henderson et al.]: 11 sub-layers
//!   RX, S, CNOT, RY, T, SWAP, RZ, H, √SWAP, U1, CU3.

use qnat_sim::circuit::Circuit;
use qnat_sim::gate::Gate;

/// The QNN design spaces evaluated in the paper (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignSpace {
    /// Interleaved U3 / CU3 layers (the paper's default).
    U3Cu3,
    /// ZZ ring + RY.
    ZzRy,
    /// √H, RX, RY, RZ, CZ ring.
    Rxyz,
    /// ZX ring + XX ring.
    ZxXx,
    /// RX, S, CNOT, RY, T, SWAP, RZ, H, √SWAP, U1, CU3.
    RxyzU1Cu3,
}

/// Ring pairs `(i, i+1 mod n)`; a 2-qubit register yields the single pair
/// `(0, 1)`, a 1-qubit register none.
pub fn ring_pairs(n: usize) -> Vec<(usize, usize)> {
    match n {
        0 | 1 => Vec::new(),
        2 => vec![(0, 1)],
        _ => (0..n).map(|i| (i, (i + 1) % n)).collect(),
    }
}

/// Even/odd nearest-neighbour pairs used by the SWAP/√SWAP sub-layers.
fn brick_pairs(n: usize, offset: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = offset;
    while i + 1 < n {
        out.push((i, i + 1));
        i += 2;
    }
    out
}

impl DesignSpace {
    /// All design spaces in the paper's Table 2 order (plus the default).
    pub fn all() -> [DesignSpace; 5] {
        [
            DesignSpace::U3Cu3,
            DesignSpace::ZzRy,
            DesignSpace::Rxyz,
            DesignSpace::ZxXx,
            DesignSpace::RxyzU1Cu3,
        ]
    }

    /// Short name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            DesignSpace::U3Cu3 => "U3+CU3",
            DesignSpace::ZzRy => "ZZ+RY",
            DesignSpace::Rxyz => "RXYZ",
            DesignSpace::ZxXx => "ZX+XX",
            DesignSpace::RxyzU1Cu3 => "RXYZ+U1+CU3",
        }
    }

    /// Number of trainable parameters contributed by layer `layer_idx` on
    /// `n` qubits.
    pub fn layer_params(&self, layer_idx: usize, n: usize) -> usize {
        let ring = ring_pairs(n).len();
        match self {
            DesignSpace::U3Cu3 => {
                if layer_idx.is_multiple_of(2) {
                    3 * n
                } else {
                    3 * ring
                }
            }
            DesignSpace::ZzRy => ring + n,
            DesignSpace::Rxyz => 3 * n,
            DesignSpace::ZxXx => 2 * ring,
            DesignSpace::RxyzU1Cu3 => 4 * n + 3 * ring,
        }
    }

    /// Total parameters of `layers` layers on `n` qubits.
    pub fn total_params(&self, layers: usize, n: usize) -> usize {
        (0..layers).map(|l| self.layer_params(l, n)).sum()
    }

    /// Appends layer `layer_idx` (zero-valued parameters) to `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit register has fewer than `n` qubits.
    pub fn append_layer(&self, circuit: &mut Circuit, layer_idx: usize, n: usize) {
        assert!(circuit.n_qubits() >= n, "register too small");
        let ring = ring_pairs(n);
        match self {
            DesignSpace::U3Cu3 => {
                if layer_idx.is_multiple_of(2) {
                    for q in 0..n {
                        circuit.push(Gate::u3(q, 0.0, 0.0, 0.0));
                    }
                } else {
                    for &(a, b) in &ring {
                        circuit.push(Gate::cu3(a, b, 0.0, 0.0, 0.0));
                    }
                }
            }
            DesignSpace::ZzRy => {
                for &(a, b) in &ring {
                    circuit.push(Gate::rzz(a, b, 0.0));
                }
                for q in 0..n {
                    circuit.push(Gate::ry(q, 0.0));
                }
            }
            DesignSpace::Rxyz => {
                for q in 0..n {
                    circuit.push(Gate::sqrt_h(q));
                }
                for q in 0..n {
                    circuit.push(Gate::rx(q, 0.0));
                }
                for q in 0..n {
                    circuit.push(Gate::ry(q, 0.0));
                }
                for q in 0..n {
                    circuit.push(Gate::rz(q, 0.0));
                }
                for &(a, b) in &ring {
                    circuit.push(Gate::cz(a, b));
                }
            }
            DesignSpace::ZxXx => {
                for &(a, b) in &ring {
                    circuit.push(Gate::rzx(a, b, 0.0));
                }
                for &(a, b) in &ring {
                    circuit.push(Gate::rxx(a, b, 0.0));
                }
            }
            DesignSpace::RxyzU1Cu3 => {
                for q in 0..n {
                    circuit.push(Gate::rx(q, 0.0));
                }
                for q in 0..n {
                    circuit.push(Gate::s(q));
                }
                for &(a, b) in &ring {
                    circuit.push(Gate::cx(a, b));
                }
                for q in 0..n {
                    circuit.push(Gate::ry(q, 0.0));
                }
                for q in 0..n {
                    circuit.push(Gate::t(q));
                }
                for &(a, b) in &brick_pairs(n, 0) {
                    circuit.push(Gate::swap(a, b));
                }
                for q in 0..n {
                    circuit.push(Gate::rz(q, 0.0));
                }
                for q in 0..n {
                    circuit.push(Gate::h(q));
                }
                for &(a, b) in &brick_pairs(n, 1) {
                    circuit.push(Gate::sqrt_swap(a, b));
                }
                for q in 0..n {
                    circuit.push(Gate::p(q, 0.0));
                }
                for &(a, b) in &ring {
                    circuit.push(Gate::cu3(a, b, 0.0, 0.0, 0.0));
                }
            }
        }
    }

    /// Builds a template of `layers` layers (zero parameters) on `n` qubits.
    pub fn template(&self, layers: usize, n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for l in 0..layers {
            self.append_layer(&mut c, l, n);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u3cu3_param_count_matches_paper() {
        // Paper §4.1: 4 qubits, 1 U3 + 1 CU3 layer → 24 parameters.
        let d = DesignSpace::U3Cu3;
        assert_eq!(d.total_params(2, 4), 24);
        // A 5-block model of these has 120 parameters.
        assert_eq!(5 * d.total_params(2, 4), 120);
    }

    #[test]
    fn templates_have_declared_param_counts() {
        for d in DesignSpace::all() {
            for n in [2, 4, 10] {
                for layers in [1, 2, 3] {
                    let t = d.template(layers, n);
                    assert_eq!(
                        t.n_params(),
                        d.total_params(layers, n),
                        "{} n={n} layers={layers}",
                        d.name()
                    );
                }
            }
        }
    }

    #[test]
    fn ring_pairs_special_cases() {
        assert!(ring_pairs(1).is_empty());
        assert_eq!(ring_pairs(2), vec![(0, 1)]);
        assert_eq!(ring_pairs(4), vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
    }

    #[test]
    fn templates_touch_all_qubits() {
        for d in DesignSpace::all() {
            let t = d.template(2, 4);
            let mut touched = [false; 4];
            for g in t.gates() {
                for k in 0..g.arity() {
                    touched[g.qubits[k]] = true;
                }
            }
            assert!(touched.iter().all(|&x| x), "{} leaves idle qubits", d.name());
        }
    }

    #[test]
    fn u3cu3_alternates_layers() {
        let t = DesignSpace::U3Cu3.template(2, 4);
        assert_eq!(t.gates()[0].kind, qnat_sim::GateKind::U3);
        assert_eq!(t.gates()[4].kind, qnat_sim::GateKind::Cu3);
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(DesignSpace::ZzRy.name(), "ZZ+RY");
        assert_eq!(DesignSpace::RxyzU1Cu3.name(), "RXYZ+U1+CU3");
    }
}
