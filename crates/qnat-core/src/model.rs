//! The multi-block QNN model.
//!
//! A [`Qnn`] is the paper's Figure-2 architecture: `n_blocks` blocks, each
//! an encoder (classical values → rotation angles), `layers_per_block`
//! trainable layers from a [`crate::ansatz::DesignSpace`], and
//! per-qubit Pauli-Z measurement. Measurement outcomes of one block are
//! (normalized, quantized and) re-uploaded by the next block's encoder; the
//! last block's raw outcomes feed the classification head.
//!
//! The model keeps, per block, both the *logical* circuit template and a
//! routed + basis-compiled symbolic lowering so that (a) noise injection
//! happens after compilation as the paper requires, and (b) gradients flow
//! back to logical parameters through the affine angle map.

use crate::ansatz::DesignSpace;
use crate::encoder::Encoder;
use qnat_compiler::mapping::Layout;
use qnat_compiler::symbolic::{lower_symbolic, SymbolicLowered};
use qnat_compiler::transpile::route_and_window;
use qnat_noise::device::{DeviceModel, InvalidDeviceError};
use qnat_noise::inject::insert_error_gates;
use qnat_sim::adjoint::adjoint_gradients;
use qnat_sim::circuit::Circuit;
use rand::Rng;

/// Architecture hyper-parameters of a QNN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QnnConfig {
    /// Qubits per block (4 for 2/4-class, 10 for 10-class).
    pub n_qubits: usize,
    /// Number of blocks (intermediate measurements between them).
    pub n_blocks: usize,
    /// Trainable layers per block.
    pub layers_per_block: usize,
    /// Design space of the trainable layers.
    pub design: DesignSpace,
    /// Input feature count (16, 36, 10, or ≤ 12 toy features).
    pub n_features: usize,
    /// Output classes.
    pub n_classes: usize,
}

impl QnnConfig {
    /// The paper's default architecture for a task shape: U3+CU3 design,
    /// qubit count implied by the feature count.
    pub fn standard(
        n_features: usize,
        n_classes: usize,
        n_blocks: usize,
        layers_per_block: usize,
    ) -> QnnConfig {
        let n_qubits = Encoder::for_features(n_features).n_qubits();
        QnnConfig {
            n_qubits,
            n_blocks,
            layers_per_block,
            design: DesignSpace::U3Cu3,
            n_features,
            n_classes,
        }
    }

    /// Same as [`QnnConfig::standard`] with an explicit design space.
    pub fn with_design(mut self, design: DesignSpace) -> QnnConfig {
        self.design = design;
        self
    }
}

/// One block: templates, lowering and observable map.
#[derive(Debug, Clone)]
pub struct Block {
    /// The block's encoder.
    pub encoder: Encoder,
    /// Logical circuit template (encoder gates first, then ansatz).
    pub logical: Circuit,
    /// Routed + basis-lowered template with affine angle tracking.
    pub lowered: SymbolicLowered,
    /// Observable (window-local) qubit holding each logical qubit after
    /// routing.
    pub obs: Vec<usize>,
    /// Sub-device over the window (present when built for a device).
    pub device_view: Option<DeviceModel>,
    /// Number of encoder angle slots.
    pub n_enc: usize,
    /// Number of trainable parameters in this block.
    pub n_train: usize,
    /// Fusion structure of the lowered template, computed once at
    /// construction: every noise-free evaluation fuses its bound circuit
    /// through this plan instead of re-deriving the structure per call.
    pub fusion: std::sync::Arc<qnat_compiler::fusion::FusionPlan>,
}

/// A trainable multi-block QNN.
#[derive(Debug, Clone)]
pub struct Qnn {
    config: QnnConfig,
    blocks: Vec<Block>,
    params: Vec<f64>,
    offsets: Vec<usize>,
}

/// Noise sources for noise-injected training (§3.2 and the Fig. 7
/// ablation).
#[derive(Debug, Clone, Copy)]
pub enum NoiseSource<'a> {
    /// Noise-free training (the baseline).
    None,
    /// Error-gate insertion from a device noise model scaled by the noise
    /// factor `T` — the paper's main method.
    GateInsertion {
        /// Calibration noise model to sample Pauli errors from.
        model: &'a DeviceModel,
        /// Noise factor `T` (typically `0.1..=1.5`).
        factor: f64,
    },
    /// Gaussian perturbation of all rotation angles.
    AnglePerturb {
        /// Standard deviation of the angle noise.
        sigma: f64,
    },
    /// Gaussian perturbation of (normalized) measurement outcomes,
    /// `N(mu, sigma²)` benchmarked from validation-set error profiling.
    OutcomePerturb {
        /// Mean of the outcome error distribution.
        mu: f64,
        /// Standard deviation of the outcome error distribution.
        sigma: f64,
    },
}

/// One block's forward evaluation with Jacobians.
#[derive(Debug, Clone)]
pub struct BlockEval {
    /// Per-qubit Z expectations (logical order).
    pub outputs: Vec<f64>,
    /// `jac_inputs[q][k]` = d `outputs[q]` / d `inputs[k]`.
    pub jac_inputs: Vec<Vec<f64>>,
    /// `jac_params[q][j]` = d `outputs[q]` / d `params[j]` (block-local).
    pub jac_params: Vec<Vec<f64>>,
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0f64);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl Qnn {
    /// Builds a QNN without routing (logical = physical). Use
    /// [`Qnn::for_device`] when training with gate-insertion noise so that
    /// the compiled circuit matches the device's coupling map.
    pub fn new(config: QnnConfig, seed: u64) -> Qnn {
        Self::build(config, None, seed).expect("device-free construction cannot fail")
    }

    /// Builds a QNN routed for a device: each block's circuit is SWAP-routed
    /// onto the coupling map and lowered to basis gates, exactly what runs
    /// on (emulated) hardware.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDeviceError`] if the device has fewer qubits than
    /// the model needs.
    pub fn for_device(
        config: QnnConfig,
        model: &DeviceModel,
        seed: u64,
    ) -> Result<Qnn, InvalidDeviceError> {
        Self::build(config, Some(model), seed)
    }

    fn build(
        config: QnnConfig,
        model: Option<&DeviceModel>,
        seed: u64,
    ) -> Result<Qnn, InvalidDeviceError> {
        assert!(config.n_blocks >= 1, "need at least one block");
        assert!(config.n_qubits >= config.n_classes.min(4) / 2, "too few qubits");
        let mut blocks = Vec::with_capacity(config.n_blocks);
        let mut offsets = Vec::with_capacity(config.n_blocks);
        let mut total_params = 0usize;
        for b in 0..config.n_blocks {
            let encoder = if b == 0 {
                Encoder::for_features(config.n_features)
            } else {
                Encoder::reupload(config.n_qubits)
            };
            assert_eq!(
                encoder.n_qubits(),
                config.n_qubits,
                "encoder qubit count must match the architecture"
            );
            let mut logical = Circuit::new(config.n_qubits);
            encoder.append_template(&mut logical);
            let n_enc = logical.n_params();
            for l in 0..config.layers_per_block {
                config.design.append_layer(&mut logical, l, config.n_qubits);
            }
            let n_train = logical.n_params() - n_enc;
            let (lowered, obs, device_view) = match model {
                Some(m) => {
                    let (windowed, _window, layout, view) =
                        route_and_window(&logical, m, &Layout::trivial(config.n_qubits))?;
                    (lower_symbolic(&windowed), layout, Some(view))
                }
                None => (
                    lower_symbolic(&logical),
                    (0..config.n_qubits).collect(),
                    None,
                ),
            };
            offsets.push(total_params);
            total_params += n_train;
            let fusion = std::sync::Arc::new(
                qnat_compiler::fusion::FusionPlan::for_template(&lowered.circuit),
            );
            blocks.push(Block {
                encoder,
                logical,
                lowered,
                obs,
                device_view,
                n_enc,
                n_train,
                fusion,
            });
        }
        // Small random initialization (uniform in ±0.3 rad).
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let params = (0..total_params)
            .map(|_| rng.gen_range(-0.3..0.3))
            .collect();
        Ok(Qnn {
            config,
            blocks,
            params,
            offsets,
        })
    }

    /// The architecture.
    pub fn config(&self) -> &QnnConfig {
        &self.config
    }

    /// The blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// All trainable parameters, blocks concatenated.
    pub fn parameters(&self) -> &[f64] {
        &self.params
    }

    /// Overwrites all trainable parameters.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn set_parameters(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.params.len(), "parameter count");
        self.params.copy_from_slice(params);
    }

    /// Total trainable parameter count.
    pub fn n_params(&self) -> usize {
        self.params.len()
    }

    /// This block's slice of the global parameter vector.
    pub fn block_params(&self, block: usize) -> &[f64] {
        let start = self.offsets[block];
        &self.params[start..start + self.blocks[block].n_train]
    }

    /// Offset of a block's parameters in the global vector.
    pub fn block_offset(&self, block: usize) -> usize {
        self.offsets[block]
    }

    /// Evaluates one block on one sample, optionally with injected noise
    /// and gradients.
    ///
    /// `inputs` are features (block 0) or the previous block's processed
    /// outcomes. When `with_grads` is false the Jacobian vectors are empty.
    pub fn eval_block<R: Rng>(
        &self,
        block_idx: usize,
        inputs: &[f64],
        noise: &NoiseSource<'_>,
        readout: Option<&DeviceModel>,
        with_grads: bool,
        rng: &mut R,
    ) -> BlockEval {
        let block = &self.blocks[block_idx];
        let enc_angles = block.encoder.angles(inputs);
        let mut logical_params =
            Vec::with_capacity(block.n_enc + block.n_train);
        logical_params.extend_from_slice(&enc_angles);
        logical_params.extend_from_slice(self.block_params(block_idx));
        if let NoiseSource::AnglePerturb { sigma } = noise {
            for p in &mut logical_params {
                *p += sigma * gaussian(rng);
            }
        }
        let bound = block.lowered.bind(&logical_params);
        let run = match noise {
            NoiseSource::GateInsertion { model, factor } => {
                let (injected, _stats) = insert_error_gates(&bound, model, *factor, rng);
                injected
            }
            _ => bound,
        };

        if !with_grads {
            // Pure-unitary evaluation runs through the fused IR: adjacent
            // single-qubit runs and CX sandwiches collapse into dense ops
            // applied by the branch-free kernels. Exact within f64
            // reassociation (the fusion proptests pin 1e-12); the adjoint
            // path below stays gate-by-gate, which gradients require.
            // Gate insertion changes the circuit's structure per sample,
            // so only it pays for a fresh structural scan; every other
            // source binds the template and reuses the block's plan.
            let fused = match noise {
                NoiseSource::GateInsertion { .. } => qnat_compiler::fusion::fuse(&run),
                _ => block.fusion.fuse_bound(&run),
            };
            let psi = qnat_sim::fused::simulate_fused(&fused);
            let all = psi.expect_all_z();
            let mut outputs: Vec<f64> =
                block.obs.iter().map(|&q| all[q]).collect();
            self.apply_readout(block_idx, readout, &mut outputs, None, None);
            return BlockEval {
                outputs,
                jac_inputs: Vec::new(),
                jac_params: Vec::new(),
            };
        }

        let grad = adjoint_gradients(&run, &block.obs);
        let n_q = self.config.n_qubits;
        let scale = block.encoder.scale();
        let mut outputs = grad.expectations.clone();
        let mut jac_inputs = vec![vec![0.0; block.encoder.n_features()]; n_q];
        let mut jac_params = vec![vec![0.0; block.n_train]; n_q];
        for q in 0..n_q {
            let chained = block.lowered.chain_gradient(&grad.gradients[q]);
            for k in 0..block.n_enc {
                jac_inputs[q][k] = chained[k] * scale;
            }
            for j in 0..block.n_train {
                jac_params[q][j] = chained[block.n_enc + j];
            }
        }
        self.apply_readout(
            block_idx,
            readout,
            &mut outputs,
            Some(&mut jac_inputs),
            Some(&mut jac_params),
        );
        BlockEval {
            outputs,
            jac_inputs,
            jac_params,
        }
    }

    /// Applies the readout-error emulation (paper §3.2): each qubit's
    /// expectation goes through the affine confusion map; Jacobian rows are
    /// scaled by the map's slope γ.
    fn apply_readout(
        &self,
        block_idx: usize,
        readout: Option<&DeviceModel>,
        outputs: &mut [f64],
        jac_inputs: Option<&mut Vec<Vec<f64>>>,
        jac_params: Option<&mut Vec<Vec<f64>>>,
    ) {
        let Some(model) = readout else { return };
        let block = &self.blocks[block_idx];
        let mut gammas = vec![1.0; outputs.len()];
        for (lq, out) in outputs.iter_mut().enumerate() {
            // Physical qubit = the window-local observable; when the model
            // passed in is the full device we just use the logical index
            // (windows preserve relative order for line devices).
            let phys = block.obs[lq].min(model.n_qubits() - 1);
            let ro = model.readout_error(phys);
            let m = ro.matrix();
            let gamma = m[0][0] + m[1][1] - 1.0;
            *out = ro.apply_to_expectation(*out);
            gammas[lq] = gamma;
        }
        if let Some(jx) = jac_inputs {
            for (lq, row) in jx.iter_mut().enumerate() {
                for v in row {
                    *v *= gammas[lq];
                }
            }
        }
        if let Some(jp) = jac_params {
            for (lq, row) in jp.iter_mut().enumerate() {
                for v in row {
                    *v *= gammas[lq];
                }
            }
        }
    }

    /// Binds one block's logical circuit for the given inputs (used by the
    /// deployment path which re-transpiles for a target device).
    pub fn bind_logical(&self, block_idx: usize, inputs: &[f64]) -> Circuit {
        let block = &self.blocks[block_idx];
        let mut c = block.logical.clone();
        let mut params = block.encoder.angles(inputs);
        params.extend_from_slice(self.block_params(block_idx));
        c.set_parameters(&params);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnat_noise::presets;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_config() -> QnnConfig {
        QnnConfig::standard(16, 4, 2, 2)
    }

    #[test]
    fn construction_counts() {
        let q = Qnn::new(toy_config(), 1);
        // 2 blocks × (U3 layer 12 + CU3 layer 12) = 48 params.
        assert_eq!(q.n_params(), 48);
        assert_eq!(q.blocks().len(), 2);
        assert_eq!(q.blocks()[0].n_enc, 16);
        assert_eq!(q.blocks()[1].n_enc, 4);
        assert_eq!(q.block_offset(1), 24);
    }

    #[test]
    fn eval_block_outputs_are_valid_expectations() {
        let q = Qnn::new(toy_config(), 2);
        let mut rng = StdRng::seed_from_u64(0);
        let inputs: Vec<f64> = (0..16).map(|i| i as f64 / 16.0).collect();
        let ev = q.eval_block(0, &inputs, &NoiseSource::None, None, false, &mut rng);
        assert_eq!(ev.outputs.len(), 4);
        assert!(ev.outputs.iter().all(|z| (-1.0..=1.0).contains(z)));
    }

    #[test]
    fn jacobians_match_finite_differences() {
        let q = Qnn::new(QnnConfig::standard(16, 4, 1, 2), 3);
        let mut rng = StdRng::seed_from_u64(0);
        let inputs: Vec<f64> = (0..16).map(|i| (i as f64 * 0.37).sin().abs()).collect();
        let ev = q.eval_block(0, &inputs, &NoiseSource::None, None, true, &mut rng);
        let eps = 1e-6;
        // Input Jacobian spot-check.
        for k in [0usize, 7, 15] {
            let mut plus = inputs.clone();
            plus[k] += eps;
            let mut minus = inputs.clone();
            minus[k] -= eps;
            let op = q
                .eval_block(0, &plus, &NoiseSource::None, None, false, &mut rng)
                .outputs;
            let om = q
                .eval_block(0, &minus, &NoiseSource::None, None, false, &mut rng)
                .outputs;
            for qb in 0..4 {
                let fd = (op[qb] - om[qb]) / (2.0 * eps);
                assert!(
                    (ev.jac_inputs[qb][k] - fd).abs() < 1e-5,
                    "input {k} qubit {qb}: {} vs {}",
                    ev.jac_inputs[qb][k],
                    fd
                );
            }
        }
        // Parameter Jacobian spot-check.
        let base = q.parameters().to_vec();
        for j in [0usize, 5, 23] {
            let mut qp = q.clone();
            let mut pp = base.clone();
            pp[j] += eps;
            qp.set_parameters(&pp);
            let op = qp
                .eval_block(0, &inputs, &NoiseSource::None, None, false, &mut rng)
                .outputs;
            let mut qm = q.clone();
            let mut pm = base.clone();
            pm[j] -= eps;
            qm.set_parameters(&pm);
            let om = qm
                .eval_block(0, &inputs, &NoiseSource::None, None, false, &mut rng)
                .outputs;
            for qb in 0..4 {
                let fd = (op[qb] - om[qb]) / (2.0 * eps);
                assert!(
                    (ev.jac_params[qb][j] - fd).abs() < 1e-5,
                    "param {j} qubit {qb}: {} vs {}",
                    ev.jac_params[qb][j],
                    fd
                );
            }
        }
    }

    #[test]
    fn device_routed_model_matches_logical_noise_free() {
        let cfg = toy_config();
        let logical = Qnn::new(cfg, 5);
        let mut routed = Qnn::for_device(cfg, &presets::santiago(), 99).unwrap();
        routed.set_parameters(logical.parameters());
        let mut rng = StdRng::seed_from_u64(0);
        let inputs: Vec<f64> = (0..16).map(|i| i as f64 / 15.0).collect();
        let a = logical.eval_block(0, &inputs, &NoiseSource::None, None, false, &mut rng);
        let b = routed.eval_block(0, &inputs, &NoiseSource::None, None, false, &mut rng);
        for q in 0..4 {
            assert!(
                (a.outputs[q] - b.outputs[q]).abs() < 1e-8,
                "qubit {q}: {} vs {}",
                a.outputs[q],
                b.outputs[q]
            );
        }
    }

    #[test]
    fn gate_insertion_perturbs_outputs() {
        let cfg = toy_config();
        let q = Qnn::for_device(cfg, &presets::yorktown(), 7).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let inputs: Vec<f64> = (0..16).map(|i| i as f64 / 15.0).collect();
        let clean = q
            .eval_block(0, &inputs, &NoiseSource::None, None, false, &mut rng)
            .outputs;
        // With a large noise factor, at least one of many injected runs
        // differs from the clean run.
        let model = presets::yorktown();
        let noise = NoiseSource::GateInsertion {
            model: &model,
            factor: 20.0,
        };
        let mut any_diff = false;
        for _ in 0..50 {
            let noisy = q.eval_block(0, &inputs, &noise, None, false, &mut rng);
            if noisy
                .outputs
                .iter()
                .zip(&clean)
                .any(|(a, b)| (a - b).abs() > 1e-6)
            {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff, "gate insertion never changed the outputs");
    }

    #[test]
    fn readout_injection_contracts_expectations() {
        let cfg = toy_config();
        let q = Qnn::new(cfg, 11);
        let mut rng = StdRng::seed_from_u64(2);
        let inputs: Vec<f64> = (0..16).map(|_| 0.9).collect();
        let clean = q
            .eval_block(0, &inputs, &NoiseSource::None, None, false, &mut rng)
            .outputs;
        let model = presets::yorktown();
        let noisy = q
            .eval_block(0, &inputs, &NoiseSource::None, Some(&model), false, &mut rng)
            .outputs;
        for qb in 0..4 {
            assert!(
                noisy[qb].abs() <= clean[qb].abs() + 1e-9,
                "readout should contract |z|"
            );
        }
    }

    #[test]
    fn angle_perturbation_changes_outputs() {
        let cfg = toy_config();
        let q = Qnn::new(cfg, 13);
        let mut rng = StdRng::seed_from_u64(3);
        let inputs: Vec<f64> = (0..16).map(|i| i as f64 / 16.0).collect();
        let clean = q
            .eval_block(0, &inputs, &NoiseSource::None, None, false, &mut rng)
            .outputs;
        let noisy = q
            .eval_block(
                0,
                &inputs,
                &NoiseSource::AnglePerturb { sigma: 0.3 },
                None,
                false,
                &mut rng,
            )
            .outputs;
        assert!(clean
            .iter()
            .zip(&noisy)
            .any(|(a, b)| (a - b).abs() > 1e-6));
    }
}
