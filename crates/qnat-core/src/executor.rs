//! Resilient circuit execution: retry with exponential backoff, typed
//! failure accounting, and graceful degradation to a fallback backend.
//!
//! Real cloud QPUs reject jobs transiently, time out in queues and drift
//! between calibrations. [`ResilientExecutor`] wraps a primary
//! [`QuantumBackend`] (plus an optional fallback, typically the
//! Pauli-twirled noise-model simulator — Table 11 shows it tracks hardware
//! within a few accuracy points) and drives every job through a
//! retry/backoff loop:
//!
//! 1. validate the circuit once — deterministic rejections never retry;
//! 2. attempt the primary up to [`RetryPolicy::max_attempts`] times, with
//!    exponentially growing, deterministically jittered backoff between
//!    attempts — the backoff interval is always recorded in the
//!    [`ExecutionReport`], and the injected [`Sleeper`] decides whether it
//!    also elapses on the wall clock ([`ThreadSleeper`], deployment) or
//!    not ([`VirtualSleeper`], tests and benches);
//! 3. on exhaustion, serve the job from the fallback and count a
//!    `fallback_jobs`; after [`RetryPolicy::max_consecutive_failures`]
//!    consecutive exhaustions the executor *degrades permanently* and stops
//!    submitting to the primary at all.
//!
//! Every decision is recorded in the structured [`ExecutionReport`] that
//! inference surfaces to the caller.

use qnat_noise::backend::{BackendError, Measurements, QuantumBackend};
use qnat_sim::circuit::Circuit;
use std::collections::BTreeMap;
use std::fmt;

pub use crate::time::{Sleeper, ThreadSleeper, VirtualSleeper};

/// SplitMix64 — the seed hash behind every per-job derivation in the
/// deployment stack: retry jitter draws here, per-job executor seeds in
/// [`crate::batch::BatchExecutor::job_seed`], and per-ticket seeds in the
/// `qnat-serve` engine (which must match the batch derivation exactly so a
/// served workload replays as a batch bit-for-bit).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Retry/backoff/degradation policy of a [`ResilientExecutor`].
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per job on the primary backend (≥ 1).
    pub max_attempts: usize,
    /// Backoff before the first retry, in milliseconds.
    pub base_backoff_ms: u64,
    /// Ceiling on a single backoff interval, in milliseconds.
    pub max_backoff_ms: u64,
    /// Jitter amplitude: each backoff is scaled by a deterministic factor
    /// in `[1 − jitter, 1 + jitter]` to decorrelate retry storms.
    pub jitter: f64,
    /// Consecutive jobs that must exhaust their retries before the
    /// executor permanently degrades to the fallback backend.
    pub max_consecutive_failures: usize,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 250,
            max_backoff_ms: 8_000,
            jitter: 0.25,
            max_consecutive_failures: 3,
            jitter_seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and degrades after the first failed job.
    pub fn fail_fast() -> Self {
        RetryPolicy {
            max_attempts: 1,
            max_consecutive_failures: 1,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry `retry` (0-based) of job `job`: exponential in
    /// the retry index, jittered deterministically by
    /// `(jitter_seed, job, retry)`, and clamped to
    /// [`RetryPolicy::max_backoff_ms`] *after* jitter — the documented
    /// ceiling is a hard bound on what a deployment actually sleeps.
    pub fn backoff_ms(&self, job: u64, retry: u32) -> u64 {
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64.checked_shl(retry.min(32)).unwrap_or(u64::MAX))
            .min(self.max_backoff_ms);
        let h = splitmix64(self.jitter_seed ^ splitmix64(job.wrapping_mul(0x1_0001).wrapping_add(retry as u64)));
        // 53-bit mantissa draw in [0, 1).
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 1.0 + self.jitter.clamp(0.0, 1.0) * (2.0 * unit - 1.0);
        ((exp as f64 * factor).round().max(0.0) as u64).min(self.max_backoff_ms)
    }
}

/// One recorded failure: which job, which attempt, what went wrong.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureRecord {
    /// Job index on this executor.
    pub job: u64,
    /// 1-based attempt number within the job.
    pub attempt: usize,
    /// The typed error that occurred.
    pub error: BackendError,
}

impl fmt::Display for FailureRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {} attempt {}: {}", self.job, self.attempt, self.error)
    }
}

/// Per-backend slice of an [`ExecutionReport`]: what one named backend
/// did, keyed by [`QuantumBackend::name`]. This is the stable feature
/// stream the calibration tracker (`qnat-calib`) consumes — counters
/// here are attributed to the backend that incurred them, unlike the
/// report's flat totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendUsage {
    /// Circuits executed on this backend (primary attempts or fallback
    /// serves).
    pub attempts: usize,
    /// Retries after this backend failed retryably.
    pub retries: usize,
    /// Circuits this backend rejected at validation (deterministic, never
    /// retried).
    pub validation_failures: usize,
    /// Jobs fast-failed while this backend was the terminally-degraded
    /// primary.
    pub fast_failed_jobs: usize,
    /// Jobs this backend served as the fallback.
    pub fallback_jobs: usize,
    /// Backoff milliseconds accrued waiting to retry this backend.
    pub backoff_ms: u64,
}

impl BackendUsage {
    /// Folds another usage record into this one.
    pub fn merge(&mut self, other: &BackendUsage) {
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.validation_failures += other.validation_failures;
        self.fast_failed_jobs += other.fast_failed_jobs;
        self.fallback_jobs += other.fallback_jobs;
        self.backoff_ms += other.backoff_ms;
    }
}

/// Structured account of everything a [`ResilientExecutor`] did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionReport {
    /// Jobs submitted to the executor.
    pub jobs: usize,
    /// Attempts made on the primary backend (≥ retries).
    pub attempts: usize,
    /// Retries after a retryable failure.
    pub retries: usize,
    /// Jobs ultimately served by the fallback backend.
    pub fallback_jobs: usize,
    /// Jobs the health layer short-circuited past the primary (circuit
    /// breaker open): zero primary attempts, zero backoff.
    pub short_circuited_jobs: usize,
    /// Jobs failed immediately because the executor had already
    /// terminally degraded with no working fallback — the backoff tax was
    /// paid once, not per job.
    pub fast_failed_jobs: usize,
    /// Jobs abandoned because their deadline budget could not cover the
    /// next retry backoff.
    pub deadline_exceeded_jobs: usize,
    /// Whether the executor permanently degraded to the fallback.
    pub degraded: bool,
    /// Milliseconds of backoff accrued between retries. With a
    /// [`ThreadSleeper`] this time really elapsed on the wall clock; with
    /// a [`VirtualSleeper`] it was recorded only.
    pub total_backoff_ms: u64,
    /// Shots short of the requested budget, summed over truncated jobs.
    pub shot_shortfall: usize,
    /// Every failure observed, in order.
    pub failures: Vec<FailureRecord>,
    /// Per-backend attribution of the counters above, keyed by backend
    /// name — see [`ExecutionReport::backend_usage`].
    pub by_backend: BTreeMap<String, BackendUsage>,
}

impl ExecutionReport {
    /// Folds another report (e.g. a different block's executor) into this
    /// one. `degraded` is sticky: any degraded part degrades the whole.
    pub fn merge(&mut self, other: &ExecutionReport) {
        self.jobs += other.jobs;
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.fallback_jobs += other.fallback_jobs;
        self.short_circuited_jobs += other.short_circuited_jobs;
        self.fast_failed_jobs += other.fast_failed_jobs;
        self.deadline_exceeded_jobs += other.deadline_exceeded_jobs;
        self.degraded |= other.degraded;
        self.total_backoff_ms += other.total_backoff_ms;
        self.shot_shortfall += other.shot_shortfall;
        self.failures.extend(other.failures.iter().cloned());
        for (name, usage) in &other.by_backend {
            self.usage_mut(name).merge(usage);
        }
    }

    /// Backend keys with recorded usage, in deterministic (sorted) order.
    pub fn backend_keys(&self) -> impl Iterator<Item = &str> {
        self.by_backend.keys().map(String::as_str)
    }

    /// This backend's usage slice (zeroes if it never ran anything).
    pub fn backend_usage(&self, backend: &str) -> BackendUsage {
        self.by_backend.get(backend).copied().unwrap_or_default()
    }

    /// Retries attributed to `backend`.
    pub fn retries_for(&self, backend: &str) -> usize {
        self.backend_usage(backend).retries
    }

    /// Validation rejections attributed to `backend`.
    pub fn validation_failures_for(&self, backend: &str) -> usize {
        self.backend_usage(backend).validation_failures
    }

    /// Fast-failed jobs attributed to `backend`.
    pub fn fast_fails_for(&self, backend: &str) -> usize {
        self.backend_usage(backend).fast_failed_jobs
    }

    /// Backoff milliseconds attributed to `backend`.
    pub fn backoff_ms_for(&self, backend: &str) -> u64 {
        self.backend_usage(backend).backoff_ms
    }

    fn usage_mut(&mut self, backend: &str) -> &mut BackendUsage {
        if !self.by_backend.contains_key(backend) {
            self.by_backend
                .insert(backend.to_string(), BackendUsage::default());
        }
        self.by_backend
            .get_mut(backend)
            .expect("usage entry just ensured")
    }
}

impl fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} jobs, {} attempts ({} retries, {} ms backoff), {} fallback jobs",
            self.jobs, self.attempts, self.retries, self.total_backoff_ms, self.fallback_jobs,
        )?;
        if self.short_circuited_jobs > 0 {
            write!(f, ", {} short-circuited", self.short_circuited_jobs)?;
        }
        if self.fast_failed_jobs > 0 {
            write!(f, ", {} fast-failed", self.fast_failed_jobs)?;
        }
        if self.deadline_exceeded_jobs > 0 {
            write!(f, ", {} past deadline", self.deadline_exceeded_jobs)?;
        }
        if self.degraded {
            write!(f, ", DEGRADED")?;
        }
        Ok(())
    }
}

/// A retrying, degradable front-end over one or two [`QuantumBackend`]s.
pub struct ResilientExecutor {
    primary: Box<dyn QuantumBackend>,
    fallback: Option<Box<dyn QuantumBackend>>,
    policy: RetryPolicy,
    sleeper: Box<dyn Sleeper>,
    consecutive_failures: usize,
    fallback_consecutive_failures: usize,
    job_index: u64,
    /// Health-layer flag: skip the primary entirely (breaker open) and
    /// serve from the fallback.
    short_circuited: bool,
    /// Once set, every further job fails immediately with a clone of this
    /// error — the executor is terminally degraded with nothing left to
    /// serve from, so re-paying retries and backoff per job is pure waste.
    terminal_error: Option<BackendError>,
    report: ExecutionReport,
}

impl fmt::Debug for ResilientExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResilientExecutor")
            .field("primary", &self.primary.name())
            .field("fallback", &self.fallback.as_ref().map(|b| b.name()))
            .field("policy", &self.policy)
            .field("report", &self.report)
            .finish()
    }
}

impl ResilientExecutor {
    /// An executor with no fallback: jobs that exhaust their retries fail.
    /// Backoff runs on a [`VirtualSleeper`]; inject a [`ThreadSleeper`]
    /// with [`ResilientExecutor::with_sleeper`] for real wall-clock
    /// throttling.
    pub fn new(primary: Box<dyn QuantumBackend>, policy: RetryPolicy) -> Self {
        ResilientExecutor {
            primary,
            fallback: None,
            policy,
            sleeper: Box::new(VirtualSleeper::default()),
            consecutive_failures: 0,
            fallback_consecutive_failures: 0,
            job_index: 0,
            short_circuited: false,
            terminal_error: None,
            report: ExecutionReport::default(),
        }
    }

    /// An executor that degrades to `fallback` when the primary keeps
    /// failing.
    pub fn with_fallback(
        primary: Box<dyn QuantumBackend>,
        fallback: Box<dyn QuantumBackend>,
        policy: RetryPolicy,
    ) -> Self {
        ResilientExecutor {
            fallback: Some(fallback),
            ..ResilientExecutor::new(primary, policy)
        }
    }

    /// Replaces the backoff sleeper (builder style). Deployments serving
    /// live traffic inject a [`ThreadSleeper`] here so retry backoff
    /// elapses on the wall clock instead of only being recorded.
    pub fn with_sleeper(mut self, sleeper: Box<dyn Sleeper>) -> Self {
        self.sleeper = sleeper;
        self
    }

    /// Caps this executor's total backoff by `budget` (builder style):
    /// the current sleeper is wrapped in a
    /// [`crate::health::DeadlineSleeper`], so a backoff interval the
    /// budget cannot cover makes the job fail with
    /// [`BackendError::DeadlineExceeded`] instead of sleeping past the
    /// deadline. Budgets can be shared across executors (batch-wide
    /// deadline) or fresh per executor (per-job deadline).
    pub fn with_deadline(mut self, budget: crate::health::DeadlineBudget) -> Self {
        let inner = std::mem::replace(
            &mut self.sleeper,
            Box::new(VirtualSleeper::default()),
        );
        self.sleeper = Box::new(crate::health::DeadlineSleeper::new(inner, budget));
        self
    }

    /// Health-layer switch: stop submitting to the primary (its circuit
    /// breaker is open) and serve every job from the fallback. Unlike
    /// degradation this is externally imposed and carries no judgement
    /// about the primary — the breaker owns recovery.
    pub fn short_circuit_primary(&mut self) {
        self.short_circuited = true;
    }

    /// Total milliseconds of backoff the sleeper has accounted — equals
    /// [`ExecutionReport::total_backoff_ms`] for backoff accrued by this
    /// executor.
    pub fn slept_ms(&self) -> u64 {
        self.sleeper.slept_ms()
    }

    /// The accumulated execution report.
    pub fn report(&self) -> &ExecutionReport {
        &self.report
    }

    /// `true` once the executor has permanently switched to the fallback.
    pub fn is_degraded(&self) -> bool {
        self.report.degraded
    }

    /// Name of the backend currently serving jobs.
    pub fn active_backend(&self) -> &str {
        match (&self.fallback, self.report.degraded) {
            (Some(fb), true) => fb.name(),
            _ => self.primary.name(),
        }
    }

    /// The retry policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    fn run_fallback(
        &mut self,
        circuit: &Circuit,
        shots: Option<usize>,
    ) -> Option<Result<Measurements, BackendError>> {
        let fb = self.fallback.as_mut()?;
        let fb_name = fb.name().to_string();
        self.report.fallback_jobs += 1;
        let res = fb.execute(circuit, shots);
        {
            let usage = self.report.usage_mut(&fb_name);
            usage.fallback_jobs += 1;
            usage.attempts += 1;
        }
        // A fallback that keeps failing after the primary is gone leaves
        // nothing to serve from: remember the error and stop paying the
        // per-job retry/backoff tax.
        match &res {
            Ok(_) => self.fallback_consecutive_failures = 0,
            Err(e) => {
                self.fallback_consecutive_failures += 1;
                if self.report.degraded
                    && self.fallback_consecutive_failures
                        >= self.policy.max_consecutive_failures.max(1)
                {
                    self.terminal_error = Some(e.clone());
                }
            }
        }
        Some(res)
    }

    /// Submits one job: validate, retry the primary with backoff, then
    /// degrade to the fallback if the primary keeps failing.
    ///
    /// # Errors
    ///
    /// Returns the validation error; [`BackendError::DeadlineExceeded`]
    /// when a deadline budget (see [`ResilientExecutor::with_deadline`])
    /// cannot cover the next backoff and no fallback can serve the job
    /// instead; [`BackendError::CircuitOpen`] when
    /// the health layer short-circuited the primary and there is no
    /// fallback; or the last [`BackendError`] once the retry budget is
    /// exhausted and no fallback is available (or the fallback itself
    /// fails).
    pub fn execute(
        &mut self,
        circuit: &Circuit,
        shots: Option<usize>,
    ) -> Result<Measurements, BackendError> {
        let job = self.job_index;
        self.job_index += 1;
        self.report.jobs += 1;
        let primary_name = self.primary.name().to_string();
        // Validation failures are deterministic — retries and fallbacks
        // (same register/coupling) would fail identically.
        if let Err(e) = self.primary.validate(circuit) {
            self.report.usage_mut(&primary_name).validation_failures += 1;
            return Err(e);
        }
        if let Some(err) = &self.terminal_error {
            self.report.fast_failed_jobs += 1;
            self.report.usage_mut(&primary_name).fast_failed_jobs += 1;
            return Err(err.clone());
        }
        if self.short_circuited {
            self.report.short_circuited_jobs += 1;
            return match self.run_fallback(circuit, shots) {
                Some(res) => res,
                None => Err(BackendError::CircuitOpen {
                    backend: self.primary.name().to_string(),
                }),
            };
        }
        if self.report.degraded {
            if let Some(res) = self.run_fallback(circuit, shots) {
                return res;
            }
        }
        let max_attempts = self.policy.max_attempts.max(1);
        let mut last_err = None;
        for attempt in 0..max_attempts {
            self.report.attempts += 1;
            self.report.usage_mut(&primary_name).attempts += 1;
            match self.primary.execute(circuit, shots) {
                Ok(m) => {
                    self.consecutive_failures = 0;
                    if let (Some(req), Some(used)) = (shots, m.shots_used) {
                        self.report.shot_shortfall += req.saturating_sub(used);
                    }
                    return Ok(m);
                }
                Err(e) => {
                    self.report.failures.push(FailureRecord {
                        job,
                        attempt: attempt + 1,
                        error: e.clone(),
                    });
                    if !e.is_retryable() {
                        // Deterministic mid-execution failure: retrying is
                        // pointless, but the fallback backend may still
                        // serve the job (it counts toward degradation).
                        last_err = Some(e);
                        break;
                    }
                    if attempt + 1 < max_attempts {
                        let backoff = self.policy.backoff_ms(job, attempt as u32);
                        if !self.sleeper.try_sleep(backoff) {
                            // Deadline budget cannot cover this backoff:
                            // the primary's retry schedule is out of time.
                            // The fallback costs no backoff, so it may
                            // still serve the job — but the abort carries
                            // no degradation judgement about the primary.
                            let err = BackendError::DeadlineExceeded {
                                job,
                                needed_ms: backoff,
                            };
                            self.report.failures.push(FailureRecord {
                                job,
                                attempt: attempt + 1,
                                error: err.clone(),
                            });
                            self.report.deadline_exceeded_jobs += 1;
                            return match self.run_fallback(circuit, shots) {
                                Some(res) => res,
                                None => Err(err),
                            };
                        }
                        self.report.retries += 1;
                        self.report.total_backoff_ms += backoff;
                        {
                            let usage = self.report.usage_mut(&primary_name);
                            usage.retries += 1;
                            usage.backoff_ms += backoff;
                        }
                    }
                    last_err = Some(e);
                }
            }
        }
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.policy.max_consecutive_failures.max(1) {
            self.report.degraded = true;
            if self.fallback.is_none() {
                // Nothing left to serve from: future jobs fast-fail with
                // this error instead of re-paying retries and backoff.
                self.terminal_error = last_err.clone();
            }
        }
        match self.run_fallback(circuit, shots) {
            Some(res) => res,
            // `last_err` is always set here: the loop above runs at least
            // once and only exits with an error recorded.
            None => Err(last_err.unwrap_or(BackendError::InvalidConfig {
                reason: "retry loop exited without attempting".into(),
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnat_noise::backend::SimulatorBackend;
    use qnat_noise::fault::{FaultSpec, FaultyBackend};
    use qnat_noise::presets;
    use qnat_sim::gate::Gate;
    use std::time::Duration;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        c
    }

    #[test]
    fn backoff_schedule_is_bounded_and_monotone_in_expectation() {
        let p = RetryPolicy::default();
        for job in 0..20u64 {
            for retry in 0..8u32 {
                let exp = (p.base_backoff_ms << retry.min(32)).min(p.max_backoff_ms);
                let lo = (exp as f64 * (1.0 - p.jitter)).floor() as u64;
                let hi = (exp as f64 * (1.0 + p.jitter)).ceil() as u64;
                let b = p.backoff_ms(job, retry);
                assert!(
                    (lo..=hi).contains(&b),
                    "job {job} retry {retry}: {b} outside [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn backoff_never_exceeds_documented_ceiling() {
        // Regression: jitter used to apply *after* the max_backoff_ms cap,
        // so a jittered interval could overshoot the ceiling by up to
        // jitter×. The cap is a hard bound on the final value.
        let p = RetryPolicy {
            base_backoff_ms: 1_000,
            max_backoff_ms: 4_000,
            jitter: 0.25,
            ..RetryPolicy::default()
        };
        let mut saturated_draws = 0u32;
        for job in 0..200u64 {
            for retry in 0..10u32 {
                let b = p.backoff_ms(job, retry);
                assert!(
                    b <= p.max_backoff_ms,
                    "job {job} retry {retry}: {b} > cap {}",
                    p.max_backoff_ms
                );
                if retry >= 2 && b == p.max_backoff_ms {
                    saturated_draws += 1;
                }
            }
        }
        // Roughly half of the capped-exponent draws jitter upward and
        // clamp exactly onto the ceiling; if none do, the cap is not
        // actually being exercised.
        assert!(saturated_draws > 100, "cap never binds: {saturated_draws}");
    }

    #[test]
    fn thread_sleeper_executor_sleeps_exactly_the_reported_backoff() {
        // Same faulty schedule through a virtual and a wall-clock
        // executor: identical reports, identical accounted backoff, and
        // the wall-clock run measurably elapses.
        let policy = RetryPolicy {
            base_backoff_ms: 2,
            max_backoff_ms: 8,
            ..RetryPolicy::default()
        };
        let make = |sleeper: Box<dyn Sleeper>| {
            ResilientExecutor::new(
                Box::new(FaultyBackend::new(
                    SimulatorBackend::new(0),
                    FaultSpec::transient(0.5, 21),
                )),
                policy.clone(),
            )
            .with_sleeper(sleeper)
        };
        let mut virt = make(Box::<VirtualSleeper>::default());
        let mut real = make(Box::<ThreadSleeper>::default());
        let start = std::time::Instant::now();
        for _ in 0..20 {
            let _ = virt.execute(&bell(), None);
            let _ = real.execute(&bell(), None);
        }
        let elapsed = start.elapsed();
        assert_eq!(virt.report(), real.report());
        assert_eq!(virt.slept_ms(), virt.report().total_backoff_ms);
        assert_eq!(real.slept_ms(), real.report().total_backoff_ms);
        assert!(real.slept_ms() > 0, "some retries must have backed off");
        assert!(
            elapsed >= Duration::from_millis(real.slept_ms()),
            "wall clock {elapsed:?} < accounted sleep {} ms",
            real.slept_ms()
        );
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_varied() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ms(3, 1), p.backoff_ms(3, 1));
        let draws: Vec<u64> = (0..16).map(|j| p.backoff_ms(j, 1)).collect();
        let distinct: std::collections::HashSet<u64> = draws.iter().copied().collect();
        assert!(distinct.len() > 8, "jitter should vary across jobs: {draws:?}");
    }

    #[test]
    fn clean_backend_needs_one_attempt_per_job() {
        let mut ex =
            ResilientExecutor::new(Box::new(SimulatorBackend::new(0)), RetryPolicy::default());
        for _ in 0..5 {
            ex.execute(&bell(), None).unwrap();
        }
        let r = ex.report();
        assert_eq!((r.jobs, r.attempts, r.retries), (5, 5, 0));
        assert!(!r.degraded && r.failures.is_empty());
    }

    #[test]
    fn transient_faults_are_retried_to_success() {
        // 30% transient faults, 4 attempts: P(all 4 fail) ≈ 0.8% per job.
        let faulty = FaultyBackend::new(SimulatorBackend::new(0), FaultSpec::transient(0.3, 11));
        let mut ex = ResilientExecutor::new(Box::new(faulty), RetryPolicy::default());
        let mut ok = 0;
        for _ in 0..40 {
            if ex.execute(&bell(), None).is_ok() {
                ok += 1;
            }
        }
        let r = ex.report();
        assert!(ok >= 38, "retries should absorb most faults: {ok}/40");
        assert!(r.retries > 0, "some retries must have happened");
        assert_eq!(r.retries as u64, r.failures.iter().filter(|f| f.attempt < ex.policy.max_attempts).count() as u64);
        assert!(r.total_backoff_ms > 0);
    }

    #[test]
    fn validation_errors_do_not_consume_attempts() {
        let mut ex =
            ResilientExecutor::new(Box::new(SimulatorBackend::new(0)), RetryPolicy::default());
        let mut c = Circuit::new(1);
        c.push(Gate::ry(0, f64::NAN));
        let err = ex.execute(&c, None).unwrap_err();
        assert!(matches!(err, BackendError::NonFiniteParameter { .. }));
        assert_eq!(ex.report().attempts, 0);
        assert_eq!(ex.report().retries, 0);
    }

    #[test]
    fn always_failing_primary_degrades_to_fallback() {
        let broken = FaultyBackend::new(SimulatorBackend::new(0), FaultSpec::transient(1.0, 0));
        let mut ex = ResilientExecutor::with_fallback(
            Box::new(broken),
            Box::new(SimulatorBackend::new(1)),
            RetryPolicy {
                max_attempts: 2,
                max_consecutive_failures: 3,
                ..RetryPolicy::default()
            },
        );
        for job in 0..6 {
            let m = ex.execute(&bell(), None).unwrap();
            assert_eq!(m.expectations.len(), 2, "job {job} still served");
        }
        let r = ex.report();
        assert!(r.degraded, "3 consecutive exhausted jobs must degrade");
        assert_eq!(r.fallback_jobs, 6, "every job fell back");
        // After degradation (job 3 onward) the primary is never attempted:
        // 3 jobs × 2 attempts, then zero.
        assert_eq!(r.attempts, 6);
        assert_eq!(ex.active_backend(), "statevector-simulator");
    }

    #[test]
    fn exhausted_retries_without_fallback_return_last_error() {
        let broken = FaultyBackend::new(SimulatorBackend::new(0), FaultSpec::transient(1.0, 0));
        let mut ex = ResilientExecutor::new(
            Box::new(broken),
            RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
        );
        let err = ex.execute(&bell(), None).unwrap_err();
        assert!(err.is_retryable(), "last error surfaced: {err}");
        assert_eq!(ex.report().attempts, 3);
        assert_eq!(ex.report().failures.len(), 3);
        assert!(!ex.report().degraded, "no fallback → no degradation");
    }

    #[test]
    fn fallback_free_outage_fast_fails_after_terminal_degradation() {
        // Regression: a permanently-failed executor with no fallback used
        // to re-pay the full retry/backoff tax on every subsequent job.
        let broken = FaultyBackend::new(SimulatorBackend::new(0), FaultSpec::transient(1.0, 0));
        let mut ex = ResilientExecutor::new(
            Box::new(broken),
            RetryPolicy {
                max_attempts: 2,
                max_consecutive_failures: 2,
                ..RetryPolicy::default()
            },
        );
        for _ in 0..2 {
            assert!(ex.execute(&bell(), None).is_err());
        }
        let paid = (ex.report().attempts, ex.report().total_backoff_ms);
        assert_eq!(paid.0, 4, "2 jobs × 2 attempts before terminal degradation");
        assert!(ex.is_degraded());
        for _ in 0..10 {
            let err = ex.execute(&bell(), None).unwrap_err();
            assert!(err.is_retryable(), "terminal error is the last real one: {err}");
        }
        let r = ex.report();
        assert_eq!(r.fast_failed_jobs, 10);
        assert_eq!(
            (r.attempts, r.total_backoff_ms),
            paid,
            "fast-failed jobs pay no attempts and no backoff"
        );
    }

    #[test]
    fn dead_fallback_becomes_terminal_too() {
        // Primary and fallback both permanently down: after degradation
        // plus max_consecutive_failures failed fallback jobs, the
        // executor stops driving either backend.
        let policy = RetryPolicy {
            max_attempts: 2,
            max_consecutive_failures: 2,
            ..RetryPolicy::default()
        };
        let mut ex = ResilientExecutor::with_fallback(
            Box::new(FaultyBackend::new(
                SimulatorBackend::new(0),
                FaultSpec::transient(1.0, 0),
            )),
            Box::new(FaultyBackend::new(
                SimulatorBackend::new(1),
                FaultSpec::transient(1.0, 1),
            )),
            policy,
        );
        for _ in 0..8 {
            assert!(ex.execute(&bell(), None).is_err());
        }
        let r = ex.report();
        assert!(r.degraded);
        assert!(r.fast_failed_jobs > 0, "dead fallback must go terminal");
        // Attempts stop growing once terminal.
        let attempts = r.attempts;
        let fallbacks = r.fallback_jobs;
        assert!(ex.execute(&bell(), None).is_err());
        assert_eq!(ex.report().attempts, attempts);
        assert_eq!(ex.report().fallback_jobs, fallbacks);
    }

    #[test]
    fn short_circuit_serves_from_fallback_without_primary_attempts() {
        let mut ex = ResilientExecutor::with_fallback(
            Box::new(FaultyBackend::new(
                SimulatorBackend::new(0),
                FaultSpec::transient(1.0, 0),
            )),
            Box::new(SimulatorBackend::new(1)),
            RetryPolicy::default(),
        );
        ex.short_circuit_primary();
        let m = ex.execute(&bell(), None).unwrap();
        assert_eq!(m.expectations.len(), 2);
        let r = ex.report();
        assert_eq!((r.attempts, r.retries, r.total_backoff_ms), (0, 0, 0));
        assert_eq!((r.short_circuited_jobs, r.fallback_jobs), (1, 1));
        assert!(!r.degraded, "short-circuiting is not a degradation verdict");
    }

    #[test]
    fn short_circuit_without_fallback_is_circuit_open() {
        let mut ex =
            ResilientExecutor::new(Box::new(SimulatorBackend::new(0)), RetryPolicy::default());
        ex.short_circuit_primary();
        let err = ex.execute(&bell(), None).unwrap_err();
        assert!(matches!(err, BackendError::CircuitOpen { .. }), "{err}");
        assert!(!err.is_retryable());
        assert_eq!(ex.report().attempts, 0);
    }

    #[test]
    fn deadline_budget_aborts_backoff_with_deadline_exceeded() {
        use crate::health::DeadlineBudget;
        let broken = FaultyBackend::new(SimulatorBackend::new(0), FaultSpec::transient(1.0, 0));
        let mut ex = ResilientExecutor::new(
            Box::new(broken),
            RetryPolicy {
                max_attempts: 4,
                base_backoff_ms: 1_000,
                jitter: 0.0,
                ..RetryPolicy::default()
            },
        )
        .with_deadline(DeadlineBudget::new(1_500));
        let err = ex.execute(&bell(), None).unwrap_err();
        assert!(matches!(err, BackendError::DeadlineExceeded { .. }), "{err}");
        let r = ex.report();
        // First backoff (1000 ms) fits the 1500 ms budget; the second
        // (2000 ms) does not, so the job stops after two attempts.
        assert_eq!((r.attempts, r.retries), (2, 1));
        assert_eq!(r.total_backoff_ms, 1_000);
        assert_eq!(r.deadline_exceeded_jobs, 1);
        assert!(
            r.total_backoff_ms <= 1_500,
            "accounted backoff stays within budget"
        );
        assert!(!r.degraded, "a deadline abort says nothing about backend health");
    }

    #[test]
    fn deadline_abort_is_rescued_by_the_fallback() {
        use crate::health::DeadlineBudget;
        let broken = FaultyBackend::new(SimulatorBackend::new(0), FaultSpec::transient(1.0, 0));
        let mut ex = ResilientExecutor::with_fallback(
            Box::new(broken),
            Box::new(SimulatorBackend::new(1)),
            RetryPolicy {
                max_attempts: 4,
                base_backoff_ms: 1_000,
                jitter: 0.0,
                ..RetryPolicy::default()
            },
        )
        .with_deadline(DeadlineBudget::new(1_500));
        // The second backoff (2000 ms) blows the budget, but the fallback
        // costs no backoff — the job is still served.
        let m = ex.execute(&bell(), None).expect("fallback rescues");
        assert_eq!(m.expectations.len(), 2);
        let r = ex.report();
        assert_eq!(r.deadline_exceeded_jobs, 1);
        assert_eq!(r.fallback_jobs, 1);
        assert!(r.total_backoff_ms <= 1_500);
        assert!(!r.degraded, "a deadline abort says nothing about backend health");
    }

    #[test]
    fn shot_shortfall_is_accounted() {
        let truncating = FaultyBackend::new(
            SimulatorBackend::new(0),
            FaultSpec {
                shot_truncation_rate: 1.0,
                shot_truncation_factor: 0.25,
                ..FaultSpec::none()
            },
        );
        let mut ex = ResilientExecutor::new(Box::new(truncating), RetryPolicy::default());
        let m = ex.execute(&bell(), Some(8192)).unwrap();
        assert_eq!(m.shots_used, Some(2048));
        assert_eq!(ex.report().shot_shortfall, 8192 - 2048);
    }

    #[test]
    fn reports_merge_across_executors() {
        let mut a = ExecutionReport {
            jobs: 2,
            attempts: 3,
            retries: 1,
            total_backoff_ms: 500,
            ..ExecutionReport::default()
        };
        let b = ExecutionReport {
            jobs: 1,
            attempts: 2,
            retries: 1,
            degraded: true,
            fallback_jobs: 1,
            total_backoff_ms: 250,
            ..ExecutionReport::default()
        };
        a.merge(&b);
        assert_eq!((a.jobs, a.attempts, a.retries, a.fallback_jobs), (3, 5, 2, 1));
        assert!(a.degraded);
        assert_eq!(a.total_backoff_ms, 750);
    }

    #[test]
    fn per_backend_usage_attributes_retries_and_backoff_to_the_primary() {
        let faulty = FaultyBackend::new(SimulatorBackend::new(0), FaultSpec::transient(0.4, 7));
        let name = "statevector-simulator";
        let mut ex = ResilientExecutor::new(Box::new(faulty), RetryPolicy::default());
        for _ in 0..30 {
            let _ = ex.execute(&bell(), None);
        }
        let r = ex.report().clone();
        let usage = r.backend_usage(name);
        assert_eq!(usage.attempts, r.attempts, "all attempts ran on the primary");
        assert_eq!(usage.retries, r.retries);
        assert_eq!(usage.backoff_ms, r.total_backoff_ms);
        assert_eq!(r.retries_for(name), r.retries);
        assert_eq!(r.backoff_ms_for(name), r.total_backoff_ms);
        assert!(r.retries > 0, "40% faults must retry");
        assert_eq!(r.backend_keys().collect::<Vec<_>>(), vec![name]);
        // Unknown keys read as zeroes, not panics.
        assert_eq!(r.backend_usage("nonexistent"), BackendUsage::default());
    }

    #[test]
    fn per_backend_usage_splits_primary_and_fallback() {
        use qnat_noise::backend::{EmulatorBackend, NoiseModelBackend};
        let view = presets::santiago().subdevice(&[0, 1]).unwrap();
        let broken = FaultyBackend::new(
            EmulatorBackend::new(&view, 0).unwrap(),
            FaultSpec::transient(1.0, 0),
        );
        let fallback = NoiseModelBackend::new(&view, 1).unwrap();
        let primary_key = broken.name().to_string();
        let fallback_key = fallback.name().to_string();
        let mut ex = ResilientExecutor::with_fallback(
            Box::new(broken),
            Box::new(fallback),
            RetryPolicy {
                max_attempts: 2,
                max_consecutive_failures: 2,
                ..RetryPolicy::default()
            },
        );
        for _ in 0..5 {
            ex.execute(&bell(), None).unwrap();
        }
        let r = ex.report();
        let primary = r.backend_usage(&primary_key);
        let fb = r.backend_usage(&fallback_key);
        assert_eq!(primary.attempts, r.attempts, "primary attempts attributed");
        assert_eq!(primary.fallback_jobs, 0);
        assert_eq!(fb.fallback_jobs, 5, "every job was served by the fallback");
        assert_eq!(fb.attempts, 5);
        assert_eq!(fb.retries, 0, "fallback serves are single-shot");
    }

    #[test]
    fn per_backend_usage_counts_validation_failures() {
        let mut ex =
            ResilientExecutor::new(Box::new(SimulatorBackend::new(0)), RetryPolicy::default());
        let mut c = Circuit::new(1);
        c.push(Gate::ry(0, f64::NAN));
        assert!(ex.execute(&c, None).is_err());
        assert!(ex.execute(&bell(), None).is_ok());
        let r = ex.report();
        assert_eq!(r.validation_failures_for("statevector-simulator"), 1);
        assert_eq!(r.backend_usage("statevector-simulator").attempts, 1);
    }

    #[test]
    fn per_backend_usage_counts_fast_fails() {
        let broken = FaultyBackend::new(SimulatorBackend::new(0), FaultSpec::transient(1.0, 0));
        let mut ex = ResilientExecutor::new(
            Box::new(broken),
            RetryPolicy {
                max_attempts: 1,
                max_consecutive_failures: 1,
                ..RetryPolicy::default()
            },
        );
        assert!(ex.execute(&bell(), None).is_err());
        for _ in 0..3 {
            assert!(ex.execute(&bell(), None).is_err());
        }
        assert_eq!(ex.report().fast_fails_for("statevector-simulator"), 3);
    }

    #[test]
    fn per_backend_usage_merges_by_key() {
        let mut a = ExecutionReport::default();
        a.usage_mut("emu").attempts = 3;
        a.usage_mut("emu").retries = 1;
        let mut b = ExecutionReport::default();
        b.usage_mut("emu").attempts = 2;
        b.usage_mut("emu").backoff_ms = 40;
        b.usage_mut("sim").fallback_jobs = 1;
        a.merge(&b);
        assert_eq!(a.backend_usage("emu").attempts, 5);
        assert_eq!(a.backend_usage("emu").retries, 1);
        assert_eq!(a.backend_usage("emu").backoff_ms, 40);
        assert_eq!(a.backend_usage("sim").fallback_jobs, 1);
        assert_eq!(a.backend_keys().collect::<Vec<_>>(), vec!["emu", "sim"]);
    }

    #[test]
    fn noise_model_fallback_keeps_serving_hardware_jobs() {
        // Hardware emulator that always times out degrades to the
        // noise-model backend, which still yields physical expectations.
        use qnat_noise::backend::{EmulatorBackend, NoiseModelBackend};
        let view = presets::santiago().subdevice(&[0, 1]).unwrap();
        let hw = FaultyBackend::new(
            EmulatorBackend::new(&view, 0).unwrap(),
            FaultSpec {
                timeout_rate: 1.0,
                ..FaultSpec::none()
            },
        );
        let mut ex = ResilientExecutor::with_fallback(
            Box::new(hw),
            Box::new(NoiseModelBackend::new(&view, 1).unwrap()),
            RetryPolicy::fail_fast(),
        );
        let m = ex.execute(&bell(), None).unwrap();
        assert!(m.expectations.iter().all(|z| z.is_finite() && z.abs() <= 1.0));
        assert!(ex.is_degraded());
        assert!(ex.active_backend().starts_with("noise-model"));
    }
}
