//! # qnat-core — QuantumNAT: noise-aware training for robust QNNs
//!
//! The paper's primary contribution: a three-stage pipeline that makes
//! quantum neural networks robust to realistic quantum noise.
//!
//! 1. **Post-measurement normalization** ([`normalize`]) — per-qubit batch
//!    normalization of measurement outcomes, cancelling the `γ·y + β`
//!    linear noise map of Theorem 3.1.
//! 2. **Noise injection** ([`model::NoiseSource`]) — error-gate insertion
//!    sampled from real device noise models into the basis-compiled
//!    circuit during training, plus readout-error emulation (alternatives:
//!    outcome / rotation-angle Gaussian perturbation, Fig. 7).
//! 3. **Post-measurement quantization** ([`forward::QuantizeSpec`]) —
//!    clipping + uniform quantization of outcomes with a straight-through
//!    estimator and a quadratic centroid penalty.
//!
//! [`model::Qnn`] implements the multi-block architecture of Fig. 2;
//! [`mod@train`] the Adam/warmup-cosine training loop; [`mod@infer`] the
//! noise-free, Pauli-model and hardware-emulator inference pipelines;
//! [`executor`] resilient execution (retry/backoff and graceful
//! degradation to the noise-model simulator); [`batch`] worker-pool
//! parallel job submission over per-job resilient executors; [`health`]
//! fleet-wide circuit breaking, half-open recovery probes and deadline
//! budgets over the batch pool; [`mod@time`] the virtual/real clocks the
//! retry machinery runs on; [`mitigate`] zero-noise extrapolation
//! (Table 4).
//!
//! ## Example
//!
//! ```
//! use qnat_core::model::{Qnn, QnnConfig};
//! use qnat_core::infer::{infer, InferenceBackend, InferenceOptions};
//! use rand::SeedableRng;
//!
//! let qnn = Qnn::new(QnnConfig::standard(16, 4, 2, 2), 0);
//! let batch = vec![vec![0.4; 16], vec![0.6; 16]];
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let out = infer(&qnn, &batch, &InferenceBackend::NoiseFree,
//!                 &InferenceOptions::default(), &mut rng).unwrap();
//! assert_eq!(out.logits.len(), 2);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod ansatz;
pub mod batch;
pub mod compile_cache;
pub mod encoder;
pub mod executor;
pub mod forward;
pub mod head;
pub mod health;
pub mod infer;
pub mod metrics;
pub mod mitigate;
pub mod model;
pub mod normalize;
pub mod sweep;
pub mod time;
pub mod train;

pub use ansatz::DesignSpace;
pub use batch::{BatchExecutor, BatchJob, BatchOutcome, JobDeadline};
pub use compile_cache::{CacheStats, PlanCache, PlanKey};
pub use executor::{
    ExecutionReport, ResilientExecutor, RetryPolicy, Sleeper, ThreadSleeper, VirtualSleeper,
};
pub use forward::{PipelineOptions, QuantizeSpec};
pub use health::{
    Admission, BreakerPolicy, BreakerSnapshot, BreakerState, CircuitBreaker, DeadlineBudget,
    DeadlinePolicy, DeadlineSleeper, HealthPolicy, HealthRegistry, JobSignal,
};
pub use infer::{
    infer, BlockPlan, InferError, InferenceBackend, InferenceOptions, NormMode, ServeBackend,
};
pub use model::{NoiseSource, Qnn, QnnConfig};
pub use train::{train, AdamConfig, TrainOptions};
