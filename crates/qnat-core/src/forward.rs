//! Differentiable training forward pass.
//!
//! Builds the full QuantumNAT pipeline on the autodiff tape for one batch:
//! quantum blocks (with noise injection and readout-error emulation),
//! post-measurement normalization, straight-through quantization with the
//! quadratic centroid penalty `‖y − Q(y)‖²` (Fig. 6), the fixed
//! classification head and softmax cross-entropy.

use crate::head::head_matrix;
use crate::model::{NoiseSource, Qnn};
use crate::normalize::NORM_EPS;
use qnat_autodiff::tape::{quantize_value, Tape, Var};
use qnat_autodiff::tensor::Tensor;
use qnat_noise::device::DeviceModel;
use rand::Rng;

/// Post-measurement quantization settings (paper §3.3; Fig. 6 uses 5 levels
/// on `[-2, 2]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizeSpec {
    /// Number of uniform levels (paper sweeps {3, 4, 5, 6}).
    pub levels: usize,
    /// Lower clip threshold.
    pub p_min: f64,
    /// Upper clip threshold.
    pub p_max: f64,
}

impl QuantizeSpec {
    /// The paper's default range `[-2, 2]` with the given level count.
    pub fn levels(levels: usize) -> QuantizeSpec {
        QuantizeSpec {
            levels,
            p_min: -2.0,
            p_max: 2.0,
        }
    }
}

/// Pipeline configuration shared by training and evaluation.
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions<'a> {
    /// Noise source injected into quantum blocks during training.
    pub noise: NoiseSource<'a>,
    /// Device whose readout error is emulated on measurement outcomes
    /// (training-time readout injection, §3.2).
    pub readout: Option<&'a DeviceModel>,
    /// Enable post-measurement normalization between blocks.
    pub normalize: bool,
    /// Enable post-measurement quantization between blocks.
    pub quantize: Option<QuantizeSpec>,
    /// Weight λ of the quantization penalty loss.
    pub quant_penalty: f64,
    /// Also normalize/quantize the *last* block's outcomes (used for
    /// fully-quantum single-block models, Appendix A.3.3). The paper's
    /// multi-block default leaves the last block raw (§4.2).
    pub process_last: bool,
}

impl Default for PipelineOptions<'_> {
    fn default() -> Self {
        PipelineOptions {
            noise: NoiseSource::None,
            readout: None,
            normalize: true,
            quantize: Some(QuantizeSpec::levels(5)),
            quant_penalty: 0.1,
            process_last: false,
        }
    }
}

impl<'a> PipelineOptions<'a> {
    /// The noise-free baseline: no normalization, no injection, no
    /// quantization.
    pub fn baseline() -> Self {
        PipelineOptions {
            noise: NoiseSource::None,
            readout: None,
            normalize: false,
            quantize: None,
            quant_penalty: 0.0,
            process_last: false,
        }
    }
}

/// Output of one training forward/backward pass.
#[derive(Debug, Clone)]
pub struct TrainStep {
    /// Total loss (cross-entropy + λ·penalty).
    pub loss: f64,
    /// Cross-entropy part.
    pub ce_loss: f64,
    /// Quantization penalty part (before λ).
    pub penalty: f64,
    /// Softmax probabilities `[batch, classes]`.
    pub probs: Tensor,
    /// Gradient w.r.t. the QNN's global parameter vector.
    pub grads: Vec<f64>,
}

/// Applies normalization on the tape: `(x − μ) / √(Var + ε)` per column.
fn tape_normalize(tape: &mut Tape, x: Var) -> Var {
    let b = tape.value(x).shape()[0];
    let mu = tape.mean_axis0(x);
    let mub = tape.broadcast0(mu, b);
    let centered = tape.sub(x, mub);
    let var = tape.var_axis0(x);
    let var_eps = tape.add_scalar(var, NORM_EPS);
    let sd = tape.sqrt(var_eps);
    let sdb = tape.broadcast0(sd, b);
    tape.div(centered, sdb)
}

/// Runs the full differentiable pipeline on one batch and returns loss,
/// probabilities and parameter gradients.
///
/// # Panics
///
/// Panics if feature/label shapes disagree with the model.
pub fn train_forward<R: Rng>(
    qnn: &Qnn,
    features: &[Vec<f64>],
    labels: &[usize],
    opts: &PipelineOptions<'_>,
    rng: &mut R,
) -> TrainStep {
    assert_eq!(features.len(), labels.len(), "batch size mismatch");
    assert!(!features.is_empty(), "empty batch");
    let batch = features.len();
    let n_q = qnn.config().n_qubits;
    let n_blocks = qnn.config().n_blocks;

    let mut tape = Tape::new();
    let mut x = tape.input(Tensor::from_rows(features));
    let mut param_vars: Vec<Var> = Vec::with_capacity(n_blocks);
    let mut penalty: Option<Var> = None;

    for bi in 0..n_blocks {
        let pv = tape.input(Tensor::vector(qnn.block_params(bi).to_vec()));
        param_vars.push(pv);
        // Evaluate the block per sample with Jacobians.
        let inputs_t = tape.value(x).clone();
        let n_in = inputs_t.shape()[1];
        let mut out_rows = Vec::with_capacity(batch);
        let mut jx = Vec::with_capacity(batch);
        let mut jp = Vec::with_capacity(batch);
        for i in 0..batch {
            let row: Vec<f64> = (0..n_in).map(|k| inputs_t.get2(i, k)).collect();
            let ev = qnn.eval_block(bi, &row, &opts.noise, opts.readout, true, rng);
            out_rows.push(ev.outputs);
            let jx_flat: Vec<f64> = ev.jac_inputs.iter().flatten().copied().collect();
            let jp_flat: Vec<f64> = ev.jac_params.iter().flatten().copied().collect();
            jx.push(Tensor::new(jx_flat, vec![n_q, n_in]));
            jp.push(Tensor::new(
                jp_flat,
                vec![n_q, qnn.block_params(bi).len()],
            ));
        }
        x = tape.quantum(x, pv, Tensor::from_rows(&out_rows), jx, jp);

        let last = bi + 1 == n_blocks;
        if last && !opts.process_last {
            break;
        }
        // Normalization and quantization are applied to intermediate
        // blocks only (§4.2).
        if opts.normalize {
            x = tape_normalize(&mut tape, x);
        }
        if let NoiseSource::OutcomePerturb { mu, sigma } = opts.noise {
            let noise_rows: Vec<Vec<f64>> = (0..batch)
                .map(|_| {
                    (0..n_q)
                        .map(|_| {
                            let u1: f64 = rng.gen_range(1e-12..1.0f64);
                            let u2: f64 = rng.gen();
                            mu + sigma
                                * (-2.0 * u1.ln()).sqrt()
                                * (2.0 * std::f64::consts::PI * u2).cos()
                        })
                        .collect()
                })
                .collect();
            let nt = tape.input(Tensor::from_rows(&noise_rows));
            x = tape.add(x, nt);
        }
        if let Some(spec) = opts.quantize {
            // Penalty ‖y − Q(y)‖² with Q(y) treated as a constant target,
            // pulling outcomes toward the nearest centroid.
            let y_val = tape.value(x).clone();
            let q_const: Vec<f64> = y_val
                .data()
                .iter()
                .map(|&v| quantize_value(v, spec.levels, spec.p_min, spec.p_max))
                .collect();
            let qc = tape.input(Tensor::new(q_const, y_val.shape().to_vec()));
            let diff = tape.sub(x, qc);
            let sq = tape.mul(diff, diff);
            let pen_b = tape.mean(sq);
            penalty = Some(match penalty {
                Some(p) => tape.add(p, pen_b),
                None => pen_b,
            });
            x = tape.quantize_ste(x, spec.levels, spec.p_min, spec.p_max);
        }
    }

    let head = head_matrix(n_q, qnn.config().n_classes);
    let logits = tape.matmul_const(x, head);
    let ce = tape.softmax_cross_entropy(logits, labels);
    let loss = match penalty {
        Some(p) if opts.quant_penalty != 0.0 => {
            let scaled = tape.scale(p, opts.quant_penalty);
            tape.add(ce, scaled)
        }
        _ => ce,
    };

    let grads_all = tape.backward(loss);
    let mut grads = vec![0.0; qnn.n_params()];
    for (bi, &pv) in param_vars.iter().enumerate() {
        let g = grads_all.get(pv, &tape);
        let off = qnn.block_offset(bi);
        grads[off..off + g.len()].copy_from_slice(g.data());
    }
    let pen_val = penalty.map(|p| tape.value(p).item()).unwrap_or(0.0);
    TrainStep {
        loss: tape.value(loss).item(),
        ce_loss: tape.value(ce).item(),
        penalty: pen_val,
        probs: tape
            .aux(ce)
            .expect("cross-entropy stores probabilities")
            .clone(),
        grads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::QnnConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_batch() -> (Vec<Vec<f64>>, Vec<usize>) {
        let features: Vec<Vec<f64>> = (0..8)
            .map(|i| {
                (0..16)
                    .map(|k| ((i * 16 + k) as f64 * 0.37).sin().abs())
                    .collect()
            })
            .collect();
        let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
        (features, labels)
    }

    #[test]
    fn forward_produces_finite_loss_and_grads() {
        let qnn = Qnn::new(QnnConfig::standard(16, 4, 2, 2), 1);
        let (features, labels) = toy_batch();
        let mut rng = StdRng::seed_from_u64(0);
        let step = train_forward(
            &qnn,
            &features,
            &labels,
            &PipelineOptions::default(),
            &mut rng,
        );
        assert!(step.loss.is_finite());
        assert!(step.ce_loss > 0.0);
        assert_eq!(step.grads.len(), qnn.n_params());
        assert!(step.grads.iter().any(|g| g.abs() > 1e-9), "dead gradients");
        assert_eq!(step.probs.shape(), &[8, 4]);
    }

    #[test]
    fn gradients_match_finite_difference_baseline_pipeline() {
        // Deterministic pipeline (no noise, no quantization) so finite
        // differences are exact.
        let mut qnn = Qnn::new(QnnConfig::standard(16, 4, 2, 1), 2);
        let (features, labels) = toy_batch();
        let opts = PipelineOptions {
            noise: NoiseSource::None,
            readout: None,
            normalize: true,
            quantize: None,
            quant_penalty: 0.0,
            process_last: false,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let step = train_forward(&qnn, &features, &labels, &opts, &mut rng);
        let base = qnn.parameters().to_vec();
        let eps = 1e-5;
        for j in [0usize, 3, 11, base.len() - 1] {
            let mut pp = base.clone();
            pp[j] += eps;
            qnn.set_parameters(&pp);
            let lp = train_forward(&qnn, &features, &labels, &opts, &mut rng).loss;
            let mut pm = base.clone();
            pm[j] -= eps;
            qnn.set_parameters(&pm);
            let lm = train_forward(&qnn, &features, &labels, &opts, &mut rng).loss;
            qnn.set_parameters(&base);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (step.grads[j] - fd).abs() < 1e-4,
                "param {j}: autodiff {} vs fd {fd}",
                step.grads[j]
            );
        }
    }

    #[test]
    fn quantization_penalty_reported() {
        let qnn = Qnn::new(QnnConfig::standard(16, 4, 2, 1), 3);
        let (features, labels) = toy_batch();
        let mut rng = StdRng::seed_from_u64(1);
        let opts = PipelineOptions {
            quantize: Some(QuantizeSpec::levels(5)),
            quant_penalty: 0.5,
            ..PipelineOptions::default()
        };
        let step = train_forward(&qnn, &features, &labels, &opts, &mut rng);
        assert!(step.penalty >= 0.0);
        assert!((step.loss - (step.ce_loss + 0.5 * step.penalty)).abs() < 1e-10);
    }

    #[test]
    fn single_block_model_skips_norm_and_quant() {
        // Fully-quantum model (Appendix A.3.3): one block — pipeline has no
        // intermediate processing, so penalty must be zero.
        let qnn = Qnn::new(QnnConfig::standard(16, 4, 1, 2), 4);
        let (features, labels) = toy_batch();
        let mut rng = StdRng::seed_from_u64(2);
        let step = train_forward(
            &qnn,
            &features,
            &labels,
            &PipelineOptions::default(),
            &mut rng,
        );
        assert_eq!(step.penalty, 0.0);
    }
}
