//! Inference pipelines: noise-free, noise-model-based and (emulated)
//! hardware deployment.
//!
//! Deployment follows the paper's flow: the logical model is transpiled for
//! the target device (trivial layout at Qiskit-style optimization level ≤ 2,
//! noise-adaptive layout at level 3 — Table 7), run on the density-matrix
//! hardware emulator with readout error and optional finite shots, and the
//! measurement outcomes pass through post-measurement normalization (batch
//! or validation statistics) and quantization before re-upload.
//!
//! Three deployment shapes exist:
//!
//! * [`Qnn::deploy`] — the direct emulator path, which surfaces any
//!   [`BackendError`] to the caller.
//! * [`Qnn::deploy_resilient`] — every block runs behind a
//!   [`ResilientExecutor`] (retry/backoff, optional fault injection, and
//!   graceful degradation from the hardware emulator to the Pauli
//!   noise-model simulator). [`infer`] surfaces the merged
//!   [`ExecutionReport`] on the result.
//! * [`Qnn::deploy_batch`] — like `deploy_resilient`, but each block's
//!   whole batch of circuits is fanned across a
//!   [`BatchExecutor`](crate::batch::BatchExecutor) worker pool. Per-job
//!   seeding keeps results bitwise identical to the single-worker path
//!   regardless of pool size.
//!
//! The whole pipeline is fallible: [`infer`] returns [`InferError`] instead
//! of panicking, so a flaky backend can never take down a deployment loop.

use crate::batch::{BatchExecutor, BatchJob};
use crate::executor::{splitmix64, ExecutionReport, ResilientExecutor, RetryPolicy};
use crate::forward::QuantizeSpec;
use crate::health::{HealthPolicy, HealthRegistry};
use crate::head::apply_head;
use crate::model::{NoiseSource, Qnn};
use crate::normalize::{try_normalize_batch, NormError, NormStats};
use qnat_autodiff::tape::quantize_value;
use qnat_compiler::mapping::{noise_adaptive_layout, Layout};
use qnat_compiler::symbolic::{lower_symbolic, SymbolicLowered};
use qnat_compiler::transpile::route_and_window;
use qnat_noise::backend::{BackendError, EmulatorBackend, NoiseModelBackend, QuantumBackend};
use qnat_noise::device::{DeviceModel, InvalidDeviceError};
use qnat_noise::emulator::HardwareEmulator;
use qnat_noise::fault::{FaultSpec, FaultyBackend};
use qnat_noise::trajectory::TrajectoryEmulator;
use rand::Rng;
use std::cell::RefCell;
use std::error::Error;
use std::fmt;

pub use qnat_noise::backend::{DEFAULT_TRAJECTORIES, DENSITY_MATRIX_LIMIT};

/// How normalization statistics are obtained at inference time.
#[derive(Debug, Clone, PartialEq)]
pub enum NormMode {
    /// No normalization (the raw baseline).
    Off,
    /// Each batch uses its own statistics (the paper's default).
    BatchStats,
    /// Fixed per-block statistics profiled on the validation set
    /// (Appendix A.3.7 — for small test batches).
    FixedStats(Vec<NormStats>),
}

/// Inference-time pipeline settings.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceOptions {
    /// Normalization mode between blocks.
    pub normalize: NormMode,
    /// Quantization between blocks.
    pub quantize: Option<QuantizeSpec>,
    /// Also process the last block's outcomes (fully-quantum models,
    /// Appendix A.3.3).
    pub process_last: bool,
}

impl Default for InferenceOptions {
    fn default() -> Self {
        InferenceOptions {
            normalize: NormMode::BatchStats,
            quantize: Some(QuantizeSpec::levels(5)),
            process_last: false,
        }
    }
}

impl InferenceOptions {
    /// Raw pipeline: no normalization, no quantization.
    pub fn baseline() -> Self {
        InferenceOptions {
            normalize: NormMode::Off,
            quantize: None,
            process_last: false,
        }
    }
}

/// Why an inference run could not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub enum InferError {
    /// A backend job failed past every retry and fallback.
    Backend(BackendError),
    /// Normalization statistics could not be computed (empty/ragged batch
    /// or non-finite outcomes leaking from a fault).
    Norm(NormError),
    /// `FixedStats` supplied the wrong number of per-block statistics.
    StatsMismatch {
        /// Blocks that needed statistics.
        expected: usize,
        /// Statistics provided.
        got: usize,
    },
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::Backend(e) => write!(f, "backend failure: {e}"),
            InferError::Norm(e) => write!(f, "normalization failure: {e}"),
            InferError::StatsMismatch { expected, got } => write!(
                f,
                "need one NormStats per processed block ({expected}), got {got}"
            ),
        }
    }
}

impl Error for InferError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            InferError::Backend(e) => Some(e),
            InferError::Norm(e) => Some(e),
            InferError::StatsMismatch { .. } => None,
        }
    }
}

impl From<BackendError> for InferError {
    fn from(e: BackendError) -> Self {
        InferError::Backend(e)
    }
}

impl From<NormError> for InferError {
    fn from(e: NormError) -> Self {
        InferError::Norm(e)
    }
}

/// Result of an inference run.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// Class logits per sample.
    pub logits: Vec<Vec<f64>>,
    /// Raw (pre-normalization) measurement outcomes of each block:
    /// `block_outputs[block][sample][qubit]`.
    pub block_outputs: Vec<Vec<Vec<f64>>>,
    /// Cumulative execution report of the resilient executors (present
    /// for [`InferenceBackend::Resilient`], [`InferenceBackend::Batch`]
    /// and reporting [`InferenceBackend::Serving`] deployments — retries,
    /// backoff and degradation events since the model was deployed).
    pub report: Option<ExecutionReport>,
}

impl InferenceResult {
    /// Accuracy against labels.
    pub fn accuracy(&self, labels: &[usize]) -> f64 {
        crate::metrics::accuracy(&self.logits, labels)
    }
}

/// The physical backend a deployed block runs on.
#[derive(Debug, Clone)]
enum BlockEmulator {
    /// Exact density-matrix emulation (small windows).
    Density(HardwareEmulator),
    /// Monte-Carlo trajectory emulation (large windows).
    Trajectory(TrajectoryEmulator),
}

impl BlockEmulator {
    fn expect_all_z<R: Rng>(
        &self,
        c: &qnat_sim::Circuit,
        rng: &mut R,
    ) -> Result<Vec<f64>, BackendError> {
        match self {
            BlockEmulator::Density(e) => e.expect_all_z(c),
            BlockEmulator::Trajectory(e) => e.expect_all_z(c, rng),
        }
    }

    fn sampled_expect_all_z<R: Rng>(
        &self,
        c: &qnat_sim::Circuit,
        shots: usize,
        rng: &mut R,
    ) -> Result<Vec<f64>, BackendError> {
        match self {
            BlockEmulator::Density(e) => e.sampled_expect_all_z(c, shots, rng),
            BlockEmulator::Trajectory(e) => e.sampled_expect_all_z(c, shots, rng),
        }
    }
}

/// One block deployed on a device: routed, lowered and bound to a hardware
/// emulator view.
#[derive(Debug, Clone)]
pub struct DeployedBlock {
    lowered: SymbolicLowered,
    obs: Vec<usize>,
    emulator: BlockEmulator,
}

/// A QNN transpiled for a target device.
#[derive(Debug, Clone)]
pub struct DeployedQnn<'a> {
    qnn: &'a Qnn,
    blocks: Vec<DeployedBlock>,
    /// Finite-shot sampling (`None` = exact expectations, paper uses 8192).
    pub shots: Option<usize>,
}

impl DeployedQnn<'_> {
    /// Per-block expectation evaluation on the emulator.
    fn eval_block<R: Rng>(
        &self,
        block_idx: usize,
        inputs: &[f64],
        rng: &mut R,
    ) -> Result<Vec<f64>, BackendError> {
        let block = &self.qnn.blocks()[block_idx];
        let dep = &self.blocks[block_idx];
        let mut params = block.encoder.angles(inputs);
        params.extend_from_slice(self.qnn.block_params(block_idx));
        let bound = dep.lowered.bind(&params);
        let window_z = match self.shots {
            Some(s) => dep.emulator.sampled_expect_all_z(&bound, s, rng)?,
            None => dep.emulator.expect_all_z(&bound, rng)?,
        };
        Ok(dep.obs.iter().map(|&w| window_z[w]).collect())
    }
}

/// One block behind a retrying, degradable executor.
struct ResilientBlock {
    lowered: SymbolicLowered,
    obs: Vec<usize>,
    // `infer` takes the backend by shared reference while the executor
    // mutates its RNGs, job counters and report — hence interior
    // mutability. Inference is single-threaded per deployment.
    executor: RefCell<ResilientExecutor>,
}

/// A QNN deployed behind per-block [`ResilientExecutor`]s: the hardware
/// emulator as primary, the Pauli noise-model simulator as graceful
/// fallback, with optional injected faults for robustness studies.
pub struct ResilientQnn<'a> {
    qnn: &'a Qnn,
    blocks: Vec<ResilientBlock>,
    /// Finite-shot sampling (`None` = exact expectations).
    pub shots: Option<usize>,
}

impl ResilientQnn<'_> {
    fn eval_block(&self, block_idx: usize, inputs: &[f64]) -> Result<Vec<f64>, BackendError> {
        let block = &self.qnn.blocks()[block_idx];
        let dep = &self.blocks[block_idx];
        let mut params = block.encoder.angles(inputs);
        params.extend_from_slice(self.qnn.block_params(block_idx));
        let bound = dep.lowered.bind(&params);
        let m = dep.executor.borrow_mut().execute(&bound, self.shots)?;
        Ok(dep.obs.iter().map(|&w| m.expectations[w]).collect())
    }

    /// Merged execution report across all block executors (cumulative
    /// since deployment).
    pub fn report(&self) -> ExecutionReport {
        let mut merged = ExecutionReport::default();
        for b in &self.blocks {
            merged.merge(b.executor.borrow().report());
        }
        merged
    }

    /// `true` if any block has permanently degraded to its fallback.
    pub fn is_degraded(&self) -> bool {
        self.blocks.iter().any(|b| b.executor.borrow().is_degraded())
    }
}

/// One block routed and lowered for pooled (or served) submission, with
/// the device window kept so per-job backends can be built inside a worker
/// pool long after deployment.
///
/// Shared by [`Qnn::deploy_batch`] and the `qnat-serve` serving engine —
/// both obtain their plans from [`Qnn::route_plan`].
#[derive(Debug, Clone)]
pub struct BlockPlan {
    /// The routed, windowed circuit lowered to symbolic parameters.
    pub lowered: SymbolicLowered,
    /// Window indices of the observable qubits, in logical order.
    pub obs: Vec<usize>,
    /// The routed device window backends are built over.
    pub view: DeviceModel,
    /// Fusion structure of `lowered`'s template, computed once per plan
    /// (and shared across deployments on a
    /// [`PlanCache`](crate::compile_cache::PlanCache) hit): consumers
    /// evaluating bound circuits noise-free fuse through
    /// [`FusionPlan::fuse_bound`](qnat_compiler::fusion::FusionPlan)
    /// instead of re-deriving the structure per deployment.
    pub fusion: std::sync::Arc<qnat_compiler::fusion::FusionPlan>,
}

/// A QNN deployed for pooled batch submission: each block's circuits fan
/// out across a [`BatchExecutor`] worker pool, every job behind its own
/// seed-derived [`ResilientExecutor`] (hardware emulator primary, Pauli
/// noise-model fallback, optional injected faults).
///
/// Results are bitwise independent of `workers` — see the determinism
/// notes on [`crate::batch`].
pub struct BatchedQnn<'a> {
    qnn: &'a Qnn,
    blocks: Vec<BlockPlan>,
    /// Finite-shot sampling (`None` = exact expectations).
    pub shots: Option<usize>,
    policy: RetryPolicy,
    faults: Option<FaultSpec>,
    workers: usize,
    seed: u64,
    /// Opt-in fleet health: circuit breaking and/or deadline budgets
    /// ([`BatchedQnn::with_health`]).
    health: Option<HealthPolicy>,
    /// Shared breaker table. Defaults to a private registry per
    /// deployment (deterministic); [`BatchedQnn::with_health_registry`]
    /// swaps in a shared one to pool health signal across deployments.
    registry: std::sync::Arc<HealthRegistry>,
    // `infer` holds the deployment by shared reference while batch runs
    // accumulate into the report — hence interior mutability. A deployment
    // is driven from one thread; the pool lives inside `eval_block_batch`.
    report: RefCell<ExecutionReport>,
}

impl BatchedQnn<'_> {
    /// Evaluates one block for the whole batch through the worker pool.
    fn eval_block_batch(
        &self,
        block_idx: usize,
        rows: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, BackendError> {
        let block = &self.qnn.blocks()[block_idx];
        let dep = &self.blocks[block_idx];
        let jobs: Vec<BatchJob> = rows
            .iter()
            .map(|row| {
                let mut params = block.encoder.angles(row);
                params.extend_from_slice(self.qnn.block_params(block_idx));
                BatchJob {
                    circuit: dep.lowered.bind(&params),
                    shots: self.shots,
                }
            })
            .collect();
        let view = &dep.view;
        let policy = &self.policy;
        let faults = self.faults;
        let factory = move |job: u64, job_seed: u64| -> Result<ResilientExecutor, BackendError> {
            let emulator = EmulatorBackend::new(view, job_seed)?;
            let primary: Box<dyn QuantumBackend> = match faults {
                // Fault *rolls* are decorrelated per job (seed ^
                // job_seed); calibration *drift* is positioned at the
                // batch-global job index, so all per-job backends sample
                // one fleet-wide drift trajectory.
                Some(spec) => Box::new(FaultyBackend::starting_at(
                    emulator,
                    FaultSpec {
                        seed: spec.seed ^ job_seed,
                        ..spec
                    },
                    job,
                )),
                None => Box::new(emulator),
            };
            let fallback = NoiseModelBackend::new(view, job_seed ^ 0x5eed)?;
            Ok(ResilientExecutor::with_fallback(
                primary,
                Box::new(fallback),
                RetryPolicy {
                    jitter_seed: policy.jitter_seed ^ job_seed,
                    ..policy.clone()
                },
            ))
        };
        let pool_seed = splitmix64(self.seed ^ (block_idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let pool = BatchExecutor::new(self.workers, pool_seed, factory);
        let outcome = match &self.health {
            Some(health) => {
                pool.execute_with_health(&jobs, health, &self.registry, &self.breaker_key(block_idx))
            }
            None => pool.execute(&jobs),
        };
        self.report.borrow_mut().merge(&outcome.report);
        let measurements = outcome.into_measurements()?;
        Ok(measurements
            .into_iter()
            .map(|m| dep.obs.iter().map(|&w| m.expectations[w]).collect())
            .collect())
    }

    /// Cumulative merged execution report of every pooled batch run since
    /// deployment.
    pub fn report(&self) -> ExecutionReport {
        self.report.borrow().clone()
    }

    /// The configured worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enables the fleet health layer (builder style): circuit breaking
    /// and/or deadline budgets per [`HealthPolicy`]. Breakers live in this
    /// deployment's registry, keyed per block
    /// ([`BatchedQnn::breaker_key`]).
    pub fn with_health(mut self, health: HealthPolicy) -> Self {
        self.health = Some(health);
        self
    }

    /// Swaps in a shared breaker registry (builder style) so several
    /// deployments pool their health signal. Note the determinism caveat
    /// in [`crate::health`]: trips driven by another deployment's traffic
    /// arrive at nondeterministic points.
    pub fn with_health_registry(mut self, registry: std::sync::Arc<HealthRegistry>) -> Self {
        self.registry = registry;
        self
    }

    /// The registry holding this deployment's circuit breakers.
    pub fn health_registry(&self) -> &std::sync::Arc<HealthRegistry> {
        &self.registry
    }

    /// Registry key of `block_idx`'s primary-backend breaker: the routed
    /// device window is the unit that fails (and recovers) as one.
    pub fn breaker_key(&self, block_idx: usize) -> String {
        format!("emulator({})/block{}", self.blocks[block_idx].view.name(), block_idx)
    }
}

impl Qnn {
    /// Routes and lowers every block for a device without binding it to
    /// any executor — the shared front half of [`Qnn::deploy_batch`] and
    /// the `qnat-serve` serving deployment. `opt_level ≥ 3` enables the
    /// noise-adaptive initial layout (Table 7); lower levels use the
    /// trivial layout.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDeviceError`] if the device is too small.
    pub fn route_plan(
        &self,
        device: &DeviceModel,
        opt_level: u8,
    ) -> Result<Vec<BlockPlan>, InvalidDeviceError> {
        let mut plans = Vec::with_capacity(self.blocks().len());
        for block in self.blocks() {
            let (windowed, obs, view) = route_block(self, block, device, opt_level)?;
            let lowered = lower_symbolic(&windowed);
            let fusion = std::sync::Arc::new(
                qnat_compiler::fusion::FusionPlan::for_template(&lowered.circuit),
            );
            plans.push(BlockPlan {
                lowered,
                obs,
                view,
                fusion,
            });
        }
        Ok(plans)
    }

    /// Like [`Qnn::route_plan`], but memoized through a shared
    /// [`PlanCache`](crate::compile_cache::PlanCache): each block is keyed
    /// on `(logical-circuit fingerprint, device-calibration fingerprint,
    /// opt_level)` and compiled at most once per key. Repeated serving
    /// deployments of the same model on the same device skip routing,
    /// noise-adaptive layout and symbolic lowering entirely.
    ///
    /// Cache hits share the compiled plan, so they cannot change results;
    /// any calibration change (drift, rescale, recalibration) changes the
    /// device fingerprint and recompiles — the invalidation rule the
    /// level-3 noise-adaptive layout requires.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDeviceError`] if the device is too small.
    pub fn route_plan_cached(
        &self,
        device: &DeviceModel,
        opt_level: u8,
        cache: &crate::compile_cache::PlanCache,
    ) -> Result<Vec<BlockPlan>, InvalidDeviceError> {
        let device_fp = device.fingerprint();
        let mut plans = Vec::with_capacity(self.blocks().len());
        for block in self.blocks() {
            let key = crate::compile_cache::PlanKey {
                circuit: block.logical.fingerprint(),
                device: device_fp,
                opt_level,
            };
            let plan = cache.get_or_insert_with(key, || -> Result<BlockPlan, InvalidDeviceError> {
                let (windowed, obs, view) = route_block(self, block, device, opt_level)?;
                let lowered = lower_symbolic(&windowed);
                let fusion = std::sync::Arc::new(
                    qnat_compiler::fusion::FusionPlan::for_template(&lowered.circuit),
                );
                Ok(BlockPlan {
                    lowered,
                    obs,
                    view,
                    fusion,
                })
            })?;
            plans.push((*plan).clone());
        }
        Ok(plans)
    }

    /// Transpiles the model for a device. `opt_level ≥ 3` enables the
    /// noise-adaptive initial layout (Table 7); lower levels use the
    /// trivial layout.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDeviceError`] if the device is too small.
    pub fn deploy<'a>(
        &'a self,
        device: &DeviceModel,
        opt_level: u8,
    ) -> Result<DeployedQnn<'a>, InvalidDeviceError> {
        let mut blocks = Vec::with_capacity(self.blocks().len());
        for block in self.blocks() {
            let (windowed, obs, view) = route_block(self, block, device, opt_level)?;
            let emulator = if view.n_qubits() <= DENSITY_MATRIX_LIMIT {
                BlockEmulator::Density(HardwareEmulator::new(view))
            } else {
                BlockEmulator::Trajectory(
                    TrajectoryEmulator::new(view, DEFAULT_TRAJECTORIES)
                        .map_err(|e| InvalidDeviceError {
                            reason: e.to_string(),
                        })?,
                )
            };
            blocks.push(DeployedBlock {
                lowered: lower_symbolic(&windowed),
                obs,
                emulator,
            });
        }
        Ok(DeployedQnn {
            qnn: self,
            blocks,
            shots: None,
        })
    }

    /// Transpiles the model for a device and places every block behind a
    /// [`ResilientExecutor`]: the hardware emulator is the primary, the
    /// Pauli noise-model simulator over the same window is the graceful
    /// fallback, and `faults` (if given) injects the configured failure
    /// modes into the primary. `seed` drives backend sampling; each block
    /// gets a decorrelated stream.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDeviceError`] if the device is too small or a
    /// backend cannot be constructed over the routed window.
    pub fn deploy_resilient<'a>(
        &'a self,
        device: &DeviceModel,
        opt_level: u8,
        policy: RetryPolicy,
        faults: Option<FaultSpec>,
        seed: u64,
    ) -> Result<ResilientQnn<'a>, InvalidDeviceError> {
        let backend_err = |e: BackendError| InvalidDeviceError {
            reason: e.to_string(),
        };
        let mut blocks = Vec::with_capacity(self.blocks().len());
        for (bi, block) in self.blocks().iter().enumerate() {
            let (windowed, obs, view) = route_block(self, block, device, opt_level)?;
            let block_seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(bi as u64));
            let emulator = EmulatorBackend::new(&view, block_seed).map_err(backend_err)?;
            let primary: Box<dyn QuantumBackend> = match faults {
                Some(spec) => Box::new(FaultyBackend::new(
                    emulator,
                    FaultSpec {
                        seed: spec.seed.wrapping_add(bi as u64),
                        ..spec
                    },
                )),
                None => Box::new(emulator),
            };
            let fallback =
                NoiseModelBackend::new(&view, block_seed ^ 0x5eed).map_err(backend_err)?;
            blocks.push(ResilientBlock {
                lowered: lower_symbolic(&windowed),
                obs,
                executor: RefCell::new(ResilientExecutor::with_fallback(
                    primary,
                    Box::new(fallback),
                    policy.clone(),
                )),
            });
        }
        Ok(ResilientQnn {
            qnn: self,
            blocks,
            shots: None,
        })
    }

    /// Transpiles the model for pooled batch submission: at inference time
    /// every block fans its whole batch across `workers` threads, each job
    /// behind a fresh seed-derived [`ResilientExecutor`] (hardware emulator
    /// primary, Pauli noise-model fallback, `faults` injected into the
    /// primary if given). `seed` drives all per-job backend and jitter
    /// streams; results do not depend on `workers`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDeviceError`] if the device is too small.
    pub fn deploy_batch<'a>(
        &'a self,
        device: &DeviceModel,
        opt_level: u8,
        policy: RetryPolicy,
        faults: Option<FaultSpec>,
        workers: usize,
        seed: u64,
    ) -> Result<BatchedQnn<'a>, InvalidDeviceError> {
        Ok(BatchedQnn {
            qnn: self,
            blocks: self.route_plan(device, opt_level)?,
            shots: None,
            policy,
            faults,
            workers: workers.max(1),
            seed,
            health: None,
            registry: std::sync::Arc::new(HealthRegistry::new()),
            report: RefCell::new(ExecutionReport::default()),
        })
    }
}

/// Shared routing front half of both deployment paths: layout, routing,
/// window extraction.
fn route_block(
    qnn: &Qnn,
    block: &crate::model::Block,
    device: &DeviceModel,
    opt_level: u8,
) -> Result<(qnat_sim::Circuit, Vec<usize>, DeviceModel), InvalidDeviceError> {
    if qnn.config().n_qubits > device.n_qubits() {
        return Err(InvalidDeviceError {
            reason: format!(
                "model needs {} qubits, device {} has {}",
                qnn.config().n_qubits,
                device.name(),
                device.n_qubits()
            ),
        });
    }
    let layout = if opt_level >= 3 {
        noise_adaptive_layout(&block.logical, device)
    } else {
        Layout::trivial(qnn.config().n_qubits)
    };
    let (windowed, _window, obs, view) = route_and_window(&block.logical, device, &layout)?;
    Ok((windowed, obs, view))
}

/// A long-lived serving deployment [`infer`] can hand whole block batches
/// to — the seam the `qnat-serve` crate plugs its `ServeEngine` into
/// without `qnat-core` depending on it.
///
/// Implementations submit every row of the block as one job each, wait for
/// all tickets, and return per-row observable expectations in submission
/// order (completion order is the serving layer's concern, not the
/// pipeline's).
pub trait ServeBackend {
    /// Evaluates `block_idx` for every row of the batch, returning
    /// per-row observable expectations in row order.
    ///
    /// # Errors
    ///
    /// Returns the first row's [`BackendError`] if any job failed past
    /// every retry, fallback and admission decision.
    fn serve_block_batch(
        &self,
        block_idx: usize,
        rows: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, BackendError>;

    /// Cumulative merged execution report of the serving workers, if the
    /// implementation tracks one.
    fn serve_report(&self) -> Option<ExecutionReport> {
        None
    }
}

/// Which physical process produces the measurement outcomes.
pub enum InferenceBackend<'a> {
    /// Ideal statevector simulation.
    NoiseFree,
    /// The training-time stochastic Pauli model: `n_avg` gate-insertion
    /// samples averaged, plus readout emulation (Table 11's "noise model"
    /// column).
    PauliModel {
        /// Calibration model to sample errors from.
        model: &'a DeviceModel,
        /// Noise factor `T`.
        factor: f64,
        /// Number of stochastic samples to average.
        n_avg: usize,
    },
    /// The density-matrix hardware emulator ("real QC" stand-in).
    Hardware(&'a DeployedQnn<'a>),
    /// The hardware emulator behind retry/backoff executors with graceful
    /// degradation to the noise-model simulator.
    Resilient(&'a ResilientQnn<'a>),
    /// Like [`InferenceBackend::Resilient`], but whole batches are fanned
    /// across a worker pool ([`Qnn::deploy_batch`]).
    Batch(&'a BatchedQnn<'a>),
    /// A long-lived serving deployment (the `qnat-serve` engine): blocks
    /// are submitted to a persistent job queue with admission control and
    /// backpressure instead of a per-batch pool.
    Serving(&'a dyn ServeBackend),
}

/// Runs the full inference pipeline over a batch.
///
/// # Errors
///
/// Returns [`InferError`] when a backend job fails past every retry and
/// fallback, when normalization statistics cannot be computed, or when
/// `FixedStats` supplies the wrong number of per-block statistics.
pub fn infer<R: Rng>(
    qnn: &Qnn,
    features: &[Vec<f64>],
    backend: &InferenceBackend<'_>,
    opts: &InferenceOptions,
    rng: &mut R,
) -> Result<InferenceResult, InferError> {
    let n_blocks = qnn.config().n_blocks;
    if let NormMode::FixedStats(stats) = &opts.normalize {
        let needed = if opts.process_last {
            n_blocks
        } else {
            n_blocks.saturating_sub(1)
        };
        if stats.len() != needed {
            return Err(InferError::StatsMismatch {
                expected: needed,
                got: stats.len(),
            });
        }
    }
    let mut activations: Vec<Vec<f64>> = features.to_vec();
    let mut block_outputs = Vec::with_capacity(n_blocks);
    for bi in 0..n_blocks {
        // Raw outcomes for the whole batch. The batch and serving backends
        // submit all rows at once (worker pool / serve queue); the others
        // evaluate row by row.
        let raw: Vec<Vec<f64>> = if let InferenceBackend::Batch(dep) = backend {
            dep.eval_block_batch(bi, &activations)?
        } else if let InferenceBackend::Serving(dep) = backend {
            dep.serve_block_batch(bi, &activations)?
        } else {
            activations
            .iter()
            .map(|row| -> Result<Vec<f64>, InferError> {
                match backend {
                    InferenceBackend::NoiseFree => Ok(qnn
                        .eval_block(bi, row, &NoiseSource::None, None, false, rng)
                        .outputs),
                    InferenceBackend::PauliModel {
                        model,
                        factor,
                        n_avg,
                    } => {
                        let n_avg = (*n_avg).max(1);
                        let mut acc = vec![0.0; qnn.config().n_qubits];
                        for _ in 0..n_avg {
                            let noise = NoiseSource::GateInsertion {
                                model,
                                factor: *factor,
                            };
                            let out = qnn
                                .eval_block(bi, row, &noise, Some(model), false, rng)
                                .outputs;
                            for (a, o) in acc.iter_mut().zip(&out) {
                                *a += o;
                            }
                        }
                        Ok(acc.into_iter().map(|a| a / n_avg as f64).collect())
                    }
                    InferenceBackend::Hardware(dep) => Ok(dep.eval_block(bi, row, rng)?),
                    InferenceBackend::Resilient(dep) => Ok(dep.eval_block(bi, row)?),
                    // Handled by the whole-batch paths above.
                    InferenceBackend::Batch(_) | InferenceBackend::Serving(_) => unreachable!(),
                }
            })
            .collect::<Result<_, _>>()?
        };
        block_outputs.push(raw.clone());
        let mut processed = raw;
        if bi + 1 == n_blocks && !opts.process_last {
            activations = processed;
            break;
        }
        match &opts.normalize {
            NormMode::Off => {}
            NormMode::BatchStats => {
                try_normalize_batch(&mut processed)?;
            }
            NormMode::FixedStats(stats) => stats[bi].apply(&mut processed),
        }
        if let Some(spec) = opts.quantize {
            for row in &mut processed {
                for v in row.iter_mut() {
                    *v = quantize_value(*v, spec.levels, spec.p_min, spec.p_max);
                }
            }
        }
        activations = processed;
    }
    let logits = apply_head(&activations, qnn.config().n_classes);
    let report = match backend {
        InferenceBackend::Resilient(dep) => Some(dep.report()),
        InferenceBackend::Batch(dep) => Some(dep.report()),
        InferenceBackend::Serving(dep) => dep.serve_report(),
        _ => None,
    };
    Ok(InferenceResult {
        logits,
        block_outputs,
        report,
    })
}

/// Profiles per-block normalization statistics on a (validation) set run
/// through a backend — used for the `FixedStats` mode of Appendix A.3.7.
///
/// # Errors
///
/// Returns [`InferError`] where [`infer`] does.
pub fn profile_stats<R: Rng>(
    qnn: &Qnn,
    features: &[Vec<f64>],
    backend: &InferenceBackend<'_>,
    quantize: Option<QuantizeSpec>,
    rng: &mut R,
) -> Result<Vec<NormStats>, InferError> {
    // Run with batch stats and harvest the statistics of each block's raw
    // outputs.
    let opts = InferenceOptions {
        normalize: NormMode::BatchStats,
        quantize,
        process_last: false,
    };
    let result = infer(qnn, features, backend, &opts, rng)?;
    result
        .block_outputs
        .iter()
        .take(qnn.config().n_blocks.saturating_sub(1))
        .map(|raw| NormStats::try_from_batch(raw).map_err(InferError::from))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::QnnConfig;
    use crate::normalize::normalize_batch;
    use qnat_noise::presets;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_batch() -> Vec<Vec<f64>> {
        (0..6)
            .map(|i| {
                (0..16)
                    .map(|k| ((i * 16 + k) as f64 * 0.41).sin().abs())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn noise_free_inference_runs() {
        let qnn = Qnn::new(QnnConfig::standard(16, 4, 2, 2), 1);
        let mut rng = StdRng::seed_from_u64(0);
        let r = infer(
            &qnn,
            &toy_batch(),
            &InferenceBackend::NoiseFree,
            &InferenceOptions::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(r.logits.len(), 6);
        assert_eq!(r.logits[0].len(), 4);
        assert_eq!(r.block_outputs.len(), 2);
        assert!(r.report.is_none(), "non-resilient backends carry no report");
    }

    #[test]
    fn hardware_backend_differs_from_noise_free() {
        let cfg = QnnConfig::standard(16, 4, 2, 2);
        let qnn = Qnn::for_device(cfg, &presets::yorktown(), 2).unwrap();
        let dep = qnn.deploy(&presets::yorktown(), 2).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let batch = toy_batch();
        let clean = infer(
            &qnn,
            &batch,
            &InferenceBackend::NoiseFree,
            &InferenceOptions::baseline(),
            &mut rng,
        )
        .unwrap();
        let noisy = infer(
            &qnn,
            &batch,
            &InferenceBackend::Hardware(&dep),
            &InferenceOptions::baseline(),
            &mut rng,
        )
        .unwrap();
        let m = crate::metrics::mse(&clean.block_outputs[0], &noisy.block_outputs[0]);
        assert!(m > 1e-6, "hardware emulation should perturb outcomes");
    }

    #[test]
    fn normalization_recovers_contracted_outcomes() {
        // With normalization the noisy first-block outputs match the
        // normalized noise-free ones much better (Theorem 3.1).
        let cfg = QnnConfig::standard(16, 4, 2, 2);
        let qnn = Qnn::for_device(cfg, &presets::yorktown(), 3).unwrap();
        let dep = qnn.deploy(&presets::yorktown(), 2).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let batch = toy_batch();
        let clean = infer(
            &qnn,
            &batch,
            &InferenceBackend::NoiseFree,
            &InferenceOptions::baseline(),
            &mut rng,
        )
        .unwrap();
        let noisy = infer(
            &qnn,
            &batch,
            &InferenceBackend::Hardware(&dep),
            &InferenceOptions::baseline(),
            &mut rng,
        )
        .unwrap();
        let mut c0 = clean.block_outputs[0].clone();
        let mut n0 = noisy.block_outputs[0].clone();
        let snr_raw = crate::metrics::snr(&c0, &n0);
        normalize_batch(&mut c0);
        normalize_batch(&mut n0);
        let snr_norm = crate::metrics::snr(&c0, &n0);
        assert!(
            snr_norm > snr_raw,
            "normalization should improve SNR: {snr_raw} → {snr_norm}"
        );
    }

    #[test]
    fn fixed_stats_mode_close_to_batch_stats() {
        let cfg = QnnConfig::standard(16, 4, 2, 2);
        let qnn = Qnn::new(cfg, 4);
        let mut rng = StdRng::seed_from_u64(2);
        let valid = toy_batch();
        let stats = profile_stats(
            &qnn,
            &valid,
            &InferenceBackend::NoiseFree,
            Some(QuantizeSpec::levels(5)),
            &mut rng,
        )
        .unwrap();
        assert_eq!(stats.len(), 1);
        let test = toy_batch();
        let with_fixed = infer(
            &qnn,
            &test,
            &InferenceBackend::NoiseFree,
            &InferenceOptions {
                normalize: NormMode::FixedStats(stats),
                quantize: Some(QuantizeSpec::levels(5)),
                process_last: false,
            },
            &mut rng,
        )
        .unwrap();
        let with_batch = infer(
            &qnn,
            &test,
            &InferenceBackend::NoiseFree,
            &InferenceOptions::default(),
            &mut rng,
        )
        .unwrap();
        // Same data → identical stats → identical logits.
        for (a, b) in with_fixed
            .logits
            .iter()
            .flatten()
            .zip(with_batch.logits.iter().flatten())
        {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn wrong_fixed_stats_count_is_typed_error() {
        let qnn = Qnn::new(QnnConfig::standard(16, 4, 2, 2), 1);
        let mut rng = StdRng::seed_from_u64(0);
        let err = infer(
            &qnn,
            &toy_batch(),
            &InferenceBackend::NoiseFree,
            &InferenceOptions {
                normalize: NormMode::FixedStats(vec![]),
                quantize: None,
                process_last: false,
            },
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err, InferError::StatsMismatch { expected: 1, got: 0 });
    }

    #[test]
    fn shots_add_sampling_noise() {
        let cfg = QnnConfig::standard(16, 4, 1, 2);
        let qnn = Qnn::for_device(cfg, &presets::santiago(), 5).unwrap();
        let mut dep = qnn.deploy(&presets::santiago(), 2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let batch = toy_batch();
        let exact = infer(
            &qnn,
            &batch,
            &InferenceBackend::Hardware(&dep),
            &InferenceOptions::baseline(),
            &mut rng,
        )
        .unwrap();
        dep.shots = Some(256);
        let sampled = infer(
            &qnn,
            &batch,
            &InferenceBackend::Hardware(&dep),
            &InferenceOptions::baseline(),
            &mut rng,
        )
        .unwrap();
        let m = crate::metrics::mse(&exact.block_outputs[0], &sampled.block_outputs[0]);
        assert!(m > 0.0);
        assert!(m < 0.05, "256 shots should still be close: {m}");
    }

    #[test]
    fn pauli_model_backend_contracts_like_hardware() {
        let cfg = QnnConfig::standard(16, 4, 1, 2);
        let qnn = Qnn::for_device(cfg, &presets::yorktown(), 6).unwrap();
        let model = presets::yorktown();
        let mut rng = StdRng::seed_from_u64(4);
        let batch = toy_batch();
        let clean = infer(
            &qnn,
            &batch,
            &InferenceBackend::NoiseFree,
            &InferenceOptions::baseline(),
            &mut rng,
        )
        .unwrap();
        let pauli = infer(
            &qnn,
            &batch,
            &InferenceBackend::PauliModel {
                model: &model,
                factor: 1.0,
                n_avg: 16,
            },
            &InferenceOptions::baseline(),
            &mut rng,
        )
        .unwrap();
        // Mean |z| shrinks under the Pauli model.
        let mean_abs = |m: &Vec<Vec<f64>>| -> f64 {
            m.iter().flatten().map(|v| v.abs()).sum::<f64>() / (m.len() * m[0].len()) as f64
        };
        assert!(mean_abs(&pauli.block_outputs[0]) < mean_abs(&clean.block_outputs[0]) + 1e-9);
    }

    #[test]
    fn resilient_fault_free_matches_hardware_backend() {
        let cfg = QnnConfig::standard(16, 4, 2, 2);
        let qnn = Qnn::for_device(cfg, &presets::santiago(), 7).unwrap();
        let dep = qnn.deploy(&presets::santiago(), 2).unwrap();
        let res = qnn
            .deploy_resilient(
                &presets::santiago(),
                2,
                RetryPolicy::default(),
                None,
                0,
            )
            .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let batch = toy_batch();
        let hw = infer(
            &qnn,
            &batch,
            &InferenceBackend::Hardware(&dep),
            &InferenceOptions::baseline(),
            &mut rng,
        )
        .unwrap();
        let rs = infer(
            &qnn,
            &batch,
            &InferenceBackend::Resilient(&res),
            &InferenceOptions::baseline(),
            &mut rng,
        )
        .unwrap();
        // Exact (infinite-shot) expectations are deterministic, so the two
        // deployment paths agree bit-for-bit.
        for (a, b) in hw
            .block_outputs
            .iter()
            .flatten()
            .flatten()
            .zip(rs.block_outputs.iter().flatten().flatten())
        {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        let report = rs.report.expect("resilient run carries a report");
        assert_eq!(report.jobs, report.attempts);
        assert_eq!(report.retries, 0);
        assert!(!report.degraded);
    }

    #[test]
    fn batch_fault_free_matches_hardware_backend() {
        let cfg = QnnConfig::standard(16, 4, 2, 2);
        let qnn = Qnn::for_device(cfg, &presets::santiago(), 7).unwrap();
        let dep = qnn.deploy(&presets::santiago(), 2).unwrap();
        let pooled = qnn
            .deploy_batch(&presets::santiago(), 2, RetryPolicy::default(), None, 4, 0)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let batch = toy_batch();
        let hw = infer(
            &qnn,
            &batch,
            &InferenceBackend::Hardware(&dep),
            &InferenceOptions::baseline(),
            &mut rng,
        )
        .unwrap();
        let pb = infer(
            &qnn,
            &batch,
            &InferenceBackend::Batch(&pooled),
            &InferenceOptions::baseline(),
            &mut rng,
        )
        .unwrap();
        // Exact expectations are deterministic, so the pooled path agrees
        // with the direct emulator bit-for-bit.
        for (a, b) in hw
            .block_outputs
            .iter()
            .flatten()
            .flatten()
            .zip(pb.block_outputs.iter().flatten().flatten())
        {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        let report = pb.report.expect("batch run carries a report");
        assert_eq!(report.jobs, 2 * batch.len());
        assert_eq!(report.retries, 0);
        assert!(!report.degraded);
    }

    #[test]
    fn batch_inference_is_worker_count_invariant_under_faults() {
        let cfg = QnnConfig::standard(16, 4, 2, 2);
        let qnn = Qnn::for_device(cfg, &presets::yorktown(), 9).unwrap();
        let batch = toy_batch();
        let run = |workers: usize| {
            let pooled = qnn
                .deploy_batch(
                    &presets::yorktown(),
                    2,
                    RetryPolicy::default(),
                    Some(FaultSpec::transient(0.3, 11)),
                    workers,
                    42,
                )
                .unwrap();
            let mut rng = StdRng::seed_from_u64(0);
            let r = infer(
                &qnn,
                &batch,
                &InferenceBackend::Batch(&pooled),
                &InferenceOptions::default(),
                &mut rng,
            )
            .unwrap();
            (r.logits, r.block_outputs, r.report)
        };
        let serial = run(1);
        let pooled = run(4);
        assert_eq!(serial.0, pooled.0);
        assert_eq!(serial.1, pooled.1);
        assert_eq!(serial.2, pooled.2);
        let report = serial.2.expect("report present");
        assert!(report.retries > 0, "30% transient faults should retry");
    }
}
