//! Batched/parallel job submission: a job queue fanned out across a fixed
//! pool of `std::thread` workers.
//!
//! The paper's evaluation (Tables 3–6) sweeps many circuits × devices ×
//! seeds, and a serving deployment pushes whole inference batches at once —
//! but [`crate::executor::ResilientExecutor`] is a single-threaded
//! front-end. [`BatchExecutor`] owns the batch layer on top of it: a shared
//! job queue, `workers` OS threads, and one freshly built
//! [`ResilientExecutor`] per *job*.
//!
//! ## Determinism: seeds are keyed to the job, not the worker
//!
//! Cloud-QPU batches must be reproducible regardless of how much hardware
//! happens to serve them. A pool whose workers carry long-lived executor
//! state cannot offer that: with a dynamic queue, which worker pops which
//! job depends on timing and on the worker count, so any per-worker RNG
//! state leaks into the results. Instead, every job index `k` is hashed
//! (SplitMix64) with the batch seed into a per-job seed, and the worker
//! that pops `k` builds that job's executor from the seed on the spot.
//! Whether the pool has 1 worker or 8, job `k` runs bit-for-bit the same
//! backends, the same fault schedule and the same retry jitter — the
//! property tests in `qnat-core/tests/batch_props.rs` pin this down.
//!
//! The one semantic trade: *cross-job* degradation state (an executor
//! permanently switching to its fallback after
//! [`crate::executor::RetryPolicy::max_consecutive_failures`] exhausted
//! jobs in a row) cannot accumulate across jobs of a batch, because that
//! counter is exactly the kind of assignment-order-dependent state the
//! determinism guarantee forbids. Each job degrades (or not) on its own;
//! the merged report's `degraded` flag is the OR over jobs.
//!
//! Reports merge in job-index order, with every
//! [`crate::executor::FailureRecord::job`] remapped to the batch-global
//! index, so the merged [`ExecutionReport`] is also identical across
//! worker counts.

use crate::executor::{splitmix64, ExecutionReport, ResilientExecutor};
use crate::health::{
    Admission, DeadlineBudget, DeadlinePolicy, HealthPolicy, HealthRegistry, JobSignal,
};
use qnat_noise::backend::{BackendError, Measurements};
use qnat_sim::circuit::Circuit;
use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// One job of a batch: a circuit plus its shot budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchJob {
    /// The circuit to execute.
    pub circuit: Circuit,
    /// Finite-shot budget (`None` = exact expectations).
    pub shots: Option<usize>,
}

impl BatchJob {
    /// An exact-expectation job.
    pub fn exact(circuit: Circuit) -> Self {
        BatchJob {
            circuit,
            shots: None,
        }
    }
}

/// Everything a batch run produced: per-job results in submission order
/// and the merged execution report.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-job results, index-aligned with the submitted jobs.
    pub results: Vec<Result<Measurements, BackendError>>,
    /// All per-job reports merged in job-index order
    /// ([`crate::executor::FailureRecord::job`] holds batch-global
    /// indices).
    pub report: ExecutionReport,
}

impl BatchOutcome {
    /// Unwraps every job into its measurements, surfacing the first
    /// failure.
    ///
    /// # Errors
    ///
    /// Returns the first job's [`BackendError`], if any job failed past
    /// every retry and fallback.
    pub fn into_measurements(self) -> Result<Vec<Measurements>, BackendError> {
        self.results.into_iter().collect()
    }

    /// Number of jobs that ultimately failed.
    pub fn failed_jobs(&self) -> usize {
        self.results.iter().filter(|r| r.is_err()).count()
    }
}

/// How a deadline budget is handed to per-job executors — shared by the
/// batch pool and the `qnat-serve` serving engine.
#[derive(Debug, Clone)]
pub enum JobDeadline {
    /// A fresh budget of this many ms per job.
    PerJob(u64),
    /// One shared budget across all jobs (batch-wide deadline).
    Shared(DeadlineBudget),
}

/// Runs one job of a fleet — the worker-loop core shared by
/// [`BatchExecutor`] and the long-lived workers of the `qnat-serve`
/// engine. Builds the job's executor from `factory` at the global index
/// and seed, attaches the `deadline` budget, applies the health layer's
/// `short_circuit` verdict, executes, and remaps the report's failure
/// records and any surfaced error to the global job index.
///
/// Determinism contract: for a fixed `(global, seed, job)` the outcome is
/// a pure function of the factory — which worker (or which serving lane)
/// runs the job can never change the result.
pub fn run_job<F>(
    factory: &F,
    global: u64,
    seed: u64,
    job: &BatchJob,
    short_circuit: bool,
    deadline: Option<&JobDeadline>,
) -> (Result<Measurements, BackendError>, ExecutionReport)
where
    F: Fn(u64, u64) -> Result<ResilientExecutor, BackendError> + ?Sized,
{
    let (result, mut report) = match factory(global, seed) {
        Ok(mut ex) => {
            match deadline {
                Some(JobDeadline::PerJob(ms)) => {
                    ex = ex.with_deadline(DeadlineBudget::new(*ms));
                }
                Some(JobDeadline::Shared(budget)) => {
                    ex = ex.with_deadline(budget.clone());
                }
                None => {}
            }
            if short_circuit {
                ex.short_circuit_primary();
            }
            let r = ex.execute(&job.circuit, job.shots);
            (r, ex.report().clone())
        }
        Err(e) => (Err(e), ExecutionReport::default()),
    };
    // Per-job executors number their (single) job 0; remap to the global
    // index so merged failure records and surfaced errors stay
    // attributable.
    for f in &mut report.failures {
        f.job = global;
    }
    (result.map_err(|e| e.with_job(global)), report)
}

/// A worker-pool batch front-end over per-job [`ResilientExecutor`]s.
///
/// `factory` receives the batch-global job index and the splitmix-derived
/// per-job seed, and builds that job's executor (backends, fault
/// decorators, retry policy, sleeper). It must be deterministic in its
/// arguments — that is what makes batch results independent of the worker
/// count. The factory is fallible so deployment code can surface
/// backend-construction errors as that job's result instead of panicking
/// inside a worker.
pub struct BatchExecutor<F>
where
    F: Fn(u64, u64) -> Result<ResilientExecutor, BackendError> + Sync,
{
    factory: F,
    workers: usize,
    seed: u64,
}

impl<F> BatchExecutor<F>
where
    F: Fn(u64, u64) -> Result<ResilientExecutor, BackendError> + Sync,
{
    /// A pool of `workers` threads (clamped to ≥ 1) over `factory`.
    pub fn new(workers: usize, seed: u64, factory: F) -> Self {
        BatchExecutor {
            factory,
            workers: workers.max(1),
            seed,
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The per-job executor seed for batch-global job index `job` — pure
    /// function of `(batch seed, job)`.
    pub fn job_seed(&self, job: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(job))
    }

    /// Runs every job through the pool and merges the per-job reports.
    ///
    /// Results come back in submission order; per-job failures are stored
    /// in the outcome rather than aborting the batch, so one poisoned job
    /// cannot sink its siblings.
    pub fn execute(&self, jobs: &[BatchJob]) -> BatchOutcome {
        let finished = self.run_slice(jobs, 0, None, None);
        Self::collect(finished, jobs.len())
    }

    /// Like [`BatchExecutor::execute`], but under `policy`'s health layer:
    /// fleet-wide circuit breaking over the primary backend (the breaker
    /// registered in `registry` under `breaker_key`) and/or deadline
    /// budgets.
    ///
    /// With a breaker, jobs run in epochs of
    /// [`crate::health::BreakerPolicy::decision_interval`]: admissions are
    /// planned before each epoch and outcomes observed in job-index order
    /// after it, so results stay bitwise worker-count invariant — see the
    /// determinism contract in [`crate::health`].
    pub fn execute_with_health(
        &self,
        jobs: &[BatchJob],
        policy: &HealthPolicy,
        registry: &HealthRegistry,
        breaker_key: &str,
    ) -> BatchOutcome {
        let deadline = policy.deadline.map(|d| match d {
            DeadlinePolicy::PerJob(ms) => JobDeadline::PerJob(ms),
            DeadlinePolicy::Batch(ms) => JobDeadline::Shared(DeadlineBudget::new(ms)),
        });
        let Some(breaker_policy) = &policy.breaker else {
            let finished = self.run_slice(jobs, 0, None, deadline.as_ref());
            return Self::collect(finished, jobs.len());
        };
        let epoch_len = breaker_policy.decision_interval.max(1);
        let mut finished = Vec::with_capacity(jobs.len());
        let mut base = 0usize;
        for chunk in jobs.chunks(epoch_len) {
            let admissions =
                registry.with_breaker(breaker_key, breaker_policy, |b| b.plan_epoch(chunk.len()));
            let mut part = self.run_slice(chunk, base, Some(&admissions), deadline.as_ref());
            part.sort_by_key(|(i, _, _)| *i);
            registry.with_breaker(breaker_key, breaker_policy, |b| {
                for (i, result, report) in &part {
                    b.observe(admissions[i - base], job_signal(result, report));
                }
                b.end_epoch();
            });
            finished.extend(part);
            base += chunk.len();
        }
        Self::collect(finished, jobs.len())
    }

    /// Fans `jobs` (batch-global indices `base..base + jobs.len()`) across
    /// the pool. `admissions`, when given, is index-aligned with `jobs`
    /// and marks breaker-short-circuited jobs; `deadline` attaches backoff
    /// budgets.
    fn run_slice(
        &self,
        jobs: &[BatchJob],
        base: usize,
        admissions: Option<&[Admission]>,
        deadline: Option<&JobDeadline>,
    ) -> Vec<(usize, Result<Measurements, BackendError>, ExecutionReport)> {
        let n = jobs.len();
        let workers = self.workers.min(n.max(1));
        let next = AtomicUsize::new(0);
        let run_worker = || {
            let mut done: Vec<(usize, Result<Measurements, BackendError>, ExecutionReport)> =
                Vec::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let g = (base + i) as u64;
                let short = admissions.map(|a| a[i]) == Some(Admission::ShortCircuit);
                let (result, report) =
                    run_job(&self.factory, g, self.job_seed(g), &jobs[i], short, deadline);
                done.push((base + i, result, report));
            }
            done
        };
        thread::scope(|s| {
            let handles: Vec<_> = (0..workers).map(|_| s.spawn(run_worker)).collect();
            handles
                .into_iter()
                .flat_map(|h| {
                    h.join()
                        .unwrap_or_else(|payload| panic::resume_unwind(payload))
                })
                .collect()
        })
    }

    /// Sorts per-job results into job-index order and merges the reports —
    /// the order makes the merged report (failure list included)
    /// independent of which worker finished when.
    fn collect(
        mut finished: Vec<(usize, Result<Measurements, BackendError>, ExecutionReport)>,
        n: usize,
    ) -> BatchOutcome {
        finished.sort_by_key(|(i, _, _)| *i);
        let mut report = ExecutionReport::default();
        let mut results = Vec::with_capacity(n);
        for (_, result, job_report) in finished {
            report.merge(&job_report);
            results.push(result);
        }
        BatchOutcome { results, report }
    }
}

/// What a finished job says about the *primary* backend's health.
///
/// Fallback rescues count as primary failures (the primary exhausted its
/// retries); short-circuited, validation-rejected, factory-failed and
/// deadline-aborted jobs are neutral — they carry no verdict on the
/// primary. Public so the `qnat-serve` engine feeds its breakers the same
/// verdicts the batch health layer does.
pub fn job_signal(
    result: &Result<Measurements, BackendError>,
    report: &ExecutionReport,
) -> JobSignal {
    if report.short_circuited_jobs > 0 {
        return JobSignal::Neutral;
    }
    if report.fallback_jobs > 0 {
        return JobSignal::Failure;
    }
    match result {
        Ok(_) if report.attempts > 0 => JobSignal::Success,
        Err(BackendError::DeadlineExceeded { .. }) => JobSignal::Neutral,
        Err(_) if report.attempts > 0 => JobSignal::Failure,
        _ => JobSignal::Neutral,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::RetryPolicy;
    use qnat_noise::backend::SimulatorBackend;
    use qnat_noise::fault::{FaultSpec, FaultyBackend};
    use qnat_sim::gate::Gate;

    fn jobs(n: usize) -> Vec<BatchJob> {
        (0..n)
            .map(|k| {
                let mut c = Circuit::new(2);
                c.push(Gate::ry(0, 0.1 + 0.05 * k as f64));
                c.push(Gate::cx(0, 1));
                BatchJob::exact(c)
            })
            .collect()
    }

    fn faulty_factory(
        rate: f64,
    ) -> impl Fn(u64, u64) -> Result<ResilientExecutor, BackendError> + Sync {
        move |_job, seed| {
            Ok(ResilientExecutor::new(
                Box::new(FaultyBackend::new(
                    SimulatorBackend::new(seed),
                    FaultSpec::transient(rate, seed),
                )),
                RetryPolicy::default(),
            ))
        }
    }

    fn run(workers: usize, rate: f64, n: usize) -> BatchOutcome {
        BatchExecutor::new(workers, 0xbeef, faulty_factory(rate)).execute(&jobs(n))
    }

    #[test]
    fn clean_batch_executes_every_job_once() {
        let out = run(4, 0.0, 16);
        assert_eq!(out.results.len(), 16);
        assert_eq!(out.failed_jobs(), 0);
        assert_eq!((out.report.jobs, out.report.attempts, out.report.retries), (16, 16, 0));
        let all = out.into_measurements().unwrap();
        assert!(all.iter().all(|m| m.expectations.len() == 2));
    }

    #[test]
    fn results_and_report_are_worker_count_invariant() {
        let single = run(1, 0.4, 24);
        for workers in [2, 3, 8] {
            let pooled = run(workers, 0.4, 24);
            assert_eq!(single.results, pooled.results, "workers = {workers}");
            assert_eq!(single.report, pooled.report, "workers = {workers}");
        }
    }

    #[test]
    fn failure_records_carry_batch_global_job_indices() {
        let out = run(3, 0.5, 32);
        assert!(!out.report.failures.is_empty(), "some faults expected");
        let mut last = 0;
        for f in &out.report.failures {
            assert!(f.job < 32);
            assert!(f.job >= last, "failures sorted by job: {:?}", out.report.failures);
            last = f.job;
        }
    }

    #[test]
    fn factory_errors_become_per_job_results() {
        let factory = |_job: u64, seed: u64| -> Result<ResilientExecutor, BackendError> {
            if seed.is_multiple_of(2) {
                Err(BackendError::InvalidConfig {
                    reason: "even seed rejected".into(),
                })
            } else {
                Ok(ResilientExecutor::new(
                    Box::new(SimulatorBackend::new(seed)),
                    RetryPolicy::default(),
                ))
            }
        };
        let out = BatchExecutor::new(4, 7, factory).execute(&jobs(16));
        assert_eq!(out.results.len(), 16);
        assert!(out.failed_jobs() > 0, "some even job seeds must exist");
        assert!(out.failed_jobs() < 16, "some odd job seeds must exist");
        for r in out.results.iter().filter(|r| r.is_err()) {
            assert!(matches!(r, Err(BackendError::InvalidConfig { .. })));
        }
    }

    #[test]
    fn health_path_without_breaker_or_deadline_matches_plain_execute() {
        let ex = BatchExecutor::new(3, 0xbeef, faulty_factory(0.4));
        let plain = ex.execute(&jobs(16));
        let health = ex.execute_with_health(
            &jobs(16),
            &HealthPolicy::default(),
            &HealthRegistry::new(),
            "primary",
        );
        assert_eq!(plain.results, health.results);
        assert_eq!(plain.report, health.report);
    }

    #[test]
    fn breaker_short_circuits_feed_no_failure_signal() {
        // Total outage with a fallback: the breaker trips after the first
        // epoch and later jobs short-circuit to the fallback; their
        // neutral signals must not keep re-tripping the (already open)
        // breaker.
        let factory = |_job: u64, seed: u64| -> Result<ResilientExecutor, BackendError> {
            Ok(ResilientExecutor::with_fallback(
                Box::new(FaultyBackend::new(
                    SimulatorBackend::new(seed),
                    FaultSpec::transient(1.0, seed),
                )),
                Box::new(SimulatorBackend::new(seed ^ 1)),
                RetryPolicy {
                    max_attempts: 3,
                    ..RetryPolicy::default()
                },
            ))
        };
        let registry = HealthRegistry::new();
        let policy = HealthPolicy::breaker_only();
        let out = BatchExecutor::new(4, 7, factory).execute_with_health(
            &jobs(32),
            &policy,
            &registry,
            "primary",
        );
        assert_eq!(out.failed_jobs(), 0, "fallback serves every job");
        let snap = registry.snapshot("primary").expect("breaker created");
        assert!(snap.trips >= 1);
        assert!(snap.short_circuited > 0);
        assert_eq!(out.report.short_circuited_jobs as u64, snap.short_circuited);
        // Short-circuited jobs pay zero primary attempts.
        assert!(
            out.report.attempts < 32 * 3,
            "breaker must cut the attempt storm: {}",
            out.report.attempts
        );
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let out = run(4, 0.3, 0);
        assert!(out.results.is_empty());
        assert_eq!(out.report, ExecutionReport::default());
    }

    #[test]
    fn oversubscribed_pool_clamps_to_job_count() {
        let out = run(64, 0.0, 3);
        assert_eq!(out.results.len(), 3);
        assert_eq!(out.failed_jobs(), 0);
    }
}
