//! Classification heads (paper §4.1).
//!
//! The last block's per-qubit expectations become class logits through a
//! *fixed* (non-trainable) linear map followed by Softmax:
//!
//! * 2-class on 4 qubits: logit₀ = z₀ + z₁, logit₁ = z₂ + z₃;
//! * 4-class on 4 qubits and 10-class on 10 qubits: identity;
//! * general: qubits are assigned to classes round-robin and summed.

use qnat_autodiff::tensor::Tensor;

/// The fixed head matrix `[n_qubits × n_classes]` (row-major).
///
/// # Panics
///
/// Panics if `n_classes > n_qubits` or either is zero.
pub fn head_matrix(n_qubits: usize, n_classes: usize) -> Tensor {
    assert!(n_qubits > 0 && n_classes > 0, "degenerate head");
    assert!(
        n_classes <= n_qubits,
        "cannot map {n_qubits} qubits to {n_classes} classes"
    );
    let mut w = vec![0.0; n_qubits * n_classes];
    // Contiguous groups: qubit q belongs to class q / (n_qubits/n_classes)
    // — for 4 qubits / 2 classes this is exactly the paper's (0+1, 2+3).
    let group = n_qubits / n_classes;
    for q in 0..n_qubits {
        let class = (q / group).min(n_classes - 1);
        w[q * n_classes + class] = 1.0;
    }
    Tensor::new(w, vec![n_qubits, n_classes])
}

/// Applies the head to raw per-qubit outputs (non-autodiff path).
pub fn apply_head(outputs: &[Vec<f64>], n_classes: usize) -> Vec<Vec<f64>> {
    let n_qubits = outputs[0].len();
    let w = head_matrix(n_qubits, n_classes);
    outputs
        .iter()
        .map(|row| {
            (0..n_classes)
                .map(|c| {
                    row.iter()
                        .enumerate()
                        .map(|(q, &z)| z * w.get2(q, c))
                        .sum()
                })
                .collect()
        })
        .collect()
}

/// Softmax of one logit row.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let mx = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&v| (v - mx).exp()).collect();
    let z: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / z).collect()
}

/// Argmax prediction of one logit row.
pub fn predict(logits: &[f64]) -> usize {
    logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty logits")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_class_head_matches_paper() {
        // Feature 1 = z0 + z1, feature 2 = z2 + z3 (§4.3 visualization).
        let w = head_matrix(4, 2);
        let logits = apply_head(&[vec![0.1, 0.2, 0.3, 0.4]], 2);
        assert!((logits[0][0] - 0.3).abs() < 1e-12);
        assert!((logits[0][1] - 0.7).abs() < 1e-12);
        assert_eq!(w.shape(), &[4, 2]);
    }

    #[test]
    fn square_head_is_identity() {
        let logits = apply_head(&[vec![0.5, -0.2, 0.9, 0.0]], 4);
        assert_eq!(logits[0], vec![0.5, -0.2, 0.9, 0.0]);
    }

    #[test]
    fn softmax_normalizes() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn predict_takes_argmax() {
        assert_eq!(predict(&[0.1, 0.9, 0.3]), 1);
        assert_eq!(predict(&[2.0]), 0);
    }

    #[test]
    #[should_panic(expected = "cannot map")]
    fn too_many_classes_panics() {
        head_matrix(2, 4);
    }
}
