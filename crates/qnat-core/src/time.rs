//! Clocks the retry/backoff machinery runs on: the [`Sleeper`] trait and
//! its three implementations.
//!
//! Originally this plumbing lived inside [`crate::executor`]; it is its own
//! module so layers above the executor — the batch pool, the fleet health
//! layer, and the `qnat-serve` serving engine — can drive virtual time in
//! tests and benches without reaching into executor internals.
//!
//! * [`VirtualSleeper`] records backoff without stalling (tests, benches).
//! * [`ThreadSleeper`] really sleeps on the OS clock (deployments).
//! * [`DeadlineSleeper`] decorates another sleeper with a
//!   [`DeadlineBudget`](crate::health::DeadlineBudget), refusing any sleep
//!   the budget cannot cover.

use crate::health::DeadlineBudget;
use std::time::Duration;

/// The clock retry backoff runs on.
///
/// The executor always *records* backoff in its
/// [`ExecutionReport`](crate::executor::ExecutionReport); the sleeper
/// decides whether the interval additionally elapses on the wall clock.
/// Tests and benches inject [`VirtualSleeper`] so retry storms cost
/// nothing; deployments serving live traffic inject [`ThreadSleeper`] so
/// backoff actually throttles the primary backend.
///
/// `Send` lets an executor (sleeper included) move into a worker thread of
/// the [`crate::batch::BatchExecutor`] pool or a long-lived serving
/// worker.
pub trait Sleeper: Send {
    /// Sleeps for `ms` milliseconds (really or virtually) and accounts it.
    fn sleep(&mut self, ms: u64);

    /// Attempts to sleep for `ms` milliseconds, returning `false` if the
    /// sleeper refuses (e.g. a deadline budget is exhausted —
    /// [`DeadlineSleeper`]). A refused sleep accounts and elapses nothing.
    /// Plain sleepers always accept.
    fn try_sleep(&mut self, ms: u64) -> bool {
        self.sleep(ms);
        true
    }

    /// Total milliseconds of backoff accounted so far.
    fn slept_ms(&self) -> u64;
}

/// Records backoff without stalling — the default for tests and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualSleeper {
    slept_ms: u64,
}

impl Sleeper for VirtualSleeper {
    fn sleep(&mut self, ms: u64) {
        self.slept_ms = self.slept_ms.saturating_add(ms);
    }

    fn slept_ms(&self) -> u64 {
        self.slept_ms
    }
}

/// Really sleeps on the OS clock via [`std::thread::sleep`] — what a
/// deployment serving live traffic injects so backoff throttles for real.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadSleeper {
    slept_ms: u64,
}

impl Sleeper for ThreadSleeper {
    fn sleep(&mut self, ms: u64) {
        std::thread::sleep(Duration::from_millis(ms));
        self.slept_ms = self.slept_ms.saturating_add(ms);
    }

    fn slept_ms(&self) -> u64 {
        self.slept_ms
    }
}

/// A [`Sleeper`] decorator that refuses any sleep its [`DeadlineBudget`]
/// cannot cover — the mechanism behind
/// [`crate::executor::ResilientExecutor::with_deadline`]. Refused sleeps
/// neither elapse nor count toward `slept_ms`.
pub struct DeadlineSleeper {
    inner: Box<dyn Sleeper>,
    budget: DeadlineBudget,
}

impl DeadlineSleeper {
    /// Wraps `inner` under `budget`.
    pub fn new(inner: Box<dyn Sleeper>, budget: DeadlineBudget) -> Self {
        DeadlineSleeper { inner, budget }
    }

    /// The budget handle (shareable across sleepers).
    pub fn budget(&self) -> &DeadlineBudget {
        &self.budget
    }
}

impl Sleeper for DeadlineSleeper {
    fn sleep(&mut self, ms: u64) {
        let _ = self.try_sleep(ms);
    }

    fn try_sleep(&mut self, ms: u64) -> bool {
        if self.budget.try_consume(ms) {
            self.inner.sleep(ms);
            true
        } else {
            false
        }
    }

    fn slept_ms(&self) -> u64 {
        self.inner.slept_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleepers_record_identical_backoff_totals() {
        // The two sleepers account the exact same milliseconds for the
        // same schedule; only the wall-clock behaviour differs.
        let mut virt = VirtualSleeper::default();
        let mut real = ThreadSleeper::default();
        for ms in [0, 1, 2, 5, 1, 0, 3] {
            virt.sleep(ms);
            real.sleep(ms);
        }
        assert_eq!(virt.slept_ms(), real.slept_ms());
        assert_eq!(virt.slept_ms(), 12);
    }

    #[test]
    fn deadline_sleeper_refuses_over_budget_sleeps() {
        let mut s = DeadlineSleeper::new(Box::<VirtualSleeper>::default(), DeadlineBudget::new(10));
        assert!(s.try_sleep(6));
        assert!(!s.try_sleep(6), "4 ms left cannot cover 6 ms");
        assert!(s.try_sleep(4));
        assert_eq!(s.slept_ms(), 10, "refused sleeps account nothing");
        assert_eq!(s.budget().remaining_ms(), 0);
    }
}
