//! Evaluation metrics: accuracy, SNR, MSE and error maps.
//!
//! The paper quantifies the normalization/quantization benefit with the
//! signal-to-noise ratio `SNR = ‖A‖² / ‖A − Ã‖²` between noise-free (`A`)
//! and noisy (`Ã`) measurement-outcome matrices (§3.1, Fig. 4, Table 5),
//! and the per-entry error map / MSE for quantization (Fig. 6).

/// Classification accuracy from logits and labels.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn accuracy(logits: &[Vec<f64>], labels: &[usize]) -> f64 {
    assert_eq!(logits.len(), labels.len(), "batch size mismatch");
    assert!(!logits.is_empty(), "empty batch");
    let correct = logits
        .iter()
        .zip(labels)
        .filter(|(row, &y)| crate::head::predict(row) == y)
        .count();
    correct as f64 / labels.len() as f64
}

/// `SNR = ‖A‖² / ‖A − Ã‖²` between a clean and a noisy outcome matrix.
///
/// # Panics
///
/// Panics on shape mismatch or empty input.
pub fn snr(clean: &[Vec<f64>], noisy: &[Vec<f64>]) -> f64 {
    assert_eq!(clean.len(), noisy.len(), "batch size mismatch");
    assert!(!clean.is_empty(), "empty batch");
    let mut signal = 0.0;
    let mut noise = 0.0;
    for (a, b) in clean.iter().zip(noisy) {
        assert_eq!(a.len(), b.len(), "row length mismatch");
        for (&x, &y) in a.iter().zip(b) {
            signal += x * x;
            noise += (x - y) * (x - y);
        }
    }
    if noise == 0.0 {
        f64::INFINITY
    } else {
        signal / noise
    }
}

/// Mean squared error between two outcome matrices.
pub fn mse(clean: &[Vec<f64>], noisy: &[Vec<f64>]) -> f64 {
    let mut acc = 0.0;
    let mut n = 0usize;
    for (a, b) in clean.iter().zip(noisy) {
        for (&x, &y) in a.iter().zip(b) {
            acc += (x - y) * (x - y);
            n += 1;
        }
    }
    assert!(n > 0, "empty input");
    acc / n as f64
}

/// Element-wise error map `Ã − A` (Fig. 6).
pub fn error_map(clean: &[Vec<f64>], noisy: &[Vec<f64>]) -> Vec<Vec<f64>> {
    clean
        .iter()
        .zip(noisy)
        .map(|(a, b)| a.iter().zip(b).map(|(&x, &y)| y - x).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = vec![vec![0.9, 0.1], vec![0.2, 0.8], vec![0.6, 0.4]];
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
    }

    #[test]
    fn snr_of_identical_matrices_is_infinite() {
        let a = vec![vec![0.5, -0.5]];
        assert!(snr(&a, &a).is_infinite());
    }

    #[test]
    fn snr_decreases_with_noise() {
        let clean = vec![vec![1.0, -1.0], vec![0.5, 0.5]];
        let small: Vec<Vec<f64>> = clean
            .iter()
            .map(|r| r.iter().map(|v| v + 0.01).collect())
            .collect();
        let large: Vec<Vec<f64>> = clean
            .iter()
            .map(|r| r.iter().map(|v| v + 0.3).collect())
            .collect();
        assert!(snr(&clean, &small) > snr(&clean, &large));
    }

    #[test]
    fn mse_matches_hand_computation() {
        let a = vec![vec![0.0, 1.0]];
        let b = vec![vec![0.3, 0.6]];
        assert!((mse(&a, &b) - (0.09 + 0.16) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn error_map_signs() {
        let a = vec![vec![0.2]];
        let b = vec![vec![0.5]];
        assert!((error_map(&a, &b)[0][0] - 0.3).abs() < 1e-12);
    }
}
