//! Training: Adam with linear warmup + cosine decay, weight decay, and the
//! noise-aware training loop (paper §4.1: Adam, warmup to 5e-3 over the
//! first 30 epochs then cosine decay, weight decay 1e-4).

use crate::forward::{train_forward, PipelineOptions};
use crate::infer::{infer, InferenceBackend, InferenceOptions};
use crate::model::Qnn;
use qnat_data::dataset::{batch_indices, Dataset, Sample};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Adam hyper-parameters and schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Peak learning rate (after warmup).
    pub lr_max: f64,
    /// Warmup epochs (linear 0 → `lr_max`).
    pub warmup_epochs: usize,
    /// Total epochs (cosine decay to 0 after warmup).
    pub total_epochs: usize,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical epsilon.
    pub eps: f64,
    /// Decoupled weight decay λ.
    pub weight_decay: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr_max: 5e-3,
            warmup_epochs: 30,
            total_epochs: 200,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 1e-4,
        }
    }
}

impl AdamConfig {
    /// The learning rate at a given epoch: linear warmup then cosine decay.
    pub fn lr_at(&self, epoch: usize) -> f64 {
        if self.total_epochs == 0 {
            return self.lr_max;
        }
        if epoch < self.warmup_epochs {
            self.lr_max * (epoch + 1) as f64 / self.warmup_epochs as f64
        } else {
            let t = (epoch - self.warmup_epochs) as f64
                / (self.total_epochs - self.warmup_epochs).max(1) as f64;
            self.lr_max * 0.5 * (1.0 + (std::f64::consts::PI * t.min(1.0)).cos())
        }
    }

    /// A short schedule for tests and fast experiments.
    pub fn fast(total_epochs: usize) -> Self {
        AdamConfig {
            warmup_epochs: (total_epochs / 5).max(1),
            total_epochs,
            ..AdamConfig::default()
        }
    }
}

/// Adam optimizer state.
#[derive(Debug, Clone)]
pub struct Adam {
    config: AdamConfig,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer for `n` parameters.
    pub fn new(config: AdamConfig, n: usize) -> Adam {
        Adam {
            config,
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// Applies one update in place (decoupled weight decay, AdamW-style).
    ///
    /// A step with any non-finite gradient is *skipped entirely* — the
    /// moments, step counter and parameters are left untouched — and
    /// `false` is returned, so one corrupted batch (e.g. a backend fault
    /// leaking NaN through the loss) cannot poison the optimizer state.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree with the optimizer state.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64], lr: f64) -> bool {
        assert_eq!(params.len(), self.m.len(), "parameter count");
        assert_eq!(grads.len(), self.m.len(), "gradient count");
        if grads.iter().any(|g| !g.is_finite()) {
            return false;
        }
        self.t += 1;
        let b1 = self.config.beta1;
        let b2 = self.config.beta2;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = b1 * self.m[i] + (1.0 - b1) * grads[i];
            self.v[i] = b2 * self.v[i] + (1.0 - b2) * grads[i] * grads[i];
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            params[i] -=
                lr * (mhat / (vhat.sqrt() + self.config.eps)
                    + self.config.weight_decay * params[i]);
        }
        true
    }
}

/// Training-loop options.
#[derive(Debug, Clone, Copy)]
pub struct TrainOptions<'a> {
    /// Optimizer/schedule settings.
    pub adam: AdamConfig,
    /// Mini-batch size (paper: 256 image / 4 vowel; reduced sets use less).
    pub batch_size: usize,
    /// The QuantumNAT pipeline configuration.
    pub pipeline: PipelineOptions<'a>,
    /// RNG seed for shuffling and noise sampling.
    pub seed: u64,
}

impl Default for TrainOptions<'_> {
    fn default() -> Self {
        TrainOptions {
            adam: AdamConfig::fast(30),
            batch_size: 32,
            pipeline: PipelineOptions::default(),
            seed: 3,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Epoch index.
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f64,
    /// Training accuracy.
    pub train_acc: f64,
}

/// The result of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Per-epoch records.
    pub history: Vec<EpochRecord>,
    /// Final noise-free validation accuracy.
    pub valid_acc: f64,
    /// Final noise-free validation loss (used for hyper-parameter
    /// selection as in §4.2).
    pub valid_loss: f64,
    /// Optimizer steps skipped because a gradient was non-finite.
    pub skipped_steps: usize,
}

fn features_labels(samples: &[Sample], idx: &[usize]) -> (Vec<Vec<f64>>, Vec<usize>) {
    (
        idx.iter().map(|&i| samples[i].features.clone()).collect(),
        idx.iter().map(|&i| samples[i].label).collect(),
    )
}

/// Trains `qnn` on a dataset with the given pipeline.
///
/// Batches whose gradients come back non-finite are skipped (and counted
/// in [`TrainReport::skipped_steps`]) instead of corrupting the model.
///
/// # Errors
///
/// Returns [`crate::infer::InferError`] if the final validation pass
/// fails (e.g. an empty validation set).
pub fn train(
    qnn: &mut Qnn,
    dataset: &Dataset,
    options: &TrainOptions<'_>,
) -> Result<TrainReport, crate::infer::InferError> {
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut adam = Adam::new(options.adam, qnn.n_params());
    let mut history = Vec::with_capacity(options.adam.total_epochs);
    let mut skipped_steps = 0usize;
    for epoch in 0..options.adam.total_epochs {
        let lr = options.adam.lr_at(epoch);
        let mut loss_acc = 0.0;
        let mut correct = 0usize;
        let mut seen = 0usize;
        for batch in batch_indices(dataset.train.len(), options.batch_size, &mut rng) {
            let (features, labels) = features_labels(&dataset.train, &batch);
            let step = train_forward(qnn, &features, &labels, &options.pipeline, &mut rng);
            let mut params = qnn.parameters().to_vec();
            if adam.step(&mut params, &step.grads, lr) {
                qnn.set_parameters(&params);
            } else {
                skipped_steps += 1;
            }
            loss_acc += step.loss * labels.len() as f64;
            for (i, &y) in labels.iter().enumerate() {
                let row: Vec<f64> = (0..qnn.config().n_classes)
                    .map(|c| step.probs.get2(i, c))
                    .collect();
                if crate::head::predict(&row) == y {
                    correct += 1;
                }
            }
            seen += labels.len();
        }
        history.push(EpochRecord {
            epoch,
            train_loss: loss_acc / seen.max(1) as f64,
            train_acc: correct as f64 / seen.max(1) as f64,
        });
    }
    // Validation (noise-free pipeline with the same normalization/quant
    // settings).
    let (vf, vl): (Vec<Vec<f64>>, Vec<usize>) = (
        dataset.valid.iter().map(|s| s.features.clone()).collect(),
        dataset.valid.iter().map(|s| s.label).collect(),
    );
    let infer_opts = InferenceOptions {
        normalize: if options.pipeline.normalize {
            crate::infer::NormMode::BatchStats
        } else {
            crate::infer::NormMode::Off
        },
        quantize: options.pipeline.quantize,
        process_last: options.pipeline.process_last,
    };
    let result = infer(
        qnn,
        &vf,
        &InferenceBackend::NoiseFree,
        &infer_opts,
        &mut rng,
    )?;
    let valid_acc = result.accuracy(&vl);
    // Cross-entropy on validation.
    let mut valid_loss = 0.0;
    for (row, &y) in result.logits.iter().zip(&vl) {
        let probs = crate::head::softmax(row);
        valid_loss -= probs[y].max(1e-12).ln();
    }
    valid_loss /= vl.len().max(1) as f64;
    Ok(TrainReport {
        history,
        valid_acc,
        valid_loss,
        skipped_steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::QnnConfig;
    use qnat_data::dataset::{build, Task, TaskConfig};

    #[test]
    fn lr_schedule_shape() {
        let cfg = AdamConfig {
            lr_max: 1.0,
            warmup_epochs: 10,
            total_epochs: 100,
            ..AdamConfig::default()
        };
        assert!(cfg.lr_at(0) > 0.0);
        assert!(cfg.lr_at(4) < cfg.lr_at(9));
        assert!((cfg.lr_at(9) - 1.0).abs() < 1e-12);
        assert!(cfg.lr_at(50) < 1.0);
        assert!(cfg.lr_at(99) < cfg.lr_at(50));
        assert!(cfg.lr_at(99) >= 0.0);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        // Minimize (p − 3)² with constant gradient feed.
        let mut adam = Adam::new(
            AdamConfig {
                weight_decay: 0.0,
                ..AdamConfig::default()
            },
            1,
        );
        let mut p = vec![0.0f64];
        for _ in 0..2000 {
            let g = vec![2.0 * (p[0] - 3.0)];
            adam.step(&mut p, &g, 0.01);
        }
        assert!((p[0] - 3.0).abs() < 0.01, "p = {}", p[0]);
    }

    #[test]
    fn weight_decay_shrinks_unused_params() {
        let mut adam = Adam::new(
            AdamConfig {
                weight_decay: 0.1,
                ..AdamConfig::default()
            },
            1,
        );
        let mut p = vec![1.0f64];
        for _ in 0..100 {
            adam.step(&mut p, &[0.0], 0.1);
        }
        assert!(p[0] < 1.0);
    }

    #[test]
    fn short_training_reduces_loss() {
        // Seeds/schedule are tuned for the in-tree xoshiro-based StdRng
        // stream (the vendored `rand`); the upstream ChaCha stream produced
        // different synthetic data and init.
        let ds = build(Task::Mnist2, &TaskConfig::small(9));
        let mut qnn = Qnn::new(QnnConfig::standard(16, 2, 2, 2), 1);
        let options = TrainOptions {
            adam: AdamConfig {
                lr_max: 2e-2,
                warmup_epochs: 3,
                total_epochs: 60,
                ..AdamConfig::default()
            },
            batch_size: 32,
            pipeline: PipelineOptions::baseline(),
            seed: 3,
        };
        let report = train(&mut qnn, &ds, &options).unwrap();
        let first = report.history.first().unwrap().train_loss;
        let last = report.history.last().unwrap().train_loss;
        assert!(
            last < first,
            "training loss should decrease: {first} → {last}"
        );
        assert!(report.valid_acc > 0.75, "valid acc {}", report.valid_acc);
        assert_eq!(report.skipped_steps, 0, "clean run skips nothing");
    }

    #[test]
    fn non_finite_gradients_skip_the_step() {
        let mut adam = Adam::new(AdamConfig::default(), 2);
        let mut p = vec![1.0f64, -1.0];
        assert!(adam.step(&mut p, &[0.1, 0.2], 0.01));
        let after_good = p.clone();
        let t_after_good = adam.t;
        assert!(!adam.step(&mut p, &[f64::NAN, 0.2], 0.01));
        assert!(!adam.step(&mut p, &[0.1, f64::INFINITY], 0.01));
        assert_eq!(p, after_good, "skipped steps leave parameters untouched");
        assert_eq!(adam.t, t_after_good, "skipped steps do not advance time");
        assert!(p.iter().all(|v| v.is_finite()));
        // The optimizer recovers on the next clean batch.
        assert!(adam.step(&mut p, &[0.1, 0.2], 0.01));
    }
}
