//! Post-measurement normalization (paper §3.1).
//!
//! For each qubit, measurement outcomes are normalized *across the batch*
//! to zero mean and unit variance — during training **and** inference.
//! Theorem 3.1 shows quantum noise acts as `f(y) = γ·y + β` per qubit, so
//! batch normalization cancels both the scaling and the shift:
//! `(f(y) − E[f(y)]) / √Var(f(y)) = (y − E[y]) / √Var(y)`.
//!
//! Unlike Batch Normalization, the test batch uses *its own* statistics (or
//! statistics profiled on the validation set when the test batch is small —
//! Appendix A.3.7), and there are no trainable affine parameters.

/// Numerical floor added to variances.
pub const NORM_EPS: f64 = 1e-8;

/// Per-qubit mean and standard deviation of a batch of measurement
/// outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct NormStats {
    /// Per-qubit mean.
    pub mean: Vec<f64>,
    /// Per-qubit standard deviation (√(Var + ε)).
    pub std: Vec<f64>,
}

impl NormStats {
    /// Computes the statistics of a batch (`outputs[i][q]`).
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or ragged.
    pub fn from_batch(outputs: &[Vec<f64>]) -> NormStats {
        assert!(!outputs.is_empty(), "empty batch");
        let q = outputs[0].len();
        let n = outputs.len() as f64;
        let mut mean = vec![0.0; q];
        for row in outputs {
            assert_eq!(row.len(), q, "ragged batch");
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; q];
        for row in outputs {
            for (j, &v) in row.iter().enumerate() {
                var[j] += (v - mean[j]) * (v - mean[j]);
            }
        }
        let std = var.into_iter().map(|v| (v / n + NORM_EPS).sqrt()).collect();
        NormStats { mean, std }
    }

    /// Normalizes a batch in place with these statistics.
    pub fn apply(&self, outputs: &mut [Vec<f64>]) {
        for row in outputs.iter_mut() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (*v - self.mean[j]) / self.std[j];
            }
        }
    }
}

/// Normalizes a batch with its own statistics (the default inference mode);
/// returns the statistics used.
pub fn normalize_batch(outputs: &mut [Vec<f64>]) -> NormStats {
    let stats = NormStats::from_batch(outputs);
    stats.apply(outputs);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> Vec<Vec<f64>> {
        vec![
            vec![0.3, -0.5, 0.9],
            vec![0.1, 0.2, -0.3],
            vec![-0.4, 0.4, 0.5],
            vec![0.8, -0.1, 0.1],
        ]
    }

    #[test]
    fn normalized_batch_is_zero_mean_unit_var() {
        let mut batch = sample_batch();
        normalize_batch(&mut batch);
        let stats = NormStats::from_batch(&batch);
        for j in 0..3 {
            assert!(stats.mean[j].abs() < 1e-10, "mean {j}");
            assert!((stats.std[j] - 1.0).abs() < 1e-6, "std {j}");
        }
    }

    #[test]
    fn cancels_affine_corruption() {
        // Theorem 3.1: normalization of γ·y + β equals normalization of y.
        let mut clean = sample_batch();
        let mut corrupted: Vec<Vec<f64>> = clean
            .iter()
            .map(|row| row.iter().map(|&v| 0.6 * v + 0.17).collect())
            .collect();
        normalize_batch(&mut clean);
        normalize_batch(&mut corrupted);
        for (a, b) in clean.iter().flatten().zip(corrupted.iter().flatten()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn fixed_stats_mode() {
        // Using validation stats on a test batch (Appendix A.3.7).
        let valid = sample_batch();
        let stats = NormStats::from_batch(&valid);
        let mut test = vec![vec![0.2, 0.0, 0.4], vec![-0.1, 0.3, 0.6]];
        let expect: Vec<Vec<f64>> = test
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(j, &v)| (v - stats.mean[j]) / stats.std[j])
                    .collect()
            })
            .collect();
        stats.apply(&mut test);
        assert_eq!(test, expect);
    }

    #[test]
    fn constant_qubit_does_not_blow_up() {
        let mut batch = vec![vec![0.5], vec![0.5], vec![0.5]];
        normalize_batch(&mut batch);
        assert!(batch.iter().all(|r| r[0].abs() < 1e-3));
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        NormStats::from_batch(&[]);
    }
}
