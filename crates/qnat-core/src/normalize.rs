//! Post-measurement normalization (paper §3.1).
//!
//! For each qubit, measurement outcomes are normalized *across the batch*
//! to zero mean and unit variance — during training **and** inference.
//! Theorem 3.1 shows quantum noise acts as `f(y) = γ·y + β` per qubit, so
//! batch normalization cancels both the scaling and the shift:
//! `(f(y) − E[f(y)]) / √Var(f(y)) = (y − E[y]) / √Var(y)`.
//!
//! Unlike Batch Normalization, the test batch uses *its own* statistics (or
//! statistics profiled on the validation set when the test batch is small —
//! Appendix A.3.7), and there are no trainable affine parameters.
//!
//! Statistics computation is fallible ([`NormStats::try_from_batch`]): an
//! empty/ragged batch or non-finite outcome (a backend fault leaking NaN)
//! is a typed [`NormError`] rather than a NaN scale factor silently
//! poisoning every later layer. Zero-variance qubits are safe by
//! construction — the [`NORM_EPS`] floor keeps the divisor positive.

use std::error::Error;
use std::fmt;

/// Numerical floor added to variances.
pub const NORM_EPS: f64 = 1e-8;

/// Why normalization statistics could not be computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NormError {
    /// The batch holds no samples.
    EmptyBatch,
    /// A row's width disagrees with the first row's.
    RaggedBatch {
        /// Width of the first row.
        expected: usize,
        /// Width of the offending row.
        got: usize,
    },
    /// A measurement outcome is NaN or infinite.
    NonFinite {
        /// Sample index of the offending value.
        sample: usize,
        /// Qubit index of the offending value.
        qubit: usize,
    },
}

impl fmt::Display for NormError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormError::EmptyBatch => write!(f, "empty batch"),
            NormError::RaggedBatch { expected, got } => {
                write!(f, "ragged batch: row of width {got}, expected {expected}")
            }
            NormError::NonFinite { sample, qubit } => {
                write!(f, "non-finite outcome at sample {sample}, qubit {qubit}")
            }
        }
    }
}

impl Error for NormError {}

/// Per-qubit mean and standard deviation of a batch of measurement
/// outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct NormStats {
    /// Per-qubit mean.
    pub mean: Vec<f64>,
    /// Per-qubit standard deviation (√(Var + ε)).
    pub std: Vec<f64>,
}

impl NormStats {
    /// Computes the statistics of a batch (`outputs[i][q]`).
    ///
    /// # Errors
    ///
    /// Returns [`NormError`] for an empty batch, a ragged batch, or any
    /// non-finite outcome.
    pub fn try_from_batch(outputs: &[Vec<f64>]) -> Result<NormStats, NormError> {
        let q = match outputs.first() {
            Some(row) => row.len(),
            None => return Err(NormError::EmptyBatch),
        };
        let n = outputs.len() as f64;
        let mut mean = vec![0.0; q];
        for (i, row) in outputs.iter().enumerate() {
            if row.len() != q {
                return Err(NormError::RaggedBatch {
                    expected: q,
                    got: row.len(),
                });
            }
            for (j, (m, &v)) in mean.iter_mut().zip(row).enumerate() {
                if !v.is_finite() {
                    return Err(NormError::NonFinite {
                        sample: i,
                        qubit: j,
                    });
                }
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; q];
        for row in outputs {
            for (j, &v) in row.iter().enumerate() {
                var[j] += (v - mean[j]) * (v - mean[j]);
            }
        }
        let std = var.into_iter().map(|v| (v / n + NORM_EPS).sqrt()).collect();
        Ok(NormStats { mean, std })
    }

    /// Computes the statistics of a batch (`outputs[i][q]`).
    ///
    /// # Panics
    ///
    /// Panics where [`NormStats::try_from_batch`] errors. Prefer the
    /// fallible form on any deployment path.
    pub fn from_batch(outputs: &[Vec<f64>]) -> NormStats {
        match NormStats::try_from_batch(outputs) {
            Ok(stats) => stats,
            Err(e) => panic!("{e}"),
        }
    }

    /// Normalizes a batch in place with these statistics.
    pub fn apply(&self, outputs: &mut [Vec<f64>]) {
        for row in outputs.iter_mut() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (*v - self.mean[j]) / self.std[j];
            }
        }
    }
}

/// Normalizes a batch with its own statistics (the default inference mode);
/// returns the statistics used.
///
/// # Errors
///
/// Returns [`NormError`] where [`NormStats::try_from_batch`] does; the
/// batch is left untouched on error.
pub fn try_normalize_batch(outputs: &mut [Vec<f64>]) -> Result<NormStats, NormError> {
    let stats = NormStats::try_from_batch(outputs)?;
    stats.apply(outputs);
    Ok(stats)
}

/// Panicking form of [`try_normalize_batch`] for trusted (already
/// validated) batches.
///
/// # Panics
///
/// Panics where [`NormStats::try_from_batch`] errors.
pub fn normalize_batch(outputs: &mut [Vec<f64>]) -> NormStats {
    match try_normalize_batch(outputs) {
        Ok(stats) => stats,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> Vec<Vec<f64>> {
        vec![
            vec![0.3, -0.5, 0.9],
            vec![0.1, 0.2, -0.3],
            vec![-0.4, 0.4, 0.5],
            vec![0.8, -0.1, 0.1],
        ]
    }

    #[test]
    fn normalized_batch_is_zero_mean_unit_var() {
        let mut batch = sample_batch();
        normalize_batch(&mut batch);
        let stats = NormStats::from_batch(&batch);
        for j in 0..3 {
            assert!(stats.mean[j].abs() < 1e-10, "mean {j}");
            assert!((stats.std[j] - 1.0).abs() < 1e-6, "std {j}");
        }
    }

    #[test]
    fn cancels_affine_corruption() {
        // Theorem 3.1: normalization of γ·y + β equals normalization of y.
        let mut clean = sample_batch();
        let mut corrupted: Vec<Vec<f64>> = clean
            .iter()
            .map(|row| row.iter().map(|&v| 0.6 * v + 0.17).collect())
            .collect();
        normalize_batch(&mut clean);
        normalize_batch(&mut corrupted);
        for (a, b) in clean.iter().flatten().zip(corrupted.iter().flatten()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn fixed_stats_mode() {
        // Using validation stats on a test batch (Appendix A.3.7).
        let valid = sample_batch();
        let stats = NormStats::from_batch(&valid);
        let mut test = vec![vec![0.2, 0.0, 0.4], vec![-0.1, 0.3, 0.6]];
        let expect: Vec<Vec<f64>> = test
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(j, &v)| (v - stats.mean[j]) / stats.std[j])
                    .collect()
            })
            .collect();
        stats.apply(&mut test);
        assert_eq!(test, expect);
    }

    #[test]
    fn constant_qubit_does_not_blow_up() {
        // Zero variance must not yield a NaN scale factor (NORM_EPS floor).
        let mut batch = vec![vec![0.5], vec![0.5], vec![0.5]];
        let stats = normalize_batch(&mut batch);
        assert!(stats.std[0].is_finite() && stats.std[0] > 0.0);
        assert!(batch.iter().all(|r| r[0].is_finite() && r[0].abs() < 1e-3));
    }

    #[test]
    fn empty_batch_is_typed_error() {
        assert_eq!(
            NormStats::try_from_batch(&[]).unwrap_err(),
            NormError::EmptyBatch
        );
    }

    #[test]
    fn ragged_batch_is_typed_error() {
        let batch = vec![vec![0.1, 0.2], vec![0.3]];
        assert_eq!(
            NormStats::try_from_batch(&batch).unwrap_err(),
            NormError::RaggedBatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn non_finite_outcome_is_typed_error() {
        let mut batch = vec![vec![0.1, 0.2], vec![0.3, f64::NAN]];
        assert_eq!(
            NormStats::try_from_batch(&batch).unwrap_err(),
            NormError::NonFinite {
                sample: 1,
                qubit: 1
            }
        );
        // And the in-place form leaves the batch untouched on error
        // (NaN compares unequal, so check the finite entries).
        let before = batch[0].clone();
        assert!(try_normalize_batch(&mut batch).is_err());
        assert_eq!(batch[0], before);
        assert!(batch[1][1].is_nan());
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        NormStats::from_batch(&[]);
    }
}
