//! Classical-to-quantum encoders.
//!
//! Each block of a QuantumNAT QNN starts with an encoder that writes
//! classical values into rotation angles (paper §4.1):
//!
//! * 4×4 images → 4 qubits × 4 layers `[RY, RX, RZ, RY]` (16 angles);
//! * 6×6 images → 10 qubits × layers `[RY×10, RX×10, RZ×10, RY×6]`;
//! * 10 vowel features → 4 qubits × `[RY×4, RX×4, RZ×2]`;
//! * inter-block re-upload → one RY per qubit carrying the previous block's
//!   (normalized, quantized) measurement outcome.
//!
//! Features in `[0, 1]` are scaled by π before becoming angles; inter-block
//! outcomes are used directly (scale 1).

use qnat_sim::circuit::Circuit;
use qnat_sim::gate::Gate;

/// Rotation axis of one encoder gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotAxis {
    /// RX rotation.
    X,
    /// RY rotation.
    Y,
    /// RZ rotation.
    Z,
}

/// An encoder: an ordered list of rotation gates, one per input feature.
#[derive(Debug, Clone, PartialEq)]
pub struct Encoder {
    n_qubits: usize,
    slots: Vec<(RotAxis, usize)>,
    scale: f64,
}

impl Encoder {
    /// Encoder for 16 features on 4 qubits (4×4 images).
    pub fn image_4x4() -> Encoder {
        let mut slots = Vec::with_capacity(16);
        for &axis in &[RotAxis::Y, RotAxis::X, RotAxis::Z, RotAxis::Y] {
            for q in 0..4 {
                slots.push((axis, q));
            }
        }
        Encoder {
            n_qubits: 4,
            slots,
            scale: std::f64::consts::PI,
        }
    }

    /// Encoder for 36 features on 10 qubits (6×6 images):
    /// RY×10, RX×10, RZ×10, RY×6.
    pub fn image_6x6() -> Encoder {
        let mut slots = Vec::with_capacity(36);
        for q in 0..10 {
            slots.push((RotAxis::Y, q));
        }
        for q in 0..10 {
            slots.push((RotAxis::X, q));
        }
        for q in 0..10 {
            slots.push((RotAxis::Z, q));
        }
        for q in 0..6 {
            slots.push((RotAxis::Y, q));
        }
        Encoder {
            n_qubits: 10,
            slots,
            scale: std::f64::consts::PI,
        }
    }

    /// Encoder for 10 vowel features on 4 qubits: RY×4, RX×4, RZ×2.
    pub fn vowel() -> Encoder {
        let mut slots = Vec::with_capacity(10);
        for q in 0..4 {
            slots.push((RotAxis::Y, q));
        }
        for q in 0..4 {
            slots.push((RotAxis::X, q));
        }
        for q in 0..2 {
            slots.push((RotAxis::Z, q));
        }
        Encoder {
            n_qubits: 4,
            slots,
            scale: std::f64::consts::PI,
        }
    }

    /// Inter-block re-upload encoder: one RY per qubit, angles used
    /// directly (scale 1).
    pub fn reupload(n_qubits: usize) -> Encoder {
        Encoder {
            n_qubits,
            slots: (0..n_qubits).map(|q| (RotAxis::Y, q)).collect(),
            scale: 1.0,
        }
    }

    /// Selects the paper's first-block encoder for a feature count.
    ///
    /// # Panics
    ///
    /// Panics for feature counts with no defined encoder (16, 36, 10 and
    /// `n ≤ 12` two-feature toy inputs are supported).
    pub fn for_features(n_features: usize) -> Encoder {
        match n_features {
            16 => Encoder::image_4x4(),
            36 => Encoder::image_6x6(),
            10 => Encoder::vowel(),
            // Toy tasks (e.g. Table 3's two-feature inputs): RY per qubit.
            n if n <= 12 => Encoder {
                n_qubits: n,
                slots: (0..n).map(|q| (RotAxis::Y, q)).collect(),
                scale: std::f64::consts::PI,
            },
            n => panic!("no encoder defined for {n} features"),
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of input features (= number of encoder gates).
    pub fn n_features(&self) -> usize {
        self.slots.len()
    }

    /// The factor mapping feature values to angles.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Appends the encoder gates (zero angles, to be bound later) to a
    /// circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit register is smaller than the encoder's.
    pub fn append_template(&self, circuit: &mut Circuit) {
        assert!(circuit.n_qubits() >= self.n_qubits, "register too small");
        for &(axis, q) in &self.slots {
            circuit.push(match axis {
                RotAxis::X => Gate::rx(q, 0.0),
                RotAxis::Y => Gate::ry(q, 0.0),
                RotAxis::Z => Gate::rz(q, 0.0),
            });
        }
    }

    /// Converts feature values to encoder angles (applies the scale).
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features()`.
    pub fn angles(&self, features: &[f64]) -> Vec<f64> {
        assert_eq!(features.len(), self.n_features(), "feature count");
        features.iter().map(|&f| f * self.scale).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_encoder_shapes() {
        let e = Encoder::image_4x4();
        assert_eq!((e.n_qubits(), e.n_features()), (4, 16));
        let e = Encoder::image_6x6();
        assert_eq!((e.n_qubits(), e.n_features()), (10, 36));
        let e = Encoder::vowel();
        assert_eq!((e.n_qubits(), e.n_features()), (4, 10));
        let e = Encoder::reupload(7);
        assert_eq!((e.n_qubits(), e.n_features()), (7, 7));
        assert_eq!(e.scale(), 1.0);
    }

    #[test]
    fn for_features_dispatch() {
        assert_eq!(Encoder::for_features(16).n_qubits(), 4);
        assert_eq!(Encoder::for_features(36).n_qubits(), 10);
        assert_eq!(Encoder::for_features(10).n_qubits(), 4);
        assert_eq!(Encoder::for_features(2).n_qubits(), 2);
    }

    #[test]
    fn template_has_one_param_per_feature() {
        let e = Encoder::image_4x4();
        let mut c = Circuit::new(4);
        e.append_template(&mut c);
        assert_eq!(c.n_params(), 16);
        assert_eq!(c.len(), 16);
    }

    #[test]
    fn angles_scale_features() {
        let e = Encoder::reupload(2);
        assert_eq!(e.angles(&[0.5, -1.0]), vec![0.5, -1.0]);
        let e = Encoder::for_features(2);
        let a = e.angles(&[0.5, 1.0]);
        assert!((a[0] - std::f64::consts::PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn vowel_layout_matches_paper() {
        // RY×4, RX×4, RZ×2 — first 4 gates RY on qubits 0..4.
        let e = Encoder::vowel();
        let mut c = Circuit::new(4);
        e.append_template(&mut c);
        assert_eq!(c.gates()[0].kind, qnat_sim::GateKind::Ry);
        assert_eq!(c.gates()[4].kind, qnat_sim::GateKind::Rx);
        assert_eq!(c.gates()[8].kind, qnat_sim::GateKind::Rz);
        assert_eq!(c.gates()[9].qubits[0], 1);
    }
}
