//! Property tests for [`ExecutionReport::merge`] — the fold that turns
//! per-job reports into the batch-global report. The batch layer relies on
//! two algebraic facts: merging in job order is associative (so any
//! chunking of the job list folds to the same report), and batch-global
//! failure indices survive arbitrary job/worker splits (so failure records
//! stay attributable no matter how the pool carved up the work).

use proptest::prelude::*;
use qnat_core::executor::{BackendUsage, ExecutionReport, FailureRecord};
use qnat_noise::backend::BackendError;
use std::collections::BTreeMap;

/// Deterministically expands compact generated stats into one per-job
/// report whose failure records carry the batch-global index `job`.
fn job_report(job: usize, attempts: usize, retries: usize, flags: u8, backoff: u64) -> ExecutionReport {
    let failures = (0..retries)
        .map(|attempt| FailureRecord {
            job: job as u64,
            attempt: attempt + 1,
            error: BackendError::TransientFailure {
                job: job as u64,
                reason: format!("fault {job}.{attempt}"),
            },
        })
        .collect();
    ExecutionReport {
        jobs: 1,
        attempts,
        retries,
        fallback_jobs: usize::from(flags & 1 != 0),
        short_circuited_jobs: usize::from(flags & 2 != 0),
        fast_failed_jobs: usize::from(flags & 4 != 0),
        deadline_exceeded_jobs: usize::from(flags & 8 != 0),
        degraded: flags & 16 != 0,
        total_backoff_ms: backoff,
        shot_shortfall: (attempts * 7) % 23,
        failures,
        by_backend: BTreeMap::from([(
            format!("backend-{}", flags % 3),
            BackendUsage {
                attempts,
                retries,
                validation_failures: usize::from(flags & 2 != 0),
                fast_failed_jobs: usize::from(flags & 4 != 0),
                fallback_jobs: usize::from(flags & 1 != 0),
                backoff_ms: backoff,
            },
        )]),
    }
}

fn merge_all(reports: &[ExecutionReport]) -> ExecutionReport {
    let mut acc = ExecutionReport::default();
    for r in reports {
        acc.merge(r);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_associative(
        stats in prop::collection::vec((1usize..5, 0usize..4, 0u8..32, 0u64..5_000), 3..24),
        split_a in 1usize..64,
        split_b in 1usize..64,
    ) {
        let reports: Vec<ExecutionReport> = stats
            .iter()
            .enumerate()
            .map(|(job, &(attempts, retries, flags, backoff))| {
                job_report(job, attempts, retries, flags, backoff)
            })
            .collect();
        let n = reports.len();
        // (r₀ ⊕ … ⊕ rₐ₋₁) ⊕ (rₐ ⊕ … ⊕ r_b₋₁) ⊕ (r_b ⊕ … ) for arbitrary
        // in-order cut points equals the flat left fold.
        let a = (split_a % n).max(1).min(n);
        let b = a + (split_b % (n - a + 1));
        let flat = merge_all(&reports);
        let mut chunked = merge_all(&reports[..a]);
        chunked.merge(&merge_all(&reports[a..b]));
        chunked.merge(&merge_all(&reports[b..]));
        prop_assert_eq!(&flat, &chunked);
        // And fully right-associated: r₀ ⊕ (r₁ ⊕ (r₂ ⊕ …)).
        let mut right = ExecutionReport::default();
        for r in reports.iter().rev() {
            let mut next = r.clone();
            next.merge(&right);
            right = next;
        }
        prop_assert_eq!(&flat, &right);
    }

    #[test]
    fn failure_indices_survive_any_worker_split(
        stats in prop::collection::vec((1usize..5, 0usize..4, 0u8..32, 0u64..5_000), 2..24),
        workers in 1usize..9,
    ) {
        let reports: Vec<ExecutionReport> = stats
            .iter()
            .enumerate()
            .map(|(job, &(attempts, retries, flags, backoff))| {
                job_report(job, attempts, retries, flags, backoff)
            })
            .collect();
        // However the pool assigns jobs to workers, merging the per-job
        // reports back in job-index order reproduces the single-worker
        // report, batch-global failure indices included.
        let flat = merge_all(&reports);
        let mut by_worker: Vec<Vec<usize>> = vec![Vec::new(); workers];
        for job in 0..reports.len() {
            // Deterministic but uneven assignment.
            by_worker[(job * 7 + 3) % workers].push(job);
        }
        let mut in_order: Vec<usize> = by_worker.concat();
        in_order.sort_unstable();
        let merged = merge_all(
            &in_order.iter().map(|&j| reports[j].clone()).collect::<Vec<_>>(),
        );
        prop_assert_eq!(&flat, &merged);
        // Every failure record still names its original job, in order.
        let jobs_in_failures: Vec<u64> = merged.failures.iter().map(|f| f.job).collect();
        let mut sorted = jobs_in_failures.clone();
        sorted.sort_unstable();
        prop_assert_eq!(jobs_in_failures, sorted, "failures sorted by job");
        for f in &merged.failures {
            prop_assert!(stats[f.job as usize].1 > 0, "job {} recorded no retry", f.job);
        }
    }
}
