//! End-to-end acceptance tests for the fleet health layer (ISSUE 3):
//! breaker-on vs breaker-off cost on a flaky batch, deadline-budget
//! enforcement, and the determinism contract under breaker + deadline.

use qnat_core::batch::{BatchExecutor, BatchJob};
use qnat_core::executor::{ResilientExecutor, RetryPolicy};
use qnat_core::health::{
    BreakerPolicy, BreakerState, DeadlinePolicy, HealthPolicy, HealthRegistry,
};
use qnat_core::infer::{infer, InferenceBackend, InferenceOptions};
use qnat_core::model::{Qnn, QnnConfig};
use qnat_noise::backend::{BackendError, SimulatorBackend};
use qnat_noise::presets;
use qnat_noise::fault::{FaultSpec, FaultyBackend};
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::Gate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn jobs(n: usize) -> Vec<BatchJob> {
    (0..n)
        .map(|k| {
            let mut c = Circuit::new(2);
            c.push(Gate::ry(0, 0.09 * k as f64 + 0.04));
            c.push(Gate::cx(0, 1));
            BatchJob::exact(c)
        })
        .collect()
}

/// Primary failing at `rate`, clean fallback, deterministic jitter. The
/// default sleeper is virtual, so `total_backoff_ms` measures the backoff
/// schedule without real wall-clock cost.
fn flaky_factory(
    rate: f64,
) -> impl Fn(u64, u64) -> Result<ResilientExecutor, BackendError> + Sync {
    move |_job, seed| {
        Ok(ResilientExecutor::with_fallback(
            Box::new(FaultyBackend::new(
                SimulatorBackend::new(seed),
                FaultSpec::transient(rate, seed),
            )),
            Box::new(SimulatorBackend::new(seed ^ 0x5eed)),
            RetryPolicy {
                jitter_seed: seed,
                ..RetryPolicy::default()
            },
        ))
    }
}

/// No-fallback variant: exhausted retries surface as job errors.
fn no_fallback_factory(
    rate: f64,
) -> impl Fn(u64, u64) -> Result<ResilientExecutor, BackendError> + Sync {
    move |_job, seed| {
        Ok(ResilientExecutor::new(
            Box::new(FaultyBackend::new(
                SimulatorBackend::new(seed),
                FaultSpec::transient(rate, seed),
            )),
            RetryPolicy {
                jitter_seed: seed,
                ..RetryPolicy::default()
            },
        ))
    }
}

/// ISSUE 3 acceptance: on a dying primary, the breaker-enabled batch
/// completes with strictly fewer attempts and strictly less backoff than
/// the breaker-disabled batch, at equal-or-better success count.
#[test]
fn breaker_cuts_attempts_and_backoff_at_equal_success() {
    let n = 48;
    let pool = BatchExecutor::new(4, 0xFEE7, flaky_factory(1.0));
    let off = pool.execute(&jobs(n));
    let registry = HealthRegistry::new();
    let on = pool.execute_with_health(
        &jobs(n),
        &HealthPolicy::breaker_only(),
        &registry,
        "primary",
    );

    // Same rescue quality: the fallback serves every job either way.
    assert_eq!(off.failed_jobs(), 0);
    assert!(on.failed_jobs() <= off.failed_jobs());

    // Strictly cheaper: short-circuited jobs pay zero primary attempts
    // and zero backoff.
    assert!(
        on.report.attempts < off.report.attempts,
        "breaker on: {} attempts, off: {}",
        on.report.attempts,
        off.report.attempts
    );
    assert!(
        on.report.total_backoff_ms < off.report.total_backoff_ms,
        "breaker on: {} ms backoff, off: {} ms",
        on.report.total_backoff_ms,
        off.report.total_backoff_ms
    );
    assert!(on.report.retries < off.report.retries);

    let snap = registry.snapshot("primary").expect("breaker created");
    assert!(snap.trips >= 1, "total outage must trip the breaker");
    assert_eq!(on.report.short_circuited_jobs as u64, snap.short_circuited);
    assert!(snap.recoveries == 0, "the primary never comes back");
}

/// A batch-wide backoff budget caps the total backoff spend; jobs that run
/// out of budget fail with `DeadlineExceeded` without sinking the batch.
#[test]
fn batch_deadline_budget_is_enforced_without_sinking_the_batch() {
    let n = 32;
    let budget_ms = 120;
    let pool = BatchExecutor::new(4, 0xDEAD, no_fallback_factory(0.7));
    let policy = HealthPolicy {
        breaker: None,
        deadline: Some(DeadlinePolicy::Batch(budget_ms)),
    };
    let out = pool.execute_with_health(&jobs(n), &policy, &HealthRegistry::new(), "primary");

    assert_eq!(out.results.len(), n, "every job reports a result");
    assert!(
        out.report.total_backoff_ms <= budget_ms,
        "spent {} ms of a {budget_ms} ms budget",
        out.report.total_backoff_ms
    );
    let deadline_errors = out
        .results
        .iter()
        .filter(|r| matches!(r, Err(BackendError::DeadlineExceeded { .. })))
        .count();
    assert_eq!(out.report.deadline_exceeded_jobs, deadline_errors);
    assert!(
        deadline_errors > 0,
        "a 70% fault rate over 32 jobs must exhaust a {budget_ms} ms budget"
    );
    assert!(
        out.results.iter().any(|r| r.is_ok()),
        "the budget must not starve the whole batch"
    );
    // No unbudgeted run needed for comparison: the cap plus surviving
    // successes is the whole claim.
}

/// Per-job deadline budgets are fully deterministic: every job gets the
/// same budget regardless of completion order.
#[test]
fn per_job_deadline_flags_exactly_the_over_budget_jobs() {
    let n = 24;
    let pool = BatchExecutor::new(3, 0x0DD5, no_fallback_factory(0.8));
    let run = |deadline: Option<DeadlinePolicy>| {
        let policy = HealthPolicy {
            breaker: None,
            deadline,
        };
        pool.execute_with_health(&jobs(n), &policy, &HealthRegistry::new(), "primary")
    };
    let unbounded = run(None);
    let bounded = run(Some(DeadlinePolicy::PerJob(25)));

    assert_eq!(bounded.results.len(), n);
    assert!(bounded.report.deadline_exceeded_jobs > 0, "tight per-job budget must bite");
    for (i, (u, b)) in unbounded.results.iter().zip(&bounded.results).enumerate() {
        match b {
            // A job within budget behaves exactly as without a deadline.
            Err(BackendError::DeadlineExceeded { job, .. }) => {
                assert_eq!(*job, i as u64, "deadline error names its own job")
            }
            other => assert_eq!(other, u, "job {i} must be unaffected by siblings' budgets"),
        }
    }
    assert!(
        bounded.report.total_backoff_ms < unbounded.report.total_backoff_ms,
        "budgets must cut backoff spend"
    );
}

/// Determinism contract pin: breaker + per-job deadline results, merged
/// reports and breaker snapshots are bitwise invariant in the worker
/// count (fresh registry per run — the deterministic configuration).
#[test]
fn breaker_and_per_job_deadline_are_worker_count_invariant() {
    let n = 40;
    let run = |workers: usize| {
        let pool = BatchExecutor::new(workers, 0xC0FFEE, flaky_factory(0.6));
        let registry = HealthRegistry::new();
        let policy = HealthPolicy {
            breaker: Some(BreakerPolicy::default()),
            deadline: Some(DeadlinePolicy::PerJob(40)),
        };
        let out = pool.execute_with_health(&jobs(n), &policy, &registry, "primary");
        let snap = registry.snapshot("primary").expect("breaker created");
        (out.results, out.report, snap)
    };
    let (results1, report1, snap1) = run(1);
    for workers in [2usize, 8] {
        let (results, report, snap) = run(workers);
        assert_eq!(results1, results, "results diverge at {workers} workers");
        assert_eq!(report1, report, "report diverges at {workers} workers");
        assert_eq!(snap1, snap, "breaker state diverges at {workers} workers");
    }
}

/// The breaker recovers through half-open probes when the primary heals:
/// jobs past the recovery point stop short-circuiting.
#[test]
fn breaker_recovers_via_probes_when_the_primary_heals() {
    // The primary is dead for the first 16 jobs, healthy afterwards.
    let factory = |job: u64, seed: u64| -> Result<ResilientExecutor, BackendError> {
        let rate = if job < 16 { 1.0 } else { 0.0 };
        Ok(ResilientExecutor::with_fallback(
            Box::new(FaultyBackend::new(
                SimulatorBackend::new(seed),
                FaultSpec::transient(rate, seed),
            )),
            Box::new(SimulatorBackend::new(seed ^ 0x5eed)),
            RetryPolicy {
                jitter_seed: seed,
                ..RetryPolicy::default()
            },
        ))
    };
    let policy = HealthPolicy {
        breaker: Some(BreakerPolicy {
            window: 8,
            failure_threshold: 0.5,
            min_samples: 4,
            cooldown_jobs: 8,
            probe_budget: 2,
            decision_interval: 4,
        }),
        deadline: None,
    };
    let registry = HealthRegistry::new();
    let out = BatchExecutor::new(4, 0x7EA1, factory).execute_with_health(
        &jobs(64),
        &policy,
        &registry,
        "primary",
    );
    assert_eq!(out.failed_jobs(), 0);
    let snap = registry.snapshot("primary").expect("breaker created");
    assert!(snap.trips >= 1, "the dead phase must trip the breaker");
    assert!(snap.recoveries >= 1, "a healed primary must re-close it");
    assert_eq!(
        snap.state,
        BreakerState::Closed,
        "by job 64 the breaker has settled closed"
    );
    // Recovery is visible in the report: far fewer short circuits than a
    // never-recovering breaker would accumulate over 64 jobs.
    assert!(out.report.short_circuited_jobs < 32);
}

/// Fast deterministic smoke test of the trip path, run by `scripts/ci.sh`
/// as the health gate: a dead primary must trip the breaker at exactly
/// the planned epoch boundary, twice over for determinism.
#[test]
fn breaker_trip_smoke() {
    let run = || {
        let registry = HealthRegistry::new();
        let policy = HealthPolicy {
            breaker: Some(BreakerPolicy {
                window: 8,
                failure_threshold: 0.5,
                min_samples: 4,
                cooldown_jobs: 32,
                probe_budget: 1,
                decision_interval: 4,
            }),
            deadline: None,
        };
        let out = BatchExecutor::new(2, 5, flaky_factory(1.0)).execute_with_health(
            &jobs(12),
            &policy,
            &registry,
            "primary",
        );
        let snap = registry.snapshot("primary").expect("breaker created");
        (out.results, out.report, snap)
    };
    let (results, report, snap) = run();
    assert_eq!(snap.trips, 1, "one trip at the first epoch boundary");
    assert!(matches!(snap.state, BreakerState::Open { .. }));
    // Epoch 1 (jobs 0..4) runs against the dead primary and trips; epochs
    // 2 and 3 short-circuit entirely.
    assert_eq!(report.short_circuited_jobs, 8);
    assert_eq!(results.iter().filter(|r| r.is_ok()).count(), 12);
    assert_eq!(run(), (results, report, snap), "smoke must be deterministic");
}

/// The health layer at the deployment level: `deploy_batch` +
/// `with_health` keeps inference results identical for jobs the fallback
/// rescues, while the breaker slashes the retry bill.
#[test]
fn deployed_batch_with_breaker_matches_results_and_cuts_attempts() {
    let cfg = QnnConfig::standard(16, 4, 2, 2);
    let qnn = Qnn::for_device(cfg, &presets::santiago(), 7).unwrap();
    let batch: Vec<Vec<f64>> = (0..24)
        .map(|k| (0..16).map(|j| ((k * 16 + j) as f64 * 0.013).sin()).collect())
        .collect();
    let spec = FaultSpec::transient(1.0, 99);
    let run = |health: Option<HealthPolicy>| {
        let mut pooled = qnn
            .deploy_batch(
                &presets::santiago(),
                2,
                RetryPolicy::default(),
                Some(spec),
                4,
                11,
            )
            .unwrap();
        if let Some(h) = health {
            pooled = pooled.with_health(h);
        }
        let mut rng = StdRng::seed_from_u64(0);
        let out = infer(
            &qnn,
            &batch,
            &InferenceBackend::Batch(&pooled),
            &InferenceOptions::baseline(),
            &mut rng,
        )
        .unwrap();
        let registry = std::sync::Arc::clone(pooled.health_registry());
        let keys = registry.keys();
        (out, keys, registry)
    };
    let (off, off_keys, _) = run(None);
    let (on, on_keys, on_registry) = run(Some(HealthPolicy::breaker_only()));

    // The total outage means every job is served by the (deterministic)
    // fallback either way — outputs agree bit-for-bit.
    assert!(off_keys.is_empty(), "no breaker registered without health");
    for (a, b) in off
        .block_outputs
        .iter()
        .flatten()
        .flatten()
        .zip(on.block_outputs.iter().flatten().flatten())
    {
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }
    let off_report = off.report.expect("batch run carries a report");
    let on_report = on.report.expect("batch run carries a report");
    assert!(on_report.attempts < off_report.attempts);
    assert!(on_report.total_backoff_ms < off_report.total_backoff_ms);

    // One breaker per block, keyed by the routed device window.
    assert!(!on_keys.is_empty());
    for key in &on_keys {
        assert!(key.starts_with("emulator("), "key: {key}");
        let snap = on_registry.snapshot(key).expect("key listed");
        assert!(snap.trips >= 1, "every block's primary is dead: {key}");
    }
}
