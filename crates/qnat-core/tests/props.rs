//! Property-based tests for QuantumNAT core invariants: Theorem 3.1
//! (normalization cancels affine noise), model Jacobian consistency and
//! head/metrics sanity.

use proptest::prelude::*;
use qnat_core::head::{apply_head, predict, softmax};
use qnat_core::metrics::{accuracy, mse, snr};
use qnat_core::model::{NoiseSource, Qnn, QnnConfig};
use qnat_core::normalize::normalize_batch;
use rand::rngs::StdRng;
use rand::SeedableRng;


/// Per-column variance floor: the affine-cancellation property only holds
/// when the true variance dominates the numerical ε inside the
/// normalization (a constant qubit carries no signal to recover).
fn min_column_var(rows: &[Vec<f64>]) -> f64 {
    let q = rows[0].len();
    let n = rows.len() as f64;
    (0..q)
        .map(|j| {
            let mean = rows.iter().map(|r| r[j]).sum::<f64>() / n;
            rows.iter().map(|r| (r[j] - mean).powi(2)).sum::<f64>() / n
        })
        .fold(f64::INFINITY, f64::min)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn normalization_cancels_affine_noise(
        rows in prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 4), 4..16),
        gamma in 0.05f64..1.0,
        beta in -0.5f64..0.5,
    ) {
        // Theorem 3.1: f(y) = γ·y + β normalizes to the same values as y.
        prop_assume!(min_column_var(&rows) > 1e-3);
        let mut clean = rows.clone();
        let mut corrupted: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| r.iter().map(|&v| gamma * v + beta).collect())
            .collect();
        normalize_batch(&mut clean);
        normalize_batch(&mut corrupted);
        for (a, b) in clean.iter().flatten().zip(corrupted.iter().flatten()) {
            // Tolerance dominated by the ε floor inside the normalization
            // when γ strongly contracts the variance.
            prop_assert!((a - b).abs() < 2e-3, "{} vs {}", a, b);
        }
    }

    #[test]
    fn per_qubit_affine_noise_also_cancelled(
        rows in prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 3), 4..12),
        gammas in prop::collection::vec(0.1f64..1.0, 3),
        betas in prop::collection::vec(-0.4f64..0.4, 3),
    ) {
        prop_assume!(min_column_var(&rows) > 1e-3);
        let mut clean = rows.clone();
        let mut corrupted: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(q, &v)| gammas[q] * v + betas[q])
                    .collect()
            })
            .collect();
        normalize_batch(&mut clean);
        normalize_batch(&mut corrupted);
        for (a, b) in clean.iter().flatten().zip(corrupted.iter().flatten()) {
            prop_assert!((a - b).abs() < 2e-3);
        }
    }

    #[test]
    fn softmax_is_shift_invariant(logits in prop::collection::vec(-4.0f64..4.0, 2..6), c in -3.0f64..3.0) {
        let shifted: Vec<f64> = logits.iter().map(|v| v + c).collect();
        let a = softmax(&logits);
        let b = softmax(&shifted);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-10);
        }
        prop_assert_eq!(predict(&logits), predict(&shifted));
    }

    #[test]
    fn head_preserves_total_signal(z in prop::collection::vec(-1.0f64..1.0, 4)) {
        // The fixed 4→2 head sums disjoint qubit groups.
        let logits = apply_head(std::slice::from_ref(&z), 2);
        let total: f64 = logits[0].iter().sum();
        prop_assert!((total - z.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn snr_and_mse_are_consistent(
        clean in prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 3), 2..8),
        eps in 0.01f64..0.5,
    ) {
        let noisy: Vec<Vec<f64>> = clean
            .iter()
            .map(|r| r.iter().map(|v| v + eps).collect())
            .collect();
        prop_assert!((mse(&clean, &noisy) - eps * eps).abs() < 1e-9);
        let signal: f64 = clean.iter().flatten().map(|v| v * v).sum();
        prop_assume!(signal > 1e-6);
        let expect_snr = signal / (eps * eps * (clean.len() * 3) as f64);
        prop_assert!((snr(&clean, &noisy) - expect_snr).abs() < 1e-6 * expect_snr.max(1.0));
    }

    #[test]
    fn accuracy_is_a_fraction(
        n in 1usize..20,
        seed in 0u64..50,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let logits: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 4).collect();
        let a = accuracy(&logits, &labels);
        prop_assert!((0.0..=1.0).contains(&a));
        let scaled = a * n as f64;
        prop_assert!(scaled.round() - scaled < 1e-9);
    }
}

#[test]
fn model_outputs_invariant_to_rebuild() {
    // Deterministic construction: same seed → same parameters → same
    // outputs.
    let a = Qnn::new(QnnConfig::standard(16, 4, 2, 2), 42);
    let b = Qnn::new(QnnConfig::standard(16, 4, 2, 2), 42);
    assert_eq!(a.parameters(), b.parameters());
    let mut rng = StdRng::seed_from_u64(0);
    let inputs: Vec<f64> = (0..16).map(|i| i as f64 / 16.0).collect();
    let oa = a
        .eval_block(0, &inputs, &NoiseSource::None, None, false, &mut rng)
        .outputs;
    let ob = b
        .eval_block(0, &inputs, &NoiseSource::None, None, false, &mut rng)
        .outputs;
    assert_eq!(oa, ob);
}
