//! Property tests for the batch executor's central guarantee: a seeded job
//! list produces bitwise identical per-job results and an identical merged
//! [`ExecutionReport`] whether the pool runs 1, 2 or 8 workers.

use proptest::prelude::*;
use qnat_core::batch::{BatchExecutor, BatchJob, BatchOutcome};
use qnat_core::executor::{ResilientExecutor, RetryPolicy, VirtualSleeper};
use qnat_noise::backend::{BackendError, SimulatorBackend};
use qnat_noise::fault::{FaultSpec, FaultyBackend};
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::Gate;

fn jobs(n: usize, shots: Option<usize>) -> Vec<BatchJob> {
    (0..n)
        .map(|k| {
            let mut c = Circuit::new(2);
            c.push(Gate::ry(0, 0.11 * k as f64 + 0.05));
            c.push(Gate::cx(0, 1));
            BatchJob {
                circuit: c,
                shots,
            }
        })
        .collect()
}

fn run(
    workers: usize,
    batch_seed: u64,
    fault_rate: f64,
    n: usize,
    shots: Option<usize>,
) -> BatchOutcome {
    let factory = move |_job: u64, seed: u64| -> Result<ResilientExecutor, BackendError> {
        Ok(ResilientExecutor::with_fallback(
            Box::new(FaultyBackend::new(
                SimulatorBackend::new(seed),
                FaultSpec::transient(fault_rate, seed),
            )),
            Box::new(SimulatorBackend::new(seed ^ 0x5eed)),
            RetryPolicy {
                jitter_seed: seed,
                ..RetryPolicy::default()
            },
        )
        .with_sleeper(Box::new(VirtualSleeper::default())))
    };
    BatchExecutor::new(workers, batch_seed, factory).execute(&jobs(n, shots))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn batch_results_bitwise_identical_across_worker_counts(
        batch_seed in 0u64..u64::MAX,
        fault_rate in 0.0f64..0.7,
        n in 1usize..48,
        shots in prop_oneof![Just(None), (32usize..256).prop_map(Some)],
    ) {
        let single = run(1, batch_seed, fault_rate, n, shots);
        for workers in [2usize, 8] {
            let pooled = run(workers, batch_seed, fault_rate, n, shots);
            prop_assert_eq!(pooled.results.len(), n);
            // Bitwise: Measurements carry f64 expectations compared by
            // exact equality, and errors carry their full typed payload.
            prop_assert_eq!(&single.results, &pooled.results,
                "results diverge at {} workers", workers);
            prop_assert_eq!(&single.report, &pooled.report,
                "merged report diverges at {} workers", workers);
        }
        // The report really covers the whole batch.
        prop_assert_eq!(single.report.jobs, n);
        prop_assert!(single.report.attempts >= n);
    }

    #[test]
    fn job_seeds_are_independent_of_batch_position(
        batch_seed in 0u64..u64::MAX,
        n in 2usize..32,
    ) {
        // A job's executor seed depends only on (batch seed, job index) —
        // the pool derives it with SplitMix64, never from worker identity
        // or queue order.
        let pool = BatchExecutor::new(3, batch_seed, |_job, seed| {
            Ok(ResilientExecutor::new(
                Box::new(SimulatorBackend::new(seed)),
                RetryPolicy::default(),
            ))
        });
        let seeds: Vec<u64> = (0..n as u64).map(|k| pool.job_seed(k)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), n, "per-job seeds must not collide");
        for (k, &s) in seeds.iter().enumerate() {
            prop_assert_eq!(s, pool.job_seed(k as u64));
        }
    }
}
