//! End-to-end fault-tolerance tests: the Full-arm deployment pipeline
//! under injected backend faults must keep serving answers — retrying
//! transient failures, falling back to the noise-model simulator, and
//! recording everything in the execution report.

use qnat_core::forward::{PipelineOptions, QuantizeSpec};
use qnat_core::infer::{infer, InferenceBackend, InferenceOptions, NormMode};
use qnat_core::model::{NoiseSource, Qnn, QnnConfig};
use qnat_core::train::{train, AdamConfig, TrainOptions};
use qnat_core::RetryPolicy;
use qnat_data::dataset::{build, Dataset, Task, TaskConfig};
use qnat_noise::{presets, FaultSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Trains a small Full-arm (noise injection + normalization +
/// quantization) model on MNIST-2 against Santiago.
fn trained_full_arm() -> (Qnn, Dataset) {
    let dataset = build(Task::Mnist2, &TaskConfig::small(1));
    let device = presets::santiago();
    let mut qnn = Qnn::for_device(QnnConfig::standard(16, 2, 2, 2), &device, 3)
        .expect("fits device");
    train(
        &mut qnn,
        &dataset,
        &TrainOptions {
            adam: AdamConfig {
                lr_max: 1.5e-2,
                warmup_epochs: 5,
                total_epochs: 25,
                ..AdamConfig::default()
            },
            batch_size: 32,
            pipeline: PipelineOptions {
                noise: NoiseSource::GateInsertion {
                    model: &device,
                    factor: 0.5,
                },
                readout: Some(&device),
                normalize: true,
                quantize: Some(QuantizeSpec::levels(6)),
                quant_penalty: 0.05,
                process_last: false,
            },
            seed: 3,
        },
    )
    .expect("training succeeds");
    (qnn, dataset)
}

fn full_arm_options() -> InferenceOptions {
    InferenceOptions {
        normalize: NormMode::BatchStats,
        quantize: Some(QuantizeSpec::levels(6)),
        process_last: false,
    }
}

fn test_accuracy(
    qnn: &Qnn,
    dataset: &Dataset,
    faults: Option<FaultSpec>,
) -> (f64, qnat_core::ExecutionReport) {
    let device = presets::santiago();
    let dep = qnn
        .deploy_resilient(&device, 2, RetryPolicy::default(), faults, 11)
        .expect("deployable");
    let feats: Vec<Vec<f64>> = dataset.test.iter().map(|s| s.features.clone()).collect();
    let labels: Vec<usize> = dataset.test.iter().map(|s| s.label).collect();
    let mut rng = StdRng::seed_from_u64(5);
    let result = infer(
        qnn,
        &feats,
        &InferenceBackend::Resilient(&dep),
        &full_arm_options(),
        &mut rng,
    )
    .expect("resilient inference returns Ok even under faults");
    let acc = result.accuracy(&labels);
    let report = result.report.expect("resilient run carries a report");
    (acc, report)
}

#[test]
fn full_arm_survives_30pct_transient_faults() {
    let (qnn, dataset) = trained_full_arm();

    let (clean_acc, clean_report) = test_accuracy(&qnn, &dataset, None);
    assert!(clean_acc > 0.6, "fault-free hardware accuracy {clean_acc}");
    assert_eq!(clean_report.retries, 0);
    assert!(!clean_report.degraded);

    let (faulty_acc, report) = test_accuracy(
        &qnn,
        &dataset,
        Some(FaultSpec::transient(0.3, 99)),
    );
    // Retries absorb a 30% transient rate: the pipeline answers every
    // query, and accuracy stays within 2 points of the fault-free run.
    assert!(
        (faulty_acc - clean_acc).abs() <= 0.02 + 1e-12,
        "faulty {faulty_acc} vs clean {clean_acc}"
    );
    assert!(report.retries > 0, "expected retries at a 30% fault rate");
    assert!(report.attempts > report.jobs);
    assert!(
        report.total_backoff_ms > 0,
        "retries must accrue (virtual) backoff"
    );
    assert!(!report.degraded, "30% transients should not force degradation");
}

#[test]
fn total_primary_outage_degrades_to_noise_model_and_still_answers() {
    let (qnn, dataset) = trained_full_arm();
    let (clean_acc, _) = test_accuracy(&qnn, &dataset, None);

    // Every primary attempt fails: the executor must degrade to the
    // noise-model fallback and keep answering.
    let (acc, report) = test_accuracy(&qnn, &dataset, Some(FaultSpec::transient(1.0, 4)));
    assert!(report.degraded, "permanent outage must trigger degradation");
    assert!(report.fallback_jobs > 0);
    assert_eq!(report.jobs, 64 * 2, "two blocks × 64 test samples");
    // The noise-model simulator is a faithful stand-in (paper Table 11):
    // accuracy stays close to the emulated-hardware run.
    assert!(
        (acc - clean_acc).abs() <= 0.05 + 1e-12,
        "degraded {acc} vs clean {clean_acc}"
    );
}
