//! Minimal complex arithmetic used throughout the simulator.
//!
//! A tiny, dependency-free `f64` complex type. Only the operations the
//! simulator needs are provided; the type is `Copy` and all operations are
//! branch-free so the statevector kernels stay vectorizable.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use qnat_sim::math::C64;
///
/// let i = C64::I;
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Returns `e^{iθ} = cos θ + i sin θ`.
    ///
    /// # Examples
    ///
    /// ```
    /// use qnat_sim::math::C64;
    /// let w = C64::cis(std::f64::consts::PI);
    /// assert!((w.re - (-1.0)).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        C64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Returns `true` when both parts are within `tol` of `other`'s.
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: C64) -> C64 {
        let d = rhs.norm_sqr();
        C64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

/// A dense 2×2 complex matrix in row-major order, used for single-qubit gates
/// and Kraus operators.
pub type Mat2 = [[C64; 2]; 2];

/// A dense 4×4 complex matrix in row-major order, used for two-qubit gates.
pub type Mat4 = [[C64; 4]; 4];

/// Multiplies two 2×2 complex matrices.
pub fn mat2_mul(a: &Mat2, b: &Mat2) -> Mat2 {
    let mut c = [[C64::ZERO; 2]; 2];
    for (i, row) in c.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = a[i][0] * b[0][j] + a[i][1] * b[1][j];
        }
    }
    c
}

/// Conjugate-transpose (dagger) of a 2×2 matrix.
pub fn mat2_dagger(a: &Mat2) -> Mat2 {
    [
        [a[0][0].conj(), a[1][0].conj()],
        [a[0][1].conj(), a[1][1].conj()],
    ]
}

/// Multiplies two 4×4 complex matrices.
pub fn mat4_mul(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut c = [[C64::ZERO; 4]; 4];
    for (i, row) in c.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            let mut acc = C64::ZERO;
            for (k, &bk) in b.iter().map(|r| &r[j]).enumerate() {
                acc += a[i][k] * bk;
            }
            *cell = acc;
        }
    }
    c
}

/// Conjugate-transpose (dagger) of a 4×4 matrix.
pub fn mat4_dagger(a: &Mat4) -> Mat4 {
    let mut c = [[C64::ZERO; 4]; 4];
    for (i, row) in c.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = a[j][i].conj();
        }
    }
    c
}

/// Kronecker product of two 2×2 matrices yielding a 4×4 matrix, with `a`
/// acting on the *high* (most-significant) qubit.
pub fn kron2(a: &Mat2, b: &Mat2) -> Mat4 {
    let mut c = [[C64::ZERO; 4]; 4];
    for i in 0..2 {
        for j in 0..2 {
            for k in 0..2 {
                for l in 0..2 {
                    c[2 * i + k][2 * j + l] = a[i][j] * b[k][l];
                }
            }
        }
    }
    c
}

/// Checks whether a 2×2 matrix is unitary within `tol`.
pub fn mat2_is_unitary(a: &Mat2, tol: f64) -> bool {
    let p = mat2_mul(&mat2_dagger(a), a);
    p[0][0].approx_eq(C64::ONE, tol)
        && p[1][1].approx_eq(C64::ONE, tol)
        && p[0][1].approx_eq(C64::ZERO, tol)
        && p[1][0].approx_eq(C64::ZERO, tol)
}

/// Checks whether a 4×4 matrix is unitary within `tol`.
pub fn mat4_is_unitary(a: &Mat4, tol: f64) -> bool {
    let p = mat4_mul(&mat4_dagger(a), a);
    for (i, row) in p.iter().enumerate() {
        for (j, &cell) in row.iter().enumerate() {
            let want = if i == j { C64::ONE } else { C64::ZERO };
            if !cell.approx_eq(want, tol) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_1_SQRT_2, PI};

    #[test]
    fn complex_arithmetic_identities() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z + C64::ZERO, z);
        assert_eq!(z * C64::ONE, z);
        assert_eq!((z * z.conj()).re, z.norm_sqr());
        assert_eq!(z.abs(), 5.0);
        assert_eq!(-z, C64::new(-3.0, 4.0));
    }

    #[test]
    fn cis_is_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * PI / 8.0;
            let w = C64::cis(theta);
            assert!((w.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = C64::new(1.5, -2.5);
        let b = C64::new(-0.25, 0.75);
        let c = a * b / b;
        assert!(c.approx_eq(a, 1e-12));
    }

    #[test]
    fn hadamard_is_unitary() {
        let h = [
            [C64::real(FRAC_1_SQRT_2), C64::real(FRAC_1_SQRT_2)],
            [C64::real(FRAC_1_SQRT_2), C64::real(-FRAC_1_SQRT_2)],
        ];
        assert!(mat2_is_unitary(&h, 1e-12));
    }

    #[test]
    fn kron_of_unitaries_is_unitary() {
        let h = [
            [C64::real(FRAC_1_SQRT_2), C64::real(FRAC_1_SQRT_2)],
            [C64::real(FRAC_1_SQRT_2), C64::real(-FRAC_1_SQRT_2)],
        ];
        let x = [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]];
        assert!(mat4_is_unitary(&kron2(&h, &x), 1e-12));
    }

    #[test]
    fn dagger_is_involutive() {
        let m = [
            [C64::new(0.1, 0.2), C64::new(-0.3, 0.4)],
            [C64::new(0.5, -0.6), C64::new(0.7, 0.8)],
        ];
        let back = mat2_dagger(&mat2_dagger(&m));
        for i in 0..2 {
            for j in 0..2 {
                assert!(back[i][j].approx_eq(m[i][j], 1e-15));
            }
        }
    }

    #[test]
    fn sum_of_complex_iterator() {
        let total: C64 = (0..4).map(|k| C64::new(k as f64, -(k as f64))).sum();
        assert_eq!(total, C64::new(6.0, -6.0));
    }
}
