//! Quantum noise channels in Kraus form.
//!
//! These drive the density-matrix "hardware emulator": Pauli channels
//! (the twirled approximation QuantumNAT samples error gates from),
//! depolarizing, amplitude damping (T1 decay) and phase damping (T2
//! dephasing). Every constructor validates completeness `Σ KᵏᵈKᵏ = I`.

use crate::math::{mat2_dagger, mat2_mul, mat4_dagger, mat4_mul, C64, Mat2, Mat4};
use std::error::Error;
use std::fmt;

/// Error returned when a channel's parameters are outside `[0, 1]` or its
/// Kraus operators do not satisfy the completeness relation.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidChannelError {
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for InvalidChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid quantum channel: {}", self.reason)
    }
}

impl Error for InvalidChannelError {}

/// A single-qubit channel described by its Kraus operators.
#[derive(Debug, Clone, PartialEq)]
pub struct Channel1 {
    ops: Vec<Mat2>,
}

impl Channel1 {
    /// Builds a channel from raw Kraus operators, validating completeness.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidChannelError`] if `Σ KᵏᵈKᵏ ≠ I` within `1e-9`.
    pub fn from_kraus(ops: Vec<Mat2>) -> Result<Self, InvalidChannelError> {
        let mut sum = [[C64::ZERO; 2]; 2];
        for k in &ops {
            let kdk = mat2_mul(&mat2_dagger(k), k);
            for i in 0..2 {
                for j in 0..2 {
                    sum[i][j] += kdk[i][j];
                }
            }
        }
        for i in 0..2 {
            for j in 0..2 {
                let want = if i == j { C64::ONE } else { C64::ZERO };
                if !sum[i][j].approx_eq(want, 1e-9) {
                    return Err(InvalidChannelError {
                        reason: format!("completeness violated at ({i},{j}): {}", sum[i][j]),
                    });
                }
            }
        }
        Ok(Channel1 { ops })
    }

    /// The Kraus operators.
    pub fn kraus(&self) -> &[Mat2] {
        &self.ops
    }

    /// Pauli channel: applies X, Y, Z with probabilities `px`, `py`, `pz`
    /// and identity otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidChannelError`] if any probability is negative or
    /// their sum exceeds 1.
    pub fn pauli(px: f64, py: f64, pz: f64) -> Result<Self, InvalidChannelError> {
        if px < 0.0 || py < 0.0 || pz < 0.0 || px + py + pz > 1.0 {
            return Err(InvalidChannelError {
                reason: format!("pauli probabilities out of range: ({px},{py},{pz})"),
            });
        }
        let p0 = 1.0 - px - py - pz;
        let i2 = [[C64::ONE, C64::ZERO], [C64::ZERO, C64::ONE]];
        let x = [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]];
        let y = [[C64::ZERO, -C64::I], [C64::I, C64::ZERO]];
        let z = [[C64::ONE, C64::ZERO], [C64::ZERO, -C64::ONE]];
        let scale = |m: Mat2, p: f64| -> Mat2 {
            let s = p.sqrt();
            [
                [m[0][0].scale(s), m[0][1].scale(s)],
                [m[1][0].scale(s), m[1][1].scale(s)],
            ]
        };
        Channel1::from_kraus(vec![
            scale(i2, p0),
            scale(x, px),
            scale(y, py),
            scale(z, pz),
        ])
    }

    /// Depolarizing channel with error probability `p` (uniform Pauli).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidChannelError`] if `p ∉ [0, 1]`.
    pub fn depolarizing(p: f64) -> Result<Self, InvalidChannelError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(InvalidChannelError {
                reason: format!("depolarizing probability out of range: {p}"),
            });
        }
        Channel1::pauli(p / 3.0, p / 3.0, p / 3.0)
    }

    /// Bit-flip channel: X with probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidChannelError`] if `p ∉ [0, 1]`.
    pub fn bit_flip(p: f64) -> Result<Self, InvalidChannelError> {
        Channel1::pauli(p, 0.0, 0.0)
    }

    /// Phase-flip channel: Z with probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidChannelError`] if `p ∉ [0, 1]`.
    pub fn phase_flip(p: f64) -> Result<Self, InvalidChannelError> {
        Channel1::pauli(0.0, 0.0, p)
    }

    /// Amplitude-damping channel with decay probability `gamma` (models T1
    /// relaxation over one gate duration).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidChannelError`] if `gamma ∉ [0, 1]`.
    pub fn amplitude_damping(gamma: f64) -> Result<Self, InvalidChannelError> {
        if !(0.0..=1.0).contains(&gamma) {
            return Err(InvalidChannelError {
                reason: format!("damping rate out of range: {gamma}"),
            });
        }
        let k0 = [
            [C64::ONE, C64::ZERO],
            [C64::ZERO, C64::real((1.0 - gamma).sqrt())],
        ];
        let k1 = [
            [C64::ZERO, C64::real(gamma.sqrt())],
            [C64::ZERO, C64::ZERO],
        ];
        Channel1::from_kraus(vec![k0, k1])
    }

    /// Phase-damping channel with rate `lambda` (models pure dephasing / T2).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidChannelError`] if `lambda ∉ [0, 1]`.
    pub fn phase_damping(lambda: f64) -> Result<Self, InvalidChannelError> {
        if !(0.0..=1.0).contains(&lambda) {
            return Err(InvalidChannelError {
                reason: format!("damping rate out of range: {lambda}"),
            });
        }
        let k0 = [
            [C64::ONE, C64::ZERO],
            [C64::ZERO, C64::real((1.0 - lambda).sqrt())],
        ];
        let k1 = [
            [C64::ZERO, C64::ZERO],
            [C64::ZERO, C64::real(lambda.sqrt())],
        ];
        Channel1::from_kraus(vec![k0, k1])
    }
}

/// A two-qubit channel described by its Kraus operators (basis
/// `index = 2·bit(qa) + bit(qb)`).
#[derive(Debug, Clone, PartialEq)]
pub struct Channel2 {
    ops: Vec<Mat4>,
}

impl Channel2 {
    /// Builds a channel from raw Kraus operators, validating completeness.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidChannelError`] if `Σ KᵏᵈKᵏ ≠ I` within `1e-9`.
    pub fn from_kraus(ops: Vec<Mat4>) -> Result<Self, InvalidChannelError> {
        let mut sum = [[C64::ZERO; 4]; 4];
        for k in &ops {
            let kdk = mat4_mul(&mat4_dagger(k), k);
            for i in 0..4 {
                for j in 0..4 {
                    sum[i][j] += kdk[i][j];
                }
            }
        }
        for (i, row) in sum.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                let want = if i == j { C64::ONE } else { C64::ZERO };
                if !v.approx_eq(want, 1e-9) {
                    return Err(InvalidChannelError {
                        reason: format!("completeness violated at ({i},{j}): {v}"),
                    });
                }
            }
        }
        Ok(Channel2 { ops })
    }

    /// The Kraus operators.
    pub fn kraus(&self) -> &[Mat4] {
        &self.ops
    }

    /// Two-qubit depolarizing channel: with probability `p` one of the 15
    /// non-identity Pauli pairs is applied uniformly.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidChannelError`] if `p ∉ [0, 1]`.
    pub fn depolarizing(p: f64) -> Result<Self, InvalidChannelError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(InvalidChannelError {
                reason: format!("depolarizing probability out of range: {p}"),
            });
        }
        let paulis: [Mat2; 4] = [
            [[C64::ONE, C64::ZERO], [C64::ZERO, C64::ONE]],
            [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]],
            [[C64::ZERO, -C64::I], [C64::I, C64::ZERO]],
            [[C64::ONE, C64::ZERO], [C64::ZERO, -C64::ONE]],
        ];
        let mut ops = Vec::with_capacity(16);
        for (a, pa) in paulis.iter().enumerate() {
            for (b, pb) in paulis.iter().enumerate() {
                let w = if a == 0 && b == 0 {
                    1.0 - p
                } else {
                    p / 15.0
                };
                let s = w.sqrt();
                let m = crate::math::kron2(pa, pb);
                let mut scaled = [[C64::ZERO; 4]; 4];
                for i in 0..4 {
                    for j in 0..4 {
                        scaled[i][j] = m[i][j].scale(s);
                    }
                }
                ops.push(scaled);
            }
        }
        Channel2::from_kraus(ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_channel_is_complete() {
        assert!(Channel1::pauli(0.01, 0.02, 0.03).is_ok());
        assert!(Channel1::pauli(-0.1, 0.0, 0.0).is_err());
        assert!(Channel1::pauli(0.5, 0.5, 0.5).is_err());
    }

    #[test]
    fn damping_channels_are_complete() {
        for g in [0.0, 0.1, 0.5, 1.0] {
            assert!(Channel1::amplitude_damping(g).is_ok());
            assert!(Channel1::phase_damping(g).is_ok());
        }
        assert!(Channel1::amplitude_damping(1.5).is_err());
    }

    #[test]
    fn depolarizing_two_qubit_has_16_kraus() {
        let ch = Channel2::depolarizing(0.05).unwrap();
        assert_eq!(ch.kraus().len(), 16);
        assert!(Channel2::depolarizing(-0.1).is_err());
    }

    #[test]
    fn incomplete_kraus_rejected() {
        let half = [[C64::real(0.5), C64::ZERO], [C64::ZERO, C64::real(0.5)]];
        assert!(Channel1::from_kraus(vec![half]).is_err());
    }
}
