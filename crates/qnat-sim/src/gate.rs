//! Quantum gate library.
//!
//! Every gate used by the QuantumNAT design spaces and by the IBMQ basis set
//! is represented by [`Gate`]: Pauli gates, Clifford gates, parameterized
//! rotations (`RX`/`RY`/`RZ`/`P`/`U2`/`U3`), their controlled versions,
//! two-qubit entanglers (`CX`/`CY`/`CZ`/`SWAP`/`√SWAP`) and the Ising
//! couplers `RZZ`/`RXX`/`RZX` used by the `ZZ+RY` and `ZX+XX` design spaces.
//!
//! Each gate exposes its unitary matrix ([`Gate::matrix`]) and the analytic
//! derivative of that matrix with respect to each of its parameters
//! ([`Gate::d_matrix`]), which powers adjoint differentiation.

use crate::math::{C64, Mat2, Mat4};
use std::f64::consts::FRAC_1_SQRT_2;
use std::fmt;

/// The kind of a quantum gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Identity (explicit, used by basis-gate sets).
    Id,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Square root of Hadamard (`√H`, used by the RXYZ design space).
    SqrtH,
    /// Phase gate S = √Z.
    S,
    /// S-dagger.
    Sdg,
    /// T = ⁴√Z.
    T,
    /// T-dagger.
    Tdg,
    /// Square root of X (IBMQ basis gate `sx`).
    Sx,
    /// SX-dagger.
    Sxdg,
    /// Rotation about X: `exp(-iθX/2)`.
    Rx,
    /// Rotation about Y: `exp(-iθY/2)`.
    Ry,
    /// Rotation about Z: `exp(-iθZ/2)`.
    Rz,
    /// Phase gate `P(λ) = diag(1, e^{iλ})` (a.k.a. U1).
    P,
    /// IBM U2(φ, λ).
    U2,
    /// IBM U3(θ, φ, λ) — general single-qubit rotation.
    U3,
    /// Controlled-X (CNOT).
    Cx,
    /// Controlled-Y.
    Cy,
    /// Controlled-Z.
    Cz,
    /// Controlled RX(θ).
    Crx,
    /// Controlled RY(θ).
    Cry,
    /// Controlled RZ(θ).
    Crz,
    /// Controlled phase CP(λ).
    Cp,
    /// Controlled U3(θ, φ, λ).
    Cu3,
    /// SWAP.
    Swap,
    /// Square root of SWAP.
    SqrtSwap,
    /// Ising ZZ coupling: `exp(-iθ Z⊗Z / 2)`.
    Rzz,
    /// Ising XX coupling: `exp(-iθ X⊗X / 2)`.
    Rxx,
    /// Ising ZX coupling: `exp(-iθ Z⊗X / 2)`.
    Rzx,
}

impl GateKind {
    /// Number of qubits the gate acts on (1 or 2).
    pub fn arity(self) -> usize {
        use GateKind::*;
        match self {
            Id | X | Y | Z | H | SqrtH | S | Sdg | T | Tdg | Sx | Sxdg | Rx | Ry | Rz | P | U2
            | U3 => 1,
            _ => 2,
        }
    }

    /// Number of real parameters the gate takes.
    pub fn param_count(self) -> usize {
        use GateKind::*;
        match self {
            Rx | Ry | Rz | P | Crx | Cry | Crz | Cp | Rzz | Rxx | Rzx => 1,
            U2 => 2,
            U3 | Cu3 => 3,
            _ => 0,
        }
    }

    /// Lower-case mnemonic, matching common OpenQASM names.
    pub fn name(self) -> &'static str {
        use GateKind::*;
        match self {
            Id => "id",
            X => "x",
            Y => "y",
            Z => "z",
            H => "h",
            SqrtH => "sh",
            S => "s",
            Sdg => "sdg",
            T => "t",
            Tdg => "tdg",
            Sx => "sx",
            Sxdg => "sxdg",
            Rx => "rx",
            Ry => "ry",
            Rz => "rz",
            P => "p",
            U2 => "u2",
            U3 => "u3",
            Cx => "cx",
            Cy => "cy",
            Cz => "cz",
            Crx => "crx",
            Cry => "cry",
            Crz => "crz",
            Cp => "cp",
            Cu3 => "cu3",
            Swap => "swap",
            SqrtSwap => "sqswap",
            Rzz => "rzz",
            Rxx => "rxx",
            Rzx => "rzx",
        }
    }

    /// Every gate kind, in declaration order.
    pub const ALL: [GateKind; 31] = {
        use GateKind::*;
        [
            Id, X, Y, Z, H, SqrtH, S, Sdg, T, Tdg, Sx, Sxdg, Rx, Ry, Rz, P, U2, U3, Cx, Cy, Cz,
            Crx, Cry, Crz, Cp, Cu3, Swap, SqrtSwap, Rzz, Rxx, Rzx,
        ]
    };

    /// Inverse of [`GateKind::name`]: the kind for a lower-case mnemonic,
    /// or `None` for an unknown name. Used by wire formats that ship
    /// circuits as text.
    pub fn from_name(name: &str) -> Option<GateKind> {
        GateKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// The unitary matrix of a gate: 2×2 for single-qubit, 4×4 for two-qubit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GateMatrix {
    /// Single-qubit matrix.
    One(Mat2),
    /// Two-qubit matrix in the basis `|q_first q_second⟩`
    /// (index = 2·bit(first) + bit(second)).
    Two(Mat4),
}

/// A gate instance: kind, target qubits and bound parameters.
///
/// # Examples
///
/// ```
/// use qnat_sim::gate::Gate;
/// let g = Gate::ry(0, std::f64::consts::FRAC_PI_2);
/// assert_eq!(g.arity(), 1);
/// assert_eq!(g.kind.param_count(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gate {
    /// What gate this is.
    pub kind: GateKind,
    /// Target qubits; for two-qubit gates `qubits[0]` is the control (or
    /// first) qubit and `qubits[1]` the target (or second). For single-qubit
    /// gates only `qubits[0]` is meaningful.
    pub qubits: [usize; 2],
    /// Bound parameter values; only the first `kind.param_count()` entries
    /// are meaningful.
    pub params: [f64; 3],
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.name())?;
        let np = self.kind.param_count();
        if np > 0 {
            write!(f, "(")?;
            for (i, p) in self.params.iter().take(np).enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{p:.4}")?;
            }
            write!(f, ")")?;
        }
        write!(f, " q{}", self.qubits[0])?;
        if self.arity() == 2 {
            write!(f, ",q{}", self.qubits[1])?;
        }
        Ok(())
    }
}

macro_rules! fixed_1q {
    ($($fn_name:ident => $kind:ident),* $(,)?) => {
        $(
            #[doc = concat!("Creates a `", stringify!($kind), "` gate on `q`.")]
            pub fn $fn_name(q: usize) -> Gate {
                Gate { kind: GateKind::$kind, qubits: [q, usize::MAX], params: [0.0; 3] }
            }
        )*
    };
}

macro_rules! rot_1q {
    ($($fn_name:ident => $kind:ident),* $(,)?) => {
        $(
            #[doc = concat!("Creates a `", stringify!($kind), "(theta)` gate on `q`.")]
            pub fn $fn_name(q: usize, theta: f64) -> Gate {
                Gate { kind: GateKind::$kind, qubits: [q, usize::MAX], params: [theta, 0.0, 0.0] }
            }
        )*
    };
}

macro_rules! fixed_2q {
    ($($fn_name:ident => $kind:ident),* $(,)?) => {
        $(
            #[doc = concat!("Creates a `", stringify!($kind), "` gate on `(a, b)`.")]
            pub fn $fn_name(a: usize, b: usize) -> Gate {
                Gate { kind: GateKind::$kind, qubits: [a, b], params: [0.0; 3] }
            }
        )*
    };
}

macro_rules! rot_2q {
    ($($fn_name:ident => $kind:ident),* $(,)?) => {
        $(
            #[doc = concat!("Creates a `", stringify!($kind), "(theta)` gate on `(a, b)`.")]
            pub fn $fn_name(a: usize, b: usize, theta: f64) -> Gate {
                Gate { kind: GateKind::$kind, qubits: [a, b], params: [theta, 0.0, 0.0] }
            }
        )*
    };
}

impl Gate {
    fixed_1q! {
        id => Id, x => X, y => Y, z => Z, h => H, sqrt_h => SqrtH,
        s => S, sdg => Sdg, t => T, tdg => Tdg, sx => Sx, sxdg => Sxdg,
    }
    rot_1q! { rx => Rx, ry => Ry, rz => Rz, p => P }
    fixed_2q! { cx => Cx, cy => Cy, cz => Cz, swap => Swap, sqrt_swap => SqrtSwap }
    rot_2q! { crx => Crx, cry => Cry, crz => Crz, cp => Cp, rzz => Rzz, rxx => Rxx, rzx => Rzx }

    /// Creates a `U2(phi, lambda)` gate on `q`.
    pub fn u2(q: usize, phi: f64, lambda: f64) -> Gate {
        Gate {
            kind: GateKind::U2,
            qubits: [q, usize::MAX],
            params: [phi, lambda, 0.0],
        }
    }

    /// Creates a `U3(theta, phi, lambda)` gate on `q`.
    pub fn u3(q: usize, theta: f64, phi: f64, lambda: f64) -> Gate {
        Gate {
            kind: GateKind::U3,
            qubits: [q, usize::MAX],
            params: [theta, phi, lambda],
        }
    }

    /// Creates a controlled `U3(theta, phi, lambda)` with control `c` and
    /// target `t`.
    pub fn cu3(c: usize, t: usize, theta: f64, phi: f64, lambda: f64) -> Gate {
        Gate {
            kind: GateKind::Cu3,
            qubits: [c, t],
            params: [theta, phi, lambda],
        }
    }

    /// Number of qubits this gate acts on.
    pub fn arity(&self) -> usize {
        self.kind.arity()
    }

    /// `true` if the gate carries at least one continuous parameter.
    pub fn is_parameterized(&self) -> bool {
        self.kind.param_count() > 0
    }

    /// The unitary matrix of this gate with its bound parameters.
    pub fn matrix(&self) -> GateMatrix {
        match self.arity() {
            1 => GateMatrix::One(self.matrix1()),
            _ => GateMatrix::Two(self.matrix2()),
        }
    }

    /// The 2×2 matrix for a single-qubit gate.
    ///
    /// # Panics
    ///
    /// Panics if called on a two-qubit gate.
    pub fn matrix1(&self) -> Mat2 {
        use GateKind::*;
        let o = C64::ZERO;
        let l = C64::ONE;
        let i = C64::I;
        let [a, b, c] = self.params;
        match self.kind {
            Id => [[l, o], [o, l]],
            X => [[o, l], [l, o]],
            Y => [[o, -i], [i, o]],
            Z => [[l, o], [o, -l]],
            H => {
                let s = C64::real(FRAC_1_SQRT_2);
                [[s, s], [s, -s]]
            }
            SqrtH => {
                // √H = (1+i)/2 · I + (1-i)/2 · H  (principal square root).
                let p = C64::new(0.5, 0.5);
                let m = C64::new(0.5, -0.5);
                let s = C64::real(FRAC_1_SQRT_2);
                [[p + m * s, m * s], [m * s, p - m * s]]
            }
            S => [[l, o], [o, i]],
            Sdg => [[l, o], [o, -i]],
            T => [[l, o], [o, C64::cis(std::f64::consts::FRAC_PI_4)]],
            Tdg => [[l, o], [o, C64::cis(-std::f64::consts::FRAC_PI_4)]],
            Sx => {
                let p = C64::new(0.5, 0.5);
                let m = C64::new(0.5, -0.5);
                [[p, m], [m, p]]
            }
            Sxdg => {
                let p = C64::new(0.5, 0.5);
                let m = C64::new(0.5, -0.5);
                [[m, p], [p, m]]
            }
            Rx => {
                let (ch, sh) = ((a / 2.0).cos(), (a / 2.0).sin());
                [
                    [C64::real(ch), C64::new(0.0, -sh)],
                    [C64::new(0.0, -sh), C64::real(ch)],
                ]
            }
            Ry => {
                let (ch, sh) = ((a / 2.0).cos(), (a / 2.0).sin());
                [
                    [C64::real(ch), C64::real(-sh)],
                    [C64::real(sh), C64::real(ch)],
                ]
            }
            Rz => [[C64::cis(-a / 2.0), o], [o, C64::cis(a / 2.0)]],
            P => [[l, o], [o, C64::cis(a)]],
            U2 => {
                let s = FRAC_1_SQRT_2;
                [
                    [C64::real(s), -C64::cis(b) * s],
                    [C64::cis(a) * s, C64::cis(a + b) * s],
                ]
            }
            U3 => {
                let (ch, sh) = ((a / 2.0).cos(), (a / 2.0).sin());
                [
                    [C64::real(ch), -C64::cis(c) * sh],
                    [C64::cis(b) * sh, C64::cis(b + c) * ch],
                ]
            }
            _ => panic!("matrix1 called on two-qubit gate {:?}", self.kind),
        }
    }

    /// The 4×4 matrix for a two-qubit gate, in the basis
    /// `index = 2·bit(qubits[0]) + bit(qubits[1])`.
    ///
    /// # Panics
    ///
    /// Panics if called on a single-qubit gate.
    pub fn matrix2(&self) -> Mat4 {
        use GateKind::*;
        let o = C64::ZERO;
        let l = C64::ONE;
        let i = C64::I;
        let [a, b, c] = self.params;
        let controlled = |u: Mat2| -> Mat4 {
            [
                [l, o, o, o],
                [o, l, o, o],
                [o, o, u[0][0], u[0][1]],
                [o, o, u[1][0], u[1][1]],
            ]
        };
        match self.kind {
            Cx => controlled([[o, l], [l, o]]),
            Cy => controlled([[o, -i], [i, o]]),
            Cz => controlled([[l, o], [o, -l]]),
            Crx => controlled(Gate::rx(0, a).matrix1()),
            Cry => controlled(Gate::ry(0, a).matrix1()),
            Crz => controlled(Gate::rz(0, a).matrix1()),
            Cp => controlled([[l, o], [o, C64::cis(a)]]),
            Cu3 => controlled(Gate::u3(0, a, b, c).matrix1()),
            Swap => [[l, o, o, o], [o, o, l, o], [o, l, o, o], [o, o, o, l]],
            SqrtSwap => {
                let p = C64::new(0.5, 0.5);
                let m = C64::new(0.5, -0.5);
                [[l, o, o, o], [o, p, m, o], [o, m, p, o], [o, o, o, l]]
            }
            Rzz => {
                let e_m = C64::cis(-a / 2.0);
                let e_p = C64::cis(a / 2.0);
                [
                    [e_m, o, o, o],
                    [o, e_p, o, o],
                    [o, o, e_p, o],
                    [o, o, o, e_m],
                ]
            }
            Rxx => {
                let ch = C64::real((a / 2.0).cos());
                let sh = C64::new(0.0, -(a / 2.0).sin());
                [
                    [ch, o, o, sh],
                    [o, ch, sh, o],
                    [o, sh, ch, o],
                    [sh, o, o, ch],
                ]
            }
            Rzx => {
                // exp(-iθ/2 · Z⊗X): block-diagonal in the first qubit;
                // RX(θ) when q0=|0⟩, RX(-θ) when q0=|1⟩.
                let ch = C64::real((a / 2.0).cos());
                let sm = C64::new(0.0, -(a / 2.0).sin());
                let sp = C64::new(0.0, (a / 2.0).sin());
                [
                    [ch, sm, o, o],
                    [sm, ch, o, o],
                    [o, o, ch, sp],
                    [o, o, sp, ch],
                ]
            }
            _ => panic!("matrix2 called on single-qubit gate {:?}", self.kind),
        }
    }

    /// Derivative of the gate matrix with respect to parameter `slot`
    /// (0-based). Used by adjoint differentiation.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= kind.param_count()`.
    pub fn d_matrix(&self, slot: usize) -> GateMatrix {
        assert!(
            slot < self.kind.param_count(),
            "gate {:?} has no parameter slot {slot}",
            self.kind
        );
        use GateKind::*;
        let o = C64::ZERO;
        let i = C64::I;
        let [a, b, c] = self.params;
        let h = 0.5;
        match self.kind {
            Rx => {
                let (ch, sh) = ((a / 2.0).cos() * h, (a / 2.0).sin() * h);
                GateMatrix::One([
                    [C64::real(-sh), C64::new(0.0, -ch)],
                    [C64::new(0.0, -ch), C64::real(-sh)],
                ])
            }
            Ry => {
                let (ch, sh) = ((a / 2.0).cos() * h, (a / 2.0).sin() * h);
                GateMatrix::One([
                    [C64::real(-sh), C64::real(-ch)],
                    [C64::real(ch), C64::real(-sh)],
                ])
            }
            Rz => GateMatrix::One([
                [C64::cis(-a / 2.0) * C64::new(0.0, -h), o],
                [o, C64::cis(a / 2.0) * C64::new(0.0, h)],
            ]),
            P => GateMatrix::One([[o, o], [o, i * C64::cis(a)]]),
            U2 => {
                let s = FRAC_1_SQRT_2;
                match slot {
                    0 => GateMatrix::One([
                        [o, o],
                        [i * C64::cis(a) * s, i * C64::cis(a + b) * s],
                    ]),
                    _ => GateMatrix::One([
                        [o, -i * C64::cis(b) * s],
                        [o, i * C64::cis(a + b) * s],
                    ]),
                }
            }
            U3 => {
                let (ch, sh) = ((a / 2.0).cos(), (a / 2.0).sin());
                match slot {
                    0 => GateMatrix::One([
                        [C64::real(-sh * h), -C64::cis(c) * (ch * h)],
                        [C64::cis(b) * (ch * h), C64::cis(b + c) * (-sh * h)],
                    ]),
                    1 => GateMatrix::One([
                        [o, o],
                        [i * C64::cis(b) * sh, i * C64::cis(b + c) * ch],
                    ]),
                    _ => GateMatrix::One([
                        [o, -i * C64::cis(c) * sh],
                        [o, i * C64::cis(b + c) * ch],
                    ]),
                }
            }
            Crx | Cry | Crz | Cp | Cu3 => {
                // Controlled gates: derivative only lives in the |1⟩⟨1| block.
                let inner = match self.kind {
                    Crx => Gate::rx(0, a),
                    Cry => Gate::ry(0, a),
                    Crz => Gate::rz(0, a),
                    Cp => Gate::p(0, a),
                    _ => Gate::u3(0, a, b, c),
                };
                let du = match inner.d_matrix(slot) {
                    GateMatrix::One(m) => m,
                    GateMatrix::Two(_) => unreachable!(),
                };
                GateMatrix::Two([
                    [o, o, o, o],
                    [o, o, o, o],
                    [o, o, du[0][0], du[0][1]],
                    [o, o, du[1][0], du[1][1]],
                ])
            }
            Rzz => {
                let dm = C64::cis(-a / 2.0) * C64::new(0.0, -h);
                let dp = C64::cis(a / 2.0) * C64::new(0.0, h);
                GateMatrix::Two([
                    [dm, o, o, o],
                    [o, dp, o, o],
                    [o, o, dp, o],
                    [o, o, o, dm],
                ])
            }
            Rxx => {
                let ch = C64::real(-(a / 2.0).sin() * h);
                let sh = C64::new(0.0, -(a / 2.0).cos() * h);
                GateMatrix::Two([
                    [ch, o, o, sh],
                    [o, ch, sh, o],
                    [o, sh, ch, o],
                    [sh, o, o, ch],
                ])
            }
            Rzx => {
                let dch = C64::real(-(a / 2.0).sin() * h);
                let dsm = C64::new(0.0, -(a / 2.0).cos() * h);
                let dsp = C64::new(0.0, (a / 2.0).cos() * h);
                GateMatrix::Two([
                    [dch, dsm, o, o],
                    [dsm, dch, o, o],
                    [o, o, dch, dsp],
                    [o, o, dsp, dch],
                ])
            }
            _ => unreachable!("non-parameterized gate"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::{mat2_is_unitary, mat2_mul, mat4_is_unitary, mat4_mul};
    use std::f64::consts::PI;

    #[test]
    fn from_name_inverts_name_for_every_kind() {
        for kind in GateKind::ALL {
            assert_eq!(GateKind::from_name(kind.name()), Some(kind), "{kind:?}");
        }
        assert_eq!(GateKind::from_name("nope"), None);
        assert_eq!(GateKind::from_name("CX"), None, "names are lower-case");
    }

    fn all_sample_gates() -> Vec<Gate> {
        vec![
            Gate::id(0),
            Gate::x(0),
            Gate::y(0),
            Gate::z(0),
            Gate::h(0),
            Gate::sqrt_h(0),
            Gate::s(0),
            Gate::sdg(0),
            Gate::t(0),
            Gate::tdg(0),
            Gate::sx(0),
            Gate::sxdg(0),
            Gate::rx(0, 0.37),
            Gate::ry(0, -1.2),
            Gate::rz(0, 2.5),
            Gate::p(0, 0.9),
            Gate::u2(0, 0.4, -0.7),
            Gate::u3(0, 1.1, 0.3, -0.5),
            Gate::cx(0, 1),
            Gate::cy(0, 1),
            Gate::cz(0, 1),
            Gate::crx(0, 1, 0.8),
            Gate::cry(0, 1, -0.6),
            Gate::crz(0, 1, 1.7),
            Gate::cp(0, 1, 0.55),
            Gate::cu3(0, 1, 0.9, -0.2, 0.4),
            Gate::swap(0, 1),
            Gate::sqrt_swap(0, 1),
            Gate::rzz(0, 1, 0.33),
            Gate::rxx(0, 1, -0.9),
            Gate::rzx(0, 1, 1.4),
        ]
    }

    #[test]
    fn all_gate_matrices_are_unitary() {
        for g in all_sample_gates() {
            match g.matrix() {
                GateMatrix::One(m) => assert!(mat2_is_unitary(&m, 1e-12), "{g} not unitary"),
                GateMatrix::Two(m) => assert!(mat4_is_unitary(&m, 1e-12), "{g} not unitary"),
            }
        }
    }

    #[test]
    fn sqrt_gates_square_to_their_base() {
        let sh = match Gate::sqrt_h(0).matrix() {
            GateMatrix::One(m) => m,
            _ => unreachable!(),
        };
        let h = match Gate::h(0).matrix() {
            GateMatrix::One(m) => m,
            _ => unreachable!(),
        };
        let sq = mat2_mul(&sh, &sh);
        for i in 0..2 {
            for j in 0..2 {
                assert!(sq[i][j].approx_eq(h[i][j], 1e-12), "√H² ≠ H at ({i},{j})");
            }
        }
        let sx = match Gate::sx(0).matrix() {
            GateMatrix::One(m) => m,
            _ => unreachable!(),
        };
        let x = match Gate::x(0).matrix() {
            GateMatrix::One(m) => m,
            _ => unreachable!(),
        };
        let sq = mat2_mul(&sx, &sx);
        for i in 0..2 {
            for j in 0..2 {
                assert!(sq[i][j].approx_eq(x[i][j], 1e-12), "SX² ≠ X at ({i},{j})");
            }
        }
        let ss = match Gate::sqrt_swap(0, 1).matrix() {
            GateMatrix::Two(m) => m,
            _ => unreachable!(),
        };
        let sw = match Gate::swap(0, 1).matrix() {
            GateMatrix::Two(m) => m,
            _ => unreachable!(),
        };
        let sq = mat4_mul(&ss, &ss);
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    sq[i][j].approx_eq(sw[i][j], 1e-12),
                    "√SWAP² ≠ SWAP at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn rotation_at_zero_is_identity() {
        for g in [Gate::rx(0, 0.0), Gate::ry(0, 0.0), Gate::rz(0, 0.0)] {
            let m = g.matrix1();
            assert!(m[0][0].approx_eq(C64::ONE, 1e-15));
            assert!(m[1][1].approx_eq(C64::ONE, 1e-15));
            assert!(m[0][1].approx_eq(C64::ZERO, 1e-15));
            assert!(m[1][0].approx_eq(C64::ZERO, 1e-15));
        }
    }

    #[test]
    fn rx_at_pi_equals_minus_i_x() {
        let m = Gate::rx(0, PI).matrix1();
        assert!(m[0][1].approx_eq(C64::new(0.0, -1.0), 1e-12));
        assert!(m[1][0].approx_eq(C64::new(0.0, -1.0), 1e-12));
        assert!(m[0][0].approx_eq(C64::ZERO, 1e-12));
    }

    #[test]
    fn u3_reduces_to_ry_and_rz() {
        // U3(θ, 0, 0) = RY(θ).
        let u = Gate::u3(0, 0.7, 0.0, 0.0).matrix1();
        let r = Gate::ry(0, 0.7).matrix1();
        for i in 0..2 {
            for j in 0..2 {
                assert!(u[i][j].approx_eq(r[i][j], 1e-12));
            }
        }
        // U3(0, 0, λ) = P(λ).
        let u = Gate::u3(0, 0.0, 0.0, 1.3).matrix1();
        let p = Gate::p(0, 1.3).matrix1();
        for i in 0..2 {
            for j in 0..2 {
                assert!(u[i][j].approx_eq(p[i][j], 1e-12));
            }
        }
    }

    #[test]
    fn d_matrix_matches_finite_difference() {
        let eps = 1e-6;
        let paramd: Vec<Gate> = all_sample_gates()
            .into_iter()
            .filter(|g| g.is_parameterized())
            .collect();
        assert!(!paramd.is_empty());
        for g in paramd {
            for slot in 0..g.kind.param_count() {
                let mut gp = g;
                gp.params[slot] += eps;
                let mut gm = g;
                gm.params[slot] -= eps;
                match (g.d_matrix(slot), gp.matrix(), gm.matrix()) {
                    (GateMatrix::One(d), GateMatrix::One(p), GateMatrix::One(m)) => {
                        for i in 0..2 {
                            for j in 0..2 {
                                let fd = (p[i][j] - m[i][j]).scale(1.0 / (2.0 * eps));
                                assert!(
                                    d[i][j].approx_eq(fd, 1e-6),
                                    "{g} slot {slot} ({i},{j}): {} vs fd {}",
                                    d[i][j],
                                    fd
                                );
                            }
                        }
                    }
                    (GateMatrix::Two(d), GateMatrix::Two(p), GateMatrix::Two(m)) => {
                        for i in 0..4 {
                            for j in 0..4 {
                                let fd = (p[i][j] - m[i][j]).scale(1.0 / (2.0 * eps));
                                assert!(
                                    d[i][j].approx_eq(fd, 1e-6),
                                    "{g} slot {slot} ({i},{j}): {} vs fd {}",
                                    d[i][j],
                                    fd
                                );
                            }
                        }
                    }
                    _ => unreachable!(),
                }
            }
        }
    }

    #[test]
    fn display_formats_gates() {
        assert_eq!(Gate::cx(1, 3).to_string(), "cx q1,q3");
        assert_eq!(Gate::ry(2, 0.5).to_string(), "ry(0.5000) q2");
    }
}
