//! OpenQASM 2.0 export.
//!
//! Serializes circuits to the interchange format IBMQ accepts, so models
//! trained here could be submitted to real hardware queues. Gates outside
//! the OpenQASM standard library (`√H`, `√SWAP`, the Ising couplers) are
//! emitted via their standard-gate decompositions.

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};
use std::fmt::Write;

/// Renders one gate as OpenQASM statements.
fn gate_qasm(g: &Gate, out: &mut String) {
    use GateKind::*;
    let q0 = g.qubits[0];
    let q1 = g.qubits[1];
    let [a, b, c] = g.params;
    match g.kind {
        Id => writeln!(out, "id q[{q0}];"),
        X => writeln!(out, "x q[{q0}];"),
        Y => writeln!(out, "y q[{q0}];"),
        Z => writeln!(out, "z q[{q0}];"),
        H => writeln!(out, "h q[{q0}];"),
        S => writeln!(out, "s q[{q0}];"),
        Sdg => writeln!(out, "sdg q[{q0}];"),
        T => writeln!(out, "t q[{q0}];"),
        Tdg => writeln!(out, "tdg q[{q0}];"),
        Sx => writeln!(out, "sx q[{q0}];"),
        Sxdg => writeln!(out, "sxdg q[{q0}];"),
        Rx => writeln!(out, "rx({a}) q[{q0}];"),
        Ry => writeln!(out, "ry({a}) q[{q0}];"),
        Rz => writeln!(out, "rz({a}) q[{q0}];"),
        P => writeln!(out, "u1({a}) q[{q0}];"),
        U2 => writeln!(out, "u2({a},{b}) q[{q0}];"),
        U3 => writeln!(out, "u3({a},{b},{c}) q[{q0}];"),
        Cx => writeln!(out, "cx q[{q0}],q[{q1}];"),
        Cy => writeln!(out, "cy q[{q0}],q[{q1}];"),
        Cz => writeln!(out, "cz q[{q0}],q[{q1}];"),
        Crx => writeln!(out, "crx({a}) q[{q0}],q[{q1}];"),
        Cry => writeln!(out, "cry({a}) q[{q0}],q[{q1}];"),
        Crz => writeln!(out, "crz({a}) q[{q0}],q[{q1}];"),
        Cp => writeln!(out, "cu1({a}) q[{q0}],q[{q1}];"),
        Cu3 => writeln!(out, "cu3({a},{b},{c}) q[{q0}],q[{q1}];"),
        Swap => writeln!(out, "swap q[{q0}],q[{q1}];"),
        Rzz => writeln!(out, "rzz({a}) q[{q0}],q[{q1}];"),
        Rxx => writeln!(out, "rxx({a}) q[{q0}],q[{q1}];"),
        // Gates without a standard mnemonic: decompose to standard gates.
        SqrtH => {
            // √H = RZ(φ)·SX-free path: use its exact U3 angles.
            let m = Gate::sqrt_h(0).matrix1();
            // Recompute ZYZ angles inline (duplicating qnat-compiler would
            // invert the dependency direction).
            let cth = m[0][0].abs().clamp(0.0, 1.0);
            let sth = m[1][0].abs().clamp(0.0, 1.0);
            let theta = 2.0 * sth.atan2(cth);
            let a00 = m[0][0].im.atan2(m[0][0].re);
            let a10 = m[1][0].im.atan2(m[1][0].re);
            let a11 = m[1][1].im.atan2(m[1][1].re);
            let phi = (a11 - a00 + (2.0 * a10 - a00 - a11)) / 2.0;
            let lam = (a11 - a00 - (2.0 * a10 - a00 - a11)) / 2.0;
            writeln!(out, "u3({theta},{phi},{lam}) q[{q0}];")
        }
        SqrtSwap => {
            // √SWAP ≅ RXX(π/4)·RYY(π/4)·RZZ(π/4).
            let t = std::f64::consts::FRAC_PI_4;
            writeln!(out, "rxx({t}) q[{q0}],q[{q1}];").ok();
            writeln!(out, "ryy({t}) q[{q0}],q[{q1}];").ok();
            writeln!(out, "rzz({t}) q[{q0}],q[{q1}];")
        }
        Rzx => {
            writeln!(out, "h q[{q1}];").ok();
            writeln!(out, "cx q[{q0}],q[{q1}];").ok();
            writeln!(out, "rz({a}) q[{q1}];").ok();
            writeln!(out, "cx q[{q0}],q[{q1}];").ok();
            writeln!(out, "h q[{q1}];")
        }
    }
    .expect("writing to String cannot fail");
}

/// Serializes a circuit to OpenQASM 2.0 with a final full measurement.
///
/// # Examples
///
/// ```
/// use qnat_sim::{circuit::Circuit, gate::Gate, qasm::to_qasm};
/// let mut c = Circuit::new(2);
/// c.push(Gate::h(0));
/// c.push(Gate::cx(0, 1));
/// let q = to_qasm(&c);
/// assert!(q.contains("h q[0];"));
/// assert!(q.contains("cx q[0],q[1];"));
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let n = circuit.n_qubits();
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    writeln!(out, "qreg q[{n}];").expect("infallible");
    writeln!(out, "creg c[{n}];").expect("infallible");
    for g in circuit.gates() {
        gate_qasm(g, &mut out);
    }
    for q in 0..n {
        writeln!(out, "measure q[{q}] -> c[{q}];").expect("infallible");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_measurements_present() {
        let mut c = Circuit::new(3);
        c.push(Gate::ry(1, 0.5));
        let q = to_qasm(&c);
        assert!(q.starts_with("OPENQASM 2.0;"));
        assert!(q.contains("qreg q[3];"));
        assert!(q.contains("ry(0.5) q[1];"));
        assert_eq!(q.matches("measure").count(), 3);
    }

    #[test]
    fn every_gate_kind_serializes() {
        let mut c = Circuit::new(2);
        c.extend([
            Gate::id(0),
            Gate::x(0),
            Gate::y(0),
            Gate::z(0),
            Gate::h(0),
            Gate::sqrt_h(0),
            Gate::s(0),
            Gate::sdg(0),
            Gate::t(0),
            Gate::tdg(0),
            Gate::sx(0),
            Gate::sxdg(0),
            Gate::rx(0, 0.1),
            Gate::ry(0, 0.2),
            Gate::rz(0, 0.3),
            Gate::p(0, 0.4),
            Gate::u2(0, 0.5, 0.6),
            Gate::u3(0, 0.7, 0.8, 0.9),
            Gate::cx(0, 1),
            Gate::cy(0, 1),
            Gate::cz(0, 1),
            Gate::crx(0, 1, 0.1),
            Gate::cry(0, 1, 0.2),
            Gate::crz(0, 1, 0.3),
            Gate::cp(0, 1, 0.4),
            Gate::cu3(0, 1, 0.5, 0.6, 0.7),
            Gate::swap(0, 1),
            Gate::sqrt_swap(0, 1),
            Gate::rzz(0, 1, 0.8),
            Gate::rxx(0, 1, 0.9),
            Gate::rzx(0, 1, 1.0),
        ]);
        let q = to_qasm(&c);
        // One statement per gate at least; no placeholder text.
        assert!(q.lines().count() > c.len());
        assert!(!q.contains("TODO"));
    }

    #[test]
    fn sqrt_h_emits_valid_u3() {
        let mut c = Circuit::new(1);
        c.push(Gate::sqrt_h(0));
        let q = to_qasm(&c);
        assert!(q.contains("u3("), "√H should lower to u3: {q}");
    }
}
