//! Fused-circuit IR: the executable form produced by the compiler's gate
//! fusion pass (`qnat_compiler::fusion`).
//!
//! A [`FusedCircuit`] is an ordered list of dense unitaries — one 2×2 per
//! surviving single-qubit run, one 4×4 per CX-sandwiched two-qubit run —
//! with no gate names or parameters left. Executing it walks the state
//! once per fused op through the branch-free kernels in
//! [`crate::kernels`], which is where the fuse-once-run-many speedup for
//! repeated inference comes from.
//!
//! Semantics contract: running a fused circuit must reproduce the unfused
//! circuit's outputs within 1e-12 on both the statevector and the
//! density-matrix (`vec(ρ)` bra/ket) paths — pinned by the equivalence
//! proptests in `qnat-compiler`.

use crate::circuit::Circuit;
use crate::density::DensityMatrix;
use crate::kernels::{apply_mat2, apply_mat4, conj2, conj4};
use crate::math::{C64, Mat2, Mat4};
use crate::statevector::{RegisterMismatchError, StateVector};

/// One fused unitary: a dense matrix plus the qubits it acts on.
#[derive(Debug, Clone, PartialEq)]
pub enum FusedOp {
    /// A 2×2 unitary on one qubit (a collapsed run of single-qubit gates).
    One {
        /// Target qubit.
        q: usize,
        /// The accumulated matrix.
        m: Mat2,
    },
    /// A 4×4 unitary on an ordered qubit pair, in the basis
    /// `index = 2·bit(qa) + bit(qb)`.
    Two {
        /// First qubit (the `2·bit` axis of the matrix basis).
        qa: usize,
        /// Second qubit (the `1·bit` axis).
        qb: usize,
        /// The accumulated matrix.
        m: Mat4,
    },
}

impl FusedOp {
    /// `true` if the op touches qubit `q`.
    pub fn touches(&self, q: usize) -> bool {
        match *self {
            FusedOp::One { q: t, .. } => t == q,
            FusedOp::Two { qa, qb, .. } => qa == q || qb == q,
        }
    }
}

/// A compiled, fused circuit: dense unitaries in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedCircuit {
    n_qubits: usize,
    ops: Vec<FusedOp>,
}

impl FusedCircuit {
    /// An empty fused circuit over `n_qubits` qubits (the identity).
    pub fn new(n_qubits: usize) -> Self {
        FusedCircuit {
            n_qubits,
            ops: Vec::new(),
        }
    }

    /// Register size.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The fused ops in execution order.
    pub fn ops(&self) -> &[FusedOp] {
        &self.ops
    }

    /// Number of fused ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the circuit is the identity (no ops).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends a fused op.
    ///
    /// # Panics
    ///
    /// Panics if the op addresses a qubit outside the register or a
    /// two-qubit op addresses the same qubit twice.
    pub fn push(&mut self, op: FusedOp) {
        match op {
            FusedOp::One { q, .. } => {
                assert!(q < self.n_qubits, "fused op qubit {q} out of range");
            }
            FusedOp::Two { qa, qb, .. } => {
                assert!(
                    qa < self.n_qubits && qb < self.n_qubits && qa != qb,
                    "fused op qubits ({qa},{qb}) invalid for {}-qubit register",
                    self.n_qubits
                );
            }
        }
        self.ops.push(op);
    }

    /// Applies every fused op to a raw amplitude slice (statevector
    /// layout: qubit `q` = bit `q`).
    ///
    /// # Panics
    ///
    /// Panics if the slice is shorter than `2^n_qubits` (the kernels'
    /// dispatch checks fire on the first op).
    pub fn apply_to_amps(&self, amps: &mut [C64]) {
        for op in &self.ops {
            match op {
                FusedOp::One { q, m } => apply_mat2(amps, *q, m),
                FusedOp::Two { qa, qb, m } => apply_mat4(amps, *qa, *qb, m),
            }
        }
    }
}

impl StateVector {
    /// Runs a fused circuit, or reports a register mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`RegisterMismatchError`] if the fused register is larger
    /// than the state register; the state is left untouched.
    pub fn try_run_fused(&mut self, fused: &FusedCircuit) -> Result<(), RegisterMismatchError> {
        if fused.n_qubits() > self.n_qubits() {
            return Err(RegisterMismatchError {
                circuit_qubits: fused.n_qubits(),
                state_qubits: self.n_qubits(),
            });
        }
        fused.apply_to_amps(self.amps_mut());
        Ok(())
    }

    /// Runs a fused circuit.
    ///
    /// # Panics
    ///
    /// Panics if the fused register is larger than the state register; use
    /// [`try_run_fused`](Self::try_run_fused) to handle that as an error.
    pub fn run_fused(&mut self, fused: &FusedCircuit) {
        self.try_run_fused(fused)
            .expect("fused circuit register larger than state register");
    }
}

impl DensityMatrix {
    /// Runs a fused circuit as ρ → UρU† through the `vec(ρ)` kernels
    /// (ket-side op on bit `q + n`, conjugated bra-side op on bit `q`).
    ///
    /// # Errors
    ///
    /// Returns [`RegisterMismatchError`] if the fused register is larger
    /// than the state register; the state is left untouched.
    pub fn try_run_fused(&mut self, fused: &FusedCircuit) -> Result<(), RegisterMismatchError> {
        let n = self.n_qubits();
        if fused.n_qubits() > n {
            return Err(RegisterMismatchError {
                circuit_qubits: fused.n_qubits(),
                state_qubits: n,
            });
        }
        for op in fused.ops() {
            match op {
                FusedOp::One { q, m } => {
                    apply_mat2(self.data_mut(), q + n, m);
                    apply_mat2(self.data_mut(), *q, &conj2(m));
                }
                FusedOp::Two { qa, qb, m } => {
                    apply_mat4(self.data_mut(), qa + n, qb + n, m);
                    apply_mat4(self.data_mut(), *qa, *qb, &conj4(m));
                }
            }
        }
        Ok(())
    }

    /// Runs a fused circuit as ρ → UρU†.
    ///
    /// # Panics
    ///
    /// Panics if the fused register is larger than the state register; use
    /// [`try_run_fused`](Self::try_run_fused) to handle that as an error.
    pub fn run_fused(&mut self, fused: &FusedCircuit) {
        self.try_run_fused(fused)
            .expect("fused circuit register larger than state register");
    }
}

/// Convenience: runs `fused` from `|0…0⟩` and returns the final state.
pub fn simulate_fused(fused: &FusedCircuit) -> StateVector {
    let mut psi = StateVector::zero_state(fused.n_qubits());
    psi.run_fused(fused);
    psi
}

/// Degenerate "fusion": one fused op per gate, no merging. Useful as a
/// baseline and for tests that need a `FusedCircuit` without pulling in
/// the compiler pass.
pub fn fuse_trivial(circuit: &Circuit) -> FusedCircuit {
    use crate::gate::GateMatrix;
    let mut out = FusedCircuit::new(circuit.n_qubits());
    for g in circuit.gates() {
        match g.matrix() {
            GateMatrix::One(m) => out.push(FusedOp::One {
                q: g.qubits[0],
                m,
            }),
            GateMatrix::Two(m) => out.push(FusedOp::Two {
                qa: g.qubits[0],
                qb: g.qubits[1],
                m,
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use crate::statevector::simulate;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::u3(1, 0.7, -0.2, 0.5));
        c.push(Gate::cx(0, 2));
        c.push(Gate::rzz(1, 2, 0.33));
        c.push(Gate::cu3(2, 0, 0.4, 0.1, -0.6));
        c
    }

    #[test]
    fn trivial_fusion_matches_unfused_statevector() {
        let c = sample_circuit();
        let fused = fuse_trivial(&c);
        assert_eq!(fused.len(), c.len());
        let psi = simulate(&c);
        let phi = simulate_fused(&fused);
        for (a, b) in psi.amplitudes().iter().zip(phi.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-13));
        }
    }

    #[test]
    fn trivial_fusion_matches_unfused_density() {
        let c = sample_circuit();
        let fused = fuse_trivial(&c);
        let mut rho_a = DensityMatrix::zero_state(3);
        rho_a.run(&c);
        let mut rho_b = DensityMatrix::zero_state(3);
        rho_b.run_fused(&fused);
        for r in 0..8 {
            for col in 0..8 {
                assert!(rho_a.element(r, col).approx_eq(rho_b.element(r, col), 1e-13));
            }
        }
    }

    #[test]
    fn try_run_fused_rejects_oversized_register() {
        let fused = fuse_trivial(&sample_circuit());
        let mut psi = StateVector::zero_state(2);
        assert!(psi.try_run_fused(&fused).is_err());
        let mut rho = DensityMatrix::zero_state(2);
        assert!(rho.try_run_fused(&fused).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_validates_qubits() {
        let mut f = FusedCircuit::new(2);
        f.push(FusedOp::One {
            q: 2,
            m: Gate::h(0).matrix1(),
        });
    }
}
