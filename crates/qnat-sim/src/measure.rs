//! Measurement: shot sampling and readout-confusion application.
//!
//! The paper estimates each qubit's Pauli-Z expectation from `s = 8192`
//! shots and models readout error as a per-qubit 2×2 confusion matrix
//! `M[true][measured]` (e.g. IBMQ-Santiago qubit 0:
//! `[[0.984, 0.016], [0.022, 0.978]]`). This module provides both the exact
//! distribution-level transforms and the stochastic shot sampler.

use rand::Rng;

/// A per-qubit readout confusion matrix: `m[t][o]` is the probability of
/// observing outcome `o` when the true state is `t`.
pub type Confusion = [[f64; 2]; 2];

/// Applies a readout confusion matrix for qubit `q` to a joint probability
/// distribution over basis states (in place). Readout errors on different
/// qubits are independent, so applying this per qubit is exact.
///
/// # Panics
///
/// Panics if `probs.len()` is not a power of two or `q` is out of range.
pub fn apply_confusion(probs: &mut [f64], q: usize, m: &Confusion) {
    assert!(probs.len().is_power_of_two(), "length must be a power of two");
    let bit = 1usize << q;
    assert!(bit < probs.len(), "qubit {q} out of range");
    let n = probs.len();
    let mut base = 0usize;
    while base < n {
        for low in base..base + bit {
            let p0 = probs[low];
            let p1 = probs[low | bit];
            probs[low] = m[0][0] * p0 + m[1][0] * p1;
            probs[low | bit] = m[0][1] * p0 + m[1][1] * p1;
        }
        base += bit << 1;
    }
}

/// Transforms a single qubit's Z expectation through a confusion matrix.
///
/// With `P(1) = (1 − z)/2`, the observed expectation is an affine map of the
/// true one — exactly the `γ·y + β` linear map of the paper's Theorem 3.1
/// restricted to readout noise.
pub fn confuse_expectation(z: f64, m: &Confusion) -> f64 {
    let p1 = (1.0 - z) / 2.0;
    let p0 = 1.0 - p1;
    let q1 = p0 * m[0][1] + p1 * m[1][1];
    1.0 - 2.0 * q1
}

/// Draws `shots` basis-state samples from a probability distribution.
///
/// Uses inverse-CDF sampling; the distribution is renormalized defensively
/// against floating-point drift.
pub fn sample_outcomes<R: Rng>(probs: &[f64], shots: usize, rng: &mut R) -> Vec<usize> {
    let total: f64 = probs.iter().sum();
    assert!(total > 0.0, "probability mass must be positive");
    let mut cdf = Vec::with_capacity(probs.len());
    let mut acc = 0.0;
    for &p in probs {
        acc += p.max(0.0) / total;
        cdf.push(acc);
    }
    // Guard the tail against rounding below 1.0.
    if let Some(last) = cdf.last_mut() {
        *last = 1.0;
    }
    (0..shots)
        .map(|_| {
            let u: f64 = rng.gen();
            cdf.partition_point(|&c| c < u).min(probs.len() - 1)
        })
        .collect()
}

/// Estimates per-qubit Z expectations from `shots` samples of `probs`.
///
/// Returns one empirical mean in `[-1, 1]` per qubit, exactly the
/// `y = Σⱼ zⱼ/s` estimator from the paper's Appendix A.2.1.
pub fn sampled_expect_all_z<R: Rng>(
    probs: &[f64],
    n_qubits: usize,
    shots: usize,
    rng: &mut R,
) -> Vec<f64> {
    assert!(shots > 0, "need at least one shot");
    let mut ones = vec![0usize; n_qubits];
    for s in sample_outcomes(probs, shots, rng) {
        for (q, count) in ones.iter_mut().enumerate() {
            if s & (1 << q) != 0 {
                *count += 1;
            }
        }
    }
    ones.into_iter()
        .map(|c| 1.0 - 2.0 * (c as f64) / (shots as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const IDENTITY: Confusion = [[1.0, 0.0], [0.0, 1.0]];

    #[test]
    fn identity_confusion_is_noop() {
        let mut p = vec![0.1, 0.2, 0.3, 0.4];
        let orig = p.clone();
        apply_confusion(&mut p, 0, &IDENTITY);
        apply_confusion(&mut p, 1, &IDENTITY);
        assert_eq!(p, orig);
    }

    #[test]
    fn confusion_matches_paper_example() {
        // Paper §3.2: P(0)=0.3, P(1)=0.7 with Santiago readout
        // [[0.984, 0.016], [0.022, 0.978]] → P'(0)=0.31, P'(1)=0.69.
        let m: Confusion = [[0.984, 0.016], [0.022, 0.978]];
        let mut p = vec![0.3, 0.7];
        apply_confusion(&mut p, 0, &m);
        assert!((p[0] - (0.3 * 0.984 + 0.7 * 0.022)).abs() < 1e-12);
        assert!((p[1] - (0.7 * 0.978 + 0.3 * 0.016)).abs() < 1e-12);
        assert!((p[0] + p[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_preserves_total_probability() {
        let m: Confusion = [[0.95, 0.05], [0.08, 0.92]];
        let mut p = vec![0.05, 0.15, 0.35, 0.45];
        apply_confusion(&mut p, 1, &m);
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confuse_expectation_is_affine() {
        let m: Confusion = [[0.98, 0.02], [0.03, 0.97]];
        // z → γz + β with γ = (m00 + m11 − 1), β = m00 − m11 ... verify
        // affinity by three-point collinearity.
        let f = |z: f64| confuse_expectation(z, &m);
        let (a, b, c) = (f(-1.0), f(0.0), f(1.0));
        assert!((b - (a + c) / 2.0).abs() < 1e-12);
        // γ < 1: the map contracts.
        assert!((c - a) / 2.0 < 1.0);
    }

    #[test]
    fn sampling_converges_to_distribution() {
        let probs = vec![0.5, 0.0, 0.0, 0.5]; // Bell-state diagonal
        let mut rng = StdRng::seed_from_u64(7);
        let z = sampled_expect_all_z(&probs, 2, 20_000, &mut rng);
        assert!(z[0].abs() < 0.05, "z0={}", z[0]);
        assert!(z[1].abs() < 0.05, "z1={}", z[1]);
        // Perfect correlation: outcomes only 00 and 11.
        let samples = sample_outcomes(&probs, 1000, &mut rng);
        assert!(samples.iter().all(|&s| s == 0 || s == 3));
    }

    #[test]
    fn deterministic_distribution_sampling() {
        let probs = vec![0.0, 1.0];
        let mut rng = StdRng::seed_from_u64(1);
        let z = sampled_expect_all_z(&probs, 1, 100, &mut rng);
        assert_eq!(z[0], -1.0);
    }
}
