//! Density-matrix simulator.
//!
//! Exact mixed-state simulation used as the "real quantum hardware" stand-in:
//! unitary gates plus arbitrary Kraus channels. Internally the matrix ρ is
//! stored as `vec(ρ)` — a length-4ⁿ amplitude vector — so the statevector
//! kernels are reused: a ket-side operator acts on bit `q + n`, a bra-side
//! (conjugated) operator on bit `q`.

use crate::channel::{Channel1, Channel2};
use crate::circuit::Circuit;
use crate::gate::{Gate, GateMatrix};
use crate::kernels::{apply_mat2, apply_mat4, conj2, conj4};
use crate::math::C64;
use crate::statevector::{RegisterMismatchError, StateVector};

/// A mixed quantum state over `n` qubits.
///
/// # Examples
///
/// ```
/// use qnat_sim::density::DensityMatrix;
/// use qnat_sim::channel::Channel1;
/// use qnat_sim::gate::Gate;
///
/// let mut rho = DensityMatrix::zero_state(1);
/// rho.apply_gate(&Gate::h(0));
/// rho.apply_channel1(0, &Channel1::depolarizing(0.1)?);
/// assert!((rho.trace() - 1.0).abs() < 1e-12);
/// # Ok::<(), qnat_sim::channel::InvalidChannelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n_qubits: usize,
    /// vec(ρ): index = row · 2ⁿ + col; bits `n..2n` are the row (ket),
    /// bits `0..n` the column (bra).
    data: Vec<C64>,
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    pub fn zero_state(n_qubits: usize) -> Self {
        assert!(n_qubits <= 13, "density matrix limited to 13 qubits");
        let dim = 1usize << n_qubits;
        let mut data = vec![C64::ZERO; dim * dim];
        data[0] = C64::ONE;
        DensityMatrix { n_qubits, data }
    }

    /// Builds `|ψ⟩⟨ψ|` from a pure state.
    pub fn from_statevector(psi: &StateVector) -> Self {
        let n_qubits = psi.n_qubits();
        let dim = 1usize << n_qubits;
        let amps = psi.amplitudes();
        let mut data = vec![C64::ZERO; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                data[r * dim + c] = amps[r] * amps[c].conj();
            }
        }
        DensityMatrix { n_qubits, data }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Hilbert-space dimension 2ⁿ.
    pub fn dim(&self) -> usize {
        1 << self.n_qubits
    }

    /// Mutable `vec(ρ)` access for in-crate kernels (fused execution).
    pub(crate) fn data_mut(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Matrix element `ρ[r][c]`.
    pub fn element(&self, r: usize, c: usize) -> C64 {
        self.data[r * self.dim() + c]
    }

    /// Trace of ρ (1 for a valid state).
    pub fn trace(&self) -> f64 {
        let dim = self.dim();
        (0..dim).map(|i| self.data[i * dim + i].re).sum()
    }

    /// Purity `tr(ρ²) ∈ (0, 1]`; 1 iff pure.
    pub fn purity(&self) -> f64 {
        // tr(ρ²) = Σ_{rc} ρ[r][c]·ρ[c][r] = Σ |ρ[r][c]|² for Hermitian ρ.
        self.data.iter().map(|v| v.norm_sqr()).sum()
    }

    /// Maximum Hermiticity violation `max |ρ[r][c] − ρ[c][r]*|`.
    pub fn hermiticity_error(&self) -> f64 {
        let dim = self.dim();
        let mut worst: f64 = 0.0;
        for r in 0..dim {
            for c in 0..dim {
                let d = self.data[r * dim + c] - self.data[c * dim + r].conj();
                worst = worst.max(d.abs());
            }
        }
        worst
    }

    /// Applies a unitary gate: ρ → UρU†.
    pub fn apply_gate(&mut self, gate: &Gate) {
        let n = self.n_qubits;
        match gate.matrix() {
            GateMatrix::One(m) => {
                let q = gate.qubits[0];
                apply_mat2(&mut self.data, q + n, &m);
                apply_mat2(&mut self.data, q, &conj2(&m));
            }
            GateMatrix::Two(m) => {
                let (qa, qb) = (gate.qubits[0], gate.qubits[1]);
                apply_mat4(&mut self.data, qa + n, qb + n, &m);
                apply_mat4(&mut self.data, qa, qb, &conj4(&m));
            }
        }
    }

    /// Runs a whole circuit of unitary gates (no noise), or reports a
    /// register mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`RegisterMismatchError`] if the circuit register is larger
    /// than the state register; the state is left untouched.
    pub fn try_run(&mut self, circuit: &Circuit) -> Result<(), RegisterMismatchError> {
        if circuit.n_qubits() > self.n_qubits {
            return Err(RegisterMismatchError {
                circuit_qubits: circuit.n_qubits(),
                state_qubits: self.n_qubits,
            });
        }
        for g in circuit.gates() {
            self.apply_gate(g);
        }
        Ok(())
    }

    /// Runs a whole circuit of unitary gates (no noise).
    ///
    /// # Panics
    ///
    /// Panics if the circuit register is larger than the state register;
    /// use [`try_run`](Self::try_run) to handle that as an error.
    pub fn run(&mut self, circuit: &Circuit) {
        self.try_run(circuit)
            .expect("circuit register larger than state register");
    }

    /// Applies a single-qubit Kraus channel on qubit `q`:
    /// ρ → Σᵏ KᵏρKᵏᵈ.
    pub fn apply_channel1(&mut self, q: usize, ch: &Channel1) {
        let n = self.n_qubits;
        let mut acc = vec![C64::ZERO; self.data.len()];
        let mut scratch = vec![C64::ZERO; self.data.len()];
        for k in ch.kraus() {
            scratch.copy_from_slice(&self.data);
            apply_mat2(&mut scratch, q + n, k);
            apply_mat2(&mut scratch, q, &conj2(k));
            for (a, s) in acc.iter_mut().zip(&scratch) {
                *a += *s;
            }
        }
        self.data = acc;
    }

    /// Applies a two-qubit Kraus channel on `(qa, qb)`.
    pub fn apply_channel2(&mut self, qa: usize, qb: usize, ch: &Channel2) {
        let n = self.n_qubits;
        let mut acc = vec![C64::ZERO; self.data.len()];
        let mut scratch = vec![C64::ZERO; self.data.len()];
        for k in ch.kraus() {
            scratch.copy_from_slice(&self.data);
            apply_mat4(&mut scratch, qa + n, qb + n, k);
            apply_mat4(&mut scratch, qa, qb, &conj4(k));
            for (a, s) in acc.iter_mut().zip(&scratch) {
                *a += *s;
            }
        }
        self.data = acc;
    }

    /// Diagonal of ρ: the probability of each computational basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        let dim = self.dim();
        (0..dim).map(|i| self.data[i * dim + i].re.max(0.0)).collect()
    }

    /// Probability that qubit `q` reads `|1⟩`.
    ///
    /// Walks only the diagonal entries with bit `q` set — blocked strides,
    /// no per-index branch (the diagonal analog of
    /// [`crate::kernels::prob_one_mass`]).
    pub fn prob_one(&self, q: usize) -> f64 {
        let dim = self.dim();
        assert!(q < self.n_qubits, "qubit {q} out of range");
        let bit = 1usize << q;
        let mut p = 0.0;
        let mut base = bit;
        while base < dim {
            for i in base..base + bit {
                p += self.data[i * dim + i].re;
            }
            base += bit << 1;
        }
        p
    }

    /// Pauli-Z expectation on qubit `q`.
    pub fn expect_z(&self, q: usize) -> f64 {
        1.0 - 2.0 * self.prob_one(q)
    }

    /// Z expectations for every qubit (sharing
    /// [`prob_one`](Self::prob_one)'s diagonal walk).
    pub fn expect_all_z(&self) -> Vec<f64> {
        (0..self.n_qubits).map(|q| self.expect_z(q)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::simulate;

    #[test]
    fn pure_state_round_trip_matches_statevector() {
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        c.push(Gate::u3(2, 0.4, 0.8, -0.3));
        c.push(Gate::cu3(1, 2, 0.7, 0.1, 0.2));
        let psi = simulate(&c);
        let mut rho = DensityMatrix::zero_state(3);
        rho.run(&c);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-10);
        for q in 0..3 {
            assert!((rho.expect_z(q) - psi.expect_z(q)).abs() < 1e-10, "q={q}");
        }
    }

    #[test]
    fn depolarizing_reduces_purity_and_preserves_trace() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(&Gate::h(0));
        let before = rho.purity();
        rho.apply_channel1(0, &Channel1::depolarizing(0.2).unwrap());
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!(rho.purity() < before);
        assert!(rho.hermiticity_error() < 1e-12);
    }

    #[test]
    fn full_depolarizing_gives_maximally_mixed_qubit() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::ry(0, 0.77));
        rho.apply_channel1(0, &Channel1::depolarizing(1.0).unwrap());
        // p=1 uniform Pauli leaves (1-p+p/3·…) — for the standard
        // parameterization E(ρ) at p=1 is (X ρ X + Y ρ Y + Z ρ Z)/3 whose
        // Bloch vector is −r/3.
        let z = rho.expect_z(0);
        assert!((z - (-(0.77f64).cos() / 3.0)).abs() < 1e-10);
    }

    #[test]
    fn amplitude_damping_decays_toward_ground() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::x(0));
        rho.apply_channel1(0, &Channel1::amplitude_damping(0.3).unwrap());
        assert!((rho.prob_one(0) - 0.7).abs() < 1e-12);
        rho.apply_channel1(0, &Channel1::amplitude_damping(1.0).unwrap());
        assert!(rho.prob_one(0).abs() < 1e-12);
    }

    #[test]
    fn pauli_channel_on_plus_state_dephases() {
        // |+⟩ under phase-flip p: off-diagonal scaled by (1−2p).
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::h(0));
        rho.apply_channel1(0, &Channel1::phase_flip(0.25).unwrap());
        assert!((rho.element(0, 1).re - 0.5 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn two_qubit_channel_preserves_trace() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        let mut rho = DensityMatrix::zero_state(2);
        rho.run(&c);
        rho.apply_channel2(0, 1, &Channel2::depolarizing(0.1).unwrap());
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!(rho.hermiticity_error() < 1e-12);
        assert!(rho.purity() < 1.0);
    }

    #[test]
    fn try_run_rejects_oversized_circuit() {
        let mut rho = DensityMatrix::zero_state(1);
        let mut c = Circuit::new(2);
        c.push(Gate::h(1));
        let err = rho.try_run(&c).unwrap_err();
        assert_eq!(err.circuit_qubits, 2);
        assert_eq!(err.state_qubits, 1);
        assert!((rho.trace() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn from_statevector_matches_run() {
        let mut c = Circuit::new(2);
        c.push(Gate::ry(0, 1.2));
        c.push(Gate::crz(0, 1, 0.5));
        let psi = simulate(&c);
        let rho_a = DensityMatrix::from_statevector(&psi);
        let mut rho_b = DensityMatrix::zero_state(2);
        rho_b.run(&c);
        for r in 0..4 {
            for cidx in 0..4 {
                assert!(rho_a.element(r, cidx).approx_eq(rho_b.element(r, cidx), 1e-12));
            }
        }
    }
}
