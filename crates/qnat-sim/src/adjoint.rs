//! Adjoint differentiation of statevector circuits.
//!
//! Computes `∂⟨Z_q⟩/∂θ` for every gate parameter in a circuit with a single
//! forward pass and a single backward sweep (one extra statevector per
//! observable). This is the gradient engine used for classical training of
//! QuantumNAT models; [`crate::paramshift`] provides the hardware-compatible
//! alternative and serves as the validation oracle.

use crate::circuit::{invert_gate, Circuit};
use crate::gate::GateMatrix;
use crate::math::C64;
use crate::statevector::StateVector;

/// Expectations and gradients returned by a differentiation engine.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientResult {
    /// ⟨Z_q⟩ for each requested observable qubit.
    pub expectations: Vec<f64>,
    /// `gradients[obs][k]` = ∂⟨Z_obs⟩/∂θ_k where `k` indexes the circuit's
    /// flattened parameter list ([`Circuit::param_slots`] order).
    pub gradients: Vec<Vec<f64>>,
}

/// Applies the Pauli-Z operator on qubit `q` to a raw state (sign flip on
/// all amplitudes with bit `q` set).
fn apply_z(amps: &mut [C64], q: usize) {
    let bit = 1usize << q;
    for (i, a) in amps.iter_mut().enumerate() {
        if i & bit != 0 {
            *a = -*a;
        }
    }
}

/// Computes ⟨Z_q⟩ and all parameter gradients for the given observable
/// qubits via the adjoint method.
///
/// The circuit is simulated once forward; then gates are undone one at a
/// time while a co-state per observable accumulates
/// `∂E/∂θ = 2·Re⟨λ|∂U/∂θ|ψ⟩`.
///
/// # Panics
///
/// Panics if an observable qubit is out of range.
///
/// # Examples
///
/// ```
/// use qnat_sim::circuit::Circuit;
/// use qnat_sim::gate::Gate;
/// use qnat_sim::adjoint::adjoint_gradients;
///
/// let mut c = Circuit::new(1);
/// c.push(Gate::ry(0, 0.3));
/// let r = adjoint_gradients(&c, &[0]);
/// // ⟨Z⟩ = cos θ, d⟨Z⟩/dθ = −sin θ.
/// assert!((r.expectations[0] - 0.3f64.cos()).abs() < 1e-12);
/// assert!((r.gradients[0][0] + 0.3f64.sin()).abs() < 1e-12);
/// ```
pub fn adjoint_gradients(circuit: &Circuit, obs_qubits: &[usize]) -> GradientResult {
    let n = circuit.n_qubits();
    for &q in obs_qubits {
        assert!(q < n, "observable qubit {q} out of range");
    }
    let mut psi = StateVector::zero_state(n);
    psi.run(circuit);

    let expectations: Vec<f64> = obs_qubits.iter().map(|&q| psi.expect_z(q)).collect();

    let slots = circuit.param_slots();
    let n_params = slots.len();
    let mut gradients = vec![vec![0.0f64; n_params]; obs_qubits.len()];
    if n_params == 0 {
        return GradientResult {
            expectations,
            gradients,
        };
    }

    // λ_o = Z_o |ψ⟩ for each observable.
    let mut lambdas: Vec<StateVector> = obs_qubits
        .iter()
        .map(|&q| {
            let mut l = psi.clone();
            // Safe: we only mutate amplitudes through a scoped copy.
            let mut amps = l.amplitudes().to_vec();
            apply_z(&mut amps, q);
            l = StateVector::from_amplitudes(amps);
            l
        })
        .collect();

    // Map flat parameter index ranges per gate for quick lookup.
    // slots is sorted by gate index; walk gates from last to first.
    let gates = circuit.gates();
    let mut flat_end = n_params; // exclusive end of current gate's params
    for gi in (0..gates.len()).rev() {
        let g = &gates[gi];
        let np = g.kind.param_count();
        let flat_start = flat_end - np;
        debug_assert!(slots[flat_start..flat_end].iter().all(|&(i, _)| i == gi));

        // ψ ← U† ψ (now the state before gate gi).
        let inv = invert_gate(g);
        psi.apply(&inv);

        if np > 0 {
            for slot in 0..np {
                // μ = (∂U/∂θ) ψ.
                let mut mu_amps = psi.amplitudes().to_vec();
                match g.d_matrix(slot) {
                    GateMatrix::One(dm) => {
                        crate::kernels::apply_mat2(&mut mu_amps, g.qubits[0], &dm)
                    }
                    GateMatrix::Two(dm) => crate::kernels::apply_mat4(
                        &mut mu_amps,
                        g.qubits[0],
                        g.qubits[1],
                        &dm,
                    ),
                }
                for (o, lambda) in lambdas.iter().enumerate() {
                    let ip: C64 = lambda
                        .amplitudes()
                        .iter()
                        .zip(&mu_amps)
                        .map(|(l, m)| l.conj() * *m)
                        .sum();
                    gradients[o][flat_start + slot] = 2.0 * ip.re;
                }
            }
        }

        // λ ← U† λ.
        for lambda in &mut lambdas {
            lambda.apply(&inv);
        }
        flat_end = flat_start;
    }

    GradientResult {
        expectations,
        gradients,
    }
}

/// Convenience wrapper: gradients of ⟨Z_q⟩ for every qubit in the register.
pub fn adjoint_all_z(circuit: &Circuit) -> GradientResult {
    let qubits: Vec<usize> = (0..circuit.n_qubits()).collect();
    adjoint_gradients(circuit, &qubits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn finite_diff(circuit: &Circuit, obs: &[usize]) -> Vec<Vec<f64>> {
        let eps = 1e-6;
        let base = circuit.parameters();
        let mut grads = vec![vec![0.0; base.len()]; obs.len()];
        for k in 0..base.len() {
            let mut cp = circuit.clone();
            let mut pp = base.clone();
            pp[k] += eps;
            cp.set_parameters(&pp);
            let mut psi_p = StateVector::zero_state(circuit.n_qubits());
            psi_p.run(&cp);
            let mut pm = base.clone();
            pm[k] -= eps;
            cp.set_parameters(&pm);
            let mut psi_m = StateVector::zero_state(circuit.n_qubits());
            psi_m.run(&cp);
            for (o, &q) in obs.iter().enumerate() {
                grads[o][k] = (psi_p.expect_z(q) - psi_m.expect_z(q)) / (2.0 * eps);
            }
        }
        grads
    }

    #[test]
    fn single_ry_gradient() {
        let mut c = Circuit::new(1);
        c.push(Gate::ry(0, 0.9));
        let r = adjoint_gradients(&c, &[0]);
        assert!((r.expectations[0] - 0.9f64.cos()).abs() < 1e-12);
        assert!((r.gradients[0][0] + 0.9f64.sin()).abs() < 1e-12);
    }

    #[test]
    fn matches_finite_difference_on_mixed_circuit() {
        let mut c = Circuit::new(3);
        c.push(Gate::ry(0, 0.3));
        c.push(Gate::rx(1, -0.7));
        c.push(Gate::u3(2, 0.5, 0.2, -0.4));
        c.push(Gate::cx(0, 1));
        c.push(Gate::cu3(1, 2, 0.8, -0.1, 0.6));
        c.push(Gate::rzz(0, 2, 0.4));
        c.push(Gate::h(0));
        c.push(Gate::crx(2, 0, 1.1));
        let obs = [0, 1, 2];
        let r = adjoint_gradients(&c, &obs);
        let fd = finite_diff(&c, &obs);
        for o in 0..obs.len() {
            for k in 0..c.n_params() {
                assert!(
                    (r.gradients[o][k] - fd[o][k]).abs() < 1e-5,
                    "obs {o} param {k}: adjoint {} vs fd {}",
                    r.gradients[o][k],
                    fd[o][k]
                );
            }
        }
    }

    #[test]
    fn unparameterized_circuit_has_empty_gradients() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        let r = adjoint_all_z(&c);
        assert_eq!(r.gradients.len(), 2);
        assert!(r.gradients[0].is_empty());
        assert!((r.expectations[0]).abs() < 1e-12);
    }

    #[test]
    fn gradient_of_all_qubits_at_once() {
        let mut c = Circuit::new(2);
        c.push(Gate::ry(0, 0.4));
        c.push(Gate::ry(1, 1.3));
        c.push(Gate::cx(0, 1));
        let r = adjoint_all_z(&c);
        let fd = finite_diff(&c, &[0, 1]);
        for o in 0..2 {
            for k in 0..2 {
                assert!((r.gradients[o][k] - fd[o][k]).abs() < 1e-5);
            }
        }
    }
}
