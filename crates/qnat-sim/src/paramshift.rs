//! Parameter-shift gradients.
//!
//! Hardware-compatible gradient estimation: each parameter's derivative is a
//! finite combination of circuit evaluations at shifted parameter values.
//! This is what the paper's Table 3 uses for "noise-aware training on real
//! QC" — shifted-circuit evaluations run on the (noisy) hardware and the
//! resulting gradients are "naturally noise-aware".
//!
//! Two rules are implemented:
//!
//! * **Two-term rule** for generators with two eigenvalues separated by 1
//!   (RX/RY/RZ/P/RZZ/RXX/RZX, the U2/U3 phase angles, CP and the CU3 phase
//!   angles): `f'(θ) = [f(θ+π/2) − f(θ−π/2)] / 2`.
//! * **Four-term rule** for controlled rotations (generator eigenvalues
//!   `{0, ±1/2}`): `f'(θ) = c₊[f(θ+π/2) − f(θ−π/2)] − c₋[f(θ+3π/2) −
//!   f(θ−3π/2)]` with `c± = (√2 ± 1)/(4√2)`.

use crate::adjoint::GradientResult;
use crate::circuit::Circuit;
use crate::gate::GateKind;
use std::f64::consts::FRAC_PI_2;

/// Which shift rule applies to a (gate kind, parameter slot) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShiftRule {
    /// `f' = [f(+π/2) − f(−π/2)] / 2`.
    TwoTerm,
    /// Four evaluations, for `{0, ±1/2}` generator spectra.
    FourTerm,
}

/// Returns the shift rule for a parameter slot of a gate kind.
///
/// # Panics
///
/// Panics if the slot does not exist for this kind.
pub fn shift_rule(kind: GateKind, slot: usize) -> ShiftRule {
    use GateKind::*;
    assert!(slot < kind.param_count(), "{kind:?} has no slot {slot}");
    match kind {
        Rx | Ry | Rz | P | U2 | Rzz | Rxx | Rzx | Cp => ShiftRule::TwoTerm,
        U3 => ShiftRule::TwoTerm,
        Crx | Cry | Crz => ShiftRule::FourTerm,
        // CU3 = controlled-(P(φ)·RY(θ)·P(λ)): θ is a controlled rotation
        // (four-term); φ and λ are controlled phases (two-term).
        Cu3 => {
            if slot == 0 {
                ShiftRule::FourTerm
            } else {
                ShiftRule::TwoTerm
            }
        }
        _ => unreachable!("non-parameterized kind"),
    }
}

/// An expectation evaluator: maps bound circuit parameters to ⟨Z_q⟩ for each
/// observable qubit. Implementations may be exact simulators or noisy/shot
/// based estimators — the parameter-shift rules hold for any of them as long
/// as the noise process is parameter-independent.
pub trait Evaluator {
    /// Evaluates the observables with the circuit's parameters set to
    /// `params` (flat order, [`Circuit::param_slots`]).
    fn evaluate(&mut self, params: &[f64]) -> Vec<f64>;
}

/// Exact statevector evaluator over a template circuit.
#[derive(Debug, Clone)]
pub struct ExactEvaluator {
    template: Circuit,
    obs_qubits: Vec<usize>,
}

impl ExactEvaluator {
    /// Creates an evaluator that rebinds `template`'s parameters and returns
    /// exact ⟨Z_q⟩ values for `obs_qubits`.
    pub fn new(template: Circuit, obs_qubits: Vec<usize>) -> Self {
        ExactEvaluator {
            template,
            obs_qubits,
        }
    }
}

impl Evaluator for ExactEvaluator {
    fn evaluate(&mut self, params: &[f64]) -> Vec<f64> {
        self.template.set_parameters(params);
        let psi = crate::statevector::simulate(&self.template);
        self.obs_qubits.iter().map(|&q| psi.expect_z(q)).collect()
    }
}

/// Computes expectations and all parameter gradients by the parameter-shift
/// rule, using an arbitrary (possibly noisy) evaluator.
///
/// Costs 2 evaluations per two-term parameter and 4 per four-term parameter,
/// plus one for the unshifted expectations.
pub fn paramshift_gradients_with<E: Evaluator>(
    circuit: &Circuit,
    n_obs: usize,
    eval: &mut E,
) -> GradientResult {
    let base = circuit.parameters();
    let expectations = eval.evaluate(&base);
    assert_eq!(expectations.len(), n_obs, "evaluator arity mismatch");
    let slots = circuit.param_slots();
    let mut gradients = vec![vec![0.0f64; slots.len()]; n_obs];

    let sqrt2 = std::f64::consts::SQRT_2;
    let c_plus = (sqrt2 + 1.0) / (4.0 * sqrt2);
    let c_minus = (sqrt2 - 1.0) / (4.0 * sqrt2);

    for (k, &(gi, slot)) in slots.iter().enumerate() {
        let kind = circuit.gates()[gi].kind;
        let mut shifted = |delta: f64| -> Vec<f64> {
            let mut p = base.clone();
            p[k] += delta;
            eval.evaluate(&p)
        };
        match shift_rule(kind, slot) {
            ShiftRule::TwoTerm => {
                let fp = shifted(FRAC_PI_2);
                let fm = shifted(-FRAC_PI_2);
                for o in 0..n_obs {
                    gradients[o][k] = (fp[o] - fm[o]) / 2.0;
                }
            }
            ShiftRule::FourTerm => {
                let fp1 = shifted(FRAC_PI_2);
                let fm1 = shifted(-FRAC_PI_2);
                let fp3 = shifted(3.0 * FRAC_PI_2);
                let fm3 = shifted(-3.0 * FRAC_PI_2);
                for o in 0..n_obs {
                    gradients[o][k] =
                        c_plus * (fp1[o] - fm1[o]) - c_minus * (fp3[o] - fm3[o]);
                }
            }
        }
    }

    GradientResult {
        expectations,
        gradients,
    }
}

/// Exact parameter-shift gradients of ⟨Z_q⟩ for the given observable qubits.
pub fn paramshift_gradients(circuit: &Circuit, obs_qubits: &[usize]) -> GradientResult {
    let mut eval = ExactEvaluator::new(circuit.clone(), obs_qubits.to_vec());
    paramshift_gradients_with(circuit, obs_qubits.len(), &mut eval)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjoint::adjoint_gradients;
    use crate::gate::Gate;

    #[test]
    fn two_term_matches_adjoint_for_rotations() {
        let mut c = Circuit::new(2);
        c.push(Gate::ry(0, 0.35));
        c.push(Gate::rx(1, -0.8));
        c.push(Gate::cx(0, 1));
        c.push(Gate::rz(1, 1.2));
        c.push(Gate::rzz(0, 1, 0.6));
        let obs = [0, 1];
        let ps = paramshift_gradients(&c, &obs);
        let ad = adjoint_gradients(&c, &obs);
        for o in 0..2 {
            for k in 0..c.n_params() {
                assert!(
                    (ps.gradients[o][k] - ad.gradients[o][k]).abs() < 1e-10,
                    "obs {o} param {k}"
                );
            }
        }
    }

    #[test]
    fn four_term_matches_adjoint_for_controlled_rotations() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::crx(0, 1, 0.9));
        c.push(Gate::cry(1, 0, -0.4));
        c.push(Gate::crz(0, 1, 0.7));
        let obs = [0, 1];
        let ps = paramshift_gradients(&c, &obs);
        let ad = adjoint_gradients(&c, &obs);
        for o in 0..2 {
            for k in 0..c.n_params() {
                assert!(
                    (ps.gradients[o][k] - ad.gradients[o][k]).abs() < 1e-10,
                    "obs {o} param {k}: {} vs {}",
                    ps.gradients[o][k],
                    ad.gradients[o][k]
                );
            }
        }
    }

    #[test]
    fn cu3_and_u3_all_slots_match_adjoint() {
        let mut c = Circuit::new(2);
        c.push(Gate::u3(0, 0.3, 0.7, -0.2));
        c.push(Gate::h(1));
        c.push(Gate::cu3(0, 1, 0.9, 0.25, -0.55));
        c.push(Gate::cp(1, 0, 0.8));
        let obs = [0, 1];
        let ps = paramshift_gradients(&c, &obs);
        let ad = adjoint_gradients(&c, &obs);
        for o in 0..2 {
            for k in 0..c.n_params() {
                assert!(
                    (ps.gradients[o][k] - ad.gradients[o][k]).abs() < 1e-10,
                    "obs {o} param {k}: {} vs {}",
                    ps.gradients[o][k],
                    ad.gradients[o][k]
                );
            }
        }
    }

    #[test]
    fn shift_rule_classification() {
        assert_eq!(shift_rule(GateKind::Ry, 0), ShiftRule::TwoTerm);
        assert_eq!(shift_rule(GateKind::Crx, 0), ShiftRule::FourTerm);
        assert_eq!(shift_rule(GateKind::Cu3, 0), ShiftRule::FourTerm);
        assert_eq!(shift_rule(GateKind::Cu3, 1), ShiftRule::TwoTerm);
        assert_eq!(shift_rule(GateKind::U3, 2), ShiftRule::TwoTerm);
    }
}
