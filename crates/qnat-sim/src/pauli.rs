//! Pauli-string observables.
//!
//! General multi-qubit Pauli expectation values `⟨P₁ ⊗ P₂ ⊗ …⟩` for both
//! pure and mixed states. The QuantumNAT pipeline only measures single-
//! qubit Z, but Theorem 3.1's proof expands states in the Pauli basis —
//! these helpers make that expansion testable and support general-basis
//! measurement extensions.

use crate::density::DensityMatrix;
use crate::math::C64;
use crate::statevector::StateVector;
use std::fmt;
use std::str::FromStr;

/// One single-qubit Pauli factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

/// A Pauli string over a register, e.g. `ZZIX`.
///
/// The leftmost character acts on the *highest* qubit index, matching the
/// usual ket-notation reading order; `PauliString::from_str("ZI")` on a
/// 2-qubit register is `Z` on qubit 1.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PauliString {
    /// Factor on each qubit, indexed by qubit number.
    factors: Vec<Pauli>,
}

/// Error returned when parsing a Pauli string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePauliError {
    /// The offending character.
    pub bad_char: char,
}

impl fmt::Display for ParsePauliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid Pauli character '{}'", self.bad_char)
    }
}

impl std::error::Error for ParsePauliError {}

impl FromStr for PauliString {
    type Err = ParsePauliError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut factors = Vec::with_capacity(s.len());
        for ch in s.chars().rev() {
            factors.push(match ch.to_ascii_uppercase() {
                'I' => Pauli::I,
                'X' => Pauli::X,
                'Y' => Pauli::Y,
                'Z' => Pauli::Z,
                bad => return Err(ParsePauliError { bad_char: bad }),
            });
        }
        Ok(PauliString { factors })
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in self.factors.iter().rev() {
            write!(
                f,
                "{}",
                match p {
                    Pauli::I => 'I',
                    Pauli::X => 'X',
                    Pauli::Y => 'Y',
                    Pauli::Z => 'Z',
                }
            )?;
        }
        Ok(())
    }
}

impl PauliString {
    /// Builds from per-qubit factors (index = qubit).
    pub fn new(factors: Vec<Pauli>) -> Self {
        PauliString { factors }
    }

    /// A single-qubit Z on `q` over an `n`-qubit register.
    pub fn single_z(q: usize, n: usize) -> Self {
        let mut factors = vec![Pauli::I; n];
        factors[q] = Pauli::Z;
        PauliString { factors }
    }

    /// Number of qubits covered.
    pub fn n_qubits(&self) -> usize {
        self.factors.len()
    }

    /// Applies the string to raw amplitudes: `P|ψ⟩`.
    fn apply_to(&self, amps: &[C64]) -> Vec<C64> {
        let mut out = vec![C64::ZERO; amps.len()];
        for (i, &a) in amps.iter().enumerate() {
            // P maps basis state |i⟩ to phase·|j⟩ where X/Y flip bits.
            let mut j = i;
            let mut phase = C64::ONE;
            for (q, p) in self.factors.iter().enumerate() {
                let bit = (i >> q) & 1;
                match p {
                    Pauli::I => {}
                    Pauli::X => j ^= 1 << q,
                    Pauli::Y => {
                        j ^= 1 << q;
                        // Y|0⟩ = i|1⟩, Y|1⟩ = −i|0⟩.
                        phase *= if bit == 0 { C64::I } else { -C64::I };
                    }
                    Pauli::Z => {
                        if bit == 1 {
                            phase = -phase;
                        }
                    }
                }
            }
            out[j] += phase * a;
        }
        out
    }

    /// Expectation ⟨ψ|P|ψ⟩ on a pure state.
    ///
    /// # Panics
    ///
    /// Panics if register sizes differ.
    pub fn expectation(&self, psi: &StateVector) -> f64 {
        assert_eq!(self.n_qubits(), psi.n_qubits(), "register size mismatch");
        let p_psi = self.apply_to(psi.amplitudes());
        psi.amplitudes()
            .iter()
            .zip(&p_psi)
            .map(|(a, b)| (a.conj() * *b).re)
            .sum()
    }

    /// Expectation `tr(ρP)` on a mixed state.
    ///
    /// # Panics
    ///
    /// Panics if register sizes differ.
    pub fn expectation_density(&self, rho: &DensityMatrix) -> f64 {
        assert_eq!(self.n_qubits(), rho.n_qubits(), "register size mismatch");
        // tr(ρP) = Σ_i ⟨i|ρP|i⟩ = Σ_{i,j} ρ[i][j]·P[j][i]; P maps |i⟩ →
        // phase·|j⟩, i.e. P[j][i] = phase — accumulate directly.
        let dim = rho.dim();
        let mut total = C64::ZERO;
        for i in 0..dim {
            let mut j = i;
            let mut phase = C64::ONE;
            for (q, p) in self.factors.iter().enumerate() {
                let bit = (i >> q) & 1;
                match p {
                    Pauli::I => {}
                    Pauli::X => j ^= 1 << q,
                    Pauli::Y => {
                        j ^= 1 << q;
                        phase *= if bit == 0 { C64::I } else { -C64::I };
                    }
                    Pauli::Z => {
                        if bit == 1 {
                            phase = -phase;
                        }
                    }
                }
            }
            total += rho.element(i, j) * phase;
        }
        total.re
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::gate::Gate;
    use crate::statevector::simulate;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["Z", "XY", "IZXI", "YYYY"] {
            let p: PauliString = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
        assert!("AB".parse::<PauliString>().is_err());
    }

    #[test]
    fn single_z_matches_expect_z() {
        let mut c = Circuit::new(3);
        c.push(Gate::ry(0, 0.7));
        c.push(Gate::rx(1, -0.4));
        c.push(Gate::cx(0, 2));
        let psi = simulate(&c);
        for q in 0..3 {
            let p = PauliString::single_z(q, 3);
            assert!((p.expectation(&psi) - psi.expect_z(q)).abs() < 1e-12);
        }
    }

    #[test]
    fn bell_state_correlators() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        let psi = simulate(&c);
        // Bell state: ⟨ZZ⟩ = ⟨XX⟩ = 1, ⟨YY⟩ = −1, ⟨ZI⟩ = 0.
        let zz: PauliString = "ZZ".parse().unwrap();
        let xx: PauliString = "XX".parse().unwrap();
        let yy: PauliString = "YY".parse().unwrap();
        let zi: PauliString = "ZI".parse().unwrap();
        assert!((zz.expectation(&psi) - 1.0).abs() < 1e-12);
        assert!((xx.expectation(&psi) - 1.0).abs() < 1e-12);
        assert!((yy.expectation(&psi) + 1.0).abs() < 1e-12);
        assert!(zi.expectation(&psi).abs() < 1e-12);
    }

    #[test]
    fn density_expectation_matches_pure() {
        let mut c = Circuit::new(2);
        c.push(Gate::u3(0, 0.5, 0.2, -0.3));
        c.push(Gate::cry(0, 1, 0.8));
        let psi = simulate(&c);
        let rho = DensityMatrix::from_statevector(&psi);
        for s in ["ZI", "IZ", "XX", "YZ", "XY"] {
            let p: PauliString = s.parse().unwrap();
            assert!(
                (p.expectation(&psi) - p.expectation_density(&rho)).abs() < 1e-10,
                "{s}"
            );
        }
    }

    #[test]
    fn identity_string_expectation_is_one() {
        let psi = simulate(&{
            let mut c = Circuit::new(2);
            c.push(Gate::h(0));
            c
        });
        let p: PauliString = "II".parse().unwrap();
        assert!((p.expectation(&psi) - 1.0).abs() < 1e-12);
    }
}
