//! Quantum circuit representation.
//!
//! A [`Circuit`] is an ordered list of [`Gate`]s over a fixed qubit register.
//! Circuits are plain data: simulators ([`crate::statevector`],
//! [`crate::density`]), the transpiler and the noise-injection machinery all
//! consume them.

use crate::gate::{Gate, GateKind, GateMatrix};
use crate::math::{mat2_dagger, mat4_dagger};
use std::error::Error;
use std::fmt;

/// Error returned when a gate references a qubit outside the register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QubitOutOfRangeError {
    /// The offending qubit index.
    pub qubit: usize,
    /// The register size.
    pub n_qubits: usize,
}

impl fmt::Display for QubitOutOfRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qubit index {} out of range for {}-qubit register",
            self.qubit, self.n_qubits
        )
    }
}

impl Error for QubitOutOfRangeError {}

/// An ordered sequence of gates over `n_qubits` qubits.
///
/// # Examples
///
/// ```
/// use qnat_sim::circuit::Circuit;
/// use qnat_sim::gate::Gate;
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::h(0));
/// c.push(Gate::cx(0, 1));
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.depth(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    n_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            gates: Vec::new(),
        }
    }

    /// Number of qubits in the register.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `true` when the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gates in execution order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Mutable access to the gates (used by optimization passes).
    pub fn gates_mut(&mut self) -> &mut Vec<Gate> {
        &mut self.gates
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate addresses a qubit outside the register. Use
    /// [`Circuit::try_push`] for a fallible variant.
    pub fn push(&mut self, gate: Gate) {
        self.try_push(gate).expect("gate qubit out of range");
    }

    /// Appends a gate, validating its qubit indices.
    ///
    /// # Errors
    ///
    /// Returns [`QubitOutOfRangeError`] if a target qubit index is `>=
    /// n_qubits`, or if a two-qubit gate addresses the same qubit twice.
    pub fn try_push(&mut self, gate: Gate) -> Result<(), QubitOutOfRangeError> {
        for k in 0..gate.arity() {
            if gate.qubits[k] >= self.n_qubits {
                return Err(QubitOutOfRangeError {
                    qubit: gate.qubits[k],
                    n_qubits: self.n_qubits,
                });
            }
        }
        if gate.arity() == 2 && gate.qubits[0] == gate.qubits[1] {
            return Err(QubitOutOfRangeError {
                qubit: gate.qubits[0],
                n_qubits: self.n_qubits,
            });
        }
        self.gates.push(gate);
        Ok(())
    }

    /// Appends all gates of `other` (registers must match).
    ///
    /// # Panics
    ///
    /// Panics if `other` has a different register size.
    pub fn append(&mut self, other: &Circuit) {
        assert_eq!(
            self.n_qubits, other.n_qubits,
            "cannot append circuit over {} qubits to one over {}",
            other.n_qubits, self.n_qubits
        );
        self.gates.extend_from_slice(&other.gates);
    }

    /// The circuit implementing the inverse (adjoint) unitary: gates reversed
    /// with each gate inverted.
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::new(self.n_qubits);
        for g in self.gates.iter().rev() {
            inv.gates.push(invert_gate(g));
        }
        inv
    }

    /// Circuit depth: the longest chain of gates on any single qubit, with
    /// two-qubit gates synchronizing both their qubits.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.n_qubits];
        for g in &self.gates {
            match g.arity() {
                1 => level[g.qubits[0]] += 1,
                _ => {
                    let l = level[g.qubits[0]].max(level[g.qubits[1]]) + 1;
                    level[g.qubits[0]] = l;
                    level[g.qubits[1]] = l;
                }
            }
        }
        level.into_iter().max().unwrap_or(0)
    }

    /// Counts gates of a given kind.
    pub fn count_kind(&self, kind: GateKind) -> usize {
        self.gates.iter().filter(|g| g.kind == kind).count()
    }

    /// Counts two-qubit gates.
    pub fn count_two_qubit(&self) -> usize {
        self.gates.iter().filter(|g| g.arity() == 2).count()
    }

    /// Indices (into `gates()`) of parameterized gates together with their
    /// parameter slot counts, in execution order. This is the flattened
    /// parameter layout used by the gradient engines.
    pub fn param_slots(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (gi, g) in self.gates.iter().enumerate() {
            for slot in 0..g.kind.param_count() {
                out.push((gi, slot));
            }
        }
        out
    }

    /// Total number of continuous parameters across all gates.
    pub fn n_params(&self) -> usize {
        self.gates.iter().map(|g| g.kind.param_count()).sum()
    }

    /// Reads all gate parameters into a flat vector (same order as
    /// [`Circuit::param_slots`]).
    pub fn parameters(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.n_params());
        for g in &self.gates {
            v.extend_from_slice(&g.params[..g.kind.param_count()]);
        }
        v
    }

    /// A 64-bit structural fingerprint of the circuit: FNV-1a over the
    /// register size and every gate's kind, qubits, and exact parameter
    /// bits. Two circuits with equal fingerprints are (modulo hash
    /// collisions) the same gate list, so the compiled-circuit cache keys
    /// on this — differently-bound parameters hash differently.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.n_qubits as u64);
        for g in &self.gates {
            mix(g.kind as u64);
            mix(g.qubits[0] as u64);
            mix(g.qubits[1] as u64);
            for slot in 0..g.kind.param_count() {
                mix(g.params[slot].to_bits());
            }
        }
        h
    }

    /// Writes a flat parameter vector back into the gates.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != n_params()`.
    pub fn set_parameters(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.n_params(), "parameter count mismatch");
        let mut it = values.iter();
        for g in &mut self.gates {
            for slot in 0..g.kind.param_count() {
                g.params[slot] = *it.next().expect("length checked");
            }
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit[{} qubits, {} gates]", self.n_qubits, self.len())?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        for g in iter {
            self.push(g);
        }
    }
}

/// Returns a gate implementing the inverse unitary of `g`, or `None`
/// for the two kinds with no closed-form single-gate inverse in the
/// gate set (`SqrtH`, `SqrtSwap`). Callers that must invert those can
/// use the commuting two-gate identity `g⁻¹ = g·base` (where
/// `base = g²` is `H` resp. `SWAP`, self-inverse and commuting with its
/// own square root) — the compiler's folding pass does exactly that.
pub fn try_invert_gate(g: &Gate) -> Option<Gate> {
    use GateKind::*;
    match g.kind {
        SqrtH | SqrtSwap => None,
        _ => Some(invert_gate(g)),
    }
}

/// Returns a gate implementing the inverse unitary of `g`.
pub fn invert_gate(g: &Gate) -> Gate {
    use GateKind::*;
    let mut out = *g;
    match g.kind {
        // Self-inverse gates.
        Id | X | Y | Z | H | Cx | Cy | Cz | Swap => {}
        S => out.kind = Sdg,
        Sdg => out.kind = S,
        T => out.kind = Tdg,
        Tdg => out.kind = T,
        Sx => out.kind = Sxdg,
        Sxdg => out.kind = Sx,
        Rx | Ry | Rz | P | Crx | Cry | Crz | Cp | Rzz | Rxx | Rzx => {
            out.params[0] = -g.params[0];
        }
        U2 => {
            // U2(φ,λ)† = U3(-π/2, -λ, -φ).
            out.kind = U3;
            out.params = [
                -std::f64::consts::FRAC_PI_2,
                -g.params[1],
                -g.params[0],
            ];
        }
        U3 => {
            out.params = [-g.params[0], -g.params[2], -g.params[1]];
        }
        Cu3 => {
            out.params = [-g.params[0], -g.params[2], -g.params[1]];
        }
        SqrtH | SqrtSwap => {
            // No named inverse in the gate set; callers that need the
            // inverse of these apply three more copies (order 8 for √H is
            // false in general), so instead we signal via panic — the
            // transpiler never emits them and the ansätze never invert.
            panic!("no closed-form inverse gate for {:?} in the gate set", g.kind)
        }
    }
    out
}

/// Verifies that `inverse` really is the matrix inverse of `g` (test helper,
/// also used by property tests in dependent crates).
pub fn is_inverse_pair(g: &Gate, inv: &Gate) -> bool {
    match (g.matrix(), inv.matrix()) {
        (GateMatrix::One(a), GateMatrix::One(b)) => {
            let want = mat2_dagger(&a);
            (0..2).all(|i| (0..2).all(|j| b[i][j].approx_eq(want[i][j], 1e-10)))
        }
        (GateMatrix::Two(a), GateMatrix::Two(b)) => {
            let want = mat4_dagger(&a);
            (0..4).all(|i| (0..4).all(|j| b[i][j].approx_eq(want[i][j], 1e-10)))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        c
    }

    #[test]
    fn push_validates_qubits() {
        let mut c = Circuit::new(2);
        assert!(c.try_push(Gate::x(2)).is_err());
        assert!(c.try_push(Gate::cx(0, 0)).is_err());
        assert!(c.try_push(Gate::cx(0, 1)).is_ok());
    }

    #[test]
    fn depth_synchronizes_two_qubit_gates() {
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::h(1));
        c.push(Gate::cx(0, 1)); // depth 2 on q0,q1
        c.push(Gate::x(2)); // depth 1 on q2
        c.push(Gate::cx(1, 2)); // max(2,1)+1 = 3
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn parameters_round_trip() {
        let mut c = Circuit::new(2);
        c.push(Gate::ry(0, 0.1));
        c.push(Gate::cu3(0, 1, 0.2, 0.3, 0.4));
        c.push(Gate::h(1));
        c.push(Gate::rz(1, 0.5));
        let p = c.parameters();
        assert_eq!(p, vec![0.1, 0.2, 0.3, 0.4, 0.5]);
        let q: Vec<f64> = p.iter().map(|x| x * 2.0).collect();
        c.set_parameters(&q);
        assert_eq!(c.parameters(), q);
        assert_eq!(c.n_params(), 5);
        assert_eq!(c.param_slots().len(), 5);
    }

    #[test]
    fn inverse_gates_are_matrix_daggers() {
        let samples = vec![
            Gate::x(0),
            Gate::h(0),
            Gate::s(0),
            Gate::t(0),
            Gate::sx(0),
            Gate::rx(0, 0.7),
            Gate::ry(0, -0.3),
            Gate::rz(0, 1.9),
            Gate::p(0, 0.4),
            Gate::u2(0, 0.5, -0.2),
            Gate::u3(0, 0.6, 0.1, -0.8),
            Gate::cx(0, 1),
            Gate::cz(0, 1),
            Gate::crx(0, 1, 0.9),
            Gate::cu3(0, 1, 0.2, 0.7, -0.4),
            Gate::swap(0, 1),
            Gate::rzz(0, 1, 0.6),
            Gate::rxx(0, 1, -1.1),
            Gate::rzx(0, 1, 0.35),
        ];
        for g in samples {
            let inv = invert_gate(&g);
            assert!(is_inverse_pair(&g, &inv), "inverse wrong for {g}");
            assert_eq!(try_invert_gate(&g), Some(inv));
        }
    }

    #[test]
    fn try_invert_declines_roots_instead_of_panicking() {
        assert_eq!(try_invert_gate(&Gate::sqrt_h(0)), None);
        assert_eq!(try_invert_gate(&Gate::sqrt_swap(0, 1)), None);
    }

    #[test]
    fn fingerprint_separates_structure_and_params() {
        let a = bell();
        let b = bell();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Different parameter bits → different key.
        let mut c = Circuit::new(2);
        c.push(Gate::ry(0, 0.1));
        let mut d = Circuit::new(2);
        d.push(Gate::ry(0, 0.2));
        assert_ne!(c.fingerprint(), d.fingerprint());
        // Different qubit targets → different key.
        let mut e = Circuit::new(2);
        e.push(Gate::ry(1, 0.1));
        assert_ne!(c.fingerprint(), e.fingerprint());
        // Different register size alone → different key.
        assert_ne!(
            Circuit::new(2).fingerprint(),
            Circuit::new(3).fingerprint()
        );
    }

    #[test]
    fn circuit_inverse_reverses_order() {
        let c = bell();
        let inv = c.inverse();
        assert_eq!(inv.gates()[0].kind, GateKind::Cx);
        assert_eq!(inv.gates()[1].kind, GateKind::H);
    }

    #[test]
    fn append_and_counts() {
        let mut c = bell();
        c.append(&bell());
        assert_eq!(c.len(), 4);
        assert_eq!(c.count_kind(GateKind::H), 2);
        assert_eq!(c.count_two_qubit(), 2);
    }

    #[test]
    fn display_lists_gates() {
        let s = bell().to_string();
        assert!(s.contains("h q0"));
        assert!(s.contains("cx q0,q1"));
    }
}
