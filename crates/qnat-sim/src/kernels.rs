//! Low-level gate-application kernels shared by the statevector and
//! density-matrix simulators.
//!
//! All kernels operate on a raw amplitude slice of power-of-two length and
//! interpret "qubit `q`" as bit `q` of the index (little-endian). The
//! density-matrix simulator reuses them through the `vec(ρ)` isomorphism:
//! `ρ → UρU†` becomes `(U ⊗ U*)·vec(ρ)`, so a ket-side update targets bit
//! `q + n` and a bra-side update targets bit `q` with the conjugated matrix.
//!
//! ## Layout for auto-vectorization
//!
//! Qubit bounds are validated **once** at the (cold) dispatch boundary —
//! real `assert!`s, active in release builds, because an out-of-range
//! qubit would otherwise silently corrupt amplitudes or mask the shift
//! amount. The hot loops then walk the slice through `chunks_exact` /
//! `split_at_mut` sub-slices whose lengths are fixed per call, so the
//! compiler can hoist every bounds check out of the inner loop and keep
//! the loop body branch-free. [`apply_mat4`] enumerates exactly the
//! `len/4` block-base indices via nested chunking instead of scanning all
//! `len` indices and discarding three quarters of them.

use crate::math::{C64, Mat2, Mat4};

/// Validates `q` against an amplitude slice of length `len` and returns
/// the bit mask `1 << q`.
///
/// # Panics
///
/// Panics if `len` is not a power of two or `q` addresses a bit at or
/// above `log2(len)`. These are real (release-mode) checks: the hot loops
/// below rely on them and run branch-free.
#[inline]
fn checked_bit(len: usize, q: usize) -> usize {
    assert!(
        len.is_power_of_two(),
        "amplitude slice length {len} is not a power of two"
    );
    let n_qubits = len.trailing_zeros() as usize;
    assert!(
        q < n_qubits,
        "qubit {q} out of range for a {n_qubits}-qubit register"
    );
    1usize << q
}

/// Applies a 2×2 matrix to bit `q` of every index of `amps`.
///
/// # Panics
///
/// Panics if `amps.len()` is not a power of two or `q` is out of range
/// (checked once, before the branch-free hot loop).
pub fn apply_mat2(amps: &mut [C64], q: usize, m: &Mat2) {
    let bit = checked_bit(amps.len(), q);
    let [[m00, m01], [m10, m11]] = *m;
    // Each 2·bit block splits into a low half (bit clear) and a high half
    // (bit set); zipping the halves pairs partner amplitudes with no index
    // arithmetic or bounds checks in the loop body.
    for block in amps.chunks_exact_mut(bit << 1) {
        let (lo, hi) = block.split_at_mut(bit);
        for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
            let x0 = *a0;
            let x1 = *a1;
            *a0 = m00 * x0 + m01 * x1;
            *a1 = m10 * x0 + m11 * x1;
        }
    }
}

/// Applies a 4×4 matrix to bits `(qa, qb)` of every index of `amps`, with
/// the matrix given in the basis `index = 2·bit(qa) + bit(qb)`.
///
/// # Panics
///
/// Panics if `amps.len()` is not a power of two, either qubit is out of
/// range, or `qa == qb` (checked once, before the branch-free hot loop).
pub fn apply_mat4(amps: &mut [C64], qa: usize, qb: usize, m: &Mat4) {
    let ba = checked_bit(amps.len(), qa);
    let bb = checked_bit(amps.len(), qb);
    assert!(qa != qb, "two-qubit kernel addresses qubit {qa} twice");
    let (lo, hi) = if ba < bb { (ba, bb) } else { (bb, ba) };
    let [[m00, m01, m02, m03], [m10, m11, m12, m13], [m20, m21, m22, m23], [m30, m31, m32, m33]] =
        *m;
    // Nested chunking enumerates exactly the len/4 base indices with both
    // bits clear: outer blocks of 2·hi split on the high bit, inner blocks
    // of 2·lo split on the low bit. `hi ≥ 2·lo`, so the inner chunking
    // tiles each half exactly.
    for outer in amps.chunks_exact_mut(hi << 1) {
        let (top, bot) = outer.split_at_mut(hi);
        for (sub_t, sub_b) in top
            .chunks_exact_mut(lo << 1)
            .zip(bot.chunks_exact_mut(lo << 1))
        {
            let (t0, t1) = sub_t.split_at_mut(lo);
            let (b0, b1) = sub_b.split_at_mut(lo);
            // Matrix basis index 1 is "bb set only", index 2 "ba set only":
            // pick which physical half carries which logical index.
            let (x1, x2) = if bb == lo { (t1, b0) } else { (b0, t1) };
            for (((a0, a1), a2), a3) in t0
                .iter_mut()
                .zip(x1.iter_mut())
                .zip(x2.iter_mut())
                .zip(b1.iter_mut())
            {
                let v0 = *a0;
                let v1 = *a1;
                let v2 = *a2;
                let v3 = *a3;
                *a0 = m00 * v0 + m01 * v1 + m02 * v2 + m03 * v3;
                *a1 = m10 * v0 + m11 * v1 + m12 * v2 + m13 * v3;
                *a2 = m20 * v0 + m21 * v1 + m22 * v2 + m23 * v3;
                *a3 = m30 * v0 + m31 * v1 + m32 * v2 + m33 * v3;
            }
        }
    }
}

/// Probability mass on indices with bit `q` set: `Σ |amps[i]|²` over
/// `i & (1<<q) != 0`, accumulated block-wise with no per-index branch.
///
/// Shared by [`StateVector::prob_one`](crate::statevector::StateVector)
/// and the measurement helpers.
///
/// # Panics
///
/// Panics if `amps.len()` is not a power of two or `q` is out of range.
pub fn prob_one_mass(amps: &[C64], q: usize) -> f64 {
    let bit = checked_bit(amps.len(), q);
    amps.chunks_exact(bit << 1)
        .map(|block| block[bit..].iter().map(|a| a.norm_sqr()).sum::<f64>())
        .sum()
}

/// Element-wise conjugate of a 2×2 matrix (not the transpose).
pub fn conj2(m: &Mat2) -> Mat2 {
    let mut c = *m;
    for row in &mut c {
        for v in row {
            *v = v.conj();
        }
    }
    c
}

/// Element-wise conjugate of a 4×4 matrix (not the transpose).
pub fn conj4(m: &Mat4) -> Mat4 {
    let mut c = *m;
    for row in &mut c {
        for v in row {
            *v = v.conj();
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn kernel_matches_statevector_method() {
        use crate::statevector::StateVector;
        let g = Gate::u3(1, 0.7, 0.2, -0.4);
        let mut sv = StateVector::zero_state(3);
        sv.apply(&Gate::h(0));
        sv.apply(&Gate::cx(0, 2));
        let mut raw = sv.amplitudes().to_vec();
        sv.apply(&g);
        apply_mat2(&mut raw, 1, &g.matrix1());
        for (a, b) in raw.iter().zip(sv.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-14));
        }
    }

    /// The chunked mat4 kernel agrees with a straightforward reference
    /// that enumerates blocks by skipping indices with either bit set —
    /// for both qubit orderings and non-adjacent bits.
    #[test]
    fn mat4_kernel_matches_reference() {
        let reference = |amps: &mut [C64], qa: usize, qb: usize, m: &Mat4| {
            let ba = 1usize << qa;
            let bb = 1usize << qb;
            for i in 0..amps.len() {
                if i & (ba | bb) != 0 {
                    continue;
                }
                let idx = [i, i | bb, i | ba, i | ba | bb];
                let a = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
                for (row, &out_i) in idx.iter().enumerate() {
                    let mut acc = C64::ZERO;
                    for (col, &av) in a.iter().enumerate() {
                        acc += m[row][col] * av;
                    }
                    amps[out_i] = acc;
                }
            }
        };
        let m = Gate::cu3(0, 1, 0.9, -0.2, 0.4).matrix2();
        for (qa, qb) in [(0, 1), (1, 0), (0, 3), (3, 0), (1, 3), (2, 1)] {
            let mut amps: Vec<C64> = (0..16)
                .map(|i| C64::new(0.1 * i as f64, -0.05 * i as f64 + 0.3))
                .collect();
            let mut want = amps.clone();
            apply_mat4(&mut amps, qa, qb, &m);
            reference(&mut want, qa, qb, &m);
            for (a, b) in amps.iter().zip(&want) {
                assert!(a.approx_eq(*b, 1e-14), "({qa},{qb}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn prob_one_mass_matches_enumerated_sum() {
        let amps: Vec<C64> = (0..8)
            .map(|i| C64::new(0.2 * i as f64, 0.1 - 0.03 * i as f64))
            .collect();
        for q in 0..3 {
            let bit = 1usize << q;
            let want: f64 = amps
                .iter()
                .enumerate()
                .filter(|(i, _)| i & bit != 0)
                .map(|(_, a)| a.norm_sqr())
                .sum();
            assert!((prob_one_mass(&amps, q) - want).abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_is_a_real_check() {
        let mut amps = vec![C64::ONE; 8];
        apply_mat2(&mut amps, 3, &Gate::h(0).matrix1());
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_qubits_rejected() {
        let mut amps = vec![C64::ONE; 8];
        apply_mat4(&mut amps, 1, 1, &Gate::cx(0, 1).matrix2());
    }

    #[test]
    fn conj_is_elementwise() {
        let m = Gate::u3(0, 0.3, 0.5, 0.7).matrix1();
        let c = conj2(&m);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(c[i][j], m[i][j].conj());
            }
        }
    }
}
