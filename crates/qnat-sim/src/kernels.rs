//! Low-level gate-application kernels shared by the statevector and
//! density-matrix simulators.
//!
//! All kernels operate on a raw amplitude slice of power-of-two length and
//! interpret "qubit `q`" as bit `q` of the index (little-endian). The
//! density-matrix simulator reuses them through the `vec(ρ)` isomorphism:
//! `ρ → UρU†` becomes `(U ⊗ U*)·vec(ρ)`, so a ket-side update targets bit
//! `q + n` and a bra-side update targets bit `q` with the conjugated matrix.

use crate::math::{C64, Mat2, Mat4};

/// Applies a 2×2 matrix to bit `q` of every index of `amps`.
pub fn apply_mat2(amps: &mut [C64], q: usize, m: &Mat2) {
    let bit = 1usize << q;
    let n = amps.len();
    debug_assert!(bit < n);
    let mut base = 0usize;
    while base < n {
        for low in base..base + bit {
            let i0 = low;
            let i1 = low | bit;
            let a0 = amps[i0];
            let a1 = amps[i1];
            amps[i0] = m[0][0] * a0 + m[0][1] * a1;
            amps[i1] = m[1][0] * a0 + m[1][1] * a1;
        }
        base += bit << 1;
    }
}

/// Applies a 4×4 matrix to bits `(qa, qb)` of every index of `amps`, with the
/// matrix given in the basis `index = 2·bit(qa) + bit(qb)`.
pub fn apply_mat4(amps: &mut [C64], qa: usize, qb: usize, m: &Mat4) {
    debug_assert!(qa != qb);
    let ba = 1usize << qa;
    let bb = 1usize << qb;
    let n = amps.len();
    debug_assert!(ba < n && bb < n);
    for i in 0..n {
        if i & (ba | bb) != 0 {
            continue;
        }
        let idx = [i, i | bb, i | ba, i | ba | bb];
        let a = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
        for (row, &out_i) in idx.iter().enumerate() {
            let mut acc = C64::ZERO;
            for (col, &av) in a.iter().enumerate() {
                acc += m[row][col] * av;
            }
            amps[out_i] = acc;
        }
    }
}

/// Element-wise conjugate of a 2×2 matrix (not the transpose).
pub fn conj2(m: &Mat2) -> Mat2 {
    let mut c = *m;
    for row in &mut c {
        for v in row {
            *v = v.conj();
        }
    }
    c
}

/// Element-wise conjugate of a 4×4 matrix (not the transpose).
pub fn conj4(m: &Mat4) -> Mat4 {
    let mut c = *m;
    for row in &mut c {
        for v in row {
            *v = v.conj();
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn kernel_matches_statevector_method() {
        use crate::statevector::StateVector;
        let g = Gate::u3(1, 0.7, 0.2, -0.4);
        let mut sv = StateVector::zero_state(3);
        sv.apply(&Gate::h(0));
        sv.apply(&Gate::cx(0, 2));
        let mut raw = sv.amplitudes().to_vec();
        sv.apply(&g);
        apply_mat2(&mut raw, 1, &g.matrix1());
        for (a, b) in raw.iter().zip(sv.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-14));
        }
    }

    #[test]
    fn conj_is_elementwise() {
        let m = Gate::u3(0, 0.3, 0.5, 0.7).matrix1();
        let c = conj2(&m);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(c[i][j], m[i][j].conj());
            }
        }
    }
}
