//! Statevector simulator.
//!
//! Stores the full 2ⁿ complex amplitude vector and applies gates in place
//! with bit-twiddling kernels (no 2ⁿ×2ⁿ matrices are ever formed). Qubit `q`
//! maps to bit `q` of the basis-state index (little-endian).

use crate::circuit::Circuit;
use crate::gate::{Gate, GateMatrix};
use crate::math::{C64, Mat2, Mat4};

/// A circuit addressed a register larger than the state it runs on.
///
/// Returned by [`StateVector::try_run`] and
/// [`DensityMatrix::try_run`](crate::density::DensityMatrix::try_run);
/// the panicking `run` wrappers delegate to these (the repo's
/// `try_push`/`push` idiom).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterMismatchError {
    /// Register size the circuit requires.
    pub circuit_qubits: usize,
    /// Register size the state actually has.
    pub state_qubits: usize,
}

impl std::fmt::Display for RegisterMismatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "circuit register ({} qubits) larger than state register ({} qubits)",
            self.circuit_qubits, self.state_qubits
        )
    }
}

impl std::error::Error for RegisterMismatchError {}

/// A pure quantum state over `n` qubits.
///
/// # Examples
///
/// ```
/// use qnat_sim::statevector::StateVector;
/// use qnat_sim::circuit::Circuit;
/// use qnat_sim::gate::Gate;
///
/// let mut bell = Circuit::new(2);
/// bell.push(Gate::h(0));
/// bell.push(Gate::cx(0, 1));
/// let mut psi = StateVector::zero_state(2);
/// psi.run(&bell);
/// // Bell state: ⟨Z⟩ = 0 on both qubits.
/// assert!(psi.expect_z(0).abs() < 1e-12);
/// assert!(psi.expect_z(1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0…0⟩`.
    pub fn zero_state(n_qubits: usize) -> Self {
        assert!(n_qubits <= 26, "statevector limited to 26 qubits");
        let mut amps = vec![C64::ZERO; 1 << n_qubits];
        amps[0] = C64::ONE;
        StateVector { n_qubits, amps }
    }

    /// Builds a state from raw amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if `amps.len()` is not a power of two.
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        assert!(amps.len().is_power_of_two(), "length must be a power of two");
        let n_qubits = amps.len().trailing_zeros() as usize;
        StateVector { n_qubits, amps }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The amplitude vector (little-endian basis ordering).
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Mutable amplitude access for in-crate kernels (fused execution).
    pub(crate) fn amps_mut(&mut self) -> &mut [C64] {
        &mut self.amps
    }

    /// Squared norm ⟨ψ|ψ⟩ (should be 1 for a normalized state).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Inner product ⟨self|other⟩.
    ///
    /// # Panics
    ///
    /// Panics if the register sizes differ.
    pub fn inner(&self, other: &StateVector) -> C64 {
        assert_eq!(self.n_qubits, other.n_qubits, "register size mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Applies a single-qubit unitary to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range (checked in release builds too).
    pub fn apply_mat2(&mut self, q: usize, m: &Mat2) {
        crate::kernels::apply_mat2(&mut self.amps, q, m);
    }

    /// Applies a two-qubit unitary given in the basis
    /// `index = 2·bit(qa) + bit(qb)`.
    ///
    /// # Panics
    ///
    /// Panics if either qubit is out of range or `qa == qb` (checked in
    /// release builds too).
    pub fn apply_mat4(&mut self, qa: usize, qb: usize, m: &Mat4) {
        crate::kernels::apply_mat4(&mut self.amps, qa, qb, m);
    }

    /// Applies one gate.
    pub fn apply(&mut self, gate: &Gate) {
        match gate.matrix() {
            GateMatrix::One(m) => self.apply_mat2(gate.qubits[0], &m),
            GateMatrix::Two(m) => self.apply_mat4(gate.qubits[0], gate.qubits[1], &m),
        }
    }

    /// Runs a whole circuit, or reports a register mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`RegisterMismatchError`] if the circuit register is larger
    /// than the state register; the state is left untouched.
    pub fn try_run(&mut self, circuit: &Circuit) -> Result<(), RegisterMismatchError> {
        if circuit.n_qubits() > self.n_qubits {
            return Err(RegisterMismatchError {
                circuit_qubits: circuit.n_qubits(),
                state_qubits: self.n_qubits,
            });
        }
        for g in circuit.gates() {
            self.apply(g);
        }
        Ok(())
    }

    /// Runs a whole circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit register is larger than the state register;
    /// use [`try_run`](Self::try_run) to handle that as an error.
    pub fn run(&mut self, circuit: &Circuit) {
        self.try_run(circuit)
            .expect("circuit register larger than state register");
    }

    /// Probability of measuring basis state `idx`.
    pub fn probability(&self, idx: usize) -> f64 {
        self.amps[idx].norm_sqr()
    }

    /// Probability that qubit `q` reads `|1⟩`.
    ///
    /// Single-pass block accumulation shared with the kernels — no
    /// per-index branch (see [`crate::kernels::prob_one_mass`]).
    pub fn prob_one(&self, q: usize) -> f64 {
        crate::kernels::prob_one_mass(&self.amps, q)
    }

    /// Pauli-Z expectation value on qubit `q`: `⟨Z_q⟩ = P(0) − P(1) ∈ [-1, 1]`.
    pub fn expect_z(&self, q: usize) -> f64 {
        1.0 - 2.0 * self.prob_one(q)
    }

    /// Z expectations for every qubit (one branch-free block pass per
    /// qubit, sharing [`prob_one`](Self::prob_one)'s implementation).
    pub fn expect_all_z(&self) -> Vec<f64> {
        (0..self.n_qubits).map(|q| self.expect_z(q)).collect()
    }

    /// Full probability distribution over basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Applies a single-qubit Kraus channel by quantum-trajectory sampling:
    /// outcome `k` is chosen with probability `‖K_k|ψ⟩‖²` and the state is
    /// renormalized. Averaging over trajectories reproduces the density
    /// matrix channel exactly; this is how large registers are emulated
    /// noisily without a 4ⁿ density matrix.
    pub fn apply_channel1_sampled<R: rand::Rng>(
        &mut self,
        q: usize,
        channel: &crate::channel::Channel1,
        rng: &mut R,
    ) {
        let kraus = channel.kraus();
        debug_assert!(!kraus.is_empty());
        // Outcome k has probability ‖K_k ψ‖²; completeness guarantees the
        // probabilities sum to 1, so the last operator absorbs any
        // floating-point remainder.
        let mut u: f64 = rng.gen();
        let mut scratch: Vec<C64> = Vec::new();
        for (k, m) in kraus.iter().enumerate() {
            scratch = self.amps.clone();
            crate::kernels::apply_mat2(&mut scratch, q, m);
            let p: f64 = scratch.iter().map(|a| a.norm_sqr()).sum();
            if u < p || k == kraus.len() - 1 {
                break;
            }
            u -= p;
        }
        self.amps = scratch;
        self.renormalize();
    }

    /// Renormalizes the state to unit norm (guards against drift in very
    /// long circuits).
    pub fn renormalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        if n > 0.0 {
            let inv = 1.0 / n;
            for a in &mut self.amps {
                *a = a.scale(inv);
            }
        }
    }
}

/// Convenience: runs `circuit` from `|0…0⟩` and returns the final state.
pub fn simulate(circuit: &Circuit) -> StateVector {
    let mut psi = StateVector::zero_state(circuit.n_qubits());
    psi.run(circuit);
    psi
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn zero_state_is_normalized() {
        let psi = StateVector::zero_state(3);
        assert!((psi.norm_sqr() - 1.0).abs() < 1e-15);
        assert_eq!(psi.probability(0), 1.0);
    }

    #[test]
    fn x_flips_qubit() {
        let mut psi = StateVector::zero_state(2);
        psi.apply(&Gate::x(1));
        assert!((psi.probability(0b10) - 1.0).abs() < 1e-15);
        assert_eq!(psi.expect_z(1), -1.0);
        assert_eq!(psi.expect_z(0), 1.0);
    }

    #[test]
    fn bell_state_correlations() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        let psi = simulate(&c);
        assert!((psi.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((psi.probability(0b11) - 0.5).abs() < 1e-12);
        assert!(psi.probability(0b01) < 1e-12);
        assert!(psi.probability(0b10) < 1e-12);
    }

    #[test]
    fn ry_rotation_expectation() {
        // ⟨Z⟩ after RY(θ)|0⟩ = cos θ.
        for &theta in &[0.0, 0.3, FRAC_PI_2, 1.9, PI] {
            let mut psi = StateVector::zero_state(1);
            psi.apply(&Gate::ry(0, theta));
            assert!(
                (psi.expect_z(0) - theta.cos()).abs() < 1e-12,
                "theta={theta}"
            );
        }
    }

    #[test]
    fn cx_control_ordering() {
        // Control q1 set, target q0 flips.
        let mut psi = StateVector::zero_state(2);
        psi.apply(&Gate::x(1));
        psi.apply(&Gate::cx(1, 0));
        assert!((psi.probability(0b11) - 1.0).abs() < 1e-15);
        // Control q0 clear, nothing happens.
        let mut psi = StateVector::zero_state(2);
        psi.apply(&Gate::cx(0, 1));
        assert!((psi.probability(0b00) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut psi = StateVector::zero_state(3);
        psi.apply(&Gate::x(0));
        psi.apply(&Gate::swap(0, 2));
        assert!((psi.probability(0b100) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn expect_all_z_matches_individual() {
        let mut c = Circuit::new(3);
        c.push(Gate::ry(0, 0.4));
        c.push(Gate::ry(1, 1.1));
        c.push(Gate::cx(0, 1));
        c.push(Gate::rx(2, 0.7));
        let psi = simulate(&c);
        let all = psi.expect_all_z();
        for q in 0..3 {
            assert!((all[q] - psi.expect_z(q)).abs() < 1e-12);
        }
    }

    #[test]
    fn unitarity_preserves_norm() {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.push(Gate::u3(q, 0.3 * q as f64 + 0.2, 0.1, -0.4));
        }
        c.push(Gate::cx(0, 1));
        c.push(Gate::cu3(1, 2, 0.5, 0.2, 0.9));
        c.push(Gate::rzz(2, 3, 0.8));
        let psi = simulate(&c);
        assert!((psi.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inner_product_with_self_is_one() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cry(0, 1, 0.9));
        let psi = simulate(&c);
        let ip = psi.inner(&psi);
        assert!((ip.re - 1.0).abs() < 1e-12 && ip.im.abs() < 1e-12);
    }

    #[test]
    fn sampled_channel_matches_density_matrix_on_average() {
        use crate::channel::Channel1;
        use crate::density::DensityMatrix;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut prep = Circuit::new(1);
        prep.push(Gate::ry(0, 0.9));
        let ch = Channel1::amplitude_damping(0.3).unwrap();
        // Exact channel on the density matrix.
        let mut rho = DensityMatrix::zero_state(1);
        rho.run(&prep);
        rho.apply_channel1(0, &ch);
        let exact = rho.expect_z(0);
        // Trajectory average.
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mut acc = 0.0;
        for _ in 0..n {
            let mut psi = simulate(&prep);
            psi.apply_channel1_sampled(0, &ch, &mut rng);
            acc += psi.expect_z(0);
        }
        let sampled = acc / n as f64;
        assert!(
            (sampled - exact).abs() < 0.02,
            "trajectory {sampled} vs exact {exact}"
        );
    }

    #[test]
    fn sampled_channel_keeps_unit_norm() {
        use crate::channel::Channel1;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(9);
        let ch = Channel1::pauli(0.2, 0.1, 0.3).unwrap();
        let mut psi = StateVector::zero_state(2);
        psi.apply(&Gate::h(0));
        psi.apply(&Gate::cx(0, 1));
        for _ in 0..50 {
            psi.apply_channel1_sampled(0, &ch, &mut rng);
            psi.apply_channel1_sampled(1, &ch, &mut rng);
            assert!((psi.norm_sqr() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn try_run_rejects_oversized_circuit() {
        let mut psi = StateVector::zero_state(2);
        let mut c = Circuit::new(3);
        c.push(Gate::h(2));
        let err = psi.try_run(&c).unwrap_err();
        assert_eq!(err.circuit_qubits, 3);
        assert_eq!(err.state_qubits, 2);
        // The state is untouched and smaller circuits still run.
        assert_eq!(psi.probability(0), 1.0);
        let ok = Circuit::new(2);
        assert!(psi.try_run(&ok).is_ok());
    }

    #[test]
    fn circuit_then_inverse_is_identity() {
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::u3(1, 0.7, -0.2, 0.5));
        c.push(Gate::cx(0, 2));
        c.push(Gate::rzz(1, 2, 0.33));
        c.push(Gate::cu3(2, 0, 0.4, 0.1, -0.6));
        let mut psi = StateVector::zero_state(3);
        psi.run(&c);
        psi.run(&c.inverse());
        assert!((psi.probability(0) - 1.0).abs() < 1e-10);
    }
}
