//! # qnat-sim — quantum circuit simulation substrate for QuantumNAT
//!
//! A dependency-light quantum simulator built for the QuantumNAT
//! reproduction: statevector simulation with analytic gradients for
//! training, and density-matrix simulation with Kraus noise channels as the
//! "real hardware" stand-in for deployment evaluation.
//!
//! ## Modules
//!
//! * [`math`] — complex arithmetic and small dense matrices.
//! * [`gate`] — the gate library (all QuantumNAT design-space gates plus the
//!   IBMQ basis set).
//! * [`circuit`] — circuits, parameter binding, inversion.
//! * [`statevector`] — pure-state simulation.
//! * [`density`] — mixed-state simulation with Kraus channels.
//! * [`fused`] — the fused-circuit IR executed by the branch-free kernels.
//! * [`channel`] — Pauli / depolarizing / damping channels.
//! * [`measure`] — shot sampling and readout confusion.
//! * [`adjoint`] — adjoint-method gradients (training backend).
//! * [`paramshift`] — parameter-shift gradients (hardware-compatible).
//!
//! ## Example
//!
//! ```
//! use qnat_sim::circuit::Circuit;
//! use qnat_sim::gate::Gate;
//! use qnat_sim::statevector::simulate;
//!
//! let mut c = Circuit::new(2);
//! c.push(Gate::ry(0, 0.5));
//! c.push(Gate::cx(0, 1));
//! let psi = simulate(&c);
//! assert!((psi.norm_sqr() - 1.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod adjoint;
pub mod channel;
pub mod circuit;
pub mod density;
pub mod fused;
pub mod gate;
pub mod kernels;
pub mod math;
pub mod measure;
pub mod paramshift;
pub mod pauli;
pub mod qasm;
pub mod statevector;

pub use circuit::Circuit;
pub use fused::{FusedCircuit, FusedOp};
pub use gate::{Gate, GateKind};
pub use statevector::StateVector;
