//! Property-based tests for the simulator: unitarity, channel physicality
//! and gradient-engine agreement on random circuits.

use proptest::prelude::*;
use qnat_sim::adjoint::adjoint_gradients;
use qnat_sim::channel::Channel1;
use qnat_sim::circuit::{invert_gate, is_inverse_pair, Circuit};
use qnat_sim::density::DensityMatrix;
use qnat_sim::gate::{Gate, GateKind};
use qnat_sim::paramshift::paramshift_gradients;
use qnat_sim::statevector::{simulate, StateVector};

const N_QUBITS: usize = 3;

/// Strategy: one random gate on a 3-qubit register.
fn arb_gate() -> impl Strategy<Value = Gate> {
    let q = 0..N_QUBITS;
    let angle = -3.0f64..3.0;
    prop_oneof![
        q.clone().prop_map(Gate::x),
        q.clone().prop_map(Gate::h),
        q.clone().prop_map(Gate::s),
        q.clone().prop_map(Gate::sx),
        (q.clone(), angle.clone()).prop_map(|(q, a)| Gate::rx(q, a)),
        (q.clone(), angle.clone()).prop_map(|(q, a)| Gate::ry(q, a)),
        (q.clone(), angle.clone()).prop_map(|(q, a)| Gate::rz(q, a)),
        (q.clone(), angle.clone(), angle.clone(), angle.clone())
            .prop_map(|(q, a, b, c)| Gate::u3(q, a, b, c)),
        (0..N_QUBITS, 1..N_QUBITS)
            .prop_map(|(a, d)| Gate::cx(a, (a + d) % N_QUBITS)),
        (0..N_QUBITS, 1..N_QUBITS, angle.clone())
            .prop_map(|(a, d, t)| Gate::crz(a, (a + d) % N_QUBITS, t)),
        (0..N_QUBITS, 1..N_QUBITS, angle.clone(), angle.clone(), angle.clone())
            .prop_map(|(a, d, t, p, l)| Gate::cu3(a, (a + d) % N_QUBITS, t, p, l)),
        (0..N_QUBITS, 1..N_QUBITS, angle).prop_map(|(a, d, t)| Gate::rzz(a, (a + d) % N_QUBITS, t)),
    ]
}

fn arb_circuit(max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(), 1..max_gates).prop_map(|gates| {
        let mut c = Circuit::new(N_QUBITS);
        c.extend(gates);
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_circuits_preserve_norm(circuit in arb_circuit(20)) {
        let psi = simulate(&circuit);
        prop_assert!((psi.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expectations_stay_in_range(circuit in arb_circuit(20)) {
        let psi = simulate(&circuit);
        for z in psi.expect_all_z() {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&z));
        }
    }

    #[test]
    fn circuit_inverse_undoes_circuit(circuit in arb_circuit(15)) {
        let mut psi = StateVector::zero_state(N_QUBITS);
        psi.run(&circuit);
        psi.run(&circuit.inverse());
        prop_assert!((psi.probability(0) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn every_gate_inverse_is_its_dagger(gate in arb_gate()) {
        let inv = invert_gate(&gate);
        prop_assert!(is_inverse_pair(&gate, &inv));
    }

    #[test]
    fn adjoint_matches_paramshift(circuit in arb_circuit(12)) {
        let obs: Vec<usize> = (0..N_QUBITS).collect();
        let a = adjoint_gradients(&circuit, &obs);
        let p = paramshift_gradients(&circuit, &obs);
        for o in 0..obs.len() {
            prop_assert!((a.expectations[o] - p.expectations[o]).abs() < 1e-9);
            for k in 0..circuit.n_params() {
                prop_assert!(
                    (a.gradients[o][k] - p.gradients[o][k]).abs() < 1e-7,
                    "obs {} param {}: adjoint {} vs shift {}",
                    o, k, a.gradients[o][k], p.gradients[o][k]
                );
            }
        }
    }

    #[test]
    fn density_matrix_stays_physical(
        circuit in arb_circuit(10),
        px in 0.0f64..0.2,
        py in 0.0f64..0.2,
        pz in 0.0f64..0.2,
        gamma in 0.0f64..0.3,
    ) {
        let mut rho = DensityMatrix::zero_state(N_QUBITS);
        rho.run(&circuit);
        rho.apply_channel1(0, &Channel1::pauli(px, py, pz).unwrap());
        rho.apply_channel1(1, &Channel1::amplitude_damping(gamma).unwrap());
        rho.apply_channel1(2, &Channel1::phase_damping(gamma).unwrap());
        prop_assert!((rho.trace() - 1.0).abs() < 1e-9);
        prop_assert!(rho.hermiticity_error() < 1e-9);
        prop_assert!(rho.purity() <= 1.0 + 1e-9);
        for p in rho.probabilities() {
            prop_assert!(p >= -1e-9);
        }
    }

    #[test]
    fn pure_state_density_agrees_with_statevector(circuit in arb_circuit(12)) {
        let psi = simulate(&circuit);
        let mut rho = DensityMatrix::zero_state(N_QUBITS);
        rho.run(&circuit);
        for q in 0..N_QUBITS {
            prop_assert!((rho.expect_z(q) - psi.expect_z(q)).abs() < 1e-8);
        }
    }

    #[test]
    fn parameter_round_trip(circuit in arb_circuit(15), scale in 0.1f64..2.0) {
        let mut c = circuit.clone();
        let p: Vec<f64> = c.parameters().iter().map(|v| v * scale).collect();
        c.set_parameters(&p);
        prop_assert_eq!(c.parameters(), p);
        prop_assert_eq!(c.n_params(), circuit.n_params());
    }
}

#[test]
fn gate_kind_coverage_in_strategy() {
    // The strategy covers single-qubit, controlled and Ising gates.
    let kinds = [
        GateKind::X,
        GateKind::Cu3,
        GateKind::Rzz,
        GateKind::Crz,
    ];
    for k in kinds {
        assert!(k.arity() >= 1);
    }
}
