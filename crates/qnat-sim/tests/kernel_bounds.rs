//! Regression tests for the kernel dispatch-boundary bounds checks.
//!
//! These checks used to be `debug_assert!` only, so in release builds an
//! out-of-range qubit silently corrupted amplitudes (or shift-overflowed
//! for q ≥ 64). They are real `assert!`s now; this suite runs in CI under
//! `--release` (`scripts/ci.sh` sim-bench stage) to keep it that way.

use qnat_sim::gate::Gate;
use qnat_sim::math::C64;
use qnat_sim::statevector::StateVector;

fn amps(n_qubits: usize) -> Vec<C64> {
    let mut v = vec![C64::ZERO; 1 << n_qubits];
    v[0] = C64::ONE;
    v
}

#[test]
#[should_panic(expected = "out of range")]
fn mat2_rejects_out_of_range_qubit() {
    let mut a = amps(3);
    qnat_sim::kernels::apply_mat2(&mut a, 3, &Gate::h(0).matrix1());
}

#[test]
#[should_panic(expected = "out of range")]
fn mat2_rejects_shift_overflow_qubit() {
    // q = 64 wraps `1usize << q` to 1 on release builds if unchecked —
    // the very bug the promoted asserts exist to catch.
    let mut a = amps(2);
    qnat_sim::kernels::apply_mat2(&mut a, 64, &Gate::h(0).matrix1());
}

#[test]
#[should_panic(expected = "out of range")]
fn mat4_rejects_out_of_range_qubit() {
    let mut a = amps(2);
    qnat_sim::kernels::apply_mat4(&mut a, 0, 2, &Gate::cx(0, 1).matrix2());
}

#[test]
#[should_panic(expected = "twice")]
fn mat4_rejects_duplicate_qubits() {
    let mut a = amps(2);
    qnat_sim::kernels::apply_mat4(&mut a, 1, 1, &Gate::cx(0, 1).matrix2());
}

#[test]
#[should_panic(expected = "power of two")]
fn kernels_reject_non_power_of_two_slice() {
    let mut a = vec![C64::ONE; 6];
    qnat_sim::kernels::apply_mat2(&mut a, 0, &Gate::h(0).matrix1());
}

#[test]
#[should_panic(expected = "out of range")]
fn prob_one_mass_rejects_out_of_range_qubit() {
    let a = amps(2);
    qnat_sim::kernels::prob_one_mass(&a, 2);
}

#[test]
#[should_panic(expected = "larger than state register")]
fn statevector_run_still_panics_via_typed_error_path() {
    // `run` keeps its panicking contract (it wraps `try_run`'s typed
    // error), and that contract must hold in release builds too.
    let mut psi = StateVector::zero_state(1);
    let mut c = qnat_sim::circuit::Circuit::new(2);
    c.push(Gate::h(1));
    psi.run(&c);
}
