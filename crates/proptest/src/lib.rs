//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map`, range and
//! tuple strategies, `prop_oneof!`, `prop::collection::vec`, the
//! `proptest!` test macro with `#![proptest_config(...)]`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` assertion macros.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the generated inputs' debug representation via the standard assert
//! messages. Case generation is seeded deterministically per test, so
//! failures reproduce.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Namespace mirror of `proptest::prop`.
pub mod prop {
    /// Collection strategies (`prop::collection` subset).
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// The glob-import prelude used by test files.
pub mod prelude {
    pub use crate::strategy::{vec as prop_vec, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests.
///
/// Supported grammar (the subset used in this workspace):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0.0f64..1.0, v in prop::collection::vec(0usize..5, 2..4)) {
///         prop_assert!(x >= 0.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // Seed differs per test name so sibling tests explore
                // different streams, but is stable across runs.
                let mut __rng = $crate::test_runner::rng_for(stringify!($name));
                for __case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )*
                    // prop_assume! returns from this closure to skip the
                    // rest of a rejected case.
                    let mut __case_fn = || { $body };
                    __case_fn();
                }
            }
        )*
    };
}

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in -2.0f64..2.0, n in 1usize..5) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn tuples_and_maps_compose(pair in (0usize..3, -1.0f64..1.0).prop_map(|(q, a)| (q * 2, a.abs()))) {
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!(pair.1 >= 0.0);
        }

        #[test]
        fn vec_strategy_obeys_size(v in prop::collection::vec(0usize..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn oneof_covers_arms(x in prop_oneof![0usize..1, 5usize..6]) {
            prop_assert!(x == 0 || x == 5);
        }

        #[test]
        fn assume_skips_cases(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
