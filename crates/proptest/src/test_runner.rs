//! Test configuration and the deterministic case RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies during generation.
pub type TestRng = StdRng;

/// Per-test configuration (`proptest::test_runner::ProptestConfig` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Builds the deterministic per-test RNG: a stable FNV-1a hash of the test
/// name seeds the stream, so each property explores its own (reproducible)
/// sequence.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}
