//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn DynStrategy<Value = V>>;

/// Object-safe mirror of [`Strategy`] (no generic methods).
pub trait DynStrategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;

    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.as_ref().generate_dyn(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased alternatives ([`crate::prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

numeric_range_strategy!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Length specification for [`vec`]: a fixed size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec`s of values from an element strategy
/// (`prop::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
