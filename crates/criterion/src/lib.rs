//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this minimal harness
//! supports the API subset the workspace benches use: [`Criterion`] with
//! `bench_function` / `bench_with_input` / `benchmark_group`,
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros. Instead of rigorous
//! statistics it reports the median of a small fixed number of timed
//! batches — enough to compare orders of magnitude, not to detect
//! single-digit-percent regressions.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Names one case of a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A compound id `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id carrying only the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to bench closures; times the workload.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the total time and iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup, then a few timed batches sized so the fastest
        // workloads still accumulate measurable time.
        black_box(f());
        let probe = Instant::now();
        black_box(f());
        let once = probe.elapsed();
        let per_batch = if once < Duration::from_micros(50) {
            (Duration::from_millis(2).as_nanos() / once.as_nanos().max(1)) as u64
        } else {
            1
        }
        .max(1);
        const BATCHES: u64 = 5;
        let start = Instant::now();
        for _ in 0..BATCHES * per_batch {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = BATCHES * per_batch;
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("{label:50} (no measurement)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() as f64 / self.iters as f64;
        println!("{label:50} {:>12.2} ns/iter", per_iter);
    }
}

/// Top-level benchmark registry (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Benches a single named function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Benches a function against one input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        b.report(&id.label);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benches a named function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        b.report(&format!("{}/{name}", self.name));
        self
    }

    /// Benches a function against one input value within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function (`criterion_group!` subset).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main` (`criterion_main!` subset).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_returns() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_function("f", |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        g.finish();
    }
}
