//! The HTTP front door: a bounded accept/worker loop over one
//! [`ServeEngine`], serving **persistent (keep-alive) connections**.
//!
//! ## Endpoints
//!
//! | route | verb | behaviour |
//! |---|---|---|
//! | `/v1/jobs` | POST | submit `{job, lane}` → `{ticket}`; 400 bad JSON, 429 queue full, 503 shed/stopping |
//! | `/v1/jobs/stream` | POST | chunked streaming submit: one JSON line per `{job, lane}`, one connection → `{results: [...]}` with per-line tickets or typed refusals |
//! | `/v1/jobs/{ticket}` | GET | non-blocking poll; 200 ready, 202 queued/running, 404 unknown, 503 breaker/eviction |
//! | `/v1/jobs/{ticket}/wait` | GET | block until ready via `ServeEngine::wait_timeout` over the budget; 504 on deadline |
//! | `/v1/stream` | GET | chunked feed of every completion, from `subscribe` |
//! | `/healthz` | GET | lane depths, engine counters + load, breaker states, transport overload counters; plus a `fleet` section when bound with one |
//!
//! ## Connection lifecycle
//!
//! A connection serves many requests (HTTP/1.1 keep-alive) until the
//! client sends `Connection: close`, the idle window between requests
//! expires, the per-connection request cap is reached (the final
//! response advertises `Connection: close`), a request is malformed
//! (400/408 then close — framing can no longer be trusted), or the
//! server begins draining. Each request re-arms a fresh
//! [`DeadlineBudget`]: the time spent *reading* the request counts
//! against it (see below), and `/wait` hands the remainder to
//! `ServeEngine::wait_timeout`.
//!
//! ## Slow-loris guard
//!
//! Per-read socket timeouts alone cannot bound a byte-at-a-time client
//! — every byte arrives "in time" while the worker is held forever.
//! [`GuardedStream`] bounds the **total** header+body read time per
//! request: once the first byte of a request arrives, a wall-clock
//! deadline of `request_deadline_ms` covers every subsequent read, and
//! exhausting it surfaces as a timeout → 408 → close. Between requests
//! the same wrapper enforces `idle_timeout_ms` (expiry closes the
//! connection silently — no response is owed for a request never
//! started) and polls in short slices so a draining server reclaims
//! idle workers promptly.
//!
//! ## Overload shedding
//!
//! One accept thread feeds a **bounded** channel of connections drained
//! by a fixed pool of HTTP workers. The accept thread never blocks:
//! when the global connection gauge (queued + in-service) reaches
//! `max_connections`, or the hand-off queue is full, the excess
//! connection is answered `503` inline and closed — counted in
//! [`TransportMetrics`] so `/healthz` shows overload as it happens.
//!
//! [`TransportServer::shutdown`] is the graceful path: stop accepting,
//! let the workers finish every queued connection, then drain the
//! engine so in-flight tickets complete. Dropping the server instead
//! discards queued engine jobs (the engine's `Drop` semantics).

use crate::http::{
    finish_chunks, read_request, write_chunk, write_chunked_head, write_response_conn, Request,
};
use crate::wire;
use qnat_core::health::DeadlineBudget;
use qnat_json::Json;
use qnat_serve::engine::{Lane, Poll, ServeEngine, Ticket, WaitError};
use std::io::{self, BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Front-door tuning knobs.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// HTTP worker threads draining the accept queue (clamped to ≥ 1).
    /// A keep-alive connection occupies its worker for the connection's
    /// lifetime, so this is also the concurrent-connection service
    /// capacity.
    pub http_workers: usize,
    /// Bounded accept-queue depth (clamped to ≥ 1); a full queue sheds
    /// the connection with 503 instead of blocking the accept thread.
    pub accept_queue: usize,
    /// Per-request deadline budget in milliseconds: bounds the total
    /// header+body read time (slow-loris guard → 408), the handler's
    /// blocking window (`/wait` → 504) and the response write.
    pub request_deadline_ms: u64,
    /// Keep-alive idle window in milliseconds: how long a connection may
    /// sit between requests before the server closes it.
    pub idle_timeout_ms: u64,
    /// Requests served per connection before the server closes it (the
    /// final response advertises `Connection: close`). Clamped to ≥ 1.
    pub max_requests_per_connection: u64,
    /// Global connection slots (queued + in-service). An accept beyond
    /// this is answered 503 and closed immediately.
    pub max_connections: usize,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            http_workers: 4,
            accept_queue: 64,
            request_deadline_ms: 10_000,
            idle_timeout_ms: 5_000,
            max_requests_per_connection: 1_024,
            max_connections: 256,
        }
    }
}

/// Shared transport-level counters — the observability half of the
/// overload contract. Gauges and counters are updated lock-free by the
/// accept thread and every HTTP worker; [`TransportMetrics::snapshot`]
/// reads them for `/healthz`.
#[derive(Debug, Default)]
pub struct TransportMetrics {
    active_connections: AtomicU64,
    connections_accepted: AtomicU64,
    connections_shed: AtomicU64,
    keepalive_reuses: AtomicU64,
    requests_served: AtomicU64,
    timeouts_408: AtomicU64,
    bad_requests_400: AtomicU64,
    rejected_429: AtomicU64,
    unavailable_503: AtomicU64,
}

/// A point-in-time copy of [`TransportMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportSnapshot {
    /// Connections currently admitted (queued for a worker or being
    /// served). Returns to zero once every connection drains.
    pub active_connections: u64,
    /// Connections admitted past the limit check, ever.
    pub connections_accepted: u64,
    /// Connections answered 503-and-close at the accept edge (connection
    /// limit or full hand-off queue).
    pub connections_shed: u64,
    /// Requests served beyond the first on their connection — the
    /// keep-alive reuse count.
    pub keepalive_reuses: u64,
    /// HTTP responses written (streamed responses count once).
    pub requests_served: u64,
    /// 408s answered (slow-loris / read-deadline expiries).
    pub timeouts_408: u64,
    /// 400s answered (malformed requests; streamed-submit items
    /// included).
    pub bad_requests_400: u64,
    /// 429s issued (queue-full refusals; streamed-submit items
    /// included).
    pub rejected_429: u64,
    /// 503s issued (shed/stopping/breaker refusals and accept-edge
    /// sheds; streamed-submit items included).
    pub unavailable_503: u64,
}

impl TransportMetrics {
    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> TransportSnapshot {
        TransportSnapshot {
            active_connections: self.active_connections.load(Ordering::SeqCst),
            connections_accepted: self.connections_accepted.load(Ordering::SeqCst),
            connections_shed: self.connections_shed.load(Ordering::SeqCst),
            keepalive_reuses: self.keepalive_reuses.load(Ordering::SeqCst),
            requests_served: self.requests_served.load(Ordering::SeqCst),
            timeouts_408: self.timeouts_408.load(Ordering::SeqCst),
            bad_requests_400: self.bad_requests_400.load(Ordering::SeqCst),
            rejected_429: self.rejected_429.load(Ordering::SeqCst),
            unavailable_503: self.unavailable_503.load(Ordering::SeqCst),
        }
    }

    fn count_status(&self, status: u16) {
        match status {
            408 => self.timeouts_408.fetch_add(1, Ordering::SeqCst),
            400 => self.bad_requests_400.fetch_add(1, Ordering::SeqCst),
            429 => self.rejected_429.fetch_add(1, Ordering::SeqCst),
            503 => self.unavailable_503.fetch_add(1, Ordering::SeqCst),
            _ => 0,
        };
    }
}

/// An extra `/healthz` section provider — e.g. the fleet router's health
/// view when the front door sits on a fleet, or the calibration
/// tracker's per-device estimates (see
/// [`TransportServer::bind_with_sections`]).
pub type HealthSection = Arc<dyn Fn() -> Json + Send + Sync>;

/// A running front door bound to a TCP address.
pub struct TransportServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    metrics: Arc<TransportMetrics>,
    /// `Some` until [`TransportServer::shutdown`] takes it to drain.
    engine: Option<Arc<ServeEngine>>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl TransportServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept and worker threads over `engine`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(
        addr: &str,
        config: TransportConfig,
        engine: ServeEngine,
    ) -> io::Result<TransportServer> {
        Self::bind_with_sections(addr, config, engine, Vec::new())
    }

    /// [`TransportServer::bind`] plus an extra `/healthz` section: the
    /// provider's document is merged into the health body under the
    /// `"fleet"` key. Pair it with
    /// [`wire::fleet_health_to_json`] over a shared `FleetRouter` to
    /// expose quarantine flags, per-device load, breakers and noise
    /// estimates through the front door.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_with_health(
        addr: &str,
        config: TransportConfig,
        engine: ServeEngine,
        health_section: Option<HealthSection>,
    ) -> io::Result<TransportServer> {
        let sections = health_section
            .into_iter()
            .map(|s| ("fleet".to_owned(), s))
            .collect();
        Self::bind_with_sections(addr, config, engine, sections)
    }

    /// [`TransportServer::bind`] plus any number of named `/healthz`
    /// sections: each provider's document is merged into the health body
    /// under its key, in the order given. The fleet front door pairs a
    /// `"fleet"` section ([`wire::fleet_health_to_json`]) with a
    /// `"calibration"` section ([`wire::calibration_health_to_json`]) so
    /// operators see routing state and the learned drift estimates in
    /// one probe.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_with_sections(
        addr: &str,
        config: TransportConfig,
        engine: ServeEngine,
        sections: Vec<(String, HealthSection)>,
    ) -> io::Result<TransportServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let engine = Arc::new(engine);
        let metrics = Arc::new(TransportMetrics::default());
        let sections: Arc<[(String, HealthSection)]> = sections.into();

        let (tx, rx) = sync_channel::<TcpStream>(config.accept_queue.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let accept_stop = Arc::clone(&stop);
        let accept_metrics = Arc::clone(&metrics);
        let max_connections = config.max_connections.max(1) as u64;
        let accept_handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break; // the shutdown poke lands here
                }
                let Ok(stream) = stream else { continue };
                // Keep-alive round trips must not sit out Nagle's ACK
                // wait between a response and the next request.
                let _ = stream.set_nodelay(true);
                // Single accept thread: the load check cannot race
                // another admission, only early worker decrements —
                // which err on the side of admitting.
                if accept_metrics.active_connections.load(Ordering::SeqCst) >= max_connections {
                    shed_connection(stream, &accept_metrics);
                    continue;
                }
                // Count the admission *before* the handoff: a worker can
                // serve the whole request the moment try_send returns,
                // so incrementing afterwards lets an observer see the
                // response while connections_accepted still excludes it.
                accept_metrics
                    .active_connections
                    .fetch_add(1, Ordering::SeqCst);
                accept_metrics
                    .connections_accepted
                    .fetch_add(1, Ordering::SeqCst);
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        accept_metrics
                            .active_connections
                            .fetch_sub(1, Ordering::SeqCst);
                        accept_metrics
                            .connections_accepted
                            .fetch_sub(1, Ordering::SeqCst);
                        shed_connection(stream, &accept_metrics);
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        accept_metrics
                            .active_connections
                            .fetch_sub(1, Ordering::SeqCst);
                        accept_metrics
                            .connections_accepted
                            .fetch_sub(1, Ordering::SeqCst);
                        break;
                    }
                }
            }
            // tx drops here: workers drain what's queued, then exit.
        });

        let worker_handles = (0..config.http_workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                let config = config.clone();
                let sections = Arc::clone(&sections);
                let metrics = Arc::clone(&metrics);
                std::thread::spawn(move || loop {
                    let conn = {
                        let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
                        guard.recv()
                    };
                    match conn {
                        Ok(stream) => {
                            handle_connection(
                                stream,
                                &engine,
                                &config,
                                &stop,
                                &sections,
                                &metrics,
                            );
                            metrics.active_connections.fetch_sub(1, Ordering::SeqCst);
                        }
                        Err(_) => break, // accept loop gone and queue drained
                    }
                })
            })
            .collect();

        Ok(TransportServer {
            local_addr,
            stop,
            metrics,
            engine: Some(engine),
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine behind the door (tests assert against its stats and
    /// seeds).
    pub fn engine(&self) -> &ServeEngine {
        self.engine
            .as_deref()
            .expect("engine lives until shutdown takes it")
    }

    /// A snapshot of the transport-level counters (also served under
    /// `/healthz`'s `transport` section).
    pub fn metrics(&self) -> TransportSnapshot {
        self.metrics.snapshot()
    }

    /// Graceful drain: stop accepting connections, finish every queued
    /// HTTP request, then drain the engine so every in-flight ticket
    /// completes. Returns the engine's final stats.
    ///
    /// # Panics
    ///
    /// Panics if an engine handle still lives outside the server (the
    /// server is the engine's owner by construction).
    pub fn shutdown(mut self) -> qnat_serve::engine::EngineStats {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the blocking accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        let arc = self.engine.take().expect("shutdown runs once");
        let engine = Arc::try_unwrap(arc)
            .unwrap_or_else(|_| panic!("transport server owns the only engine handle"));
        engine.drain()
    }
}

impl Drop for TransportServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        // The engine drops with the server: queued jobs are discarded.
    }
}

/// Answers 503 inline from the accept thread (bounded by a short write
/// timeout so a dead peer cannot stall accepts) and closes.
fn shed_connection(mut stream: TcpStream, metrics: &TransportMetrics) {
    metrics.connections_shed.fetch_add(1, Ordering::SeqCst);
    metrics.count_status(503);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let body = error_body("overloaded", "connection limit reached").to_json();
    let _ = write_response_conn(&mut stream, 503, &body, true);
}

/// How long the guarded reader sleeps per poll slice while waiting for
/// bytes — the bound on how stale its stop-flag / deadline checks can
/// be.
const READ_SLICE_MS: u64 = 100;

/// The slow-loris guard: a `Read` wrapper over the connection's read
/// half that distinguishes the **idle** phase (between requests, bounded
/// by the keep-alive idle window) from the **active** phase (inside a
/// request, bounded by a wall-clock deadline covering the *total*
/// header+body read time). Socket timeouts are re-armed per poll slice,
/// so a byte-at-a-time client exhausts the request deadline instead of
/// resetting it with every byte.
struct GuardedStream {
    inner: TcpStream,
    stop: Arc<AtomicBool>,
    idle_ms: u64,
    request_ms: u64,
    phase: Phase,
}

enum Phase {
    /// Waiting for the first byte of the next request.
    Idle {
        /// When the keep-alive idle window expires.
        deadline: Instant,
    },
    /// Inside a request: every read shares one wall-clock deadline.
    Active {
        /// When the request's first byte arrived.
        started: Instant,
    },
}

impl GuardedStream {
    fn new(inner: TcpStream, stop: Arc<AtomicBool>, idle_ms: u64, request_ms: u64) -> Self {
        GuardedStream {
            inner,
            stop,
            idle_ms,
            request_ms,
            phase: Phase::Idle {
                deadline: Instant::now() + Duration::from_millis(idle_ms),
            },
        }
    }

    /// Re-enters the idle phase ahead of the next request on this
    /// connection.
    fn begin_request(&mut self) {
        self.phase = Phase::Idle {
            deadline: Instant::now() + Duration::from_millis(self.idle_ms),
        };
    }

    /// Milliseconds spent inside the current request so far (0 while
    /// idle) — charged against the request's [`DeadlineBudget`].
    fn request_elapsed_ms(&self) -> u64 {
        match self.phase {
            Phase::Idle { .. } => 0,
            Phase::Active { started } => {
                u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX)
            }
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

impl Read for GuardedStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.phase {
                Phase::Idle { deadline } => {
                    // A draining server or an expired idle window reads
                    // as clean EOF: the connection closes without a
                    // response, because no request was started.
                    if self.stop.load(Ordering::SeqCst) || Instant::now() >= deadline {
                        return Ok(0);
                    }
                    let left = deadline.saturating_duration_since(Instant::now());
                    let slice = left.min(Duration::from_millis(READ_SLICE_MS)).max(
                        Duration::from_millis(1),
                    );
                    let _ = self.inner.set_read_timeout(Some(slice));
                    match self.inner.read(buf) {
                        Ok(0) => return Ok(0),
                        Ok(n) => {
                            self.phase = Phase::Active {
                                started: Instant::now(),
                            };
                            return Ok(n);
                        }
                        Err(e) if is_timeout(&e) => continue,
                        Err(e) => return Err(e),
                    }
                }
                Phase::Active { started } => {
                    let elapsed = started.elapsed();
                    let deadline = Duration::from_millis(self.request_ms);
                    if elapsed >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "request read deadline exhausted",
                        ));
                    }
                    let left = deadline - elapsed;
                    let slice = left.min(Duration::from_millis(READ_SLICE_MS)).max(
                        Duration::from_millis(1),
                    );
                    let _ = self.inner.set_read_timeout(Some(slice));
                    match self.inner.read(buf) {
                        Ok(n) => return Ok(n),
                        Err(e) if is_timeout(&e) => continue,
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }
}

/// Arms the write half for a response, drawing on the request budget
/// (floored so an exhausted budget still gets a beat to flush the
/// error response instead of guaranteeing failure).
fn arm_write(stream: &TcpStream, budget: &DeadlineBudget) {
    let left = Duration::from_millis(budget.remaining_ms().max(250));
    let _ = stream.set_write_timeout(Some(left));
}

fn respond(
    stream: &mut TcpStream,
    metrics: &TransportMetrics,
    status: u16,
    body: &Json,
    close: bool,
) {
    metrics.requests_served.fetch_add(1, Ordering::SeqCst);
    metrics.count_status(status);
    let _ = write_response_conn(stream, status, &body.to_json(), close);
}

fn error_body(kind: &str, message: impl Into<String>) -> Json {
    Json::obj([
        ("kind", Json::Str(kind.into())),
        ("message", Json::Str(message.into())),
    ])
}

fn handle_connection(
    stream: TcpStream,
    engine: &ServeEngine,
    config: &TransportConfig,
    stop: &Arc<AtomicBool>,
    sections: &[(String, HealthSection)],
    metrics: &TransportMetrics,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(GuardedStream::new(
        read_half,
        Arc::clone(stop),
        config.idle_timeout_ms.max(1),
        config.request_deadline_ms.max(1),
    ));
    let mut stream = stream;
    let max_requests = config.max_requests_per_connection.max(1);
    let mut served = 0u64;

    loop {
        reader.get_mut().begin_request();
        let request = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean close / idle expiry between requests
            Err(e) => {
                // Mid-request failure: answer if the wire allows, then
                // close — the framing can no longer be trusted.
                let status = if e.timed_out { 408 } else { 400 };
                let budget = DeadlineBudget::new(config.request_deadline_ms);
                arm_write(&stream, &budget);
                respond(
                    &mut stream,
                    metrics,
                    status,
                    &error_body("bad_request", e.reason),
                    true,
                );
                return;
            }
        };
        served += 1;
        if served > 1 {
            metrics.keepalive_reuses.fetch_add(1, Ordering::SeqCst);
        }

        // Fresh per-request budget, already charged for the time the
        // request spent arriving (the slow-loris guard's clock).
        let budget = DeadlineBudget::new(config.request_deadline_ms);
        let read_ms = reader.get_mut().request_elapsed_ms();
        let _ = budget.try_consume(read_ms.min(budget.remaining_ms()));
        arm_write(&stream, &budget);

        // The last allowed request and a draining server both advertise
        // the close so a well-behaved client reconnects cleanly.
        let close =
            request.wants_close() || served >= max_requests || stop.load(Ordering::SeqCst);

        match route(&request) {
            Route::Submit => handle_submit(&mut stream, engine, &request, metrics, close),
            Route::SubmitStream => {
                handle_submit_stream(&mut stream, engine, &request, metrics, close)
            }
            Route::Mitigate => {
                handle_mitigate(&mut stream, engine, &request, &budget, metrics, close)
            }
            Route::Poll(ticket) => handle_poll(&mut stream, engine, ticket, metrics, close),
            Route::Wait(ticket) => {
                handle_wait(&mut stream, engine, &budget, ticket, metrics, close)
            }
            Route::Stream => {
                // The chunked completion feed ends the connection.
                handle_stream(&mut stream, engine, &request, &budget, stop, metrics);
                return;
            }
            Route::Health => {
                handle_health(&mut stream, engine, stop, sections, metrics, close)
            }
            Route::MethodNotAllowed => respond(
                &mut stream,
                metrics,
                405,
                &error_body(
                    "method_not_allowed",
                    format!("{} {}", request.method, request.path),
                ),
                close,
            ),
            Route::NotFound => respond(
                &mut stream,
                metrics,
                404,
                &error_body("not_found", request.path.clone()),
                close,
            ),
        }
        if close {
            return;
        }
    }
}

enum Route {
    Submit,
    SubmitStream,
    Mitigate,
    Poll(Ticket),
    Wait(Ticket),
    Stream,
    Health,
    MethodNotAllowed,
    NotFound,
}

fn route(req: &Request) -> Route {
    let path = req.path.as_str();
    match path {
        "/v1/jobs" => {
            return if req.method == "POST" {
                Route::Submit
            } else {
                Route::MethodNotAllowed
            };
        }
        "/v1/jobs/stream" => {
            return if req.method == "POST" {
                Route::SubmitStream
            } else {
                Route::MethodNotAllowed
            };
        }
        "/v1/mitigate" => {
            return if req.method == "POST" {
                Route::Mitigate
            } else {
                Route::MethodNotAllowed
            };
        }
        "/v1/stream" => {
            return if req.method == "GET" {
                Route::Stream
            } else {
                Route::MethodNotAllowed
            };
        }
        "/healthz" => {
            return if req.method == "GET" {
                Route::Health
            } else {
                Route::MethodNotAllowed
            };
        }
        _ => {}
    }
    if let Some(rest) = path.strip_prefix("/v1/jobs/") {
        let (ticket_str, wait) = match rest.strip_suffix("/wait") {
            Some(t) => (t, true),
            None => (rest, false),
        };
        if let Ok(ticket) = ticket_str.parse::<Ticket>() {
            return if req.method != "GET" {
                Route::MethodNotAllowed
            } else if wait {
                Route::Wait(ticket)
            } else {
                Route::Poll(ticket)
            };
        }
    }
    Route::NotFound
}

fn handle_submit(
    stream: &mut TcpStream,
    engine: &ServeEngine,
    req: &Request,
    metrics: &TransportMetrics,
    close: bool,
) {
    let parsed = wire::parse_body(&req.body).and_then(|v| wire::submit_request_from_json(&v));
    let (job, lane) = match parsed {
        Ok(p) => p,
        Err(e) => {
            respond(stream, metrics, 400, &error_body("bad_request", e.reason), close);
            return;
        }
    };
    match engine.submit(job, lane) {
        Ok(ticket) => respond(
            stream,
            metrics,
            200,
            &Json::obj([
                ("ticket", Json::Num(ticket as f64)),
                ("lane", Json::Str(wire::lane_to_str(lane).into())),
            ]),
            close,
        ),
        Err(e) => respond(
            stream,
            metrics,
            wire::submit_error_status(&e),
            &wire::submit_error_to_json(&e),
            close,
        ),
    }
}

/// The streaming batch submit: the (typically chunked) body carries one
/// JSON submit request per line; every line is answered in order inside
/// one `{results: [...]}` document — accepted lines with their ticket,
/// refused lines with the typed refusal and the status it would have
/// earned as a lone request. Per-item refusals bump the transport's
/// 400/429/503 counters so overload stays observable even when it
/// arrives in bulk.
fn handle_submit_stream(
    stream: &mut TcpStream,
    engine: &ServeEngine,
    req: &Request,
    metrics: &TransportMetrics,
    close: bool,
) {
    let body = match std::str::from_utf8(&req.body) {
        Ok(b) => b,
        Err(_) => {
            respond(
                stream,
                metrics,
                400,
                &error_body("bad_request", "streamed submit body is not UTF-8"),
                close,
            );
            return;
        }
    };
    let mut results = Vec::new();
    let mut accepted = 0u64;
    let mut refused = 0u64;
    for line in body.lines().filter(|l| !l.trim().is_empty()) {
        let parsed = wire::parse_body(line.as_bytes())
            .and_then(|v| wire::submit_request_from_json(&v));
        let item = match parsed {
            Ok((job, lane)) => match engine.submit(job, lane) {
                Ok(ticket) => {
                    accepted += 1;
                    Json::obj([
                        ("ticket", Json::Num(ticket as f64)),
                        ("lane", Json::Str(wire::lane_to_str(lane).into())),
                    ])
                }
                Err(e) => {
                    refused += 1;
                    let status = wire::submit_error_status(&e);
                    metrics.count_status(status);
                    Json::obj([
                        ("status", Json::Num(status as f64)),
                        ("error", wire::submit_error_to_json(&e)),
                    ])
                }
            },
            Err(e) => {
                refused += 1;
                metrics.count_status(400);
                Json::obj([
                    ("status", Json::Num(400.0)),
                    ("error", error_body("bad_request", e.reason)),
                ])
            }
        };
        results.push(item);
    }
    respond(
        stream,
        metrics,
        200,
        &Json::obj([
            ("results", Json::Arr(results)),
            ("accepted", Json::Num(accepted as f64)),
            ("refused", Json::Num(refused as f64)),
        ]),
        close,
    );
}

/// The mitigated-sweep front door: one request fans out into one folded
/// sub-run per noise scale on the bulk lane
/// ([`qnat_serve::submit_mitigated`]), blocks on the whole sweep within
/// the request's remaining deadline budget, and answers with the single
/// aggregated result. Status contract: sweep-shape errors → 400, engine
/// refusals keep the submit contract (429/503), a failed sub-run keeps
/// its backend error's class (503/500), mitigation-math rejections →
/// 500 with the typed body, budget exhausted → 504.
fn handle_mitigate(
    stream: &mut TcpStream,
    engine: &ServeEngine,
    req: &Request,
    budget: &DeadlineBudget,
    metrics: &TransportMetrics,
    close: bool,
) {
    let parsed =
        wire::parse_body(&req.body).and_then(|v| wire::mitigate_request_from_json(&v));
    let (job, seed) = match parsed {
        Ok(p) => p,
        Err(e) => {
            respond(stream, metrics, 400, &error_body("bad_request", e.reason), close);
            return;
        }
    };
    let sweep = match qnat_serve::submit_mitigated(engine, &job, seed) {
        Ok(s) => s,
        Err(e) => {
            respond(
                stream,
                metrics,
                wire::mitigated_submit_error_status(&e),
                &wire::mitigated_submit_error_to_json(&e),
                close,
            );
            return;
        }
    };
    let window_ms = budget.remaining_ms();
    let started = Instant::now();
    match sweep.wait_timeout(engine, window_ms) {
        Ok(outcome) => {
            let elapsed = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
            let _ = budget.try_consume(elapsed.min(budget.remaining_ms()));
            arm_write(stream, budget);
            let status = match &outcome.mitigated {
                Ok(_) => 200,
                Err(e) => wire::mitigation_error_status(e),
            };
            respond(stream, metrics, status, &wire::mitigated_outcome_to_json(&outcome), close);
        }
        Err(WaitError::Unknown) => {
            respond(
                stream,
                metrics,
                404,
                &Json::obj([("status", Json::Str("unknown".into()))]),
                close,
            );
        }
        Err(WaitError::Timeout { waited_ms }) => {
            let _ = budget.try_consume(waited_ms.min(budget.remaining_ms()));
            respond(
                stream,
                metrics,
                504,
                &error_body("deadline", "mitigated sweep not ready in budget"),
                close,
            );
        }
    }
}

/// The `{status, outcome}` body and status code for a ready outcome:
/// 200 for success, 503/500 by error class (see
/// [`wire::backend_error_status`]).
fn ready_response(outcome: &qnat_serve::engine::JobOutcome) -> (u16, Json) {
    let status = match &outcome.result {
        Ok(_) => 200,
        Err(e) => wire::backend_error_status(e),
    };
    let body = Json::obj([
        ("status", Json::Str("ready".into())),
        ("outcome", wire::outcome_to_json(outcome)),
    ]);
    (status, body)
}

fn handle_poll(
    stream: &mut TcpStream,
    engine: &ServeEngine,
    ticket: Ticket,
    metrics: &TransportMetrics,
    close: bool,
) {
    match engine.poll(ticket) {
        Poll::Ready(outcome) => {
            let (status, body) = ready_response(&outcome);
            respond(stream, metrics, status, &body, close);
        }
        Poll::Queued => respond(
            stream,
            metrics,
            202,
            &Json::obj([("status", Json::Str("queued".into()))]),
            close,
        ),
        Poll::Running => respond(
            stream,
            metrics,
            202,
            &Json::obj([("status", Json::Str("running".into()))]),
            close,
        ),
        Poll::Unknown => respond(
            stream,
            metrics,
            404,
            &Json::obj([("status", Json::Str("unknown".into()))]),
            close,
        ),
    }
}

/// Blocks until the ticket is ready through the engine's own condvar
/// ([`ServeEngine::wait_timeout`]) bounded by the request's remaining
/// budget — no poll loop, so completions wake the request immediately
/// and an exhausted budget surfaces as a typed engine timeout → 504.
fn handle_wait(
    stream: &mut TcpStream,
    engine: &ServeEngine,
    budget: &DeadlineBudget,
    ticket: Ticket,
    metrics: &TransportMetrics,
    close: bool,
) {
    let window_ms = budget.remaining_ms();
    let started = Instant::now();
    match engine.wait_timeout(ticket, window_ms) {
        Ok(outcome) => {
            // The wait consumed real time; charge the budget before
            // re-arming the socket for the response write.
            let elapsed = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
            let _ = budget.try_consume(elapsed.min(budget.remaining_ms()));
            arm_write(stream, budget);
            let (status, body) = ready_response(&outcome);
            respond(stream, metrics, status, &body, close);
        }
        Err(WaitError::Unknown) => {
            respond(
                stream,
                metrics,
                404,
                &Json::obj([("status", Json::Str("unknown".into()))]),
                close,
            );
        }
        Err(WaitError::Timeout { waited_ms }) => {
            let _ = budget.try_consume(waited_ms.min(budget.remaining_ms()));
            respond(
                stream,
                metrics,
                504,
                &error_body("deadline", format!("ticket {ticket} not ready in budget")),
                close,
            );
        }
    }
}

/// Streams completions as chunked JSON lines. Ends when the requested
/// `?max=N` completions were delivered, the engine disconnects, the
/// server stops, or the connection budget runs out. The connection
/// closes afterwards (the response has no length framing to recover
/// from).
fn handle_stream(
    stream: &mut TcpStream,
    engine: &ServeEngine,
    req: &Request,
    budget: &DeadlineBudget,
    stop: &AtomicBool,
    metrics: &TransportMetrics,
) {
    let max: Option<u64> = req.query_param("max").and_then(|v| v.parse().ok());
    let rx = engine.subscribe();
    // The stream outlives the per-request deadline by design: its writes
    // should only fail when the client goes away, not mid-healthy-feed.
    let _ = stream.set_write_timeout(Some(Duration::from_millis(
        budget.remaining_ms().max(1000),
    )));
    metrics.requests_served.fetch_add(1, Ordering::SeqCst);
    if write_chunked_head(stream, 200).is_err() {
        return;
    }
    let mut sent = 0u64;
    loop {
        if stop.load(Ordering::SeqCst) || max.is_some_and(|m| sent >= m) {
            break;
        }
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok((ticket, result)) => {
                let line = Json::obj([
                    ("ticket", Json::Num(ticket as f64)),
                    ("result", wire::result_to_json(&result)),
                ])
                .to_json();
                if write_chunk(stream, &format!("{line}\n")).is_err() {
                    return; // client hung up
                }
                sent += 1;
            }
            Err(RecvTimeoutError::Timeout) => {
                if !budget.try_consume(50) {
                    break; // connection budget exhausted while idle
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    let _ = finish_chunks(stream);
}

fn handle_health(
    stream: &mut TcpStream,
    engine: &ServeEngine,
    stop: &AtomicBool,
    sections: &[(String, HealthSection)],
    metrics: &TransportMetrics,
    close: bool,
) {
    let stats = engine.stats();
    let load = engine.load();
    let registry = engine.health_registry();
    // One registry pass: every registered breaker appears, atomically.
    let breakers = wire::obj_from(
        registry
            .snapshots()
            .into_iter()
            .map(|(key, snap)| (key, wire::breaker_snapshot_to_json(&snap))),
    );
    let mut body = Json::obj([
        (
            "status",
            Json::Str(if stop.load(Ordering::SeqCst) {
                "draining".into()
            } else {
                "ok".into()
            }),
        ),
        (
            "lanes",
            Json::obj([
                (
                    "interactive",
                    Json::Num(engine.queue_depth(Lane::Interactive) as f64),
                ),
                ("bulk", Json::Num(engine.queue_depth(Lane::Bulk) as f64)),
            ]),
        ),
        (
            "load",
            Json::obj([
                ("queued_interactive", Json::Num(load.queued_interactive as f64)),
                ("queued_bulk", Json::Num(load.queued_bulk as f64)),
                ("running", Json::Num(load.running as f64)),
            ]),
        ),
        (
            "stats",
            Json::obj([
                ("submitted", Json::Num(stats.submitted as f64)),
                ("completed", Json::Num(stats.completed as f64)),
                ("completed_ok", Json::Num(stats.completed_ok as f64)),
                ("completed_err", Json::Num(stats.completed_err as f64)),
                ("rejected_full", Json::Num(stats.rejected_full as f64)),
                ("shed_oldest", Json::Num(stats.shed_oldest as f64)),
                ("shed_admission", Json::Num(stats.shed_admission as f64)),
                ("fast_failed", Json::Num(stats.fast_failed as f64)),
            ]),
        ),
        ("transport", wire::transport_snapshot_to_json(&metrics.snapshot())),
        ("breakers", breakers),
    ]);
    if let Json::Obj(map) = &mut body {
        for (key, section) in sections {
            map.insert(key.clone(), section());
        }
    }
    respond(stream, metrics, 200, &body, close);
}
