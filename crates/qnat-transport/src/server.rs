//! The HTTP front door: a bounded accept/worker loop over one
//! [`ServeEngine`].
//!
//! ## Endpoints
//!
//! | route | verb | behaviour |
//! |---|---|---|
//! | `/v1/jobs` | POST | submit `{job, lane}` → `{ticket}`; 400 bad JSON, 429 queue full, 503 shed/stopping |
//! | `/v1/jobs/{ticket}` | GET | non-blocking poll; 200 ready, 202 queued/running, 404 unknown, 503 breaker/eviction |
//! | `/v1/jobs/{ticket}/wait` | GET | block until ready via `ServeEngine::wait_timeout` over the budget; 504 on deadline |
//! | `/v1/stream` | GET | chunked feed of every completion, from `subscribe` |
//! | `/healthz` | GET | lane depths, engine counters, breaker states; plus a `fleet` section when bound with one |
//!
//! ## Threading and shutdown
//!
//! One accept thread feeds a **bounded** `sync_channel` of connections;
//! when the queue is full the accept thread itself blocks, which is the
//! transport-level backpressure (the kernel listen backlog absorbs the
//! burst). A fixed pool of HTTP workers drains the queue. Every
//! connection gets a fresh [`DeadlineBudget`]: socket read/write
//! timeouts are derived from its `remaining_ms`, and `/wait` hands the
//! remaining budget to `ServeEngine::wait_timeout` — one budget bounds
//! the whole request no matter where the time goes, with no server-side
//! poll loop.
//!
//! [`TransportServer::shutdown`] is the graceful path: stop accepting,
//! let the workers finish every queued connection, then drain the
//! engine so in-flight tickets complete. Dropping the server instead
//! discards queued engine jobs (the engine's `Drop` semantics).

use crate::http::{
    finish_chunks, read_request, write_chunk, write_chunked_head, write_response, Request,
};
use crate::wire;
use qnat_core::health::DeadlineBudget;
use qnat_json::Json;
use qnat_serve::engine::{Lane, Poll, ServeEngine, Ticket, WaitError};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Front-door tuning knobs.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// HTTP worker threads draining the accept queue (clamped to ≥ 1).
    pub http_workers: usize,
    /// Bounded accept-queue depth (clamped to ≥ 1); a full queue blocks
    /// the accept thread.
    pub accept_queue: usize,
    /// Per-connection deadline budget in milliseconds: socket timeouts
    /// and the `/wait` blocking window all draw from it.
    pub request_deadline_ms: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            http_workers: 4,
            accept_queue: 64,
            request_deadline_ms: 10_000,
        }
    }
}

/// An extra `/healthz` section provider — the fleet router's health view
/// when the front door sits on a fleet (see
/// [`TransportServer::bind_with_health`]).
pub type HealthSection = Arc<dyn Fn() -> Json + Send + Sync>;

/// A running front door bound to a TCP address.
pub struct TransportServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    /// `Some` until [`TransportServer::shutdown`] takes it to drain.
    engine: Option<Arc<ServeEngine>>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl TransportServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept and worker threads over `engine`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(
        addr: &str,
        config: TransportConfig,
        engine: ServeEngine,
    ) -> io::Result<TransportServer> {
        Self::bind_with_health(addr, config, engine, None)
    }

    /// [`TransportServer::bind`] plus an extra `/healthz` section: the
    /// provider's document is merged into the health body under the
    /// `"fleet"` key. Pair it with
    /// [`wire::fleet_health_to_json`] over a shared `FleetRouter` to
    /// expose quarantine flags, per-device load, breakers and noise
    /// estimates through the front door.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_with_health(
        addr: &str,
        config: TransportConfig,
        engine: ServeEngine,
        health_section: Option<HealthSection>,
    ) -> io::Result<TransportServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let engine = Arc::new(engine);

        let (tx, rx) = sync_channel::<TcpStream>(config.accept_queue.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let accept_stop = Arc::clone(&stop);
        let accept_handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break; // the shutdown poke lands here
                }
                let Ok(stream) = stream else { continue };
                if tx.send(stream).is_err() {
                    break;
                }
            }
            // tx drops here: workers drain what's queued, then exit.
        });

        let worker_handles = (0..config.http_workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                let config = config.clone();
                let health_section = health_section.clone();
                std::thread::spawn(move || loop {
                    let conn = {
                        let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
                        guard.recv()
                    };
                    match conn {
                        Ok(stream) => handle_connection(
                            stream,
                            &engine,
                            &config,
                            &stop,
                            health_section.as_ref(),
                        ),
                        Err(_) => break, // accept loop gone and queue drained
                    }
                })
            })
            .collect();

        Ok(TransportServer {
            local_addr,
            stop,
            engine: Some(engine),
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine behind the door (tests assert against its stats and
    /// seeds).
    pub fn engine(&self) -> &ServeEngine {
        self.engine
            .as_deref()
            .expect("engine lives until shutdown takes it")
    }

    /// Graceful drain: stop accepting connections, finish every queued
    /// HTTP request, then drain the engine so every in-flight ticket
    /// completes. Returns the engine's final stats.
    ///
    /// # Panics
    ///
    /// Panics if an engine handle still lives outside the server (the
    /// server is the engine's owner by construction).
    pub fn shutdown(mut self) -> qnat_serve::engine::EngineStats {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the blocking accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        let arc = self.engine.take().expect("shutdown runs once");
        let engine = Arc::try_unwrap(arc)
            .unwrap_or_else(|_| panic!("transport server owns the only engine handle"));
        engine.drain()
    }
}

impl Drop for TransportServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        // The engine drops with the server: queued jobs are discarded.
    }
}

/// Applies the budget's remaining time as the socket's read/write
/// timeouts; zero budget becomes the 1 ms floor (the next read then
/// times out essentially immediately instead of never).
fn arm_socket(stream: &TcpStream, budget: &DeadlineBudget) {
    let left = Duration::from_millis(budget.remaining_ms().max(1));
    let _ = stream.set_read_timeout(Some(left));
    let _ = stream.set_write_timeout(Some(left));
}

fn respond(stream: &mut TcpStream, status: u16, body: &Json) {
    let _ = write_response(stream, status, &body.to_json());
}

fn error_body(kind: &str, message: impl Into<String>) -> Json {
    Json::obj([
        ("kind", Json::Str(kind.into())),
        ("message", Json::Str(message.into())),
    ])
}

fn handle_connection(
    stream: TcpStream,
    engine: &ServeEngine,
    config: &TransportConfig,
    stop: &AtomicBool,
    health_section: Option<&HealthSection>,
) {
    let budget = DeadlineBudget::new(config.request_deadline_ms);
    arm_socket(&stream, &budget);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;

    let request = match read_request(&mut reader) {
        Ok(Some(req)) => req,
        Ok(None) => return, // peer closed without a request
        Err(e) => {
            let status = if e.timed_out { 408 } else { 400 };
            respond(&mut stream, status, &error_body("bad_request", e.reason));
            return;
        }
    };

    match route(&request) {
        Route::Submit => handle_submit(&mut stream, engine, &request),
        Route::Poll(ticket) => handle_poll(&mut stream, engine, ticket),
        Route::Wait(ticket) => handle_wait(&mut stream, engine, &budget, ticket),
        Route::Stream => handle_stream(&mut stream, engine, &request, &budget, stop),
        Route::Health => handle_health(&mut stream, engine, stop, health_section),
        Route::MethodNotAllowed => respond(
            &mut stream,
            405,
            &error_body("method_not_allowed", format!("{} {}", request.method, request.path)),
        ),
        Route::NotFound => respond(
            &mut stream,
            404,
            &error_body("not_found", request.path.clone()),
        ),
    }
}

enum Route {
    Submit,
    Poll(Ticket),
    Wait(Ticket),
    Stream,
    Health,
    MethodNotAllowed,
    NotFound,
}

fn route(req: &Request) -> Route {
    let path = req.path.as_str();
    match path {
        "/v1/jobs" => {
            return if req.method == "POST" {
                Route::Submit
            } else {
                Route::MethodNotAllowed
            };
        }
        "/v1/stream" => {
            return if req.method == "GET" {
                Route::Stream
            } else {
                Route::MethodNotAllowed
            };
        }
        "/healthz" => {
            return if req.method == "GET" {
                Route::Health
            } else {
                Route::MethodNotAllowed
            };
        }
        _ => {}
    }
    if let Some(rest) = path.strip_prefix("/v1/jobs/") {
        let (ticket_str, wait) = match rest.strip_suffix("/wait") {
            Some(t) => (t, true),
            None => (rest, false),
        };
        if let Ok(ticket) = ticket_str.parse::<Ticket>() {
            return if req.method != "GET" {
                Route::MethodNotAllowed
            } else if wait {
                Route::Wait(ticket)
            } else {
                Route::Poll(ticket)
            };
        }
    }
    Route::NotFound
}

fn handle_submit(stream: &mut TcpStream, engine: &ServeEngine, req: &Request) {
    let parsed = wire::parse_body(&req.body).and_then(|v| wire::submit_request_from_json(&v));
    let (job, lane) = match parsed {
        Ok(p) => p,
        Err(e) => {
            respond(stream, 400, &error_body("bad_request", e.reason));
            return;
        }
    };
    match engine.submit(job, lane) {
        Ok(ticket) => respond(
            stream,
            200,
            &Json::obj([
                ("ticket", Json::Num(ticket as f64)),
                ("lane", Json::Str(wire::lane_to_str(lane).into())),
            ]),
        ),
        Err(e) => respond(
            stream,
            wire::submit_error_status(&e),
            &wire::submit_error_to_json(&e),
        ),
    }
}

/// The `{status, outcome}` body and status code for a ready outcome:
/// 200 for success, 503/500 by error class (see
/// [`wire::backend_error_status`]).
fn ready_response(outcome: &qnat_serve::engine::JobOutcome) -> (u16, Json) {
    let status = match &outcome.result {
        Ok(_) => 200,
        Err(e) => wire::backend_error_status(e),
    };
    let body = Json::obj([
        ("status", Json::Str("ready".into())),
        ("outcome", wire::outcome_to_json(outcome)),
    ]);
    (status, body)
}

fn handle_poll(stream: &mut TcpStream, engine: &ServeEngine, ticket: Ticket) {
    match engine.poll(ticket) {
        Poll::Ready(outcome) => {
            let (status, body) = ready_response(&outcome);
            respond(stream, status, &body);
        }
        Poll::Queued => respond(
            stream,
            202,
            &Json::obj([("status", Json::Str("queued".into()))]),
        ),
        Poll::Running => respond(
            stream,
            202,
            &Json::obj([("status", Json::Str("running".into()))]),
        ),
        Poll::Unknown => respond(
            stream,
            404,
            &Json::obj([("status", Json::Str("unknown".into()))]),
        ),
    }
}

/// Blocks until the ticket is ready through the engine's own condvar
/// ([`ServeEngine::wait_timeout`]) bounded by the connection's remaining
/// budget — no poll loop, so completions wake the request immediately
/// and an exhausted budget surfaces as a typed engine timeout → 504.
fn handle_wait(
    stream: &mut TcpStream,
    engine: &ServeEngine,
    budget: &DeadlineBudget,
    ticket: Ticket,
) {
    let window_ms = budget.remaining_ms();
    let started = std::time::Instant::now();
    match engine.wait_timeout(ticket, window_ms) {
        Ok(outcome) => {
            // The wait consumed real time; charge the budget before
            // re-arming the socket for the response write.
            let elapsed = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
            let _ = budget.try_consume(elapsed.min(budget.remaining_ms()));
            arm_socket(stream, budget);
            let (status, body) = ready_response(&outcome);
            respond(stream, status, &body);
        }
        Err(WaitError::Unknown) => {
            respond(
                stream,
                404,
                &Json::obj([("status", Json::Str("unknown".into()))]),
            );
        }
        Err(WaitError::Timeout { waited_ms }) => {
            let _ = budget.try_consume(waited_ms.min(budget.remaining_ms()));
            respond(
                stream,
                504,
                &error_body("deadline", format!("ticket {ticket} not ready in budget")),
            );
        }
    }
}

/// Streams completions as chunked JSON lines. Ends when the requested
/// `?max=N` completions were delivered, the engine disconnects, the
/// server stops, or the connection budget runs out.
fn handle_stream(
    stream: &mut TcpStream,
    engine: &ServeEngine,
    req: &Request,
    budget: &DeadlineBudget,
    stop: &AtomicBool,
) {
    let max: Option<u64> = req.query_param("max").and_then(|v| v.parse().ok());
    let rx = engine.subscribe();
    // The stream outlives the per-request deadline by design: its writes
    // should only fail when the client goes away, not mid-healthy-feed.
    let _ = stream.set_write_timeout(Some(Duration::from_millis(
        budget.remaining_ms().max(1000),
    )));
    if write_chunked_head(stream, 200).is_err() {
        return;
    }
    let mut sent = 0u64;
    loop {
        if stop.load(Ordering::SeqCst) || max.is_some_and(|m| sent >= m) {
            break;
        }
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok((ticket, result)) => {
                let line = Json::obj([
                    ("ticket", Json::Num(ticket as f64)),
                    ("result", wire::result_to_json(&result)),
                ])
                .to_json();
                if write_chunk(stream, &format!("{line}\n")).is_err() {
                    return; // client hung up
                }
                sent += 1;
            }
            Err(RecvTimeoutError::Timeout) => {
                if !budget.try_consume(50) {
                    break; // connection budget exhausted while idle
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    let _ = finish_chunks(stream);
}

fn handle_health(
    stream: &mut TcpStream,
    engine: &ServeEngine,
    stop: &AtomicBool,
    health_section: Option<&HealthSection>,
) {
    let stats = engine.stats();
    let registry = engine.health_registry();
    // One registry pass: every registered breaker appears, atomically.
    let breakers = wire::obj_from(
        registry
            .snapshots()
            .into_iter()
            .map(|(key, snap)| (key, wire::breaker_snapshot_to_json(&snap))),
    );
    let mut body = Json::obj([
        (
            "status",
            Json::Str(if stop.load(Ordering::SeqCst) {
                "draining".into()
            } else {
                "ok".into()
            }),
        ),
        (
            "lanes",
            Json::obj([
                (
                    "interactive",
                    Json::Num(engine.queue_depth(Lane::Interactive) as f64),
                ),
                ("bulk", Json::Num(engine.queue_depth(Lane::Bulk) as f64)),
            ]),
        ),
        (
            "stats",
            Json::obj([
                ("submitted", Json::Num(stats.submitted as f64)),
                ("completed", Json::Num(stats.completed as f64)),
                ("rejected_full", Json::Num(stats.rejected_full as f64)),
                ("shed_oldest", Json::Num(stats.shed_oldest as f64)),
                ("shed_admission", Json::Num(stats.shed_admission as f64)),
                ("fast_failed", Json::Num(stats.fast_failed as f64)),
            ]),
        ),
        ("breakers", breakers),
    ]);
    if let (Some(section), Json::Obj(map)) = (health_section, &mut body) {
        map.insert("fleet".into(), section());
    }
    let _ = write_response(stream, 200, &body.to_json());
}
