//! Socket-level chaos injection: a seed-deterministic fault-injecting
//! stream wrapper for transport robustness tests.
//!
//! [`ChaosStream`] decorates any `Read + Write` transport with the
//! failure modes hostile or broken HTTP clients exhibit: abrupt
//! connection teardown mid-header or mid-body, byte-at-a-time
//! slow-loris writes, stalled readers that never collect their
//! response, and corrupted request bytes. Like
//! `qnat_noise::fault::FaultyBackend`, every fault is **a pure function
//! of `(seed, connection index)`** via the shared `splitmix64` mixing
//! discipline — [`ChaosPlan::derive`] gives connection `k` the same
//! [`ChaosMode`] on every run, so the `transport_chaos` suite replays
//! bitwise-identical abuse schedules.
//!
//! Teardown note: dropping the wrapped half of a `TcpStream` sends a
//! FIN (an abrupt close), not a TCP RST — `SO_LINGER(0)` is not
//! reachable from stable `std`. From the server's perspective both
//! truncate the request mid-read, which is the contract under test:
//! the worker must answer 400/408 or close cleanly, never hang.

use qnat_core::executor::splitmix64;
use std::io::{self, Read, Write};
use std::time::Duration;

/// What one chaos connection does to the request it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Send the request untouched and read the response — the control
    /// arm that proves healthy traffic survives alongside the abuse.
    Clean,
    /// Tear the connection down after `after` bytes of the request were
    /// written — mid-header for small offsets, mid-body for larger
    /// ones. Every later write or read on the stream fails.
    ResetAfter {
        /// Bytes allowed out before the teardown.
        after: usize,
    },
    /// Slow-loris: dribble the request one byte at a time with
    /// `delay_ms` between bytes, abandoning the connection (abrupt
    /// close) after `max_bytes` if the request is longer. The server's
    /// *total* read-time guard, not its per-read socket timeout, is
    /// what bounds this client.
    SlowLoris {
        /// Milliseconds between bytes.
        delay_ms: u64,
        /// Bytes written before the client gives up.
        max_bytes: usize,
    },
    /// Write the request intact, then stall instead of reading the
    /// response for `hold_ms`, then close without reading — the
    /// response must land in the kernel buffer without holding the
    /// worker.
    StallAfterWrite {
        /// Milliseconds the client sits on the unread response.
        hold_ms: u64,
    },
    /// XOR-corrupt roughly one in `1/rate_den` request bytes at
    /// seed-deterministic positions, then send normally. The server
    /// must answer 400 (or close), never crash or hang.
    Corrupt {
        /// Corrupt every byte whose per-position roll lands on
        /// `0 mod rate_den` (clamped ≥ 2).
        rate_den: u64,
    },
}

/// The seed-derived abuse schedule for one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Chaos seed the plan was derived from.
    pub seed: u64,
    /// Connection index within the chaos run.
    pub conn: u64,
    /// The mode connection `conn` runs under.
    pub mode: ChaosMode,
}

impl ChaosPlan {
    /// Derives connection `conn`'s plan from `seed` with the repo's
    /// standard mixing formula `splitmix64(seed ^ splitmix64(conn))` —
    /// the same discipline `FaultyBackend` uses per job, so chaos runs
    /// are exactly reproducible and independent of scheduling order.
    pub fn derive(seed: u64, conn: u64) -> ChaosPlan {
        let h = splitmix64(seed ^ splitmix64(conn));
        // Independent parameter streams off the same hash.
        let p1 = splitmix64(h ^ 0xC0FF_EE00);
        let p2 = splitmix64(h ^ 0xDEAD_BEEF);
        let mode = match h % 5 {
            0 => ChaosMode::Clean,
            1 => ChaosMode::ResetAfter {
                // 1..=40 covers the request line and early headers
                // (mid-header); larger requests get cut mid-body.
                after: 1 + (p1 % 40) as usize,
            },
            2 => ChaosMode::SlowLoris {
                delay_ms: 1 + p1 % 5,
                max_bytes: 8 + (p2 % 32) as usize,
            },
            3 => ChaosMode::StallAfterWrite { hold_ms: 10 + p1 % 40 },
            _ => ChaosMode::Corrupt {
                rate_den: 3 + p1 % 6,
            },
        };
        ChaosPlan { seed, conn, mode }
    }
}

/// A fault-injecting wrapper over any bidirectional stream. Writes pass
/// through [`ChaosMode`]'s schedule; once the mode tears the transport
/// down, the inner stream is dropped (closing the socket for
/// `TcpStream`) and every later operation fails with `BrokenPipe`.
#[derive(Debug)]
pub struct ChaosStream<S: Read + Write> {
    inner: Option<S>,
    mode: ChaosMode,
    /// Request bytes written so far (the reset/corruption cursor).
    written: u64,
}

impl<S: Read + Write> ChaosStream<S> {
    /// Wraps `inner` under `plan`'s mode.
    pub fn new(inner: S, plan: ChaosPlan) -> Self {
        ChaosStream {
            inner: Some(inner),
            mode: plan.mode,
            written: 0,
        }
    }

    /// The wrapper's mode (tests branch their assertions on it).
    pub fn mode(&self) -> ChaosMode {
        self.mode
    }

    /// Drops the inner stream — the abrupt-close primitive.
    pub fn tear_down(&mut self) {
        self.inner = None;
    }

    /// `true` once the chaos schedule (or an explicit
    /// [`ChaosStream::tear_down`]) closed the transport.
    pub fn torn_down(&self) -> bool {
        self.inner.is_none()
    }

    fn gone() -> io::Error {
        io::Error::new(io::ErrorKind::BrokenPipe, "chaos tore the connection down")
    }

    fn inner_mut(&mut self) -> io::Result<&mut S> {
        self.inner.as_mut().ok_or_else(Self::gone)
    }

    /// Whether the byte at absolute request offset `pos` gets corrupted
    /// under `Corrupt { rate_den }` — position-keyed, so the schedule is
    /// independent of write-call chunking.
    fn corrupts_at(rate_den: u64, pos: u64) -> bool {
        splitmix64(pos ^ 0x5EED_CAFE).is_multiple_of(rate_den)
    }
}

impl<S: Read + Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        match self.mode {
            ChaosMode::Clean | ChaosMode::StallAfterWrite { .. } => {
                let n = self.inner_mut()?.write(buf)?;
                self.written += n as u64;
                Ok(n)
            }
            ChaosMode::ResetAfter { after } => {
                let left = (after as u64).saturating_sub(self.written);
                if left == 0 {
                    self.tear_down();
                    return Err(Self::gone());
                }
                let n = buf.len().min(usize::try_from(left).unwrap_or(usize::MAX));
                let n = self.inner_mut()?.write(&buf[..n])?;
                self.written += n as u64;
                if self.written >= after as u64 {
                    // Flush what dribbled out, then slam the door.
                    let _ = self.inner_mut().and_then(|s| s.flush());
                    self.tear_down();
                }
                Ok(n)
            }
            ChaosMode::SlowLoris { delay_ms, max_bytes } => {
                if self.written >= max_bytes as u64 {
                    self.tear_down();
                    return Err(Self::gone());
                }
                std::thread::sleep(Duration::from_millis(delay_ms));
                let inner = self.inner_mut()?;
                let n = inner.write(&buf[..1])?;
                inner.flush()?;
                self.written += n as u64;
                Ok(n)
            }
            ChaosMode::Corrupt { rate_den } => {
                let den = rate_den.max(2);
                let start = self.written;
                let mangled: Vec<u8> = buf
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| {
                        if Self::corrupts_at(den, start + i as u64) {
                            b ^ 0xA5
                        } else {
                            b
                        }
                    })
                    .collect();
                let n = self.inner_mut()?.write(&mangled)?;
                self.written += n as u64;
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner_mut()?.flush()
    }
}

impl<S: Read + Write> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let ChaosMode::StallAfterWrite { hold_ms } = self.mode {
            // Sit on the response, then walk away without reading it.
            std::thread::sleep(Duration::from_millis(hold_ms));
            self.tear_down();
            return Ok(0);
        }
        self.inner_mut()?.read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory duplex: writes land in `sent`, reads drain `feed`.
    struct Loopback {
        sent: Vec<u8>,
        feed: io::Cursor<Vec<u8>>,
    }

    impl Loopback {
        fn new(feed: &[u8]) -> Self {
            Loopback {
                sent: Vec::new(),
                feed: io::Cursor::new(feed.to_vec()),
            }
        }
    }

    impl Read for Loopback {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.feed.read(buf)
        }
    }

    impl Write for Loopback {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.sent.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn plans_are_seed_deterministic_and_cover_every_mode() {
        let plans: Vec<ChaosPlan> = (0..64).map(|k| ChaosPlan::derive(0xABCD, k)).collect();
        let replay: Vec<ChaosPlan> = (0..64).map(|k| ChaosPlan::derive(0xABCD, k)).collect();
        assert_eq!(plans, replay, "derivation is pure in (seed, conn)");
        let mut seen = [false; 5];
        for p in &plans {
            let idx = match p.mode {
                ChaosMode::Clean => 0,
                ChaosMode::ResetAfter { .. } => 1,
                ChaosMode::SlowLoris { .. } => 2,
                ChaosMode::StallAfterWrite { .. } => 3,
                ChaosMode::Corrupt { .. } => 4,
            };
            seen[idx] = true;
        }
        assert_eq!(seen, [true; 5], "64 connections exercise every mode");
        // A different seed reshuffles the schedule.
        let other: Vec<ChaosPlan> = (0..64).map(|k| ChaosPlan::derive(0xEF01, k)).collect();
        assert_ne!(
            plans.iter().map(|p| p.mode).collect::<Vec<_>>(),
            other.iter().map(|p| p.mode).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reset_cuts_exactly_at_the_offset() {
        let plan = ChaosPlan {
            seed: 0,
            conn: 0,
            mode: ChaosMode::ResetAfter { after: 5 },
        };
        let mut s = ChaosStream::new(Loopback::new(b""), plan);
        assert_eq!(s.write(b"abc").expect("under the cut"), 3);
        assert_eq!(s.write(b"defgh").expect("partial up to the cut"), 2);
        assert!(s.torn_down(), "the cut closes the stream");
        assert!(s.write(b"x").is_err(), "writes after the cut fail");
        assert!(s.read(&mut [0u8; 4]).is_err(), "reads after the cut fail");
    }

    #[test]
    fn slow_loris_dribbles_single_bytes_then_gives_up() {
        let plan = ChaosPlan {
            seed: 0,
            conn: 0,
            mode: ChaosMode::SlowLoris {
                delay_ms: 0,
                max_bytes: 3,
            },
        };
        let mut s = ChaosStream::new(Loopback::new(b""), plan);
        let mut sent = 0usize;
        while sent < 3 {
            sent += s.write(&b"abcdef"[sent..]).expect("dribble");
        }
        assert!(s.write(b"rest").is_err(), "gives up past max_bytes");
        assert!(s.torn_down());
    }

    #[test]
    fn corruption_is_deterministic_and_chunking_invariant() {
        let plan = ChaosPlan {
            seed: 0,
            conn: 0,
            mode: ChaosMode::Corrupt { rate_den: 3 },
        };
        let payload = b"GET /healthz HTTP/1.1\r\n\r\n";
        let mut one = ChaosStream::new(Loopback::new(b""), plan);
        one.write_all(payload).expect("whole write");
        let mut split = ChaosStream::new(Loopback::new(b""), plan);
        split.write_all(&payload[..7]).expect("head");
        split.write_all(&payload[7..]).expect("tail");
        let whole = one.inner.take().expect("alive").sent;
        let parts = split.inner.take().expect("alive").sent;
        assert_eq!(whole, parts, "corruption keys on absolute offsets");
        assert_ne!(whole, payload.to_vec(), "some byte actually flipped");
    }

    #[test]
    fn stall_after_write_passes_the_request_then_never_reads() {
        let plan = ChaosPlan {
            seed: 0,
            conn: 0,
            mode: ChaosMode::StallAfterWrite { hold_ms: 1 },
        };
        let mut s = ChaosStream::new(Loopback::new(b"HTTP/1.1 200 OK\r\n\r\n"), plan);
        s.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("request goes out");
        assert_eq!(
            s.read(&mut [0u8; 8]).expect("stall reads as EOF"),
            0,
            "the response is abandoned unread"
        );
        assert!(s.torn_down());
    }
}
