//! The in-repo blocking client: one TCP connection per request (the
//! server closes after each response), typed decode of every payload.
//!
//! This is the client the `transport_e2e` test and the throughput bench
//! drive — deliberately minimal, deliberately honest about failure: a
//! non-2xx status comes back as [`ClientError::Status`] with the body
//! preserved, so tests can assert the 429/503 contract.

use crate::http::{read_response, write_request, HttpError, Response};
use crate::wire::{self, WireError};
use qnat_core::batch::BatchJob;
use qnat_json::Json;
use qnat_noise::backend::{BackendError, Measurements};
use qnat_serve::engine::{JobOutcome, Lane, Ticket};
use std::error::Error;
use std::fmt;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Which phase of a client call ran out of time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutPhase {
    /// TCP connect did not complete within the connect timeout.
    Connect,
    /// The request could not be written within the per-call timeout.
    Write,
    /// The response did not arrive within the per-call timeout.
    Read,
}

impl fmt::Display for TimeoutPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeoutPhase::Connect => write!(f, "connect"),
            TimeoutPhase::Write => write!(f, "write"),
            TimeoutPhase::Read => write!(f, "read"),
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect refused, reset, …).
    Io(std::io::Error),
    /// The call ran out of time in the given phase — the typed signal a
    /// caller needs to distinguish "server slow/hung" from "server
    /// broken", instead of pattern-matching io error kinds.
    Timeout {
        /// Which phase timed out.
        phase: TimeoutPhase,
    },
    /// The response was not valid HTTP.
    Http(HttpError),
    /// The response body did not decode as the expected payload.
    Wire(WireError),
    /// The server answered with a non-success status.
    Status {
        /// HTTP status code.
        status: u16,
        /// Response body, as text.
        body: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client io error: {e}"),
            ClientError::Timeout { phase } => {
                write!(f, "client timed out during {phase}")
            }
            ClientError::Http(e) => write!(f, "client http error: {e}"),
            ClientError::Wire(e) => write!(f, "client decode error: {e}"),
            ClientError::Status { status, body } => {
                write!(f, "server answered {status}: {body}")
            }
        }
    }
}

impl Error for ClientError {}

fn io_is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        // Bare io conversions only happen on the read path (connect and
        // write classify explicitly in `call`).
        if io_is_timeout(&e) {
            ClientError::Timeout {
                phase: TimeoutPhase::Read,
            }
        } else {
            ClientError::Io(e)
        }
    }
}

impl From<HttpError> for ClientError {
    fn from(e: HttpError) -> Self {
        if e.timed_out {
            ClientError::Timeout {
                phase: TimeoutPhase::Read,
            }
        } else {
            ClientError::Http(e)
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Non-blocking view of a ticket, as `GET /v1/jobs/{ticket}` reports it.
#[derive(Debug, Clone, PartialEq)]
pub enum TicketStatus {
    /// Still waiting in a lane.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished — outcome handed over (and consumed server-side).
    Ready(JobOutcome),
}

/// One event off `GET /v1/stream`.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamEvent {
    /// Which ticket completed.
    pub ticket: Ticket,
    /// Its result (evictions and fast-fails included).
    pub result: Result<Measurements, BackendError>,
}

/// A blocking HTTP client for one front door.
#[derive(Debug, Clone)]
pub struct TransportClient {
    addr: SocketAddr,
    timeout: Duration,
    connect_timeout: Duration,
}

impl TransportClient {
    /// A client for the server at `addr` with a 30 s per-call
    /// (read/write) timeout and a 10 s connect timeout.
    pub fn new(addr: SocketAddr) -> Self {
        TransportClient {
            addr,
            timeout: Duration::from_secs(30),
            connect_timeout: Duration::from_secs(10),
        }
    }

    /// Overrides the per-call read/write socket timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Overrides the TCP connect timeout, separately from the per-call
    /// timeout — a dead host should fail fast even when long server-side
    /// waits are configured.
    #[must_use]
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    fn call(&self, method: &str, target: &str, body: &[u8]) -> Result<Response, ClientError> {
        let stream =
            TcpStream::connect_timeout(&self.addr, self.connect_timeout).map_err(|e| {
                if io_is_timeout(&e) {
                    ClientError::Timeout {
                        phase: TimeoutPhase::Connect,
                    }
                } else {
                    ClientError::Io(e)
                }
            })?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let mut writer = stream.try_clone()?;
        write_request(&mut writer, method, target, body).map_err(|e| {
            if e.timed_out {
                ClientError::Timeout {
                    phase: TimeoutPhase::Write,
                }
            } else {
                ClientError::Http(e)
            }
        })?;
        let mut reader = BufReader::new(stream);
        Ok(read_response(&mut reader)?)
    }

    fn expect_json(resp: &Response) -> Result<Json, ClientError> {
        let text = resp.text()?;
        if resp.status < 200 || resp.status >= 300 {
            return Err(ClientError::Status {
                status: resp.status,
                body: text.to_owned(),
            });
        }
        Ok(Json::parse(text).map_err(WireError::from)?)
    }

    /// `POST /v1/jobs`: submits `job` on `lane`, returns its ticket.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carries the 429/503 refusals.
    pub fn submit(&self, job: &BatchJob, lane: Lane) -> Result<Ticket, ClientError> {
        let body = wire::submit_request_to_json(job, lane).to_json();
        let resp = self.call("POST", "/v1/jobs", body.as_bytes())?;
        let v = Self::expect_json(&resp)?;
        let ticket = v
            .get("ticket")
            .and_then(Json::as_f64)
            .ok_or_else(|| WireError {
                reason: "submit response missing 'ticket'".into(),
            })?;
        Ok(ticket as Ticket)
    }

    /// `GET /v1/jobs/{ticket}`: non-blocking poll. `Ok(None)` for a
    /// ticket the server does not know (404).
    ///
    /// A ready outcome is returned even when the server graded it 503/500
    /// — the typed error is inside the outcome; the status code is the
    /// HTTP-facing summary.
    pub fn poll(&self, ticket: Ticket) -> Result<Option<TicketStatus>, ClientError> {
        let resp = self.call("GET", &format!("/v1/jobs/{ticket}"), b"")?;
        Self::decode_status(&resp)
    }

    /// `GET /v1/jobs/{ticket}/wait`: blocks server-side until the ticket
    /// completes or the connection's deadline budget runs out (504).
    pub fn wait(&self, ticket: Ticket) -> Result<Option<JobOutcome>, ClientError> {
        let resp = self.call("GET", &format!("/v1/jobs/{ticket}/wait"), b"")?;
        match Self::decode_status(&resp)? {
            Some(TicketStatus::Ready(outcome)) => Ok(Some(outcome)),
            Some(other) => Err(ClientError::Wire(WireError {
                reason: format!("wait returned non-ready status {other:?}"),
            })),
            None => Ok(None),
        }
    }

    fn decode_status(resp: &Response) -> Result<Option<TicketStatus>, ClientError> {
        if resp.status == 404 {
            return Ok(None);
        }
        let text = resp.text()?;
        let v = Json::parse(text).map_err(WireError::from)?;
        let Some(status) = v.get("status").and_then(Json::as_str) else {
            // Not a ticket-status document — a timeout or error body.
            return Err(if resp.status >= 400 {
                ClientError::Status {
                    status: resp.status,
                    body: text.to_owned(),
                }
            } else {
                ClientError::Wire(WireError {
                    reason: "missing 'status'".into(),
                })
            });
        };
        match status {
            "queued" => Ok(Some(TicketStatus::Queued)),
            "running" => Ok(Some(TicketStatus::Running)),
            "ready" => {
                let outcome = v.get("outcome").ok_or_else(|| WireError {
                    reason: "ready without 'outcome'".into(),
                })?;
                Ok(Some(TicketStatus::Ready(wire::outcome_from_json(outcome)?)))
            }
            _ if resp.status >= 400 => Err(ClientError::Status {
                status: resp.status,
                body: text.to_owned(),
            }),
            other => Err(ClientError::Wire(WireError {
                reason: format!("unknown status '{other}'"),
            })),
        }
    }

    /// `GET /v1/stream?max=N`: collects `max` completion events off the
    /// chunked feed (the server finishes the response after `max`).
    pub fn stream(&self, max: usize) -> Result<Vec<StreamEvent>, ClientError> {
        let resp = self.call("GET", &format!("/v1/stream?max={max}"), b"")?;
        if resp.status != 200 {
            return Err(ClientError::Status {
                status: resp.status,
                body: resp.text().unwrap_or("").to_owned(),
            });
        }
        let mut events = Vec::new();
        for line in resp.text()?.lines().filter(|l| !l.trim().is_empty()) {
            let v = Json::parse(line).map_err(WireError::from)?;
            let ticket = v
                .get("ticket")
                .and_then(Json::as_f64)
                .ok_or_else(|| WireError {
                    reason: "stream event missing 'ticket'".into(),
                })? as Ticket;
            let result = wire::result_from_json(v.get("result").ok_or_else(|| WireError {
                reason: "stream event missing 'result'".into(),
            })?)?;
            events.push(StreamEvent { ticket, result });
        }
        Ok(events)
    }

    /// `GET /healthz`: the raw health document (lane depths, engine
    /// counters, breaker states).
    pub fn healthz(&self) -> Result<Json, ClientError> {
        let resp = self.call("GET", "/healthz", b"")?;
        Self::expect_json(&resp)
    }
}
