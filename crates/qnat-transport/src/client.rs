//! The in-repo blocking client, now with a pooled keep-alive
//! connection: calls reuse one TCP connection across requests,
//! transparently reconnecting when the server closed it (idle timeout,
//! request cap, drain) and retrying **idempotent GETs** once on a stale
//! connection. Non-idempotent POSTs are only retried when the *write*
//! of the request failed — bytes that never reached the server cannot
//! have been acted on; a POST whose response went missing surfaces the
//! error instead of risking a duplicate submission.
//!
//! This is the client the `transport_e2e` test, the chaos suite and the
//! load harness drive — deliberately minimal, deliberately honest about
//! failure: a non-2xx status comes back as [`ClientError::Status`] with
//! the body preserved, so tests can assert the 429/503 contract.

use crate::http::{
    finish_chunks, read_response, write_chunk, write_chunked_request_head, write_request,
    HttpError, Response,
};
use crate::wire::{self, MitigatedResult, WireError};
use qnat_core::batch::BatchJob;
use qnat_json::Json;
use qnat_noise::backend::{BackendError, Measurements};
use qnat_serve::engine::{JobOutcome, Lane, Ticket};
use qnat_serve::mitigate::MitigatedJob;
use std::error::Error;
use std::fmt;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Which phase of a client call ran out of time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutPhase {
    /// TCP connect did not complete within the connect timeout.
    Connect,
    /// The request could not be written within the per-call timeout.
    Write,
    /// The response did not arrive within the per-call timeout.
    Read,
}

impl fmt::Display for TimeoutPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeoutPhase::Connect => write!(f, "connect"),
            TimeoutPhase::Write => write!(f, "write"),
            TimeoutPhase::Read => write!(f, "read"),
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect refused, reset, …).
    Io(std::io::Error),
    /// The call ran out of time in the given phase — the typed signal a
    /// caller needs to distinguish "server slow/hung" from "server
    /// broken", instead of pattern-matching io error kinds.
    Timeout {
        /// Which phase timed out.
        phase: TimeoutPhase,
    },
    /// The response was not valid HTTP.
    Http(HttpError),
    /// The response body did not decode as the expected payload.
    Wire(WireError),
    /// The server answered with a non-success status.
    Status {
        /// HTTP status code.
        status: u16,
        /// Response body, as text.
        body: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client io error: {e}"),
            ClientError::Timeout { phase } => {
                write!(f, "client timed out during {phase}")
            }
            ClientError::Http(e) => write!(f, "client http error: {e}"),
            ClientError::Wire(e) => write!(f, "client decode error: {e}"),
            ClientError::Status { status, body } => {
                write!(f, "server answered {status}: {body}")
            }
        }
    }
}

impl Error for ClientError {}

fn io_is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        // Bare io conversions only happen on the read path (connect and
        // write classify explicitly in `call`).
        if io_is_timeout(&e) {
            ClientError::Timeout {
                phase: TimeoutPhase::Read,
            }
        } else {
            ClientError::Io(e)
        }
    }
}

impl From<HttpError> for ClientError {
    fn from(e: HttpError) -> Self {
        if e.timed_out {
            ClientError::Timeout {
                phase: TimeoutPhase::Read,
            }
        } else {
            ClientError::Http(e)
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Non-blocking view of a ticket, as `GET /v1/jobs/{ticket}` reports it.
#[derive(Debug, Clone, PartialEq)]
pub enum TicketStatus {
    /// Still waiting in a lane.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished — outcome handed over (and consumed server-side).
    Ready(JobOutcome),
}

/// One event off `GET /v1/stream`.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamEvent {
    /// Which ticket completed.
    pub ticket: Ticket,
    /// Its result (evictions and fast-fails included).
    pub result: Result<Measurements, BackendError>,
}

/// One line's verdict from the streaming batch submit
/// (`POST /v1/jobs/stream`): the ticket, or the refusal the line would
/// have earned as a lone request.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamSubmit {
    /// The job was admitted under this ticket.
    Accepted(Ticket),
    /// The job was refused (429 queue-full, 503 shed/stopping, 400
    /// malformed line).
    Refused {
        /// The per-item HTTP-equivalent status.
        status: u16,
        /// The typed refusal body, as JSON text.
        body: String,
    },
}

/// A pooled keep-alive connection: the buffered read half plus a write
/// handle over the same socket.
struct PooledConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A blocking HTTP client for one front door, holding at most one idle
/// keep-alive connection. Concurrent calls on clones sharing the pool
/// simply open an extra connection when the pooled one is in use; the
/// first connection back fills the idle slot, later ones close.
#[derive(Clone)]
pub struct TransportClient {
    addr: SocketAddr,
    timeout: Duration,
    connect_timeout: Duration,
    keep_alive: bool,
    pool: Arc<Mutex<Option<PooledConn>>>,
}

impl fmt::Debug for TransportClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransportClient")
            .field("addr", &self.addr)
            .field("timeout", &self.timeout)
            .field("connect_timeout", &self.connect_timeout)
            .field("keep_alive", &self.keep_alive)
            .finish_non_exhaustive()
    }
}

impl TransportClient {
    /// A client for the server at `addr` with a 30 s per-call
    /// (read/write) timeout, a 10 s connect timeout, and connection
    /// reuse on.
    pub fn new(addr: SocketAddr) -> Self {
        TransportClient {
            addr,
            timeout: Duration::from_secs(30),
            connect_timeout: Duration::from_secs(10),
            keep_alive: true,
            pool: Arc::new(Mutex::new(None)),
        }
    }

    /// Overrides the per-call read/write socket timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Overrides the TCP connect timeout, separately from the per-call
    /// timeout — a dead host should fail fast even when long server-side
    /// waits are configured.
    #[must_use]
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Disables connection reuse: every call opens (and drops) a fresh
    /// TCP connection — the pre-keep-alive behaviour, kept as the load
    /// harness's baseline arm.
    #[must_use]
    pub fn without_keep_alive(mut self) -> Self {
        self.keep_alive = false;
        self
    }

    fn connect(&self) -> Result<PooledConn, ClientError> {
        let stream =
            TcpStream::connect_timeout(&self.addr, self.connect_timeout).map_err(|e| {
                if io_is_timeout(&e) {
                    ClientError::Timeout {
                        phase: TimeoutPhase::Connect,
                    }
                } else {
                    ClientError::Io(e)
                }
            })?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        // Request/response round trips on a reused connection must not
        // sit out Nagle's ACK wait.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(PooledConn {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Takes the idle pooled connection, if any.
    fn take_pooled(&self) -> Option<PooledConn> {
        self.pool.lock().unwrap_or_else(|p| p.into_inner()).take()
    }

    /// Returns a still-healthy connection to the idle slot (first one
    /// back wins; an already-filled slot drops the newcomer).
    fn park(&self, conn: PooledConn) {
        let mut slot = self.pool.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_none() {
            *slot = Some(conn);
        }
    }

    /// One request/response over `conn`. `Err((phase-tagged error,
    /// wrote))` reports whether the request bytes had already been
    /// flushed when the call failed — the retry-safety signal.
    fn attempt(
        conn: &mut PooledConn,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<Response, (ClientError, bool)> {
        write_request(&mut conn.writer, method, target, body).map_err(|e| {
            let e = if e.timed_out {
                ClientError::Timeout {
                    phase: TimeoutPhase::Write,
                }
            } else {
                ClientError::Http(e)
            };
            (e, false)
        })?;
        read_response(&mut conn.reader).map_err(|e| (ClientError::from(e), true))
    }

    /// Whether a failed attempt on a **reused** connection may be
    /// replayed on a fresh one. A request that never flushed is always
    /// safe; one that flushed is only safe when idempotent (GET) and
    /// the failure smells like a stale keep-alive connection (the
    /// server closed or reset it), not like a server-side timeout.
    fn retriable(method: &str, wrote: bool, err: &ClientError) -> bool {
        if !wrote {
            return true;
        }
        if method != "GET" {
            return false;
        }
        match err {
            ClientError::Io(_) => true,
            // "no response" = clean EOF before any status line — the
            // classic stale keep-alive race.
            ClientError::Http(e) => e.reason.contains("no response"),
            _ => false,
        }
    }

    fn call(&self, method: &str, target: &str, body: &[u8]) -> Result<Response, ClientError> {
        if !self.keep_alive {
            let mut conn = self.connect()?;
            return Self::attempt(&mut conn, method, target, body).map_err(|(e, _)| e);
        }
        // First try the pooled connection, falling back to (at most) one
        // fresh connection when the reused one turns out stale.
        if let Some(mut conn) = self.take_pooled() {
            match Self::attempt(&mut conn, method, target, body) {
                Ok(resp) => {
                    self.maybe_park(conn, &resp);
                    return Ok(resp);
                }
                Err((e, wrote)) => {
                    // The stale connection is dropped either way.
                    if !Self::retriable(method, wrote, &e) {
                        return Err(e);
                    }
                }
            }
        }
        let mut conn = self.connect()?;
        match Self::attempt(&mut conn, method, target, body) {
            Ok(resp) => {
                self.maybe_park(conn, &resp);
                Ok(resp)
            }
            Err((e, _)) => Err(e),
        }
    }

    /// Parks the connection for reuse unless the server said it is done
    /// with it (`Connection: close`, or a chunked stream that has no
    /// reusable framing afterwards).
    fn maybe_park(&self, conn: PooledConn, resp: &Response) {
        let closing = resp
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        let streamed = resp
            .header("transfer-encoding")
            .is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
        if !closing && !streamed {
            self.park(conn);
        }
    }

    fn expect_json(resp: &Response) -> Result<Json, ClientError> {
        let text = resp.text()?;
        if resp.status < 200 || resp.status >= 300 {
            return Err(ClientError::Status {
                status: resp.status,
                body: text.to_owned(),
            });
        }
        Ok(Json::parse(text).map_err(WireError::from)?)
    }

    /// `POST /v1/jobs`: submits `job` on `lane`, returns its ticket.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carries the 429/503 refusals.
    pub fn submit(&self, job: &BatchJob, lane: Lane) -> Result<Ticket, ClientError> {
        let body = wire::submit_request_to_json(job, lane).to_json();
        let resp = self.call("POST", "/v1/jobs", body.as_bytes())?;
        let v = Self::expect_json(&resp)?;
        let ticket = v
            .get("ticket")
            .and_then(Json::as_f64)
            .ok_or_else(|| WireError {
                reason: "submit response missing 'ticket'".into(),
            })?;
        Ok(ticket as Ticket)
    }

    /// `POST /v1/jobs/stream`: the streaming submit — ships every job
    /// as one chunked JSON line over a single connection and returns
    /// the per-line verdicts in submission order. One connection, one
    /// round trip, any number of jobs.
    ///
    /// # Errors
    ///
    /// Transport-level failures only; per-job refusals come back inside
    /// the [`StreamSubmit`] entries.
    pub fn submit_stream(
        &self,
        jobs: &[(BatchJob, Lane)],
    ) -> Result<Vec<StreamSubmit>, ClientError> {
        let mut conn = match self.take_pooled() {
            Some(conn) if self.keep_alive => conn,
            _ => self.connect()?,
        };
        let sent = (|| -> Result<(), HttpError> {
            write_chunked_request_head(&mut conn.writer, "POST", "/v1/jobs/stream")?;
            for (job, lane) in jobs {
                let line = wire::submit_request_to_json(job, *lane).to_json();
                write_chunk(&mut conn.writer, &format!("{line}\n"))?;
            }
            finish_chunks(&mut conn.writer)
        })();
        if let Err(e) = sent {
            // A half-written chunked body cannot be resumed; a fresh
            // connection replays the whole batch (nothing flushed to
            // the engine until the terminator arrives server-side).
            let mut conn = self.connect()?;
            write_chunked_request_head(&mut conn.writer, "POST", "/v1/jobs/stream")
                .map_err(ClientError::from)?;
            for (job, lane) in jobs {
                let line = wire::submit_request_to_json(job, *lane).to_json();
                write_chunk(&mut conn.writer, &format!("{line}\n")).map_err(ClientError::from)?;
            }
            finish_chunks(&mut conn.writer).map_err(ClientError::from)?;
            let resp = read_response(&mut conn.reader)?;
            let verdicts = Self::decode_stream_submit(&resp)?;
            self.maybe_park(conn, &resp);
            drop(e);
            return Ok(verdicts);
        }
        let resp = read_response(&mut conn.reader)?;
        let verdicts = Self::decode_stream_submit(&resp)?;
        self.maybe_park(conn, &resp);
        Ok(verdicts)
    }

    fn decode_stream_submit(resp: &Response) -> Result<Vec<StreamSubmit>, ClientError> {
        let v = Self::expect_json(resp)?;
        let Some(Json::Arr(results)) = v.get("results") else {
            return Err(ClientError::Wire(WireError {
                reason: "streaming submit response missing 'results'".into(),
            }));
        };
        results
            .iter()
            .map(|item| {
                if let Some(ticket) = item.get("ticket").and_then(Json::as_f64) {
                    return Ok(StreamSubmit::Accepted(ticket as Ticket));
                }
                let status = item
                    .get("status")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| WireError {
                        reason: "streamed verdict missing 'ticket' and 'status'".into(),
                    })? as u16;
                let body = item
                    .get("error")
                    .map(Json::to_json)
                    .unwrap_or_default();
                Ok(StreamSubmit::Refused { status, body })
            })
            .collect()
    }

    /// `GET /v1/jobs/{ticket}`: non-blocking poll. `Ok(None)` for a
    /// ticket the server does not know (404).
    ///
    /// A ready outcome is returned even when the server graded it 503/500
    /// — the typed error is inside the outcome; the status code is the
    /// HTTP-facing summary.
    pub fn poll(&self, ticket: Ticket) -> Result<Option<TicketStatus>, ClientError> {
        let resp = self.call("GET", &format!("/v1/jobs/{ticket}"), b"")?;
        Self::decode_status(&resp)
    }

    /// `GET /v1/jobs/{ticket}/wait`: blocks server-side until the ticket
    /// completes or the request's deadline budget runs out (504).
    pub fn wait(&self, ticket: Ticket) -> Result<Option<JobOutcome>, ClientError> {
        let resp = self.call("GET", &format!("/v1/jobs/{ticket}/wait"), b"")?;
        match Self::decode_status(&resp)? {
            Some(TicketStatus::Ready(outcome)) => Ok(Some(outcome)),
            Some(other) => Err(ClientError::Wire(WireError {
                reason: format!("wait returned non-ready status {other:?}"),
            })),
            None => Ok(None),
        }
    }

    /// `POST /v1/mitigate`: runs a full error-mitigation sweep
    /// server-side — gate folding per scale, bulk-lane fan-out, readout
    /// inversion and zero-noise extrapolation — and returns the single
    /// aggregated result.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carries every typed refusal with its body
    /// preserved: 400 sweep-shape errors, 429/503 engine refusals,
    /// 500 mitigation-math failures (degenerate fit, singular
    /// confusion), 503/500 failed sub-runs, 504 budget exhaustion.
    pub fn mitigate(
        &self,
        job: &MitigatedJob,
        seed: u64,
    ) -> Result<MitigatedResult, ClientError> {
        let body = wire::mitigate_request_to_json(job, seed).to_json();
        let resp = self.call("POST", "/v1/mitigate", body.as_bytes())?;
        let v = Self::expect_json(&resp)?;
        Ok(wire::mitigated_result_from_json(&v)?)
    }

    fn decode_status(resp: &Response) -> Result<Option<TicketStatus>, ClientError> {
        if resp.status == 404 {
            return Ok(None);
        }
        let text = resp.text()?;
        let v = Json::parse(text).map_err(WireError::from)?;
        let Some(status) = v.get("status").and_then(Json::as_str) else {
            // Not a ticket-status document — a timeout or error body.
            return Err(if resp.status >= 400 {
                ClientError::Status {
                    status: resp.status,
                    body: text.to_owned(),
                }
            } else {
                ClientError::Wire(WireError {
                    reason: "missing 'status'".into(),
                })
            });
        };
        match status {
            "queued" => Ok(Some(TicketStatus::Queued)),
            "running" => Ok(Some(TicketStatus::Running)),
            "ready" => {
                let outcome = v.get("outcome").ok_or_else(|| WireError {
                    reason: "ready without 'outcome'".into(),
                })?;
                Ok(Some(TicketStatus::Ready(wire::outcome_from_json(outcome)?)))
            }
            _ if resp.status >= 400 => Err(ClientError::Status {
                status: resp.status,
                body: text.to_owned(),
            }),
            other => Err(ClientError::Wire(WireError {
                reason: format!("unknown status '{other}'"),
            })),
        }
    }

    /// `GET /v1/stream?max=N`: collects `max` completion events off the
    /// chunked feed (the server finishes the response after `max`).
    pub fn stream(&self, max: usize) -> Result<Vec<StreamEvent>, ClientError> {
        let resp = self.call("GET", &format!("/v1/stream?max={max}"), b"")?;
        if resp.status != 200 {
            return Err(ClientError::Status {
                status: resp.status,
                body: resp.text().unwrap_or("").to_owned(),
            });
        }
        let mut events = Vec::new();
        for line in resp.text()?.lines().filter(|l| !l.trim().is_empty()) {
            let v = Json::parse(line).map_err(WireError::from)?;
            let ticket = v
                .get("ticket")
                .and_then(Json::as_f64)
                .ok_or_else(|| WireError {
                    reason: "stream event missing 'ticket'".into(),
                })? as Ticket;
            let result = wire::result_from_json(v.get("result").ok_or_else(|| WireError {
                reason: "stream event missing 'result'".into(),
            })?)?;
            events.push(StreamEvent { ticket, result });
        }
        Ok(events)
    }

    /// `GET /healthz`: the raw health document (lane depths, engine
    /// counters + load, transport counters, breaker states).
    pub fn healthz(&self) -> Result<Json, ClientError> {
        let resp = self.call("GET", "/healthz", b"")?;
        Self::expect_json(&resp)
    }
}
