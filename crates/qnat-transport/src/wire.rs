//! JSON wire format for the HTTP front door.
//!
//! Every payload that crosses the socket — jobs in, outcomes out — is
//! encoded with `qnat-json`, whose exact `f64` round-trip is what lets
//! the `transport_e2e` test demand *bitwise* replay parity between a
//! served workload and the same jobs through `deploy_batch`. The codecs
//! here are therefore deliberately lossless: a [`Gate`] travels with its
//! meaningful qubit slots plus the full `params: [f64; 3]` array (the
//! constructors' `usize::MAX` qubit padding is canonical and restored on
//! decode), and all eleven [`BackendError`] variants keep their typed
//! fields.
//!
//! Integers ride in JSON numbers (`f64`), which is exact up to 2⁵³ —
//! far beyond any ticket, job index or backoff tally this stack
//! produces.

use qnat_compiler::folding::FoldStrategy;
use qnat_core::executor::{BackendUsage, ExecutionReport, FailureRecord};
use qnat_core::health::{BreakerSnapshot, BreakerState};
use qnat_core::mitigate::{MitigateError, ZneMethod};
use qnat_fleet::FleetHealth;
use qnat_json::{Json, JsonError};
use qnat_noise::backend::{BackendError, Measurements};
use qnat_core::batch::BatchJob;
use qnat_serve::engine::{JobOutcome, Lane, SubmitError, Ticket};
use qnat_serve::mitigate::{
    MitigatedJob, MitigatedOutcome, MitigatedSubmitError, MitigationError,
};
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::{Gate, GateKind};
use qnat_sim::measure::Confusion;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A payload failed to decode: syntactically valid JSON with the wrong
/// shape, an unknown enum tag, an out-of-range number, or not JSON at
/// all.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// What was malformed, in request-diagnostic form.
    pub reason: String,
}

impl WireError {
    fn new(reason: impl Into<String>) -> Self {
        WireError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.reason)
    }
}

impl Error for WireError {}

impl From<JsonError> for WireError {
    fn from(e: JsonError) -> Self {
        WireError::new(e.to_string())
    }
}

// ---- field accessors -------------------------------------------------

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, WireError> {
    v.get(key)
        .ok_or_else(|| WireError::new(format!("missing field '{key}'")))
}

fn num_of(v: &Json, what: &str) -> Result<f64, WireError> {
    v.as_f64()
        .ok_or_else(|| WireError::new(format!("'{what}' is not a number")))
}

fn uint_of(v: &Json, what: &str) -> Result<u64, WireError> {
    let n = num_of(v, what)?;
    if n < 0.0 || n.fract() != 0.0 || n > (1u64 << 53) as f64 {
        return Err(WireError::new(format!(
            "'{what}' is not a non-negative integer: {n}"
        )));
    }
    Ok(n as u64)
}

fn uint(v: &Json, key: &str) -> Result<u64, WireError> {
    uint_of(field(v, key)?, key)
}

fn usize_field(v: &Json, key: &str) -> Result<usize, WireError> {
    Ok(uint(v, key)? as usize)
}

fn string(v: &Json, key: &str) -> Result<String, WireError> {
    match field(v, key)? {
        Json::Str(s) => Ok(s.clone()),
        _ => Err(WireError::new(format!("'{key}' is not a string"))),
    }
}

fn boolean(v: &Json, key: &str) -> Result<bool, WireError> {
    match field(v, key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(WireError::new(format!("'{key}' is not a bool"))),
    }
}

fn array<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], WireError> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| WireError::new(format!("'{key}' is not an array")))
}

fn opt_usize(v: &Json, key: &str) -> Result<Option<usize>, WireError> {
    match field(v, key)? {
        Json::Null => Ok(None),
        other => Ok(Some(uint_of(other, key)? as usize)),
    }
}

// ---- circuits and jobs -----------------------------------------------

/// Encodes a gate: the `arity()` meaningful qubit slots and the full
/// `params: [f64; 3]` array. The constructors' `usize::MAX` padding on
/// single-qubit gates is *canonical*, not data — the decoder restores
/// it, so constructor-built gates round-trip bit-for-bit.
pub fn gate_to_json(g: &Gate) -> Json {
    Json::obj([
        ("kind", Json::Str(g.kind.name().into())),
        (
            "qubits",
            Json::Arr(
                g.qubits
                    .iter()
                    .take(g.arity())
                    .map(|&q| Json::Num(q as f64))
                    .collect(),
            ),
        ),
        ("params", Json::nums(g.params)),
    ])
}

/// Decodes a gate; the kind tag must be a known OpenQASM mnemonic and
/// the qubit array must match the kind's arity.
pub fn gate_from_json(v: &Json) -> Result<Gate, WireError> {
    let name = string(v, "kind")?;
    let kind = GateKind::from_name(&name)
        .ok_or_else(|| WireError::new(format!("unknown gate kind '{name}'")))?;
    let qs = array(v, "qubits")?;
    let ps = array(v, "params")?;
    if qs.len() != kind.arity() {
        return Err(WireError::new(format!(
            "gate '{name}' needs {} qubits, got {}",
            kind.arity(),
            qs.len()
        )));
    }
    if ps.len() != 3 {
        return Err(WireError::new("gate params must have 3 slots"));
    }
    // Same padding the Gate constructors use for single-qubit gates.
    let mut qubits = [usize::MAX; 2];
    for (slot, q) in qs.iter().enumerate() {
        qubits[slot] = uint_of(q, "qubits")? as usize;
    }
    let mut params = [0f64; 3];
    for (slot, p) in ps.iter().enumerate() {
        params[slot] = num_of(p, "params")?;
    }
    Ok(Gate {
        kind,
        qubits,
        params,
    })
}

/// Encodes a circuit.
pub fn circuit_to_json(c: &Circuit) -> Json {
    Json::obj([
        ("n_qubits", Json::Num(c.n_qubits() as f64)),
        ("gates", Json::Arr(c.gates().iter().map(gate_to_json).collect())),
    ])
}

/// Decodes a circuit, re-validating every gate against the register.
pub fn circuit_from_json(v: &Json) -> Result<Circuit, WireError> {
    let n = usize_field(v, "n_qubits")?;
    let mut c = Circuit::new(n);
    for g in array(v, "gates")? {
        let gate = gate_from_json(g)?;
        c.try_push(gate)
            .map_err(|e| WireError::new(e.to_string()))?;
    }
    Ok(c)
}

/// Encodes a batch job (circuit plus optional shot budget).
pub fn job_to_json(job: &BatchJob) -> Json {
    Json::obj([
        ("circuit", circuit_to_json(&job.circuit)),
        (
            "shots",
            job.shots.map_or(Json::Null, |s| Json::Num(s as f64)),
        ),
    ])
}

/// Decodes a batch job.
pub fn job_from_json(v: &Json) -> Result<BatchJob, WireError> {
    Ok(BatchJob {
        circuit: circuit_from_json(field(v, "circuit")?)?,
        shots: opt_usize(v, "shots")?,
    })
}

/// Lane tag on the wire.
pub fn lane_to_str(lane: Lane) -> &'static str {
    match lane {
        Lane::Interactive => "interactive",
        Lane::Bulk => "bulk",
    }
}

/// Decodes a lane tag.
pub fn lane_from_str(s: &str) -> Result<Lane, WireError> {
    match s {
        "interactive" => Ok(Lane::Interactive),
        "bulk" => Ok(Lane::Bulk),
        other => Err(WireError::new(format!("unknown lane '{other}'"))),
    }
}

// ---- results ---------------------------------------------------------

/// Encodes measurements; expectations survive bit-for-bit thanks to
/// `qnat-json`'s exact `f64` round-trip.
pub fn measurements_to_json(m: &Measurements) -> Json {
    Json::obj([
        ("expectations", Json::nums(m.expectations.iter().copied())),
        (
            "shots_used",
            m.shots_used.map_or(Json::Null, |s| Json::Num(s as f64)),
        ),
    ])
}

/// Decodes measurements.
pub fn measurements_from_json(v: &Json) -> Result<Measurements, WireError> {
    let mut expectations = Vec::new();
    for e in array(v, "expectations")? {
        expectations.push(num_of(e, "expectations")?);
    }
    Ok(Measurements {
        expectations,
        shots_used: opt_usize(v, "shots_used")?,
    })
}

/// Encodes a typed backend error, preserving every field of all eleven
/// variants.
pub fn error_to_json(e: &BackendError) -> Json {
    match e {
        BackendError::QubitCount {
            needed,
            available,
            backend,
        } => Json::obj([
            ("kind", Json::Str("qubit_count".into())),
            ("needed", Json::Num(*needed as f64)),
            ("available", Json::Num(*available as f64)),
            ("backend", Json::Str(backend.clone())),
        ]),
        BackendError::UnmappedTwoQubitGate { gate_index, a, b } => Json::obj([
            ("kind", Json::Str("unmapped_two_qubit_gate".into())),
            ("gate_index", Json::Num(*gate_index as f64)),
            ("a", Json::Num(*a as f64)),
            ("b", Json::Num(*b as f64)),
        ]),
        BackendError::NonFiniteParameter { gate_index, slot } => Json::obj([
            ("kind", Json::Str("non_finite_parameter".into())),
            ("gate_index", Json::Num(*gate_index as f64)),
            ("slot", Json::Num(*slot as f64)),
        ]),
        BackendError::ShotBudget { requested } => Json::obj([
            ("kind", Json::Str("shot_budget".into())),
            ("requested", Json::Num(*requested as f64)),
        ]),
        BackendError::InvalidChannel { reason } => Json::obj([
            ("kind", Json::Str("invalid_channel".into())),
            ("reason", Json::Str(reason.clone())),
        ]),
        BackendError::InvalidConfig { reason } => Json::obj([
            ("kind", Json::Str("invalid_config".into())),
            ("reason", Json::Str(reason.clone())),
        ]),
        BackendError::TransientFailure { job, reason } => Json::obj([
            ("kind", Json::Str("transient_failure".into())),
            ("job", Json::Num(*job as f64)),
            ("reason", Json::Str(reason.clone())),
        ]),
        BackendError::QueueTimeout { job, waited_ms } => Json::obj([
            ("kind", Json::Str("queue_timeout".into())),
            ("job", Json::Num(*job as f64)),
            ("waited_ms", Json::Num(*waited_ms as f64)),
        ]),
        BackendError::DeadlineExceeded { job, needed_ms } => Json::obj([
            ("kind", Json::Str("deadline_exceeded".into())),
            ("job", Json::Num(*job as f64)),
            ("needed_ms", Json::Num(*needed_ms as f64)),
        ]),
        BackendError::CircuitOpen { backend } => Json::obj([
            ("kind", Json::Str("circuit_open".into())),
            ("backend", Json::Str(backend.clone())),
        ]),
        BackendError::Overloaded { reason } => Json::obj([
            ("kind", Json::Str("overloaded".into())),
            ("reason", Json::Str(reason.clone())),
        ]),
    }
}

/// Decodes a typed backend error.
pub fn error_from_json(v: &Json) -> Result<BackendError, WireError> {
    let kind = string(v, "kind")?;
    match kind.as_str() {
        "qubit_count" => Ok(BackendError::QubitCount {
            needed: usize_field(v, "needed")?,
            available: usize_field(v, "available")?,
            backend: string(v, "backend")?,
        }),
        "unmapped_two_qubit_gate" => Ok(BackendError::UnmappedTwoQubitGate {
            gate_index: usize_field(v, "gate_index")?,
            a: usize_field(v, "a")?,
            b: usize_field(v, "b")?,
        }),
        "non_finite_parameter" => Ok(BackendError::NonFiniteParameter {
            gate_index: usize_field(v, "gate_index")?,
            slot: usize_field(v, "slot")?,
        }),
        "shot_budget" => Ok(BackendError::ShotBudget {
            requested: usize_field(v, "requested")?,
        }),
        "invalid_channel" => Ok(BackendError::InvalidChannel {
            reason: string(v, "reason")?,
        }),
        "invalid_config" => Ok(BackendError::InvalidConfig {
            reason: string(v, "reason")?,
        }),
        "transient_failure" => Ok(BackendError::TransientFailure {
            job: uint(v, "job")?,
            reason: string(v, "reason")?,
        }),
        "queue_timeout" => Ok(BackendError::QueueTimeout {
            job: uint(v, "job")?,
            waited_ms: uint(v, "waited_ms")?,
        }),
        "deadline_exceeded" => Ok(BackendError::DeadlineExceeded {
            job: uint(v, "job")?,
            needed_ms: uint(v, "needed_ms")?,
        }),
        "circuit_open" => Ok(BackendError::CircuitOpen {
            backend: string(v, "backend")?,
        }),
        "overloaded" => Ok(BackendError::Overloaded {
            reason: string(v, "reason")?,
        }),
        other => Err(WireError::new(format!("unknown error kind '{other}'"))),
    }
}

fn failure_to_json(f: &FailureRecord) -> Json {
    Json::obj([
        ("job", Json::Num(f.job as f64)),
        ("attempt", Json::Num(f.attempt as f64)),
        ("error", error_to_json(&f.error)),
    ])
}

fn failure_from_json(v: &Json) -> Result<FailureRecord, WireError> {
    Ok(FailureRecord {
        job: uint(v, "job")?,
        attempt: usize_field(v, "attempt")?,
        error: error_from_json(field(v, "error")?)?,
    })
}

fn backend_usage_to_json(u: &BackendUsage) -> Json {
    Json::obj([
        ("attempts", Json::Num(u.attempts as f64)),
        ("retries", Json::Num(u.retries as f64)),
        ("validation_failures", Json::Num(u.validation_failures as f64)),
        ("fast_failed_jobs", Json::Num(u.fast_failed_jobs as f64)),
        ("fallback_jobs", Json::Num(u.fallback_jobs as f64)),
        ("backoff_ms", Json::Num(u.backoff_ms as f64)),
    ])
}

fn backend_usage_from_json(v: &Json) -> Result<BackendUsage, WireError> {
    Ok(BackendUsage {
        attempts: usize_field(v, "attempts")?,
        retries: usize_field(v, "retries")?,
        validation_failures: usize_field(v, "validation_failures")?,
        fast_failed_jobs: usize_field(v, "fast_failed_jobs")?,
        fallback_jobs: usize_field(v, "fallback_jobs")?,
        backoff_ms: uint(v, "backoff_ms")?,
    })
}

/// Encodes an execution report, every counter and failure record intact.
pub fn report_to_json(r: &ExecutionReport) -> Json {
    Json::obj([
        ("jobs", Json::Num(r.jobs as f64)),
        ("attempts", Json::Num(r.attempts as f64)),
        ("retries", Json::Num(r.retries as f64)),
        ("fallback_jobs", Json::Num(r.fallback_jobs as f64)),
        (
            "short_circuited_jobs",
            Json::Num(r.short_circuited_jobs as f64),
        ),
        ("fast_failed_jobs", Json::Num(r.fast_failed_jobs as f64)),
        (
            "deadline_exceeded_jobs",
            Json::Num(r.deadline_exceeded_jobs as f64),
        ),
        ("degraded", Json::Bool(r.degraded)),
        ("total_backoff_ms", Json::Num(r.total_backoff_ms as f64)),
        ("shot_shortfall", Json::Num(r.shot_shortfall as f64)),
        (
            "failures",
            Json::Arr(r.failures.iter().map(failure_to_json).collect()),
        ),
        (
            "by_backend",
            obj_from(
                r.by_backend
                    .iter()
                    .map(|(name, usage)| (name.clone(), backend_usage_to_json(usage))),
            ),
        ),
    ])
}

/// Decodes an execution report.
pub fn report_from_json(v: &Json) -> Result<ExecutionReport, WireError> {
    let mut failures = Vec::new();
    for f in array(v, "failures")? {
        failures.push(failure_from_json(f)?);
    }
    // Lenient: peers predating per-backend attribution omit the field.
    let mut by_backend = BTreeMap::new();
    if let Some(Json::Obj(map)) = v.get("by_backend") {
        for (name, usage) in map {
            by_backend.insert(name.clone(), backend_usage_from_json(usage)?);
        }
    }
    Ok(ExecutionReport {
        jobs: usize_field(v, "jobs")?,
        attempts: usize_field(v, "attempts")?,
        retries: usize_field(v, "retries")?,
        fallback_jobs: usize_field(v, "fallback_jobs")?,
        short_circuited_jobs: usize_field(v, "short_circuited_jobs")?,
        fast_failed_jobs: usize_field(v, "fast_failed_jobs")?,
        deadline_exceeded_jobs: usize_field(v, "deadline_exceeded_jobs")?,
        degraded: boolean(v, "degraded")?,
        total_backoff_ms: uint(v, "total_backoff_ms")?,
        shot_shortfall: usize_field(v, "shot_shortfall")?,
        failures,
        by_backend,
    })
}

/// Encodes a job result (ok measurements or typed error).
pub fn result_to_json(r: &Result<Measurements, BackendError>) -> Json {
    match r {
        Ok(m) => Json::obj([("ok", measurements_to_json(m))]),
        Err(e) => Json::obj([("err", error_to_json(e))]),
    }
}

/// Decodes a job result.
pub fn result_from_json(v: &Json) -> Result<Result<Measurements, BackendError>, WireError> {
    if let Some(ok) = v.get("ok") {
        return Ok(Ok(measurements_from_json(ok)?));
    }
    if let Some(err) = v.get("err") {
        return Ok(Err(error_from_json(err)?));
    }
    Err(WireError::new("result has neither 'ok' nor 'err'"))
}

/// Encodes a finished job's full outcome.
pub fn outcome_to_json(o: &JobOutcome) -> Json {
    Json::obj([
        ("result", result_to_json(&o.result)),
        ("report", report_to_json(&o.report)),
    ])
}

/// Decodes a finished job's full outcome.
pub fn outcome_from_json(v: &Json) -> Result<JobOutcome, WireError> {
    Ok(JobOutcome {
        result: result_from_json(field(v, "result")?)?,
        report: report_from_json(field(v, "report")?)?,
    })
}

// ---- requests and status mapping -------------------------------------

/// Builds the `POST /v1/jobs` request body.
pub fn submit_request_to_json(job: &BatchJob, lane: Lane) -> Json {
    Json::obj([
        ("job", job_to_json(job)),
        ("lane", Json::Str(lane_to_str(lane).into())),
    ])
}

/// Decodes the `POST /v1/jobs` request body.
pub fn submit_request_from_json(v: &Json) -> Result<(BatchJob, Lane), WireError> {
    let job = job_from_json(field(v, "job")?)?;
    let lane = lane_from_str(&string(v, "lane")?)?;
    Ok((job, lane))
}

/// Parses a request body held as raw bytes into a JSON value.
pub fn parse_body(body: &[u8]) -> Result<Json, WireError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| WireError::new("request body is not UTF-8"))?;
    Ok(Json::parse(text)?)
}

/// HTTP status a refused submission maps to:
/// [`SubmitError::QueueFull`] → 429 (back off and retry), everything
/// else (shed by admission, engine stopping) → 503.
pub fn submit_error_status(e: &SubmitError) -> u16 {
    match e {
        SubmitError::QueueFull { .. } => 429,
        SubmitError::Shed { .. } | SubmitError::Stopping => 503,
    }
}

/// Encodes a refused submission.
pub fn submit_error_to_json(e: &SubmitError) -> Json {
    let (kind, fields): (&str, Vec<(&'static str, Json)>) = match e {
        SubmitError::QueueFull { lane, capacity } => (
            "queue_full",
            vec![
                ("lane", Json::Str(lane_to_str(*lane).into())),
                ("capacity", Json::Num(*capacity as f64)),
            ],
        ),
        SubmitError::Shed { backend } => {
            ("shed", vec![("backend", Json::Str(backend.clone()))])
        }
        SubmitError::Stopping => ("stopping", vec![]),
    };
    let mut pairs = vec![
        ("kind", Json::Str(kind.into())),
        ("message", Json::Str(e.to_string())),
    ];
    pairs.extend(fields);
    Json::obj(pairs)
}

/// HTTP status a *completed-but-failed* job maps to when its outcome is
/// served: breaker fast-fails and load-shedding evictions are the
/// service's fault (503, retry later); every other typed error is a
/// terminal job failure (500).
pub fn backend_error_status(e: &BackendError) -> u16 {
    match e {
        BackendError::CircuitOpen { .. } | BackendError::Overloaded { .. } => 503,
        _ => 500,
    }
}

// ---- mitigation sweeps -----------------------------------------------

/// Encodes a 2×2 readout confusion matrix as two number rows
/// (`m[true][observed]`, row-stochastic).
pub fn confusion_to_json(m: &Confusion) -> Json {
    Json::Arr(vec![Json::nums(m[0]), Json::nums(m[1])])
}

/// Decodes a 2×2 readout confusion matrix.
pub fn confusion_from_json(v: &Json) -> Result<Confusion, WireError> {
    let rows = v
        .as_array()
        .ok_or_else(|| WireError::new("confusion matrix is not an array"))?;
    if rows.len() != 2 {
        return Err(WireError::new("confusion matrix needs exactly 2 rows"));
    }
    let mut m: Confusion = [[0.0; 2]; 2];
    for (r, row) in rows.iter().enumerate() {
        let cells = row
            .as_array()
            .ok_or_else(|| WireError::new("confusion row is not an array"))?;
        if cells.len() != 2 {
            return Err(WireError::new("confusion row needs exactly 2 entries"));
        }
        for (c, cell) in cells.iter().enumerate() {
            m[r][c] = num_of(cell, "confusion entry")?;
        }
    }
    Ok(m)
}

/// Builds the `POST /v1/mitigate` request body: the unfolded circuit
/// plus the full mitigation recipe (scales, fold strategy, ZNE method,
/// optional per-qubit readout confusions) and the sweep's replay seed.
pub fn mitigate_request_to_json(job: &MitigatedJob, seed: u64) -> Json {
    Json::obj([
        ("circuit", circuit_to_json(&job.circuit)),
        (
            "shots",
            job.shots.map_or(Json::Null, |s| Json::Num(s as f64)),
        ),
        (
            "scales",
            Json::Arr(job.scales.iter().map(|&s| Json::Num(s as f64)).collect()),
        ),
        ("strategy", Json::Str(job.strategy.name().into())),
        ("method", Json::Str(job.method.name().into())),
        (
            "readout",
            match &job.readout {
                None => Json::Null,
                Some(r) => Json::Arr(r.iter().map(confusion_to_json).collect()),
            },
        ),
        ("seed", Json::Num(seed as f64)),
    ])
}

/// Decodes the `POST /v1/mitigate` request body. `seed` is optional on
/// the wire and defaults to 0 — the sweep still replays bitwise, just
/// from the default seed.
pub fn mitigate_request_from_json(v: &Json) -> Result<(MitigatedJob, u64), WireError> {
    let circuit = circuit_from_json(field(v, "circuit")?)?;
    let shots = opt_usize(v, "shots")?;
    let mut scales = Vec::new();
    for s in array(v, "scales")? {
        scales.push(uint_of(s, "scales")? as usize);
    }
    let strategy_name = string(v, "strategy")?;
    let strategy = FoldStrategy::from_name(&strategy_name)
        .ok_or_else(|| WireError::new(format!("unknown fold strategy '{strategy_name}'")))?;
    let method_name = string(v, "method")?;
    let method = ZneMethod::from_name(&method_name)
        .ok_or_else(|| WireError::new(format!("unknown ZNE method '{method_name}'")))?;
    let readout = match v.get("readout") {
        None | Some(Json::Null) => None,
        Some(r) => {
            let rows = r
                .as_array()
                .ok_or_else(|| WireError::new("'readout' is not an array"))?;
            Some(
                rows.iter()
                    .map(confusion_from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            )
        }
    };
    let seed = match v.get("seed") {
        None | Some(Json::Null) => 0,
        Some(other) => uint_of(other, "seed")?,
    };
    Ok((
        MitigatedJob {
            circuit,
            shots,
            scales,
            strategy,
            method,
            readout,
        },
        seed,
    ))
}

/// HTTP status a refused mitigated submission maps to: every sweep-shape
/// error (too few / duplicate / even scales, readout length) is the
/// caller's fault → 400; an engine refusal keeps the plain submit
/// contract ([`submit_error_status`]: 429 queue-full, 503 shed/stopping).
pub fn mitigated_submit_error_status(e: &MitigatedSubmitError) -> u16 {
    match e {
        MitigatedSubmitError::Submit(inner) => submit_error_status(inner),
        _ => 400,
    }
}

/// Encodes a refused mitigated submission.
pub fn mitigated_submit_error_to_json(e: &MitigatedSubmitError) -> Json {
    let (kind, fields): (&str, Vec<(&'static str, Json)>) = match e {
        MitigatedSubmitError::TooFewScales { got } => (
            "too_few_scales",
            vec![("got", Json::Num(*got as f64))],
        ),
        MitigatedSubmitError::DuplicateScale { scale } => (
            "duplicate_scale",
            vec![("scale", Json::Num(*scale as f64))],
        ),
        MitigatedSubmitError::Fold(_) => ("fold", vec![]),
        MitigatedSubmitError::ReadoutShape { expected, got } => (
            "readout_shape",
            vec![
                ("expected", Json::Num(*expected as f64)),
                ("got", Json::Num(*got as f64)),
            ],
        ),
        MitigatedSubmitError::Submit(inner) => {
            ("submit", vec![("error", submit_error_to_json(inner))])
        }
    };
    let mut pairs = vec![
        ("kind", Json::Str(kind.into())),
        ("message", Json::Str(e.to_string())),
    ];
    pairs.extend(fields);
    Json::obj(pairs)
}

/// Encodes a typed mitigation-math error, preserving every variant's
/// fields so degenerate fits and singular confusions stay diagnosable
/// on the wire.
pub fn mitigate_error_to_json(e: &MitigateError) -> Json {
    let (kind, fields): (&str, Vec<(&'static str, Json)>) = match e {
        MitigateError::NotEnoughPoints { points } => (
            "not_enough_points",
            vec![("points", Json::Num(*points as f64))],
        ),
        MitigateError::ShapeMismatch { xs, ys } => (
            "shape_mismatch",
            vec![
                ("xs", Json::Num(*xs as f64)),
                ("ys", Json::Num(*ys as f64)),
            ],
        ),
        MitigateError::RaggedRow {
            index,
            expected,
            got,
        } => (
            "ragged_row",
            vec![
                ("index", Json::Num(*index as f64)),
                ("expected", Json::Num(*expected as f64)),
                ("got", Json::Num(*got as f64)),
            ],
        ),
        MitigateError::DegenerateFit { denom } => {
            ("degenerate_fit", vec![("denom", Json::Num(*denom))])
        }
        MitigateError::NonFinite { what } => {
            ("non_finite", vec![("what", Json::Str((*what).into()))])
        }
        MitigateError::SingularConfusion { det } => {
            ("singular_confusion", vec![("det", Json::Num(*det))])
        }
    };
    let mut pairs = vec![
        ("kind", Json::Str(kind.into())),
        ("message", Json::Str(e.to_string())),
    ];
    pairs.extend(fields);
    Json::obj(pairs)
}

/// HTTP status a completed-but-unaggregatable sweep maps to: a failed
/// sub-run keeps its backend error's class
/// ([`backend_error_status`]: 503 breaker/overload, 500 otherwise);
/// mitigation-math rejections (degenerate fit, singular confusion) are
/// terminal sweep failures → 500.
pub fn mitigation_error_status(e: &MitigationError) -> u16 {
    match e {
        MitigationError::SubRun { error, .. } => backend_error_status(error),
        MitigationError::Math(_) => 500,
    }
}

/// Encodes the typed reason a completed sweep failed to aggregate.
pub fn mitigation_error_to_json(e: &MitigationError) -> Json {
    match e {
        MitigationError::SubRun { scale, error } => Json::obj([
            ("kind", Json::Str("sub_run".into())),
            ("message", Json::Str(e.to_string())),
            ("scale", Json::Num(*scale as f64)),
            ("error", error_to_json(error)),
        ]),
        MitigationError::Math(inner) => Json::obj([
            ("kind", Json::Str("mitigation_math".into())),
            ("message", Json::Str(e.to_string())),
            ("error", mitigate_error_to_json(inner)),
        ]),
    }
}

/// The client-side view of a mitigated sweep's 200 response: the single
/// aggregated result plus the fan-out's observability (raw baseline,
/// scales, tickets, merged report).
#[derive(Debug, Clone, PartialEq)]
pub struct MitigatedResult {
    /// The zero-noise estimate.
    pub mitigated: Measurements,
    /// Unmitigated expectations at the smallest scale, when that run
    /// succeeded.
    pub raw: Option<Vec<f64>>,
    /// The sweep's noise scales, in submission order.
    pub scales: Vec<usize>,
    /// The engine tickets that served the sub-runs, mirroring `scales`.
    pub tickets: Vec<Ticket>,
    /// The sub-run execution reports merged in scale order.
    pub report: ExecutionReport,
}

/// Encodes a completed sweep: the aggregate (ok measurements or typed
/// [`MitigationError`]) next to the per-scale observability.
pub fn mitigated_outcome_to_json(o: &MitigatedOutcome) -> Json {
    Json::obj([
        (
            "mitigated",
            match &o.mitigated {
                Ok(m) => Json::obj([("ok", measurements_to_json(m))]),
                Err(e) => Json::obj([("err", mitigation_error_to_json(e))]),
            },
        ),
        (
            "raw",
            match &o.raw {
                None => Json::Null,
                Some(zs) => Json::nums(zs.iter().copied()),
            },
        ),
        (
            "scales",
            Json::Arr(
                o.runs
                    .iter()
                    .map(|r| Json::Num(r.scale as f64))
                    .collect(),
            ),
        ),
        (
            "tickets",
            Json::Arr(
                o.runs
                    .iter()
                    .map(|r| Json::Num(r.ticket as f64))
                    .collect(),
            ),
        ),
        ("report", report_to_json(&o.report)),
    ])
}

/// Decodes a mitigated sweep's **success** response. A body whose
/// `mitigated` carries `err` is a decode error here — failed sweeps
/// travel with a non-2xx status and surface client-side as
/// `ClientError::Status` with the typed body preserved.
pub fn mitigated_result_from_json(v: &Json) -> Result<MitigatedResult, WireError> {
    let mitigated = field(v, "mitigated")?;
    let Some(ok) = mitigated.get("ok") else {
        return Err(WireError::new(
            "mitigated sweep response carries 'err', not 'ok'",
        ));
    };
    let raw = match field(v, "raw")? {
        Json::Null => None,
        other => {
            let mut zs = Vec::new();
            for z in other
                .as_array()
                .ok_or_else(|| WireError::new("'raw' is not an array"))?
            {
                zs.push(num_of(z, "raw")?);
            }
            Some(zs)
        }
    };
    let mut scales = Vec::new();
    for s in array(v, "scales")? {
        scales.push(uint_of(s, "scales")? as usize);
    }
    let mut tickets = Vec::new();
    for t in array(v, "tickets")? {
        tickets.push(uint_of(t, "tickets")? as Ticket);
    }
    Ok(MitigatedResult {
        mitigated: measurements_from_json(ok)?,
        raw,
        scales,
        tickets,
        report: report_from_json(field(v, "report")?)?,
    })
}

/// Renders a breaker state for `/healthz`.
pub fn breaker_state_to_json(state: &BreakerState) -> Json {
    match state {
        BreakerState::Closed => Json::obj([("state", Json::Str("closed".into()))]),
        BreakerState::Open { cooldown_left } => Json::obj([
            ("state", Json::Str("open".into())),
            ("cooldown_left", Json::Num(*cooldown_left as f64)),
        ]),
        BreakerState::HalfOpen => Json::obj([("state", Json::Str("half_open".into()))]),
    }
}

/// Renders one breaker snapshot for `/healthz`: the state document plus
/// its counters.
pub fn breaker_snapshot_to_json(snap: &BreakerSnapshot) -> Json {
    Json::obj([
        ("state", breaker_state_to_json(&snap.state)),
        ("trips", Json::Num(snap.trips as f64)),
        ("recoveries", Json::Num(snap.recoveries as f64)),
        ("short_circuited", Json::Num(snap.short_circuited as f64)),
    ])
}

/// Renders the fleet router's health view as the `/healthz` `fleet`
/// section: one entry per device with its quarantine flag, engine load,
/// breaker and the router's current noise estimate.
pub fn fleet_health_to_json(health: &FleetHealth) -> Json {
    Json::Arr(
        health
            .devices
            .iter()
            .map(|d| {
                Json::obj([
                    ("name", Json::Str(d.name.clone())),
                    ("quarantined", Json::Bool(d.quarantined)),
                    (
                        "load",
                        Json::obj([
                            (
                                "queued_interactive",
                                Json::Num(d.load.queued_interactive as f64),
                            ),
                            ("queued_bulk", Json::Num(d.load.queued_bulk as f64)),
                            ("running", Json::Num(d.load.running as f64)),
                        ]),
                    ),
                    (
                        "breaker",
                        match &d.breaker {
                            Some(snap) => breaker_snapshot_to_json(snap),
                            None => Json::Null,
                        },
                    ),
                    ("noise_estimate", Json::Num(d.noise_estimate)),
                ])
            })
            .collect(),
    )
}

/// Renders the calibration tracker's health view as the `/healthz`
/// `calibration` section: one entry per device with its error-rate
/// estimate (null during cold start), the pessimistic routing estimate,
/// residual EMA, window occupancy and applied-observation count, plus
/// the tracker's global ticket progress. The snapshot-exactness test
/// pins every field, so a field added to
/// [`qnat_fleet::DeviceCalibrationView`] must be added here too.
pub fn calibration_health_to_json(health: &qnat_fleet::CalibrationHealth) -> Json {
    let opt = |v: Option<f64>| v.map_or(Json::Null, Json::Num);
    Json::obj([
        (
            "devices",
            Json::Arr(
                health
                    .devices
                    .iter()
                    .map(|d| {
                        Json::obj([
                            ("name", Json::Str(d.name.clone())),
                            ("estimate", opt(d.estimate)),
                            ("routing_estimate", opt(d.routing_estimate)),
                            ("residual", Json::Num(d.residual)),
                            ("window_fill", Json::Num(d.window_fill)),
                            ("observations", Json::Num(d.observations as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("applied", Json::Num(health.applied as f64)),
        ("pending", Json::Num(health.pending as f64)),
    ])
}

/// Renders the transport-level overload counters as the `/healthz`
/// `transport` section — the observable half of the keep-alive /
/// shedding contract (ISSUE 8). The snapshot-exactness test pins every
/// field, so a counter added to [`crate::server::TransportSnapshot`]
/// must be added here too.
pub fn transport_snapshot_to_json(snap: &crate::server::TransportSnapshot) -> Json {
    Json::obj([
        ("active_connections", Json::Num(snap.active_connections as f64)),
        (
            "connections_accepted",
            Json::Num(snap.connections_accepted as f64),
        ),
        ("connections_shed", Json::Num(snap.connections_shed as f64)),
        ("keepalive_reuses", Json::Num(snap.keepalive_reuses as f64)),
        ("requests_served", Json::Num(snap.requests_served as f64)),
        ("timeouts_408", Json::Num(snap.timeouts_408 as f64)),
        ("bad_requests_400", Json::Num(snap.bad_requests_400 as f64)),
        ("rejected_429", Json::Num(snap.rejected_429 as f64)),
        ("unavailable_503", Json::Num(snap.unavailable_503 as f64)),
    ])
}

/// Convenience: an object from owned-key pairs (healthz breaker maps).
pub fn obj_from(pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
    Json::Obj(pairs.into_iter().collect::<BTreeMap<_, _>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_error(e: BackendError) {
        let json = error_to_json(&e);
        let text = json.to_json();
        let back = error_from_json(&Json::parse(&text).expect("parse")).expect("decode");
        assert_eq!(back, e);
    }

    #[test]
    fn every_backend_error_variant_round_trips() {
        roundtrip_error(BackendError::QubitCount {
            needed: 9,
            available: 4,
            backend: "emulator".into(),
        });
        roundtrip_error(BackendError::UnmappedTwoQubitGate {
            gate_index: 3,
            a: 0,
            b: 2,
        });
        roundtrip_error(BackendError::NonFiniteParameter {
            gate_index: 1,
            slot: 2,
        });
        roundtrip_error(BackendError::ShotBudget { requested: 0 });
        roundtrip_error(BackendError::InvalidChannel {
            reason: "p=1.5".into(),
        });
        roundtrip_error(BackendError::InvalidConfig {
            reason: "zero trajectories".into(),
        });
        roundtrip_error(BackendError::TransientFailure {
            job: 17,
            reason: "calibration run".into(),
        });
        roundtrip_error(BackendError::QueueTimeout {
            job: 5,
            waited_ms: 1200,
        });
        roundtrip_error(BackendError::DeadlineExceeded {
            job: 8,
            needed_ms: 64,
        });
        roundtrip_error(BackendError::CircuitOpen {
            backend: "qpu-a".into(),
        });
        roundtrip_error(BackendError::Overloaded {
            reason: "interactive lane shed".into(),
        });
    }

    #[test]
    fn unknown_error_kind_is_a_typed_decode_error() {
        let v = Json::parse(r#"{"kind":"melted"}"#).expect("parse");
        let err = error_from_json(&v).expect_err("unknown kind");
        assert!(err.reason.contains("melted"));
    }

    #[test]
    fn job_round_trips_with_full_gate_arrays() {
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::ry(1, 0.1 + 0.2)); // 0.30000000000000004 — exact f64
        c.push(Gate::cx(0, 2));
        c.push(Gate::u3(2, 0.5, -1.25, 3.75));
        let job = BatchJob {
            circuit: c,
            shots: Some(512),
        };
        let back =
            job_from_json(&Json::parse(&job_to_json(&job).to_json()).expect("parse"))
                .expect("decode");
        assert_eq!(back.circuit.gates(), job.circuit.gates());
        assert_eq!(back.circuit.n_qubits(), 3);
        assert_eq!(back.shots, Some(512));

        let exact = BatchJob::exact(Circuit::new(1));
        let back = job_from_json(&Json::parse(&job_to_json(&exact).to_json()).expect("parse"))
            .expect("decode");
        assert_eq!(back.shots, None);
    }

    #[test]
    fn malformed_job_is_rejected_not_panicked() {
        for bad in [
            r#"{"circuit":{"n_qubits":1,"gates":[{"kind":"zz","qubits":[0,0],"params":[0,0,0]}]},"shots":null}"#,
            r#"{"circuit":{"n_qubits":1,"gates":[{"kind":"cx","qubits":[0,1],"params":[0,0,0]}]},"shots":null}"#,
            r#"{"circuit":{"n_qubits":1,"gates":[]},"shots":-3}"#,
            r#"{"circuit":{"n_qubits":1,"gates":[]}}"#,
        ] {
            let v = Json::parse(bad).expect("syntactically valid");
            assert!(job_from_json(&v).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn outcome_round_trips_bitwise() {
        let outcome = JobOutcome {
            result: Ok(Measurements {
                expectations: vec![0.1 + 0.2, -1.0 / 3.0, f64::MIN_POSITIVE],
                shots_used: Some(100),
            }),
            report: ExecutionReport {
                jobs: 1,
                attempts: 3,
                retries: 2,
                fallback_jobs: 1,
                short_circuited_jobs: 0,
                fast_failed_jobs: 0,
                deadline_exceeded_jobs: 0,
                degraded: true,
                total_backoff_ms: 17,
                shot_shortfall: 4,
                failures: vec![FailureRecord {
                    job: 0,
                    attempt: 1,
                    error: BackendError::TransientFailure {
                        job: 0,
                        reason: "blip".into(),
                    },
                }],
                by_backend: BTreeMap::from([(
                    "emulator(santiago)".to_string(),
                    BackendUsage {
                        attempts: 3,
                        retries: 2,
                        validation_failures: 0,
                        fast_failed_jobs: 0,
                        fallback_jobs: 1,
                        backoff_ms: 17,
                    },
                )]),
            },
        };
        let back = outcome_from_json(
            &Json::parse(&outcome_to_json(&outcome).to_json()).expect("parse"),
        )
        .expect("decode");
        assert_eq!(back, outcome);

        let failed = JobOutcome {
            result: Err(BackendError::Overloaded {
                reason: "evicted".into(),
            }),
            report: ExecutionReport::default(),
        };
        let back = outcome_from_json(
            &Json::parse(&outcome_to_json(&failed).to_json()).expect("parse"),
        )
        .expect("decode");
        assert_eq!(back, failed);
    }

    #[test]
    fn submit_request_round_trips_both_lanes() {
        for lane in [Lane::Interactive, Lane::Bulk] {
            let job = BatchJob::exact(Circuit::new(2));
            let v = Json::parse(&submit_request_to_json(&job, lane).to_json()).expect("parse");
            let (back_job, back_lane) = submit_request_from_json(&v).expect("decode");
            assert_eq!(back_lane, lane);
            assert_eq!(back_job.circuit.n_qubits(), 2);
        }
    }

    #[test]
    fn mitigate_request_round_trips_bitwise() {
        let mut c = Circuit::new(2);
        c.push(Gate::ry(0, 0.1 + 0.2));
        c.push(Gate::cx(0, 1));
        let job = MitigatedJob {
            circuit: c,
            shots: Some(256),
            scales: vec![1, 3, 5],
            strategy: FoldStrategy::Global,
            method: ZneMethod::Richardson,
            readout: Some(vec![[[0.97, 0.03], [0.05, 0.95]]; 2]),
        };
        let v = Json::parse(&mitigate_request_to_json(&job, 0xFEED).to_json()).expect("parse");
        let (back, seed) = mitigate_request_from_json(&v).expect("decode");
        assert_eq!(seed, 0xFEED);
        assert_eq!(back.circuit.gates(), job.circuit.gates());
        assert_eq!(back.shots, job.shots);
        assert_eq!(back.scales, job.scales);
        assert_eq!(back.strategy, job.strategy);
        assert_eq!(back.method, job.method);
        assert_eq!(back.readout, job.readout);
    }

    #[test]
    fn mitigate_request_seed_defaults_to_zero() {
        let v = Json::parse(
            r#"{"circuit":{"n_qubits":1,"gates":[]},"shots":null,
                "scales":[1,3],"strategy":"per_gate","method":"linear","readout":null}"#,
        )
        .expect("parse");
        let (_, seed) = mitigate_request_from_json(&v).expect("decode");
        assert_eq!(seed, 0);
    }

    #[test]
    fn mitigated_result_round_trips() {
        let outcome = MitigatedOutcome {
            mitigated: Ok(Measurements {
                expectations: vec![0.1 + 0.2, -1.0 / 3.0],
                shots_used: Some(768),
            }),
            raw: Some(vec![0.29, -0.31]),
            runs: vec![],
            report: ExecutionReport::default(),
        };
        let v = Json::parse(&mitigated_outcome_to_json(&outcome).to_json()).expect("parse");
        let back = mitigated_result_from_json(&v).expect("decode");
        assert_eq!(back.mitigated.expectations, vec![0.1 + 0.2, -1.0 / 3.0]);
        assert_eq!(back.mitigated.shots_used, Some(768));
        assert_eq!(back.raw, Some(vec![0.29, -0.31]));
        assert!(back.scales.is_empty() && back.tickets.is_empty());
    }

    #[test]
    fn mitigation_errors_keep_their_typed_fields_on_the_wire() {
        let math = MitigationError::Math(MitigateError::SingularConfusion { det: 1e-9 });
        let v = mitigation_error_to_json(&math);
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("mitigation_math"));
        assert_eq!(
            v.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
            Some("singular_confusion")
        );
        assert_eq!(mitigation_error_status(&math), 500);

        let sub = MitigationError::SubRun {
            scale: 5,
            error: BackendError::CircuitOpen {
                backend: "qpu".into(),
            },
        };
        let v = mitigation_error_to_json(&sub);
        assert_eq!(v.get("scale").and_then(Json::as_f64), Some(5.0));
        assert_eq!(mitigation_error_status(&sub), 503);
    }

    #[test]
    fn mitigated_submit_errors_map_shape_to_400_and_refusal_to_submit_contract() {
        use qnat_compiler::folding::FoldError;
        for e in [
            MitigatedSubmitError::TooFewScales { got: 1 },
            MitigatedSubmitError::DuplicateScale { scale: 3 },
            MitigatedSubmitError::Fold(FoldError::EvenScale { scale: 2 }),
            MitigatedSubmitError::ReadoutShape {
                expected: 4,
                got: 2,
            },
        ] {
            assert_eq!(mitigated_submit_error_status(&e), 400, "{e}");
        }
        assert_eq!(
            mitigated_submit_error_status(&MitigatedSubmitError::Submit(
                SubmitError::QueueFull {
                    lane: Lane::Bulk,
                    capacity: 4
                }
            )),
            429
        );
        assert_eq!(
            mitigated_submit_error_status(&MitigatedSubmitError::Submit(SubmitError::Stopping)),
            503
        );
    }

    #[test]
    fn status_mapping_matches_the_contract() {
        assert_eq!(
            submit_error_status(&SubmitError::QueueFull {
                lane: Lane::Bulk,
                capacity: 4
            }),
            429
        );
        assert_eq!(
            submit_error_status(&SubmitError::Shed {
                backend: "qpu".into()
            }),
            503
        );
        assert_eq!(submit_error_status(&SubmitError::Stopping), 503);
        assert_eq!(
            backend_error_status(&BackendError::CircuitOpen {
                backend: "qpu".into()
            }),
            503
        );
        assert_eq!(
            backend_error_status(&BackendError::Overloaded {
                reason: "shed".into()
            }),
            503
        );
        assert_eq!(
            backend_error_status(&BackendError::ShotBudget { requested: 0 }),
            500
        );
    }
}
