//! # qnat-transport — HTTP front door for the serving engine
//!
//! The network edge of the deployment stack (DESIGN.md §11): a
//! dependency-free HTTP/1.1 server over `std::net` that exposes a
//! [`qnat_serve::engine::ServeEngine`] to remote callers, plus the
//! blocking client the tests and benches drive.
//!
//! Layering:
//!
//! * [`wire`] — the `qnat-json` wire format. Lossless by construction:
//!   full gate arrays, exact `f64`s, all eleven typed error variants —
//!   which is what lets `tests/transport_e2e.rs` demand bitwise replay
//!   parity between a served workload and the same jobs through
//!   `deploy_batch`.
//! * [`http`] — a minimal request/response/chunked codec over
//!   `BufRead`/`Write`, with hard size limits; keep-alive framing and
//!   chunked request bodies included.
//! * [`server`] — the bounded accept/worker loop serving persistent
//!   (keep-alive) connections, route dispatch, per-request
//!   [`qnat_core::health::DeadlineBudget`] re-arming with a total
//!   read-time slow-loris guard, accept-edge 503 shedding at the
//!   connection limit, overload counters, graceful drain (DESIGN.md
//!   §14).
//! * [`client`] — blocking client with a pooled keep-alive connection
//!   (transparent reconnect-on-stale, idempotent-GET retry), a chunked
//!   streaming submit, and typed errors that preserve the 429/503
//!   contract.
//! * [`chaos`] — a seed-deterministic fault-injecting stream wrapper
//!   (resets, slow-loris pacing, stalls, corruption) that the
//!   `transport_chaos` suite drives against a live server.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod chaos;
pub mod client;
pub mod http;
pub mod server;
pub mod wire;

pub use chaos::{ChaosMode, ChaosPlan, ChaosStream};
pub use client::{
    ClientError, StreamEvent, StreamSubmit, TicketStatus, TimeoutPhase, TransportClient,
};
pub use http::{HttpError, Request, Response};
pub use server::{
    HealthSection, TransportConfig, TransportMetrics, TransportServer, TransportSnapshot,
};
pub use wire::WireError;
