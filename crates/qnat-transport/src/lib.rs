//! # qnat-transport — HTTP front door for the serving engine
//!
//! The network edge of the deployment stack (DESIGN.md §11): a
//! dependency-free HTTP/1.1 server over `std::net` that exposes a
//! [`qnat_serve::engine::ServeEngine`] to remote callers, plus the
//! blocking client the tests and benches drive.
//!
//! Layering:
//!
//! * [`wire`] — the `qnat-json` wire format. Lossless by construction:
//!   full gate arrays, exact `f64`s, all eleven typed error variants —
//!   which is what lets `tests/transport_e2e.rs` demand bitwise replay
//!   parity between a served workload and the same jobs through
//!   `deploy_batch`.
//! * [`http`] — a minimal request/response/chunked codec over
//!   `BufRead`/`Write`, with hard size limits.
//! * [`server`] — the bounded accept/worker loop, route dispatch,
//!   per-connection [`qnat_core::health::DeadlineBudget`] driving both
//!   socket timeouts and the `/wait` poll pacing, graceful drain.
//! * [`client`] — one-connection-per-request blocking client with typed
//!   errors that preserve the 429/503 contract.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod client;
pub mod http;
pub mod server;
pub mod wire;

pub use client::{ClientError, StreamEvent, TicketStatus, TimeoutPhase, TransportClient};
pub use http::{HttpError, Request, Response};
pub use server::{HealthSection, TransportConfig, TransportServer};
pub use wire::WireError;
