//! Minimal HTTP/1.1 over `std::io`: just enough protocol for the front
//! door and its in-repo client, with hard limits instead of trust.
//!
//! The server speaks persistent-connection HTTP/1.1: responses default
//! to `Connection: keep-alive` and the connection serves many requests
//! until the client sends `Connection: close`, the idle timeout fires,
//! or the per-connection request cap is reached (the final response
//! then carries `Connection: close`). `GET /v1/stream` holds the
//! connection open and pushes completions with chunked
//! transfer-encoding; chunked request *bodies* are also accepted, which
//! is how the streaming batch submit ships many jobs on one connection.
//! Requests are parsed from any `BufRead` and responses written to any
//! `Write`, so the codec unit-tests run on in-memory buffers; sockets
//! only appear in the server and client.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Longest accepted request line or header line, in bytes.
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Most headers accepted on one request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// A protocol-level failure while reading a request or response.
#[derive(Debug, Clone, PartialEq)]
pub struct HttpError {
    /// What was malformed or over limit.
    pub reason: String,
    /// `true` when the underlying socket timed out (deadline expired) —
    /// the server answers 408 instead of 400.
    pub timed_out: bool,
}

impl HttpError {
    pub(crate) fn new(reason: impl Into<String>) -> Self {
        HttpError {
            reason: reason.into(),
            timed_out: false,
        }
    }

    pub(crate) fn from_io(e: &std::io::Error) -> Self {
        HttpError {
            reason: e.to_string(),
            timed_out: matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "http error: {}", self.reason)
    }
}

impl Error for HttpError {}

/// One parsed request: method, split target, headers, body.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target, query string stripped.
    pub path: String,
    /// Raw query string (no leading `?`), if any.
    pub query: Option<String>,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Value of `key` in the query string (`k=v` pairs split on `&`;
    /// no percent-decoding — the wire format never needs it).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.as_deref()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }

    /// `true` when the client asked the server to close the connection
    /// after this response (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Reads one CRLF- (or LF-) terminated line, enforcing
/// [`MAX_LINE_BYTES`].
fn read_line(reader: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = reader.read(&mut byte).map_err(|e| HttpError::from_io(&e))?;
        if n == 0 {
            return if line.is_empty() {
                Ok(None) // clean EOF between requests
            } else {
                Err(HttpError::new("connection closed mid-line"))
            };
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            let text = String::from_utf8(line)
                .map_err(|_| HttpError::new("header line is not UTF-8"))?;
            return Ok(Some(text));
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE_BYTES {
            return Err(HttpError::new("header line over limit"));
        }
    }
}

/// Reads one request off the stream. `Ok(None)` means the peer closed
/// the connection cleanly before sending anything.
pub fn read_request(reader: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let Some(start) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = start.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => return Err(HttpError::new(format!("malformed request line '{start}'"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(format!("unsupported version '{version}'")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), Some(q.to_owned())),
        None => (target.to_owned(), None),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?
            .ok_or_else(|| HttpError::new("connection closed in headers"))?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::new(format!("malformed header '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        if headers.len() > MAX_HEADERS {
            return Err(HttpError::new("too many headers"));
        }
    }

    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let mut body = Vec::new();
    if chunked {
        body = read_chunked_body(reader)?;
    } else if let Some(len) = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::new(format!("bad content-length '{v}'")))
        })
        .transpose()?
    {
        if len > MAX_BODY_BYTES {
            return Err(HttpError::new("request body over limit"));
        }
        body.resize(len, 0);
        reader
            .read_exact(&mut body)
            .map_err(|e| HttpError::from_io(&e))?;
    }

    Ok(Some(Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers,
        body,
    }))
}

/// Reassembles a chunked request body, rejecting the malformed shapes a
/// hostile client can send: a non-hex chunk-size line, an oversized
/// chunk (alone or cumulatively past [`MAX_BODY_BYTES`]), chunk data
/// not terminated by CRLF, and a stream that ends before the
/// zero-length terminator chunk ("truncated trailer").
fn read_chunked_body(reader: &mut impl BufRead) -> Result<Vec<u8>, HttpError> {
    let mut body = Vec::new();
    loop {
        let size_line = read_line(reader)?
            .ok_or_else(|| HttpError::new("connection closed before chunk terminator"))?;
        // Chunk extensions (";ext=val") are allowed by the RFC; strip
        // them rather than trusting them.
        let size_token = size_line
            .split(';')
            .next()
            .unwrap_or_default()
            .trim();
        let size = usize::from_str_radix(size_token, 16)
            .map_err(|_| HttpError::new(format!("bad chunk size '{size_line}'")))?;
        if size == 0 {
            // Trailer section: zero or more header lines, then an empty
            // line. EOF before the blank line is a truncated trailer.
            loop {
                let trailer = read_line(reader)?
                    .ok_or_else(|| HttpError::new("connection closed in chunk trailer"))?;
                if trailer.is_empty() {
                    return Ok(body);
                }
            }
        }
        if size > MAX_BODY_BYTES || body.len() + size > MAX_BODY_BYTES {
            return Err(HttpError::new("chunked body over limit"));
        }
        let mut chunk = vec![0u8; size + 2]; // data + CRLF
        reader
            .read_exact(&mut chunk)
            .map_err(|e| HttpError::from_io(&e))?;
        if &chunk[size..] != b"\r\n" {
            return Err(HttpError::new("chunk data not CRLF-terminated"));
        }
        chunk.truncate(size);
        body.append(&mut chunk);
    }
}

/// Reason phrase for the status codes this transport emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes a complete response (`Content-Type: application/json`) with
/// an explicit connection disposition: `close: false` advertises
/// `Connection: keep-alive` so the peer may send another request on the
/// same socket, `close: true` tells it this response is the last.
pub fn write_response_conn(
    writer: &mut impl Write,
    status: u16,
    body: &str,
    close: bool,
) -> Result<(), HttpError> {
    // One write for head + body: a split write on a keep-alive
    // connection trips Nagle + delayed-ACK (~40 ms per request).
    let message = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n{body}",
        status_text(status),
        body.len(),
        if close { "close" } else { "keep-alive" },
    );
    writer
        .write_all(message.as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| HttpError::from_io(&e))
}

/// Writes a complete single-shot response (`Connection: close`,
/// `Content-Type: application/json`).
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    body: &str,
) -> Result<(), HttpError> {
    write_response_conn(writer, status, body, true)
}

/// Starts a chunked (streaming) response; follow with [`write_chunk`]
/// and [`finish_chunks`].
pub fn write_chunked_head(writer: &mut impl Write, status: u16) -> Result<(), HttpError> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n",
        status_text(status),
    );
    writer
        .write_all(head.as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| HttpError::from_io(&e))
}

/// Writes one chunk of a streaming response and flushes it so the
/// subscriber sees the completion promptly.
pub fn write_chunk(writer: &mut impl Write, data: &str) -> Result<(), HttpError> {
    // Single write per chunk (size line + payload + terminator) for the
    // same Nagle reason as `write_response_conn`.
    writer
        .write_all(format!("{:x}\r\n{data}\r\n", data.len()).as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| HttpError::from_io(&e))
}

/// Terminates a chunked response.
pub fn finish_chunks(writer: &mut impl Write) -> Result<(), HttpError> {
    writer
        .write_all(b"0\r\n\r\n")
        .and_then(|()| writer.flush())
        .map_err(|e| HttpError::from_io(&e))
}

/// One parsed response, as the in-repo blocking client sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Decoded body — chunked transfer-encoding already reassembled.
    pub body: Vec<u8>,
}

impl Response {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8.
    pub fn text(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::new("response body is not UTF-8"))
    }
}

/// Reads one full response, reassembling a chunked body if the server
/// streamed it.
pub fn read_response(reader: &mut impl BufRead) -> Result<Response, HttpError> {
    let start = read_line(reader)?.ok_or_else(|| HttpError::new("no response"))?;
    let mut parts = start.split_whitespace();
    let status = match (parts.next(), parts.next()) {
        (Some(v), Some(code)) if v.starts_with("HTTP/1.") => code
            .parse::<u16>()
            .map_err(|_| HttpError::new(format!("bad status '{code}'")))?,
        _ => return Err(HttpError::new(format!("malformed status line '{start}'"))),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?
            .ok_or_else(|| HttpError::new("connection closed in headers"))?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::new(format!("malformed header '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let mut body = Vec::new();
    if chunked {
        loop {
            let size_line = read_line(reader)?
                .ok_or_else(|| HttpError::new("connection closed in chunk size"))?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| HttpError::new(format!("bad chunk size '{size_line}'")))?;
            if body.len() + size > MAX_BODY_BYTES {
                return Err(HttpError::new("chunked body over limit"));
            }
            let mut chunk = vec![0u8; size + 2]; // data + CRLF
            reader
                .read_exact(&mut chunk)
                .map_err(|e| HttpError::from_io(&e))?;
            if size == 0 {
                break;
            }
            chunk.truncate(size);
            body.extend_from_slice(&chunk);
        }
    } else if let Some(len) = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::new(format!("bad content-length '{v}'")))
        })
        .transpose()?
    {
        if len > MAX_BODY_BYTES {
            return Err(HttpError::new("response body over limit"));
        }
        body.resize(len, 0);
        reader
            .read_exact(&mut body)
            .map_err(|e| HttpError::from_io(&e))?;
    }

    Ok(Response {
        status,
        headers,
        body,
    })
}

/// Writes a request as the client sends it. The pooled client keeps
/// its connection, so requests advertise `Connection: keep-alive`.
pub fn write_request(
    writer: &mut impl Write,
    method: &str,
    target: &str,
    body: &[u8],
) -> Result<(), HttpError> {
    // Head and body go out in one write — see `write_response_conn` on
    // the Nagle + delayed-ACK trap split writes set on reused
    // connections.
    let mut message = format!(
        "{method} {target} HTTP/1.1\r\nhost: localhost\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: keep-alive\r\n\r\n",
        body.len(),
    )
    .into_bytes();
    message.extend_from_slice(body);
    writer
        .write_all(&message)
        .and_then(|()| writer.flush())
        .map_err(|e| HttpError::from_io(&e))
}

/// Starts a chunked (streaming) request — the streaming batch submit's
/// head. Follow with [`write_chunk`] per payload line and
/// [`finish_chunks`] to terminate the body.
pub fn write_chunked_request_head(
    writer: &mut impl Write,
    method: &str,
    target: &str,
) -> Result<(), HttpError> {
    let head = format!(
        "{method} {target} HTTP/1.1\r\nhost: localhost\r\ncontent-type: application/json\r\ntransfer-encoding: chunked\r\nconnection: keep-alive\r\n\r\n",
    );
    writer
        .write_all(head.as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| HttpError::from_io(&e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_a_post_with_body_and_query() {
        let raw = b"POST /v1/jobs?lane=bulk HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .expect("read")
            .expect("a request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.query_param("lane"), Some("bulk"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn clean_eof_is_none_and_garbage_is_an_error() {
        assert_eq!(read_request(&mut BufReader::new(&b""[..])).expect("eof"), None);
        assert!(read_request(&mut BufReader::new(&b"NOT HTTP\r\n\r\n"[..])).is_err());
        let long = vec![b'a'; MAX_LINE_BYTES + 10];
        assert!(read_request(&mut BufReader::new(&long[..])).is_err());
    }

    #[test]
    fn response_round_trips_fixed_and_chunked() {
        let mut out = Vec::new();
        write_response(&mut out, 429, r#"{"kind":"queue_full"}"#).expect("write");
        let resp = read_response(&mut BufReader::new(&out[..])).expect("read");
        assert_eq!(resp.status, 429);
        assert_eq!(resp.text().expect("utf8"), r#"{"kind":"queue_full"}"#);

        let mut out = Vec::new();
        write_chunked_head(&mut out, 200).expect("head");
        write_chunk(&mut out, "{\"a\":1}\n").expect("chunk");
        write_chunk(&mut out, "{\"b\":2}\n").expect("chunk");
        finish_chunks(&mut out).expect("finish");
        let resp = read_response(&mut BufReader::new(&out[..])).expect("read");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.text().expect("utf8"), "{\"a\":1}\n{\"b\":2}\n");
    }

    #[test]
    fn chunked_request_body_reassembles() {
        let raw = b"POST /v1/jobs/stream HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n4\r\nabcd\r\n3;ext=1\r\nefg\r\n0\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .expect("read")
            .expect("a request");
        assert_eq!(req.body, b"abcdefg");
    }

    #[test]
    fn malformed_chunked_bodies_are_typed_errors() {
        let parse = |raw: &[u8]| {
            let framed = [
                b"POST /v1/jobs HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n".as_slice(),
                raw,
            ]
            .concat();
            read_request(&mut BufReader::new(&framed[..]))
        };
        // Bad chunk-size line: not hex.
        let e = parse(b"zz\r\nabcd\r\n0\r\n\r\n").expect_err("bad size");
        assert!(e.reason.contains("bad chunk size"), "{e}");
        // Truncated trailer: stream ends before the blank line.
        let e = parse(b"4\r\nabcd\r\n0\r\n").expect_err("truncated trailer");
        assert!(e.reason.contains("trailer"), "{e}");
        // Stream ends before the zero chunk at all.
        let e = parse(b"4\r\nabcd\r\n").expect_err("no terminator");
        assert!(e.reason.contains("terminator"), "{e}");
        // Oversized chunk.
        let e = parse(format!("{:x}\r\n", MAX_BODY_BYTES + 1).as_bytes())
            .expect_err("oversized");
        assert!(e.reason.contains("over limit"), "{e}");
        // Chunk data not CRLF-terminated (size lies short).
        let e = parse(b"2\r\nabcd\r\n0\r\n\r\n").expect_err("bad terminator");
        assert!(e.reason.contains("CRLF"), "{e}");
    }

    #[test]
    fn keep_alive_framing_round_trips_two_requests() {
        let mut out = Vec::new();
        write_request(&mut out, "GET", "/healthz", b"").expect("write");
        write_request(&mut out, "GET", "/v1/jobs/3", b"").expect("write");
        let mut reader = BufReader::new(&out[..]);
        let first = read_request(&mut reader).expect("read").expect("first");
        let second = read_request(&mut reader).expect("read").expect("second");
        assert_eq!(first.path, "/healthz");
        assert_eq!(second.path, "/v1/jobs/3");
        assert!(!first.wants_close(), "client requests keep the connection");
        assert_eq!(read_request(&mut reader).expect("eof"), None);

        let mut out = Vec::new();
        write_response_conn(&mut out, 200, "{}", false).expect("keep");
        write_response_conn(&mut out, 200, "{}", true).expect("close");
        let mut reader = BufReader::new(&out[..]);
        let kept = read_response(&mut reader).expect("read");
        let closed = read_response(&mut reader).expect("read");
        assert_eq!(kept.header("connection"), Some("keep-alive"));
        assert_eq!(closed.header("connection"), Some("close"));
    }

    #[test]
    fn client_request_parses_back() {
        let mut out = Vec::new();
        write_request(&mut out, "GET", "/healthz", b"").expect("write");
        let req = read_request(&mut BufReader::new(&out[..]))
            .expect("read")
            .expect("a request");
        assert_eq!((req.method.as_str(), req.path.as_str()), ("GET", "/healthz"));
        assert!(req.body.is_empty());
    }
}
