//! Socket-level chaos suite (ISSUE 8): seed-deterministic hostile
//! clients — mid-header resets, slow-loris dribbles, stalled readers,
//! corrupted bytes — driven against a live front door. The contract
//! under test: the server never hangs a worker, never leaks a
//! connection slot, and always answers 400/408 (or closes cleanly),
//! with healthy traffic surviving alongside the abuse.

use qnat_core::batch::BatchJob;
use qnat_core::executor::{ResilientExecutor, RetryPolicy};
use qnat_noise::backend::{BackendError, SimulatorBackend};
use qnat_serve::engine::{ServeConfig, ServeEngine};
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::Gate;
use qnat_transport::{
    ChaosMode, ChaosPlan, ChaosStream, TransportClient, TransportConfig, TransportServer,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn simple_job(k: usize) -> BatchJob {
    let mut c = Circuit::new(2);
    c.push(Gate::ry(0, 0.1 + 0.05 * k as f64));
    c.push(Gate::cx(0, 1));
    BatchJob::exact(c)
}

fn clean_factory() -> impl Fn(u64, u64) -> Result<ResilientExecutor, BackendError> + Send + Sync
{
    |_job, seed| {
        Ok(ResilientExecutor::new(
            Box::new(SimulatorBackend::new(seed)),
            RetryPolicy::default(),
        ))
    }
}

/// A front door with chaos-friendly (short) timeouts so torn and
/// dribbling connections resolve within the test budget.
fn chaos_server(request_deadline_ms: u64, idle_timeout_ms: u64) -> TransportServer {
    let engine = ServeEngine::new(
        ServeConfig {
            workers: 2,
            seed: 7,
            ..ServeConfig::default()
        },
        clean_factory(),
    );
    TransportServer::bind(
        "127.0.0.1:0",
        TransportConfig {
            http_workers: 4,
            request_deadline_ms,
            idle_timeout_ms,
            ..TransportConfig::default()
        },
        engine,
    )
    .expect("bind")
}

const HEALTH_REQUEST: &[u8] = b"GET /healthz HTTP/1.1\r\ncontent-length: 0\r\n\r\n";

/// Drives one chaos connection: writes a health request through the
/// plan's fault schedule, then tries to collect whatever the server
/// answers. Returns the raw response bytes (empty when the connection
/// died first). Never blocks past `read_timeout`.
fn run_chaos_conn(addr: std::net::SocketAddr, plan: ChaosPlan) -> Vec<u8> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(3)))
        .expect("read timeout");
    stream
        .set_write_timeout(Some(Duration::from_secs(3)))
        .expect("write timeout");
    let mut chaos = ChaosStream::new(stream, plan);
    // A torn-down or abandoned write is the *point* of most modes.
    let _ = chaos.write_all(HEALTH_REQUEST).and_then(|()| chaos.flush());
    let mut response = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match chaos.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => response.extend_from_slice(&buf[..n]),
        }
    }
    response
}

/// Waits until the server has admitted at least `accepted` connections
/// and drained every slot back to zero — the no-leaked-slots assertion,
/// raceless against fire-and-forget clients (a reset connection
/// finishes client-side before the accept thread has even seen it).
fn assert_connections_drain(server: &TransportServer, accepted: u64) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let snap = server.metrics();
        if snap.connections_accepted >= accepted && snap.active_connections == 0 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "connections not drained after 5s: want ≥{accepted} accepted and 0 active, \
             got {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The storm: 32 seed-derived chaos connections (every mode represented)
/// fired concurrently. Clean arms must get a 200; every arm must resolve
/// without hanging; afterwards the server must still answer healthy
/// traffic promptly and hold zero active slots.
#[test]
fn chaos_storm_never_hangs_workers_or_leaks_slots() {
    let server = chaos_server(400, 300);
    let addr = server.local_addr();
    let seed = 0x000C_4A05_u64;

    let handles: Vec<_> = (0..32u64)
        .map(|k| {
            let plan = ChaosPlan::derive(seed, k);
            std::thread::spawn(move || (plan, run_chaos_conn(addr, plan)))
        })
        .collect();
    let mut clean_arms = 0usize;
    for h in handles {
        let (plan, response) = h.join().expect("chaos thread never panics");
        if plan.mode == ChaosMode::Clean {
            clean_arms += 1;
            let text = String::from_utf8_lossy(&response);
            assert!(
                text.starts_with("HTTP/1.1 200"),
                "clean arm {} must be served normally amid the chaos, got: {text:.60}",
                plan.conn
            );
        } else if !response.is_empty() {
            // Abused arms that still got an answer got a *valid* one.
            let text = String::from_utf8_lossy(&response);
            assert!(
                text.starts_with("HTTP/1.1 "),
                "arm {} ({:?}) got garbage back: {text:.60}",
                plan.conn,
                plan.mode
            );
        }
    }
    assert!(clean_arms > 0, "the seed must include control arms");

    // The server survived: a fresh client is answered promptly.
    let started = Instant::now();
    let client = TransportClient::new(addr).with_timeout(Duration::from_secs(3));
    let health = client.healthz().expect("server is still alive after the storm");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "post-storm health check took {:?} — a worker is wedged",
        started.elapsed()
    );
    assert!(health.get("transport").is_some(), "health has transport section");
    drop(client);
    // 32 storm connections + the post-storm health client.
    assert_connections_drain(&server, 33);
    assert_eq!(
        server.metrics().connections_shed,
        0,
        "storm stayed under the limit"
    );
    server.shutdown();
}

/// Slow-loris: a client dribbling one byte every 30 ms never completes a
/// request under a 150 ms *total* read deadline — the server answers 408
/// (or cuts the connection) well before the dribble would finish, proving
/// the guard bounds total read time rather than per-read gaps (each gap
/// is far below any per-read timeout).
#[test]
fn slow_loris_exhausts_the_total_read_deadline() {
    let server = chaos_server(150, 200);
    let addr = server.local_addr();
    let plan = ChaosPlan {
        seed: 0,
        conn: 0,
        mode: ChaosMode::SlowLoris {
            delay_ms: 30,
            max_bytes: 10_000,
        },
    };

    let started = Instant::now();
    let response = run_chaos_conn(addr, plan);
    let elapsed = started.elapsed();
    // 44 request bytes at 30 ms each would be ~1.3 s of dribbling; the
    // guard must end it near the 150 ms deadline.
    assert!(
        elapsed < Duration::from_millis(1_000),
        "slow-loris connection ran {elapsed:?} — total-read-time guard did not fire"
    );
    let text = String::from_utf8_lossy(&response);
    assert!(
        response.is_empty() || text.starts_with("HTTP/1.1 408"),
        "slow-loris gets 408 or a close, got: {text:.60}"
    );
    assert_connections_drain(&server, 1);
    assert!(
        server.metrics().timeouts_408 >= 1,
        "the 408 must be counted even if the client never read it"
    );
    server.shutdown();
}

/// Mid-header resets: connections cut after a handful of bytes release
/// their slot promptly and never earn a response — and a submit cut
/// mid-body must not enqueue a job.
#[test]
fn mid_header_and_mid_body_resets_release_slots_without_side_effects() {
    let server = chaos_server(300, 200);
    let addr = server.local_addr();

    // Mid-header: 10 bytes of the request line, then gone.
    for conn in 0..4u64 {
        let plan = ChaosPlan {
            seed: 1,
            conn,
            mode: ChaosMode::ResetAfter { after: 10 },
        };
        let response = run_chaos_conn(addr, plan);
        assert!(
            response.is_empty() || String::from_utf8_lossy(&response).starts_with("HTTP/1.1 4"),
            "a truncated request gets a 4xx or nothing"
        );
    }

    // Mid-body: a well-formed submit head whose body is cut short.
    let job = simple_job(0);
    let body = qnat_transport::wire::submit_request_to_json(&job, qnat_serve::engine::Lane::Bulk)
        .to_json();
    let head = format!(
        "POST /v1/jobs HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    let full: Vec<u8> = head.bytes().chain(body.bytes()).collect();
    let cut = head.len() + body.len() / 2;
    let plan = ChaosPlan {
        seed: 2,
        conn: 0,
        mode: ChaosMode::ResetAfter { after: cut },
    };
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(3)))
        .expect("read timeout");
    let mut chaos = ChaosStream::new(stream, plan);
    let _ = chaos.write_all(&full);
    let mut sink = Vec::new();
    let _ = chaos.read_to_end(&mut sink);

    // 4 mid-header resets + 1 mid-body reset.
    assert_connections_drain(&server, 5);
    let stats = server.engine().stats();
    assert_eq!(
        stats.submitted, 0,
        "a submit truncated mid-body must never reach the engine"
    );
    let snap = server.metrics();
    assert!(
        snap.bad_requests_400 >= 1,
        "truncated requests are counted as 400s (got snapshot {snap:?})"
    );
    server.shutdown();
}

/// Corrupted request bytes get a 400 (or 404 when only the path was
/// mangled, or a close when the framing died) — never a hang, never a
/// crash, and healthy requests interleave untouched.
#[test]
fn corrupted_bytes_get_typed_refusals_not_hangs() {
    let server = chaos_server(400, 300);
    let addr = server.local_addr();
    let client = TransportClient::new(addr).with_timeout(Duration::from_secs(3));

    for conn in 0..8u64 {
        let plan = ChaosPlan {
            seed: 3,
            conn,
            mode: ChaosMode::Corrupt { rate_den: 3 + conn % 5 },
        };
        let started = Instant::now();
        let response = run_chaos_conn(addr, plan);
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "corrupt connection {conn} took {:?}",
            started.elapsed()
        );
        if !response.is_empty() {
            let text = String::from_utf8_lossy(&response);
            assert!(
                text.starts_with("HTTP/1.1 4") || text.starts_with("HTTP/1.1 2"),
                "corrupt arm {conn} got a non-HTTP reply: {text:.60}"
            );
        }
        // Healthy traffic interleaves untouched after every abuse round.
        client.healthz().expect("healthy call between corrupt arms");
    }
    drop(client);
    // 8 corrupt connections + the interleaved health client's one
    // pooled connection.
    assert_connections_drain(&server, 9);
    server.shutdown();
}

/// A stalled reader (request sent, response never collected) must not
/// hold its worker hostage: the response lands in the kernel buffer, the
/// abandoned connection reads as EOF once the client walks away, and
/// concurrent healthy traffic keeps flowing.
#[test]
fn stalled_readers_do_not_wedge_workers() {
    let server = chaos_server(300, 200);
    let addr = server.local_addr();

    // As many stalled readers as HTTP workers, all at once.
    let handles: Vec<_> = (0..4u64)
        .map(|conn| {
            let plan = ChaosPlan {
                seed: 4,
                conn,
                mode: ChaosMode::StallAfterWrite { hold_ms: 150 },
            };
            std::thread::spawn(move || run_chaos_conn(addr, plan))
        })
        .collect();
    for h in handles {
        h.join().expect("stalled reader resolves");
    }

    // The moment the stallers are gone, a healthy call must be served
    // within the idle window (workers were parked at worst until their
    // abandoned connections hit EOF/idle expiry).
    let started = Instant::now();
    let client = TransportClient::new(addr).with_timeout(Duration::from_secs(3));
    client.healthz().expect("healthy call after the stalls");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "post-stall health check took {:?} — a worker is wedged",
        started.elapsed()
    );
    drop(client);
    // 4 stalled readers + the post-stall health client.
    assert_connections_drain(&server, 5);
    server.shutdown();
}

/// The chaos schedule is replay-stable: the same seed produces the same
/// per-connection modes and the same counter deltas for the
/// deterministic (non-racing) counters across two full storms.
#[test]
fn chaos_runs_replay_deterministically() {
    let seed = 0x00DE_7E12_u64;
    let run = |_: u32| -> (Vec<ChaosMode>, u64) {
        let server = chaos_server(400, 300);
        let addr = server.local_addr();
        let modes: Vec<ChaosMode> = (0..12u64)
            .map(|k| {
                let plan = ChaosPlan::derive(seed, k);
                run_chaos_conn(addr, plan);
                plan.mode
            })
            .collect();
        assert_connections_drain(&server, 12);
        let accepted = server.metrics().connections_accepted;
        server.shutdown();
        (modes, accepted)
    };
    let (modes_a, accepted_a) = run(0);
    let (modes_b, accepted_b) = run(1);
    assert_eq!(modes_a, modes_b, "plans are pure in (seed, conn)");
    assert_eq!(accepted_a, accepted_b, "same schedule, same admissions");
}
