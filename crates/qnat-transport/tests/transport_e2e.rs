//! End-to-end acceptance tests for the HTTP front door (ISSUE 5): the
//! replay-parity contract over a real TCP socket, the 429/503/504
//! status mapping, the chunked completion stream, `/healthz`, and
//! graceful drain.

use qnat_core::batch::BatchJob;
use qnat_core::executor::{splitmix64, ResilientExecutor, RetryPolicy};
use qnat_core::infer::{infer, InferenceBackend, InferenceOptions};
use qnat_core::model::{Qnn, QnnConfig};
use qnat_json::Json;
use qnat_noise::backend::{
    BackendError, EmulatorBackend, NoiseModelBackend, QuantumBackend, SimulatorBackend,
};
use qnat_noise::fault::{FaultSpec, FaultyBackend};
use qnat_noise::presets;
use qnat_serve::engine::{Lane, LaneConfig, ServeConfig, ServeEngine};
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::Gate;
use qnat_transport::{
    ClientError, TicketStatus, TimeoutPhase, TransportClient, TransportConfig, TransportServer,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn simple_job(k: usize) -> BatchJob {
    let mut c = Circuit::new(2);
    c.push(Gate::ry(0, 0.1 + 0.05 * k as f64));
    c.push(Gate::cx(0, 1));
    BatchJob::exact(c)
}

fn clean_factory() -> impl Fn(u64, u64) -> Result<ResilientExecutor, BackendError> + Send + Sync
{
    |_job, seed| {
        Ok(ResilientExecutor::new(
            Box::new(SimulatorBackend::new(seed)),
            RetryPolicy::default(),
        ))
    }
}

fn serve(config: ServeConfig, transport: TransportConfig) -> (TransportServer, TransportClient) {
    let engine = ServeEngine::new(config, clean_factory());
    let server = TransportServer::bind("127.0.0.1:0", transport, engine).expect("bind");
    let client = TransportClient::new(server.local_addr());
    (server, client)
}

/// ISSUE 5 acceptance: a workload served over a real TCP socket is
/// bitwise identical — measurements, obs-mapped block outputs and the
/// ticket-order-merged execution report — to the same jobs through a
/// fresh `deploy_batch` deployment. The transport engine's per-job
/// seeds follow the shared formula
/// `splitmix64(engine_seed ^ splitmix64(ticket))` with the engine seed
/// equal to block 0's batch pool seed, so ticket `t` replays batch job
/// `t` exactly; the JSON wire format's exact `f64` round-trip carries
/// the equality across the socket.
#[test]
fn served_workload_bitwise_matches_deploy_batch() {
    let device = presets::santiago();
    let qnn = Qnn::for_device(QnnConfig::standard(16, 4, 1, 2), &device, 7)
        .expect("santiago fits the single-block model");
    let batch: Vec<Vec<f64>> = (0..24)
        .map(|k| (0..16).map(|j| ((k * 16 + j) as f64 * 0.013).sin()).collect())
        .collect();
    let spec = FaultSpec::transient(0.5, 99);
    let policy = RetryPolicy::default();
    let seed = 11u64;

    // Reference: the whole batch through the pooled deployment.
    let pooled = qnn
        .deploy_batch(&device, 2, policy.clone(), Some(spec), 4, seed)
        .expect("batch deploy");
    let mut rng = StdRng::seed_from_u64(0);
    let via_batch = infer(
        &qnn,
        &batch,
        &InferenceBackend::Batch(&pooled),
        &InferenceOptions::default(),
        &mut rng,
    )
    .expect("batch inference");

    // Transport side: one engine for block 0, built with the same
    // routed plan and the same per-job factory `deploy_batch` uses
    // (emulator primary, fault decorator positioned at the job index,
    // noise-model fallback, jitter decorrelated per job).
    let plans = qnn.route_plan(&device, 2).expect("route");
    let plan = &plans[0];
    let view = plan.view.clone();
    let factory_policy = policy.clone();
    let factory = move |job: u64, job_seed: u64| -> Result<ResilientExecutor, BackendError> {
        let emulator = EmulatorBackend::new(&view, job_seed)?;
        let primary: Box<dyn QuantumBackend> = Box::new(FaultyBackend::starting_at(
            emulator,
            FaultSpec {
                seed: spec.seed ^ job_seed,
                ..spec
            },
            job,
        ));
        let fallback = NoiseModelBackend::new(&view, job_seed ^ 0x5eed)?;
        Ok(ResilientExecutor::with_fallback(
            primary,
            Box::new(fallback),
            RetryPolicy {
                jitter_seed: factory_policy.jitter_seed ^ job_seed,
                ..factory_policy.clone()
            },
        ))
    };
    // Block 0's batch pool seed — tickets then replay job indices.
    let engine_seed = splitmix64(seed ^ 0u64.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let engine = ServeEngine::new(
        ServeConfig {
            workers: 4,
            seed: engine_seed,
            ..ServeConfig::default()
        },
        factory,
    );
    let server =
        TransportServer::bind("127.0.0.1:0", TransportConfig::default(), engine).expect("bind");
    let client = TransportClient::new(server.local_addr());

    // The exact jobs `eval_block_batch` builds for block 0.
    let block = &qnn.blocks()[0];
    let jobs: Vec<BatchJob> = batch
        .iter()
        .map(|row| {
            let mut params = block.encoder.angles(row);
            params.extend_from_slice(qnn.block_params(0));
            BatchJob {
                circuit: plan.lowered.bind(&params),
                shots: None,
            }
        })
        .collect();

    let tickets: Vec<u64> = jobs
        .iter()
        .map(|job| client.submit(job, Lane::Interactive).expect("submit over TCP"))
        .collect();
    assert_eq!(
        tickets,
        (0..batch.len() as u64).collect::<Vec<_>>(),
        "tickets are dense job indices"
    );

    let mut merged = qnat_core::executor::ExecutionReport::default();
    let mut outputs = Vec::with_capacity(batch.len());
    for &t in &tickets {
        let outcome = client
            .wait(t)
            .expect("wait over TCP")
            .expect("engine knows the ticket");
        let m = outcome.result.expect("fallback absorbs exhausted retries");
        outputs.push(
            plan.obs
                .iter()
                .map(|&w| m.expectations[w])
                .collect::<Vec<f64>>(),
        );
        merged.merge(&outcome.report);
    }

    // Bitwise: f64 expectations compared by exact equality, after a
    // full JSON encode → TCP → parse round trip.
    assert_eq!(via_batch.block_outputs[0], outputs);
    assert_eq!(via_batch.report, Some(merged));

    // ISSUE 8 acceptance: the whole workload — 24 submits + 24 waits —
    // rode ONE keep-alive connection. Parity survives connection reuse.
    let transport = server.metrics();
    assert_eq!(
        transport.connections_accepted, 1,
        "the pooled client carries the workload on a single connection"
    );
    assert_eq!(transport.requests_served, 48, "24 submits + 24 waits");
    assert_eq!(
        transport.keepalive_reuses, 47,
        "every request after the first reused the connection"
    );

    let stats = server.shutdown();
    assert_eq!(stats.submitted, batch.len() as u64);
    assert_eq!(stats.completed, batch.len() as u64);
}

/// `SubmitError::QueueFull` surfaces as 429 with the typed body.
#[test]
fn full_rejecting_lane_is_429() {
    let (server, client) = serve(
        ServeConfig {
            workers: 1,
            interactive: LaneConfig::rejecting(2),
            seed: 1,
            ..ServeConfig::default()
        },
        TransportConfig::default(),
    );
    server.engine().pause();
    client.submit(&simple_job(0), Lane::Interactive).expect("fits");
    client.submit(&simple_job(1), Lane::Interactive).expect("fits");
    let refused = client.submit(&simple_job(2), Lane::Interactive);
    match refused {
        Err(ClientError::Status { status, body }) => {
            assert_eq!(status, 429);
            assert!(body.contains("queue_full"), "typed body: {body}");
        }
        other => panic!("expected a 429 refusal, got {other:?}"),
    }
    server.engine().resume();
    let stats = server.shutdown();
    assert_eq!(stats.rejected_full, 1);
    assert_eq!(stats.completed, 2);
}

/// ISSUE 5 satellite: a `ShedOldest` eviction completes the victim
/// ticket with `BackendError::Overloaded`, and the transport surfaces
/// that outcome as 503 on both poll and wait.
#[test]
fn shed_oldest_eviction_surfaces_as_503() {
    let (server, client) = serve(
        ServeConfig {
            workers: 1,
            interactive: LaneConfig::shedding(2),
            seed: 2,
            ..ServeConfig::default()
        },
        TransportConfig::default(),
    );
    server.engine().pause();
    let t0 = client.submit(&simple_job(0), Lane::Interactive).expect("fits");
    let t1 = client.submit(&simple_job(1), Lane::Interactive).expect("fits");
    let t2 = client.submit(&simple_job(2), Lane::Interactive).expect("evicts t0");

    // On the wire, the evicted ticket's ready outcome is graded 503 with
    // the typed error in the body — for both poll and wait.
    let raw_get = |target: String| -> (u16, String) {
        use std::io::{BufReader, Write};
        let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .write_all(format!("GET {target} HTTP/1.1\r\n\r\n").as_bytes())
            .expect("request");
        let resp =
            qnat_transport::http::read_response(&mut BufReader::new(stream)).expect("response");
        let body = resp.text().expect("utf8").to_owned();
        (resp.status, body)
    };
    let (status, body) = raw_get(format!("/v1/jobs/{t0}"));
    assert_eq!(status, 503, "poll of an evicted ticket: {body}");
    assert!(body.contains("overloaded"), "typed body: {body}");

    client.submit(&simple_job(3), Lane::Interactive).expect("evicts t1");
    let (status, body) = raw_get(format!("/v1/jobs/{t1}/wait"));
    assert_eq!(status, 503, "wait on an evicted ticket: {body}");
    assert!(body.contains("overloaded"), "typed body: {body}");

    // Through the typed client, the outcome itself carries the error.
    client.submit(&simple_job(4), Lane::Interactive).expect("evicts t2");
    match client.poll(t2) {
        Ok(Some(TicketStatus::Ready(outcome))) => {
            assert!(matches!(
                outcome.result,
                Err(BackendError::Overloaded { .. })
            ));
        }
        other => panic!("expected the evicted outcome, got {other:?}"),
    }

    server.engine().resume();
    let stats = server.shutdown();
    assert_eq!(stats.shed_oldest, 3);
    assert_eq!(stats.completed, 5, "3 evictions + 2 run jobs");
}

/// `/wait` on a parked ticket exhausts the connection's deadline budget
/// and answers 504 — the engine's typed `WaitError::Timeout` surfacing
/// through the front door.
#[test]
fn wait_past_the_deadline_budget_is_504() {
    let (server, client) = serve(
        ServeConfig {
            workers: 1,
            seed: 3,
            ..ServeConfig::default()
        },
        TransportConfig {
            request_deadline_ms: 80,
            ..TransportConfig::default()
        },
    );
    server.engine().pause();
    let t = client.submit(&simple_job(0), Lane::Interactive).expect("submit");
    match client.wait(t) {
        Err(ClientError::Status { status, .. }) => assert_eq!(status, 504),
        other => panic!("expected a 504 wait, got {other:?}"),
    }
    server.engine().resume();
    let stats = server.shutdown();
    assert_eq!(stats.completed, 1, "drain still finishes the parked job");
}

/// Unknown tickets are 404 on poll and wait; bad JSON is 400; unknown
/// paths are 404 and wrong methods 405.
#[test]
fn protocol_errors_are_typed_statuses() {
    let (server, client) = serve(
        ServeConfig {
            workers: 1,
            seed: 4,
            ..ServeConfig::default()
        },
        TransportConfig::default(),
    );
    assert!(client.poll(999).expect("polling unknown is fine").is_none());
    assert!(client.wait(999).expect("waiting unknown is fine").is_none());

    // Raw speaking for the malformed cases the typed client won't emit.
    let raw = |method: &str, target: &str, body: &[u8]| -> u16 {
        use std::io::{BufReader, Write};
        let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
        let head = format!(
            "{method} {target} HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes()).expect("head");
        stream.write_all(body).expect("body");
        let resp =
            qnat_transport::http::read_response(&mut BufReader::new(stream)).expect("response");
        resp.status
    };
    assert_eq!(raw("POST", "/v1/jobs", b"{not json"), 400);
    assert_eq!(raw("POST", "/v1/jobs", br#"{"job":1,"lane":"interactive"}"#), 400);
    assert_eq!(raw("GET", "/nope", b""), 404);
    assert_eq!(raw("DELETE", "/v1/jobs", b""), 405);
    assert_eq!(raw("POST", "/healthz", b""), 405);
    drop(server);
}

/// The chunked `/v1/stream` feed delivers every completion with results
/// matching what `wait` would have returned.
#[test]
fn stream_delivers_every_completion() {
    let (server, client) = serve(
        ServeConfig {
            workers: 2,
            seed: 5,
            ..ServeConfig::default()
        },
        TransportConfig::default(),
    );
    server.engine().pause();
    // Subscribe first so no completion is missed, then release.
    let streamer = {
        let client = client.clone();
        std::thread::spawn(move || client.stream(6))
    };
    let expected: Vec<u64> = (0..6)
        .map(|k| client.submit(&simple_job(k), Lane::Interactive).expect("submit"))
        .collect();
    // Give the streamer a beat to be subscribed before work flows.
    std::thread::sleep(Duration::from_millis(100));
    server.engine().resume();
    let events = streamer.join().expect("stream thread").expect("stream");
    assert_eq!(events.len(), 6);
    let mut seen: Vec<u64> = events.iter().map(|e| e.ticket).collect();
    seen.sort_unstable();
    assert_eq!(seen, expected);
    for e in &events {
        let m = e.result.as_ref().expect("clean factory succeeds");
        assert_eq!(m.expectations.len(), 2);
        assert!(m.expectations.iter().all(|x| x.is_finite()));
    }
    server.shutdown();
}

/// `/healthz` reports lane depths, engine counters and liveness.
#[test]
fn healthz_reports_lane_depths_and_stats() {
    let (server, client) = serve(
        ServeConfig {
            workers: 1,
            seed: 6,
            ..ServeConfig::default()
        },
        TransportConfig::default(),
    );
    server.engine().pause();
    for k in 0..3 {
        client.submit(&simple_job(k), Lane::Interactive).expect("submit");
    }
    client.submit(&simple_job(9), Lane::Bulk).expect("submit");
    let health = client.healthz().expect("healthz");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    let lanes = health.get("lanes").expect("lanes");
    assert_eq!(lanes.get("interactive").and_then(Json::as_usize), Some(3));
    assert_eq!(lanes.get("bulk").and_then(Json::as_usize), Some(1));
    let stats = health.get("stats").expect("stats");
    assert_eq!(stats.get("submitted").and_then(Json::as_usize), Some(4));
    server.engine().resume();
    server.shutdown();
}

/// Graceful drain: `shutdown` stops accepting TCP connections and still
/// finishes every in-flight ticket.
#[test]
fn shutdown_drains_in_flight_tickets_and_stops_accepting() {
    let (server, client) = serve(
        ServeConfig {
            workers: 2,
            seed: 7,
            ..ServeConfig::default()
        },
        TransportConfig::default(),
    );
    server.engine().pause();
    for k in 0..8 {
        client.submit(&simple_job(k), Lane::Interactive).expect("submit");
    }
    server.engine().resume();
    let addr = server.local_addr();
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 8);
    assert_eq!(stats.completed, 8, "drain finishes every queued ticket");
    // The listener is gone: new connections are refused.
    assert!(std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
}

/// A server that accepts but never answers trips the client's typed
/// read timeout — callers get `ClientError::Timeout { phase: Read }`,
/// not an untyped io error to pattern-match.
#[test]
fn client_read_timeout_is_typed() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    // Accept connections and park them unanswered until the test ends.
    let accepter = std::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((stream, _)) = listener.accept() {
            held.push(stream);
            if held.len() >= 2 {
                break;
            }
        }
        held
    });
    let client = TransportClient::new(addr)
        .with_timeout(Duration::from_millis(100))
        .with_connect_timeout(Duration::from_millis(500));
    let started = std::time::Instant::now();
    match client.healthz() {
        Err(ClientError::Timeout { phase }) => assert_eq!(phase, TimeoutPhase::Read),
        other => panic!("expected a typed read timeout, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "timeout must honor the configured 100ms, not hang"
    );
    // Unblock the accepter so the thread joins.
    let _ = std::net::TcpStream::connect(addr);
    let _ = accepter.join();
}

/// Satellite: every breaker registered in the engine's registry appears
/// in `/healthz`, and each state serializes exactly as
/// `wire::breaker_state_to_json` renders it — Closed, Open (with its
/// cooldown counter) and HalfOpen alike.
#[test]
fn healthz_exposes_every_breaker_snapshot_exactly() {
    use qnat_core::health::{Admission, BreakerPolicy, HealthRegistry, JobSignal};
    use std::sync::Arc;

    let registry = Arc::new(HealthRegistry::new());
    let policy = BreakerPolicy {
        window: 4,
        failure_threshold: 0.5,
        min_samples: 2,
        cooldown_jobs: 7,
        ..BreakerPolicy::default()
    };
    // "steady": stays Closed under successes.
    registry.with_breaker("steady", &policy, |b| {
        for a in b.plan_epoch(3) {
            if a != Admission::ShortCircuit {
                b.observe(a, JobSignal::Success);
            }
        }
        b.end_epoch();
    });
    // "tripped": fails past the threshold and opens.
    registry.with_breaker("tripped", &policy, |b| {
        for a in b.plan_epoch(4) {
            if a != Admission::ShortCircuit {
                b.observe(a, JobSignal::Failure);
            }
        }
        b.end_epoch();
    });
    // "probing": opened, then served its full cooldown → half-open.
    registry.with_breaker("probing", &policy, |b| {
        for a in b.plan_epoch(4) {
            if a != Admission::ShortCircuit {
                b.observe(a, JobSignal::Failure);
            }
        }
        b.end_epoch();
        for _ in 0..8 {
            let _ = b.plan_epoch(1);
            b.end_epoch();
        }
    });

    let engine = ServeEngine::with_registry(
        ServeConfig {
            workers: 1,
            seed: 8,
            ..ServeConfig::default()
        },
        clean_factory(),
        Arc::clone(&registry),
    );
    let server =
        TransportServer::bind("127.0.0.1:0", TransportConfig::default(), engine).expect("bind");
    let client = TransportClient::new(server.local_addr());

    let health = client.healthz().expect("healthz");
    let breakers = health.get("breakers").expect("breakers section");
    for (key, snap) in registry.snapshots() {
        let entry = breakers
            .get(&key)
            .unwrap_or_else(|| panic!("breaker '{key}' missing from /healthz"));
        // The state document is exactly the wire encoding.
        assert_eq!(
            entry.get("state").map(Json::to_json),
            Some(qnat_transport::wire::breaker_state_to_json(&snap.state).to_json()),
            "state encoding for '{key}'"
        );
        assert_eq!(
            entry.get("trips").and_then(Json::as_usize),
            Some(snap.trips as usize)
        );
        assert_eq!(
            entry.get("recoveries").and_then(Json::as_usize),
            Some(snap.recoveries as usize)
        );
    }
    // And the three states render distinctly.
    let state_of = |key: &str| {
        breakers
            .get(key)
            .and_then(|e| e.get("state"))
            .and_then(|s| s.get("state"))
            .and_then(Json::as_str)
            .map(str::to_owned)
    };
    assert_eq!(state_of("steady").as_deref(), Some("closed"));
    assert_eq!(state_of("tripped").as_deref(), Some("open"));
    assert_eq!(state_of("probing").as_deref(), Some("half_open"));
    assert_eq!(
        breakers
            .get("tripped")
            .and_then(|e| e.get("state"))
            .and_then(|s| s.get("cooldown_left"))
            .and_then(Json::as_usize),
        Some(7),
        "open state carries its cooldown counter"
    );
    server.shutdown();
}

/// A front door bound with a fleet health section exposes the router's
/// per-device view (quarantine flags, load, breakers, noise estimates)
/// under `/healthz`'s `fleet` key.
#[test]
fn healthz_serves_the_fleet_section() {
    use qnat_core::executor::ResilientExecutor as Rx;
    use qnat_fleet::{FleetConfig, FleetDevice, FleetRouter};
    use std::sync::Arc;

    let device = |m: qnat_noise::DeviceModel| {
        FleetDevice::new(m, |_g, seed| {
            Ok(Rx::new(
                Box::new(SimulatorBackend::new(seed)),
                RetryPolicy::default(),
            ))
        })
    };
    let router = Arc::new(
        FleetRouter::new(
            FleetConfig {
                pilots: 1,
                hedge: None,
                ..FleetConfig::default()
            },
            vec![device(presets::santiago()), device(presets::lima())],
        )
        .expect("fleet"),
    );
    // Drive a couple of fleet jobs so breakers and load exist.
    for k in 0..3 {
        let t = router.submit(simple_job(k)).expect("submit");
        router.wait(t).expect("delivered");
    }

    let engine = ServeEngine::new(
        ServeConfig {
            workers: 1,
            seed: 9,
            ..ServeConfig::default()
        },
        clean_factory(),
    );
    let section = {
        let router = Arc::clone(&router);
        Arc::new(move || qnat_transport::wire::fleet_health_to_json(&router.health()))
            as Arc<dyn Fn() -> Json + Send + Sync>
    };
    let server = TransportServer::bind_with_health(
        "127.0.0.1:0",
        TransportConfig::default(),
        engine,
        Some(section),
    )
    .expect("bind");
    let client = TransportClient::new(server.local_addr());

    let health = client.healthz().expect("healthz");
    let fleet = health.get("fleet").expect("fleet section");
    let Json::Arr(devices) = fleet else {
        panic!("fleet section is a device array");
    };
    assert_eq!(devices.len(), 2);
    let names: Vec<&str> = devices
        .iter()
        .filter_map(|d| d.get("name").and_then(Json::as_str))
        .collect();
    assert_eq!(names, vec![presets::santiago().name(), presets::lima().name()]);
    for d in devices {
        assert_eq!(d.get("quarantined"), Some(&Json::Bool(false)));
        assert!(d.get("load").and_then(|l| l.get("running")).is_some());
        assert!(
            d.get("noise_estimate").and_then(Json::as_f64).expect("estimate") > 0.0
        );
    }
    // The device that served traffic has a live breaker snapshot.
    let santiago = &devices[0];
    let breaker = santiago.get("breaker").expect("breaker field");
    assert_eq!(
        breaker.get("state").and_then(|s| s.get("state")).and_then(Json::as_str),
        Some("closed")
    );
    server.shutdown();
}

/// ISSUE 9 satellite: a front door bound with named health sections
/// serves the calibration tracker's view under `/healthz`'s
/// `calibration` key, and the section is an *exact* snapshot — every
/// field of [`qnat_fleet::CalibrationHealth`] rendered through
/// [`qnat_transport::wire::calibration_health_to_json`], nothing
/// dropped, renamed or reformatted.
#[test]
fn healthz_calibration_section_is_snapshot_exact() {
    use qnat_core::executor::ResilientExecutor as Rx;
    use qnat_fleet::{CalibConfig, FleetConfig, FleetDevice, FleetRouter, ScorePolicy};
    use std::sync::Arc;

    let device = |m: qnat_noise::DeviceModel| {
        FleetDevice::new(m, |_g, seed| {
            Ok(Rx::new(
                Box::new(SimulatorBackend::new(seed)),
                RetryPolicy::default(),
            ))
        })
    };
    let router = Arc::new(
        FleetRouter::new(
            FleetConfig {
                pilots: 1,
                hedge: None,
                score_policy: ScorePolicy::Predicted,
                calibration: CalibConfig {
                    min_observations: 4,
                    ..CalibConfig::default()
                },
                ..FleetConfig::default()
            },
            vec![device(presets::santiago()), device(presets::lima())],
        )
        .expect("fleet"),
    );
    // Enough delivered jobs that at least one device clears the
    // tracker's cold-start threshold (12 jobs over 2 devices → the
    // busier one has ≥ 6 ≥ min_observations).
    for k in 0..12 {
        let t = router.submit(simple_job(k)).expect("submit");
        router.wait(t).expect("delivered");
    }

    let engine = ServeEngine::new(
        ServeConfig {
            workers: 1,
            seed: 11,
            ..ServeConfig::default()
        },
        clean_factory(),
    );
    let fleet_section = {
        let router = Arc::clone(&router);
        Arc::new(move || qnat_transport::wire::fleet_health_to_json(&router.health()))
            as Arc<dyn Fn() -> Json + Send + Sync>
    };
    let calib_section = {
        let router = Arc::clone(&router);
        Arc::new(move || {
            qnat_transport::wire::calibration_health_to_json(&router.calibration_health())
        }) as Arc<dyn Fn() -> Json + Send + Sync>
    };
    let server = TransportServer::bind_with_sections(
        "127.0.0.1:0",
        TransportConfig::default(),
        engine,
        vec![
            ("fleet".to_owned(), fleet_section),
            ("calibration".to_owned(), calib_section),
        ],
    )
    .expect("bind");
    let client = TransportClient::new(server.local_addr());

    let health = client.healthz().expect("healthz");
    // Both named sections arrive; the fleet one keeps working through
    // the generalized bind path.
    assert!(health.get("fleet").is_some(), "fleet section still served");
    let calibration = health.get("calibration").expect("calibration section");

    // Snapshot exactness: no fleet traffic ran since the probe, so the
    // served section must equal a fresh render of the router's view.
    let expected =
        qnat_transport::wire::calibration_health_to_json(&router.calibration_health());
    assert_eq!(calibration, &expected);

    // And the view itself is live: all 12 tickets applied in order,
    // nothing stuck in the reorder buffer, per-device rows in fleet
    // order with the busier device past cold start.
    assert_eq!(calibration.get("applied").and_then(Json::as_usize), Some(12));
    assert_eq!(calibration.get("pending").and_then(Json::as_usize), Some(0));
    let Some(Json::Arr(devices)) = calibration.get("devices") else {
        panic!("devices is an array");
    };
    assert_eq!(devices.len(), 2);
    let names: Vec<&str> = devices
        .iter()
        .filter_map(|d| d.get("name").and_then(Json::as_str))
        .collect();
    assert_eq!(names, vec![presets::santiago().name(), presets::lima().name()]);
    let observations: usize = devices
        .iter()
        .filter_map(|d| d.get("observations").and_then(Json::as_usize))
        .sum();
    assert_eq!(observations, 12, "every delivered job is one observation");
    assert!(
        devices.iter().any(|d| matches!(d.get("estimate"), Some(Json::Num(_)))),
        "the busier device must be past cold start"
    );
    for d in devices {
        assert!(d.get("routing_estimate").is_some());
        assert!(d.get("residual").and_then(Json::as_f64).is_some());
        let fill = d.get("window_fill").and_then(Json::as_f64).expect("fill");
        assert!((0.0..=1.0).contains(&fill));
    }
    server.shutdown();
}

/// ISSUE 8 satellite: the `/healthz` transport section is an exact
/// [`TransportSnapshot`] — every counter matches the server's own
/// metrics to the digit after a traffic mix that exercises admissions,
/// refusals (429), malformed requests (400) and keep-alive reuse.
#[test]
fn healthz_transport_section_is_snapshot_exact() {
    use qnat_transport::TransportSnapshot;

    let (server, client) = serve(
        ServeConfig {
            workers: 1,
            interactive: LaneConfig::rejecting(1),
            seed: 9,
            ..ServeConfig::default()
        },
        TransportConfig::default(),
    );
    server.engine().pause();

    // Traffic: one accepted submit, one 429 refusal, two 404 polls —
    // all on the pooled keep-alive connection.
    client.submit(&simple_job(0), Lane::Interactive).expect("fits");
    match client.submit(&simple_job(1), Lane::Interactive) {
        Err(ClientError::Status { status, .. }) => assert_eq!(status, 429),
        other => panic!("expected 429, got {other:?}"),
    }
    assert!(client.poll(77).expect("poll").is_none());
    assert!(client.poll(78).expect("poll").is_none());

    // One malformed request on its own throwaway connection → 400.
    {
        use std::io::{Read, Write};
        let mut stream =
            std::net::TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(3)))
            .expect("timeout");
        stream.write_all(b"NOT HTTP AT ALL\r\n\r\n").expect("write");
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
        assert!(String::from_utf8_lossy(&sink).starts_with("HTTP/1.1 400"));
    }

    // Wait for the throwaway connection's slot to come home so the
    // gauge is stable: only the pooled client connection stays active.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.metrics().active_connections != 1 {
        assert!(std::time::Instant::now() < deadline, "slot not released");
        std::thread::sleep(Duration::from_millis(10));
    }

    let health = client.healthz().expect("healthz");
    let doc = health.get("transport").expect("transport section");
    let field = |name: &str| -> u64 {
        doc.get(name)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("transport section missing '{name}'")) as u64
    };
    let reported = TransportSnapshot {
        active_connections: field("active_connections"),
        connections_accepted: field("connections_accepted"),
        connections_shed: field("connections_shed"),
        keepalive_reuses: field("keepalive_reuses"),
        requests_served: field("requests_served"),
        timeouts_408: field("timeouts_408"),
        bad_requests_400: field("bad_requests_400"),
        rejected_429: field("rejected_429"),
        unavailable_503: field("unavailable_503"),
    };
    // The snapshot inside the health body predates its own response
    // write by exactly one `requests_served` tick; everything else is
    // already settled.
    let now = server.metrics();
    assert_eq!(
        TransportSnapshot {
            requests_served: reported.requests_served + 1,
            ..reported
        },
        now,
        "health document must be an exact point-in-time snapshot"
    );
    // And the absolute values are the predicted ones.
    assert_eq!(reported.connections_accepted, 2, "pooled client + raw 400");
    assert_eq!(reported.bad_requests_400, 1);
    assert_eq!(reported.rejected_429, 1);
    assert_eq!(reported.connections_shed, 0);
    assert_eq!(reported.timeouts_408, 0);
    assert_eq!(reported.unavailable_503, 0);
    // 4 client requests before healthz + the raw 400.
    assert_eq!(reported.requests_served, 5);
    // Requests 2-4 plus the healthz itself reused the pooled connection.
    assert_eq!(reported.keepalive_reuses, 4);

    server.engine().resume();
    server.shutdown();
}

/// The streaming submit: many jobs as one chunked POST on one
/// connection, with per-line verdicts — accepted tickets stay dense and
/// refusals carry the 429 they would have earned as lone requests.
#[test]
fn streaming_submit_batches_jobs_with_per_line_verdicts() {
    use qnat_transport::StreamSubmit;

    let (server, client) = serve(
        ServeConfig {
            workers: 1,
            interactive: LaneConfig::rejecting(4),
            seed: 10,
            ..ServeConfig::default()
        },
        TransportConfig::default(),
    );
    server.engine().pause();

    let jobs: Vec<(BatchJob, Lane)> = (0..6)
        .map(|k| (simple_job(k), Lane::Interactive))
        .collect();
    let verdicts = client.submit_stream(&jobs).expect("streamed submit");
    assert_eq!(verdicts.len(), 6, "one verdict per line, in order");
    for (k, v) in verdicts.iter().take(4).enumerate() {
        assert_eq!(
            *v,
            StreamSubmit::Accepted(k as u64),
            "the first 4 jobs fill the lane with dense tickets"
        );
    }
    for v in &verdicts[4..] {
        match v {
            StreamSubmit::Refused { status, body } => {
                assert_eq!(*status, 429);
                assert!(body.contains("queue_full"), "typed refusal: {body}");
            }
            other => panic!("expected per-line 429s past capacity, got {other:?}"),
        }
    }

    // One request, one connection — and the per-line 429s are counted.
    let transport = server.metrics();
    assert_eq!(transport.connections_accepted, 1);
    assert_eq!(transport.requests_served, 1);
    assert_eq!(transport.rejected_429, 2);

    // The accepted tickets complete normally.
    server.engine().resume();
    for t in 0..4u64 {
        let outcome = client.wait(t).expect("wait").expect("known ticket");
        assert!(outcome.result.is_ok());
    }
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.rejected_full, 2);
}

/// Pooled-connection staleness: a server that caps requests per
/// connection (advertising `Connection: close`) or reaps idle
/// connections never surfaces an error through the client — calls
/// transparently reconnect, including the idempotent-GET retry when the
/// server closed a parked connection behind the client's back.
#[test]
fn pooled_client_survives_connection_caps_and_idle_reaping() {
    let (server, client) = serve(
        ServeConfig {
            workers: 1,
            seed: 11,
            ..ServeConfig::default()
        },
        TransportConfig {
            max_requests_per_connection: 2,
            idle_timeout_ms: 150,
            ..TransportConfig::default()
        },
    );

    // Four calls under a 2-requests-per-connection cap: the second
    // response on each connection advertises the close, so the client
    // rotates connections without a single failed call.
    for _ in 0..4 {
        client.healthz().expect("healthz under the per-connection cap");
    }
    assert_eq!(
        server.metrics().connections_accepted,
        2,
        "exactly two requests rode each connection"
    );

    // Idle reaping: the parked pooled connection outlives the server's
    // idle window, so the next call finds it stale (clean EOF before
    // any response byte) and must retry on a fresh connection.
    std::thread::sleep(Duration::from_millis(400));
    client.healthz().expect("healthz after the idle reap");
    assert_eq!(
        server.metrics().connections_accepted,
        3,
        "the stale pooled connection was replaced, not surfaced"
    );
    server.shutdown();
}

/// ISSUE 10 acceptance: one `POST /v1/mitigate` fans out into one
/// folded sub-run per noise scale on the bulk lane and comes back as a
/// single aggregated result — and the whole sweep replays bitwise from
/// its seed: a second server with a *different* engine seed produces
/// identical bytes because the sub-run seeds derive from the sweep
/// seed, not the engine's.
#[test]
fn mitigated_sweep_over_the_wire_replays_bitwise() {
    let job = qnat_serve::MitigatedJob::zne(simple_job(3).circuit, None);
    let (server_a, client_a) = serve(
        ServeConfig {
            workers: 2,
            seed: 5,
            ..ServeConfig::default()
        },
        TransportConfig::default(),
    );
    let first = client_a.mitigate(&job, 0xA11CE).expect("mitigate");
    server_a.shutdown();

    assert_eq!(first.scales, vec![1, 3, 5]);
    assert_eq!(first.tickets.len(), 3);
    let raw = first.raw.as_ref().expect("scale-1 run succeeded");
    // Exact noise-free sub-runs: the extrapolation is flat, so the
    // mitigated estimate equals the raw baseline.
    for (m, r) in first.mitigated.expectations.iter().zip(raw) {
        assert!((m - r).abs() < 1e-12);
    }

    let (server_b, client_b) = serve(
        ServeConfig {
            workers: 3,
            seed: 999, // different engine seed — must not matter
            ..ServeConfig::default()
        },
        TransportConfig::default(),
    );
    let second = client_b.mitigate(&job, 0xA11CE).expect("mitigate replay");
    server_b.shutdown();
    assert_eq!(second.mitigated.expectations, first.mitigated.expectations);
    assert_eq!(second.raw, first.raw);
}

/// ISSUE 10 acceptance: degenerate sweeps surface as typed errors end
/// to end — sweep-shape mistakes are 400s with the typed kind, and a
/// singular readout confusion travels as a 500 whose body names the
/// mitigation-math failure.
#[test]
fn mitigate_status_contract_end_to_end() {
    let (server, client) = serve(
        ServeConfig {
            workers: 2,
            seed: 5,
            ..ServeConfig::default()
        },
        TransportConfig::default(),
    );

    let mut job = qnat_serve::MitigatedJob::zne(simple_job(0).circuit, None);
    job.scales = vec![1];
    match client.mitigate(&job, 1) {
        Err(ClientError::Status { status: 400, body }) => {
            assert!(body.contains("too_few_scales"), "body: {body}");
        }
        other => panic!("expected 400 too_few_scales, got {other:?}"),
    }

    job.scales = vec![1, 4];
    match client.mitigate(&job, 1) {
        Err(ClientError::Status { status: 400, body }) => {
            assert!(body.contains("fold"), "body: {body}");
        }
        other => panic!("expected 400 fold error, got {other:?}"),
    }

    // A symmetric-coin confusion is singular: sub-runs succeed but the
    // aggregation must refuse to invert it, and the refusal must reach
    // the client as a typed 500, not a NaN result.
    job.scales = vec![1, 3, 5];
    job.readout = Some(vec![[[0.5, 0.5], [0.5, 0.5]]; 2]);
    match client.mitigate(&job, 1) {
        Err(ClientError::Status { status: 500, body }) => {
            assert!(body.contains("mitigation_math"), "body: {body}");
            assert!(body.contains("singular_confusion"), "body: {body}");
        }
        other => panic!("expected 500 singular_confusion, got {other:?}"),
    }
    server.shutdown();
}
