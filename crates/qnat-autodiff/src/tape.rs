//! Reverse-mode automatic differentiation on a tape.
//!
//! The classical half of QuantumNAT training — post-measurement
//! normalization, quantization with a straight-through estimator, the
//! classification head and the losses — is differentiated here. Quantum
//! blocks enter the graph through [`Tape::quantum`], a custom node whose
//! per-sample Jacobians are produced by the adjoint or parameter-shift
//! engines in `qnat-sim`.

use crate::tensor::Tensor;

/// A handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Div(Var, Var),
    Neg(Var),
    Scale(Var, f64),
    AddScalar(Var),
    Sqrt(Var),
    Sigmoid(Var),
    Mean(Var),
    Sum(Var),
    MeanAxis0(Var),
    VarAxis0(Var),
    Broadcast0(Var, usize),
    MatmulConst(Var, Tensor),
    QuantizeSte {
        x: Var,
        p_min: f64,
        p_max: f64,
    },
    SoftmaxCrossEntropy {
        logits: Var,
        labels: Vec<usize>,
    },
    Quantum {
        x: Var,
        params: Var,
        /// Per-sample Jacobian of outputs w.r.t. inputs: `[n_out × n_in]`.
        jx: Vec<Tensor>,
        /// Per-sample Jacobian of outputs w.r.t. parameters: `[n_out × n_p]`.
        jp: Vec<Tensor>,
    },
}

#[derive(Debug, Clone)]
struct Node {
    op: Op,
    value: Tensor,
    aux: Option<Tensor>,
}

/// Gradients of a scalar loss with respect to every tape node.
#[derive(Debug, Clone)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// The gradient tensor of `v`, or a zero tensor if the loss does not
    /// depend on it.
    pub fn get(&self, v: Var, tape: &Tape) -> Tensor {
        self.grads[v.0]
            .clone()
            .unwrap_or_else(|| Tensor::zeros_like(tape.value(v)))
    }
}

/// Uniform quantization centroids for `levels` levels over `[p_min, p_max]`.
pub fn quantization_centroids(levels: usize, p_min: f64, p_max: f64) -> Vec<f64> {
    assert!(levels >= 2, "need at least two quantization levels");
    assert!(p_max > p_min, "empty quantization range");
    (0..levels)
        .map(|k| p_min + (p_max - p_min) * k as f64 / (levels - 1) as f64)
        .collect()
}

/// Quantizes one value: clip to `[p_min, p_max]`, snap to nearest centroid.
pub fn quantize_value(x: f64, levels: usize, p_min: f64, p_max: f64) -> f64 {
    let clipped = x.clamp(p_min, p_max);
    let step = (p_max - p_min) / (levels - 1) as f64;
    let k = ((clipped - p_min) / step).round();
    p_min + k * step
}

/// The reverse-mode tape.
///
/// # Examples
///
/// ```
/// use qnat_autodiff::{tape::Tape, tensor::Tensor};
/// let mut t = Tape::new();
/// let x = t.input(Tensor::vector(vec![3.0]));
/// let y = t.mul(x, x); // y = x²
/// let g = t.backward(y);
/// assert_eq!(g.get(x, &t).data(), &[6.0]); // dy/dx = 2x
/// ```
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape { nodes: Vec::new() }
    }

    fn push(&mut self, op: Op, value: Tensor, aux: Option<Tensor>) -> Var {
        self.nodes.push(Node { op, value, aux });
        Var(self.nodes.len() - 1)
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Auxiliary output of a node (e.g. softmax probabilities of a
    /// cross-entropy node).
    pub fn aux(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].aux.as_ref()
    }

    /// Registers an input (leaf) tensor.
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(Op::Leaf, t, None)
    }

    fn binary(&mut self, a: Var, b: Var, f: impl Fn(f64, f64) -> f64, op: Op) -> Var {
        let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(ta.shape(), tb.shape(), "shape mismatch in binary op");
        let data = ta
            .data()
            .iter()
            .zip(tb.data())
            .map(|(&x, &y)| f(x, y))
            .collect();
        let t = Tensor::new(data, ta.shape().to_vec());
        self.push(op, t, None)
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.binary(a, b, |x, y| x + y, Op::Add(a, b))
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        self.binary(a, b, |x, y| x - y, Op::Sub(a, b))
    }

    /// Element-wise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        self.binary(a, b, |x, y| x * y, Op::Mul(a, b))
    }

    /// Element-wise quotient.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        self.binary(a, b, |x, y| x / y, Op::Div(a, b))
    }

    /// Negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let t = Tensor::new(
            self.nodes[a.0].value.data().iter().map(|&x| -x).collect(),
            self.nodes[a.0].value.shape().to_vec(),
        );
        self.push(Op::Neg(a), t, None)
    }

    /// Multiplication by a constant.
    pub fn scale(&mut self, a: Var, c: f64) -> Var {
        let t = Tensor::new(
            self.nodes[a.0].value.data().iter().map(|&x| x * c).collect(),
            self.nodes[a.0].value.shape().to_vec(),
        );
        self.push(Op::Scale(a, c), t, None)
    }

    /// Addition of a constant.
    pub fn add_scalar(&mut self, a: Var, c: f64) -> Var {
        let t = Tensor::new(
            self.nodes[a.0].value.data().iter().map(|&x| x + c).collect(),
            self.nodes[a.0].value.shape().to_vec(),
        );
        self.push(Op::AddScalar(a), t, None)
    }

    /// Element-wise square root.
    ///
    /// # Panics
    ///
    /// Panics if any element is negative.
    pub fn sqrt(&mut self, a: Var) -> Var {
        let t = Tensor::new(
            self.nodes[a.0]
                .value
                .data()
                .iter()
                .map(|&x| {
                    assert!(x >= 0.0, "sqrt of negative value {x}");
                    x.sqrt()
                })
                .collect(),
            self.nodes[a.0].value.shape().to_vec(),
        );
        self.push(Op::Sqrt(a), t, None)
    }

    /// Element-wise logistic sigmoid `1 / (1 + e^{-x})`.
    ///
    /// The output is used by the calibration tracker to squash a linear
    /// feature score into a `[0, 1]` error-rate estimate; the backward pass
    /// reuses the stored output (`s·(1-s)`), so extreme inputs saturate to
    /// exactly 0 or 1 with a vanishing, never non-finite, gradient.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let t = Tensor::new(
            self.nodes[a.0]
                .value
                .data()
                .iter()
                .map(|&x| {
                    // Branch on sign for numerical stability: exp of a large
                    // positive argument overflows to inf, but both forms
                    // below only ever exponentiate non-positive values.
                    if x >= 0.0 {
                        1.0 / (1.0 + (-x).exp())
                    } else {
                        let e = x.exp();
                        e / (1.0 + e)
                    }
                })
                .collect(),
            self.nodes[a.0].value.shape().to_vec(),
        );
        self.push(Op::Sigmoid(a), t, None)
    }

    /// Mean over all elements (scalar output).
    pub fn mean(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.data();
        let m = v.iter().sum::<f64>() / v.len() as f64;
        self.push(Op::Mean(a), Tensor::scalar(m), None)
    }

    /// Sum over all elements (scalar output).
    pub fn sum(&mut self, a: Var) -> Var {
        let s = self.nodes[a.0].value.data().iter().sum::<f64>();
        self.push(Op::Sum(a), Tensor::scalar(s), None)
    }

    /// Column means of a `[batch, features]` tensor → `[features]`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not rank-2.
    pub fn mean_axis0(&mut self, a: Var) -> Var {
        let t = &self.nodes[a.0].value;
        assert_eq!(t.shape().len(), 2, "mean_axis0 needs a matrix");
        let (b, q) = (t.shape()[0], t.shape()[1]);
        let mut m = vec![0.0; q];
        for i in 0..b {
            for (j, mj) in m.iter_mut().enumerate() {
                *mj += t.get2(i, j);
            }
        }
        for mj in &mut m {
            *mj /= b as f64;
        }
        self.push(Op::MeanAxis0(a), Tensor::vector(m), None)
    }

    /// Column (biased) variances of a `[batch, features]` tensor →
    /// `[features]`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not rank-2.
    pub fn var_axis0(&mut self, a: Var) -> Var {
        let t = &self.nodes[a.0].value;
        assert_eq!(t.shape().len(), 2, "var_axis0 needs a matrix");
        let (b, q) = (t.shape()[0], t.shape()[1]);
        let mut m = vec![0.0; q];
        for i in 0..b {
            for (j, mj) in m.iter_mut().enumerate() {
                *mj += t.get2(i, j);
            }
        }
        for mj in &mut m {
            *mj /= b as f64;
        }
        let mut v = vec![0.0; q];
        for i in 0..b {
            for (j, vj) in v.iter_mut().enumerate() {
                let d = t.get2(i, j) - m[j];
                *vj += d * d;
            }
        }
        for vj in &mut v {
            *vj /= b as f64;
        }
        self.push(Op::VarAxis0(a), Tensor::vector(v), None)
    }

    /// Broadcasts a `[features]` vector to `[batch, features]`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not rank-1.
    pub fn broadcast0(&mut self, a: Var, batch: usize) -> Var {
        let t = &self.nodes[a.0].value;
        assert_eq!(t.shape().len(), 1, "broadcast0 needs a vector");
        let q = t.shape()[0];
        let mut data = Vec::with_capacity(batch * q);
        for _ in 0..batch {
            data.extend_from_slice(t.data());
        }
        self.push(
            Op::Broadcast0(a, batch),
            Tensor::new(data, vec![batch, q]),
            None,
        )
    }

    /// Multiplies `[batch, q]` by a constant `[q, c]` matrix (given
    /// row-major) → `[batch, c]`. Used for the fixed classification heads.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matmul_const(&mut self, a: Var, w: Tensor) -> Var {
        let t = &self.nodes[a.0].value;
        assert_eq!(t.shape().len(), 2, "matmul_const needs a matrix");
        assert_eq!(w.shape().len(), 2, "weight must be a matrix");
        let (b, q) = (t.shape()[0], t.shape()[1]);
        let (wq, c) = (w.shape()[0], w.shape()[1]);
        assert_eq!(q, wq, "inner dimension mismatch");
        let mut data = vec![0.0; b * c];
        for i in 0..b {
            for k in 0..q {
                let x = t.get2(i, k);
                for j in 0..c {
                    data[i * c + j] += x * w.get2(k, j);
                }
            }
        }
        self.push(
            Op::MatmulConst(a, w),
            Tensor::new(data, vec![b, c]),
            None,
        )
    }

    /// Post-measurement quantization with a clipped straight-through
    /// estimator: forward clips to `[p_min, p_max]` and snaps to the nearest
    /// of `levels` uniform centroids; backward passes gradients through
    /// unchanged inside the clip range and zeroes them outside.
    pub fn quantize_ste(&mut self, x: Var, levels: usize, p_min: f64, p_max: f64) -> Var {
        let t = &self.nodes[x.0].value;
        let data = t
            .data()
            .iter()
            .map(|&v| quantize_value(v, levels, p_min, p_max))
            .collect();
        let out = Tensor::new(data, t.shape().to_vec());
        self.push(Op::QuantizeSte { x, p_min, p_max }, out, None)
    }

    /// Mean softmax cross-entropy of `[batch, classes]` logits against
    /// integer labels. The node's [`Tape::aux`] holds the softmax
    /// probabilities.
    ///
    /// # Panics
    ///
    /// Panics if a label is out of range or batch sizes disagree.
    pub fn softmax_cross_entropy(&mut self, logits: Var, labels: &[usize]) -> Var {
        let t = &self.nodes[logits.0].value;
        assert_eq!(t.shape().len(), 2, "logits must be a matrix");
        let (b, c) = (t.shape()[0], t.shape()[1]);
        assert_eq!(labels.len(), b, "label count mismatch");
        let mut probs = vec![0.0; b * c];
        let mut loss = 0.0;
        for i in 0..b {
            assert!(labels[i] < c, "label {} out of range", labels[i]);
            let row: Vec<f64> = (0..c).map(|j| t.get2(i, j)).collect();
            let mx = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<f64> = row.iter().map(|&v| (v - mx).exp()).collect();
            let z: f64 = exps.iter().sum();
            for j in 0..c {
                probs[i * c + j] = exps[j] / z;
            }
            loss -= (probs[i * c + labels[i]]).max(1e-300).ln();
        }
        loss /= b as f64;
        self.push(
            Op::SoftmaxCrossEntropy {
                logits,
                labels: labels.to_vec(),
            },
            Tensor::scalar(loss),
            Some(Tensor::new(probs, vec![b, c])),
        )
    }

    /// Inserts a quantum block with externally-computed forward values and
    /// per-sample Jacobians.
    ///
    /// * `x` — encoder inputs `[batch, n_in]`.
    /// * `params` — trainable parameters `[n_p]` (shared across the batch).
    /// * `out` — measured expectations `[batch, n_out]`.
    /// * `jx[i]` — `[n_out, n_in]` Jacobian for sample `i`.
    /// * `jp[i]` — `[n_out, n_p]` Jacobian for sample `i`.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent shapes.
    pub fn quantum(
        &mut self,
        x: Var,
        params: Var,
        out: Tensor,
        jx: Vec<Tensor>,
        jp: Vec<Tensor>,
    ) -> Var {
        let tx = &self.nodes[x.0].value;
        let tp = &self.nodes[params.0].value;
        assert_eq!(tx.shape().len(), 2, "quantum inputs must be a matrix");
        assert_eq!(out.shape().len(), 2, "quantum outputs must be a matrix");
        let (b, n_in) = (tx.shape()[0], tx.shape()[1]);
        let n_out = out.shape()[1];
        let n_p = tp.len();
        assert_eq!(out.shape()[0], b, "batch mismatch");
        assert_eq!(jx.len(), b, "need one input Jacobian per sample");
        assert_eq!(jp.len(), b, "need one parameter Jacobian per sample");
        for j in &jx {
            assert_eq!(j.shape(), &[n_out, n_in], "input Jacobian shape");
        }
        for j in &jp {
            assert_eq!(j.shape(), &[n_out, n_p], "parameter Jacobian shape");
        }
        self.push(Op::Quantum { x, params, jx, jp }, out, None)
    }

    /// Runs reverse-mode accumulation from a scalar `loss` node.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element tensor.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(
            self.nodes[loss.0].value.len(),
            1,
            "backward from non-scalar node"
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::scalar(1.0));
        for idx in (0..=loss.0).rev() {
            let Some(g) = grads[idx].clone() else {
                continue;
            };
            let give = |v: Var, t: Tensor, grads: &mut Vec<Option<Tensor>>| match &mut grads
                [v.0]
            {
                Some(acc) => acc.accumulate(&t),
                slot @ None => *slot = Some(t),
            };
            match &self.nodes[idx].op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    give(*a, g.clone(), &mut grads);
                    give(*b, g, &mut grads);
                }
                Op::Sub(a, b) => {
                    give(*a, g.clone(), &mut grads);
                    let neg = Tensor::new(
                        g.data().iter().map(|&v| -v).collect(),
                        g.shape().to_vec(),
                    );
                    give(*b, neg, &mut grads);
                }
                Op::Mul(a, b) => {
                    let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
                    let ga = Tensor::new(
                        g.data()
                            .iter()
                            .zip(tb.data())
                            .map(|(&gv, &bv)| gv * bv)
                            .collect(),
                        g.shape().to_vec(),
                    );
                    let gb = Tensor::new(
                        g.data()
                            .iter()
                            .zip(ta.data())
                            .map(|(&gv, &av)| gv * av)
                            .collect(),
                        g.shape().to_vec(),
                    );
                    give(*a, ga, &mut grads);
                    give(*b, gb, &mut grads);
                }
                Op::Div(a, b) => {
                    let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
                    let ga = Tensor::new(
                        g.data()
                            .iter()
                            .zip(tb.data())
                            .map(|(&gv, &bv)| gv / bv)
                            .collect(),
                        g.shape().to_vec(),
                    );
                    let gb = Tensor::new(
                        g.data()
                            .iter()
                            .zip(ta.data().iter().zip(tb.data()))
                            .map(|(&gv, (&av, &bv))| -gv * av / (bv * bv))
                            .collect(),
                        g.shape().to_vec(),
                    );
                    give(*a, ga, &mut grads);
                    give(*b, gb, &mut grads);
                }
                Op::Neg(a) => {
                    let ga = Tensor::new(
                        g.data().iter().map(|&v| -v).collect(),
                        g.shape().to_vec(),
                    );
                    give(*a, ga, &mut grads);
                }
                Op::Scale(a, c) => {
                    let ga = Tensor::new(
                        g.data().iter().map(|&v| v * c).collect(),
                        g.shape().to_vec(),
                    );
                    give(*a, ga, &mut grads);
                }
                Op::AddScalar(a) => give(*a, g, &mut grads),
                Op::Sqrt(a) => {
                    let out = &self.nodes[idx].value;
                    let ga = Tensor::new(
                        g.data()
                            .iter()
                            .zip(out.data())
                            .map(|(&gv, &ov)| gv * 0.5 / ov.max(1e-300))
                            .collect(),
                        g.shape().to_vec(),
                    );
                    give(*a, ga, &mut grads);
                }
                Op::Sigmoid(a) => {
                    let out = &self.nodes[idx].value;
                    let ga = Tensor::new(
                        g.data()
                            .iter()
                            .zip(out.data())
                            .map(|(&gv, &sv)| gv * sv * (1.0 - sv))
                            .collect(),
                        g.shape().to_vec(),
                    );
                    give(*a, ga, &mut grads);
                }
                Op::Mean(a) => {
                    let ta = &self.nodes[a.0].value;
                    let n = ta.len() as f64;
                    let ga = Tensor::new(
                        ta.data().iter().map(|_| g.item() / n).collect(),
                        ta.shape().to_vec(),
                    );
                    give(*a, ga, &mut grads);
                }
                Op::Sum(a) => {
                    let ta = &self.nodes[a.0].value;
                    let ga = Tensor::new(
                        ta.data().iter().map(|_| g.item()).collect(),
                        ta.shape().to_vec(),
                    );
                    give(*a, ga, &mut grads);
                }
                Op::MeanAxis0(a) => {
                    let ta = &self.nodes[a.0].value;
                    let (b, q) = (ta.shape()[0], ta.shape()[1]);
                    let mut data = vec![0.0; b * q];
                    for i in 0..b {
                        for j in 0..q {
                            data[i * q + j] = g.data()[j] / b as f64;
                        }
                    }
                    give(*a, Tensor::new(data, vec![b, q]), &mut grads);
                }
                Op::VarAxis0(a) => {
                    let ta = &self.nodes[a.0].value;
                    let (b, q) = (ta.shape()[0], ta.shape()[1]);
                    let mut mean = vec![0.0; q];
                    for i in 0..b {
                        for (j, mj) in mean.iter_mut().enumerate() {
                            *mj += ta.get2(i, j);
                        }
                    }
                    for mj in &mut mean {
                        *mj /= b as f64;
                    }
                    let mut data = vec![0.0; b * q];
                    for i in 0..b {
                        for j in 0..q {
                            data[i * q + j] =
                                g.data()[j] * 2.0 * (ta.get2(i, j) - mean[j]) / b as f64;
                        }
                    }
                    give(*a, Tensor::new(data, vec![b, q]), &mut grads);
                }
                Op::Broadcast0(a, batch) => {
                    let q = self.nodes[a.0].value.len();
                    let mut data = vec![0.0; q];
                    for i in 0..*batch {
                        for (j, dj) in data.iter_mut().enumerate() {
                            *dj += g.data()[i * q + j];
                        }
                    }
                    give(*a, Tensor::vector(data), &mut grads);
                }
                Op::MatmulConst(a, w) => {
                    let ta = &self.nodes[a.0].value;
                    let (b, q) = (ta.shape()[0], ta.shape()[1]);
                    let c = w.shape()[1];
                    let mut data = vec![0.0; b * q];
                    for i in 0..b {
                        for k in 0..q {
                            let mut acc = 0.0;
                            for j in 0..c {
                                acc += g.data()[i * c + j] * w.get2(k, j);
                            }
                            data[i * q + k] = acc;
                        }
                    }
                    give(*a, Tensor::new(data, vec![b, q]), &mut grads);
                }
                Op::QuantizeSte {
                    x, p_min, p_max, ..
                } => {
                    let tx = &self.nodes[x.0].value;
                    let ga = Tensor::new(
                        g.data()
                            .iter()
                            .zip(tx.data())
                            .map(|(&gv, &xv)| {
                                if xv >= *p_min && xv <= *p_max {
                                    gv
                                } else {
                                    0.0
                                }
                            })
                            .collect(),
                        g.shape().to_vec(),
                    );
                    give(*x, ga, &mut grads);
                }
                Op::SoftmaxCrossEntropy { logits, labels } => {
                    let probs = self.nodes[idx]
                        .aux
                        .as_ref()
                        .expect("softmax node stores probabilities");
                    let (b, c) = (probs.shape()[0], probs.shape()[1]);
                    let gs = g.item();
                    let mut data = vec![0.0; b * c];
                    for i in 0..b {
                        for j in 0..c {
                            let one_hot = if labels[i] == j { 1.0 } else { 0.0 };
                            data[i * c + j] = gs * (probs.get2(i, j) - one_hot) / b as f64;
                        }
                    }
                    give(*logits, Tensor::new(data, vec![b, c]), &mut grads);
                }
                Op::Quantum { x, params, jx, jp } => {
                    let tx = &self.nodes[x.0].value;
                    let (b, n_in) = (tx.shape()[0], tx.shape()[1]);
                    let n_p = self.nodes[params.0].value.len();
                    let n_out = self.nodes[idx].value.shape()[1];
                    let mut gx = vec![0.0; b * n_in];
                    let mut gp = vec![0.0; n_p];
                    for i in 0..b {
                        for q in 0..n_out {
                            let go = g.data()[i * n_out + q];
                            if go == 0.0 {
                                continue;
                            }
                            for k in 0..n_in {
                                gx[i * n_in + k] += go * jx[i].get2(q, k);
                            }
                            for j in 0..n_p {
                                gp[j] += go * jp[i].get2(q, j);
                            }
                        }
                    }
                    give(*x, Tensor::new(gx, vec![b, n_in]), &mut grads);
                    give(*params, Tensor::vector(gp), &mut grads);
                }
            }
        }
        Gradients { grads }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference check of d loss / d input element.
    fn finite_diff(
        build: &impl Fn(&mut Tape, Var) -> Var,
        input: &Tensor,
        idx: usize,
    ) -> f64 {
        let eps = 1e-6;
        let eval = |delta: f64| {
            let mut t = input.clone();
            t.data_mut()[idx] += delta;
            let mut tape = Tape::new();
            let x = tape.input(t);
            let loss = build(&mut tape, x);
            tape.value(loss).item()
        };
        (eval(eps) - eval(-eps)) / (2.0 * eps)
    }

    fn check_all(build: impl Fn(&mut Tape, Var) -> Var, input: Tensor) {
        let mut tape = Tape::new();
        let x = tape.input(input.clone());
        let loss = build(&mut tape, x);
        let grads = tape.backward(loss);
        let gx = grads.get(x, &tape);
        for i in 0..input.len() {
            let fd = finite_diff(&build, &input, i);
            assert!(
                (gx.data()[i] - fd).abs() < 1e-5,
                "element {i}: autodiff {} vs fd {fd}",
                gx.data()[i]
            );
        }
    }

    #[test]
    fn arithmetic_gradients() {
        let input = Tensor::vector(vec![1.5, -0.3, 2.0]);
        check_all(
            |t, x| {
                let y = t.mul(x, x);
                let z = t.add(y, x);
                let w = t.scale(z, 0.7);
                let u = t.add_scalar(w, 3.0);
                t.mean(u)
            },
            input,
        );
    }

    #[test]
    fn div_and_sqrt_gradients() {
        let input = Tensor::vector(vec![1.2, 0.8, 3.5]);
        check_all(
            |t, x| {
                let s = t.sqrt(x);
                let r = t.div(x, s); // x / √x = √x
                t.sum(r)
            },
            input,
        );
    }

    #[test]
    fn sigmoid_gradients() {
        let input = Tensor::vector(vec![-2.0, -0.4, 0.0, 0.7, 3.1]);
        check_all(
            |t, x| {
                let s = t.sigmoid(x);
                let sq = t.mul(s, s);
                t.mean(sq)
            },
            input,
        );
    }

    #[test]
    fn sigmoid_saturates_without_overflow() {
        let mut t = Tape::new();
        let x = t.input(Tensor::vector(vec![-800.0, 800.0]));
        let s = t.sigmoid(x);
        assert_eq!(t.value(s).data(), &[0.0, 1.0]);
        let m = t.mean(s);
        let g = t.backward(m);
        for &gv in g.get(x, &t).data() {
            assert!(gv.is_finite());
        }
    }

    #[test]
    fn normalization_gradients() {
        // The exact post-measurement normalization computation:
        // (x − mean) / sqrt(var + ε).
        let input = Tensor::from_rows(&[
            vec![0.3, -0.2, 0.9],
            vec![0.1, 0.4, -0.5],
            vec![-0.7, 0.2, 0.6],
            vec![0.5, -0.1, 0.0],
        ]);
        check_all(
            |t, x| {
                let b = t.value(x).shape()[0];
                let mu = t.mean_axis0(x);
                let mub = t.broadcast0(mu, b);
                let centered = t.sub(x, mub);
                let var = t.var_axis0(x);
                let var_eps = t.add_scalar(var, 1e-3);
                let sd = t.sqrt(var_eps);
                let sdb = t.broadcast0(sd, b);
                let norm = t.div(centered, sdb);
                let sq = t.mul(norm, norm);
                t.mean(sq)
            },
            input,
        );
    }

    #[test]
    fn matmul_const_gradients() {
        let input = Tensor::from_rows(&[vec![0.2, 0.8, -0.4, 0.1], vec![1.0, -0.2, 0.3, 0.5]]);
        let w = Tensor::new(vec![1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 1.0], vec![4, 2]);
        check_all(
            move |t, x| {
                let y = t.matmul_const(x, w.clone());
                let y2 = t.mul(y, y);
                t.sum(y2)
            },
            input,
        );
    }

    #[test]
    fn softmax_cross_entropy_gradients() {
        let input = Tensor::from_rows(&[vec![0.5, -0.2, 0.9], vec![-1.0, 0.4, 0.1]]);
        let labels = vec![2usize, 1];
        check_all(
            move |t, x| t.softmax_cross_entropy(x, &labels),
            input,
        );
    }

    #[test]
    fn softmax_probabilities_sum_to_one() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_rows(&[vec![3.0, 1.0, -2.0]]));
        let loss = tape.softmax_cross_entropy(x, &[0]);
        let probs = tape.aux(loss).unwrap();
        let s: f64 = probs.data().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(probs.get2(0, 0) > probs.get2(0, 1));
    }

    #[test]
    fn quantize_forward_and_ste_backward() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::vector(vec![-3.0, -0.6, 0.1, 0.8, 2.5]));
        let q = tape.quantize_ste(x, 5, -2.0, 2.0);
        // Centroids: -2, -1, 0, 1, 2.
        assert_eq!(tape.value(q).data(), &[-2.0, -1.0, 0.0, 1.0, 2.0]);
        let s = tape.sum(q);
        let grads = tape.backward(s);
        let gx = grads.get(x, &tape);
        // Clipped STE: gradient 1 inside [-2,2], 0 outside.
        assert_eq!(gx.data(), &[0.0, 1.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn quantization_centroids_are_uniform() {
        let c = quantization_centroids(5, -2.0, 2.0);
        assert_eq!(c, vec![-2.0, -1.0, 0.0, 1.0, 2.0]);
        assert_eq!(quantize_value(0.49, 5, -2.0, 2.0), 0.0);
        assert_eq!(quantize_value(0.51, 5, -2.0, 2.0), 1.0);
        assert_eq!(quantize_value(9.0, 5, -2.0, 2.0), 2.0);
    }

    #[test]
    fn quantum_node_backpropagates_jacobians() {
        // A fake "quantum block": out = [sin(p)·x0, x1·p] with 1 param.
        let p_val = 0.7f64;
        let x_val = Tensor::from_rows(&[vec![0.3, -0.5]]);
        let out = Tensor::from_rows(&[vec![p_val.sin() * 0.3, -0.5 * p_val]]);
        let jx = vec![Tensor::new(vec![p_val.sin(), 0.0, 0.0, p_val], vec![2, 2])];
        let jp = vec![Tensor::new(vec![p_val.cos() * 0.3, -0.5], vec![2, 1])];
        let mut tape = Tape::new();
        let x = tape.input(x_val);
        let theta = tape.input(Tensor::vector(vec![p_val]));
        let q = tape.quantum(x, theta, out, jx, jp);
        let s = tape.sum(q);
        let grads = tape.backward(s);
        let gp = grads.get(theta, &tape);
        assert!((gp.data()[0] - (p_val.cos() * 0.3 - 0.5)).abs() < 1e-12);
        let gx = grads.get(x, &tape);
        assert!((gx.get2(0, 0) - p_val.sin()).abs() < 1e-12);
        assert!((gx.get2(0, 1) - p_val).abs() < 1e-12);
    }

    #[test]
    fn gradient_of_unused_input_is_zero() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::vector(vec![1.0]));
        let y = tape.input(Tensor::vector(vec![2.0]));
        let loss = tape.sum(x);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(y, &tape).data(), &[0.0]);
    }

    #[test]
    fn fan_out_accumulates() {
        // loss = x·x + x → grad = 2x + 1.
        let mut tape = Tape::new();
        let x = tape.input(Tensor::vector(vec![3.0]));
        let y = tape.mul(x, x);
        let z = tape.add(y, x);
        let loss = tape.sum(z);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(x, &tape).data(), &[7.0]);
    }
}
