//! Dense row-major `f64` tensors.
//!
//! A deliberately small tensor type: the QuantumNAT training pipeline only
//! needs rank-1 parameter vectors and rank-2 `[batch, features]` activations.

use std::fmt;

/// A dense tensor of `f64` values in row-major order.
///
/// # Examples
///
/// ```
/// use qnat_autodiff::tensor::Tensor;
/// let t = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(t.shape(), &[2, 2]);
/// assert_eq!(t.get2(1, 0), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    data: Vec<f64>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor from raw data and shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn new(data: Vec<f64>, shape: Vec<usize>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor { data, shape }
    }

    /// A scalar tensor (shape `[1]`).
    pub fn scalar(v: f64) -> Self {
        Tensor {
            data: vec![v],
            shape: vec![1],
        }
    }

    /// A rank-1 tensor from a vector.
    pub fn vector(v: Vec<f64>) -> Self {
        let n = v.len();
        Tensor {
            data: v,
            shape: vec![n],
        }
    }

    /// A rank-2 tensor from rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or there are no rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor {
            data,
            shape: vec![rows.len(), cols],
        }
    }

    /// Zero-filled tensor of a given shape.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n = shape.iter().product();
        Tensor {
            data: vec![0.0; n],
            shape,
        }
    }

    /// Zero tensor with the same shape as `other`.
    pub fn zeros_like(other: &Tensor) -> Self {
        Tensor::zeros(other.shape.clone())
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat data slice.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data slice.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Rank-2 element access.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or indices are out of range.
    pub fn get2(&self, row: usize, col: usize) -> f64 {
        assert_eq!(self.shape.len(), 2, "get2 on non-matrix tensor");
        self.data[row * self.shape[1] + col]
    }

    /// The scalar value of a single-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f64 {
        assert_eq!(self.len(), 1, "item() on multi-element tensor");
        self.data[0]
    }

    /// Element-wise in-place accumulate: `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn accumulate(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in accumulate");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} {:.4?}", self.shape, &self.data[..self.len().min(8)])?;
        if self.len() > 8 {
            write!(f, "…")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_shape_checks() {
        let t = Tensor::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        assert_eq!(t.get2(1, 2), 6.0);
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
        assert_eq!(Tensor::vector(vec![1.0, 2.0]).shape(), &[2]);
        assert!(Tensor::zeros(vec![3, 4]).data().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn bad_shape_panics() {
        Tensor::new(vec![1.0], vec![2, 2]);
    }

    #[test]
    fn accumulate_adds() {
        let mut a = Tensor::vector(vec![1.0, 2.0]);
        a.accumulate(&Tensor::vector(vec![0.5, -1.0]));
        assert_eq!(a.data(), &[1.5, 1.0]);
    }
}
