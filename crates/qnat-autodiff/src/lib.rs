//! # qnat-autodiff — reverse-mode autodiff substrate for QuantumNAT
//!
//! A small tape-based automatic-differentiation engine covering exactly the
//! classical operations QuantumNAT's training pipeline needs:
//! element-wise arithmetic, batch statistics for post-measurement
//! normalization, straight-through quantization, fixed-head matrix
//! multiplication, softmax cross-entropy and a custom *quantum* node that
//! splices externally-computed circuit Jacobians (from `qnat-sim`'s adjoint
//! or parameter-shift engines) into the backward pass.
//!
//! ## Example
//!
//! ```
//! use qnat_autodiff::{tape::Tape, tensor::Tensor};
//!
//! let mut tape = Tape::new();
//! let x = tape.input(Tensor::vector(vec![2.0]));
//! let y = tape.mul(x, x);
//! let loss = tape.sum(y);
//! let grads = tape.backward(loss);
//! assert_eq!(grads.get(x, &tape).data(), &[4.0]);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod tape;
pub mod tensor;

pub use tape::{Gradients, Tape, Var};
pub use tensor::Tensor;
