//! Property-based tests for the autodiff tape: gradients of random graphs
//! match finite differences; quantization invariants.

use proptest::prelude::*;
use qnat_autodiff::tape::{quantization_centroids, quantize_value, Tape, Var};
use qnat_autodiff::tensor::Tensor;

/// Builds a random-but-deterministic computation graph parameterized by
/// three op-selector bytes, ending in a scalar loss.
fn build_graph(tape: &mut Tape, x: Var, ops: &[u8]) -> Var {
    let mut cur = x;
    for &op in ops {
        cur = match op % 6 {
            0 => tape.mul(cur, cur),
            1 => tape.add(cur, x),
            2 => tape.scale(cur, 0.5),
            3 => tape.add_scalar(cur, 1.0),
            4 => {
                // Keep values positive for sqrt via squaring first.
                let sq = tape.mul(cur, cur);
                let sh = tape.add_scalar(sq, 0.1);
                tape.sqrt(sh)
            }
            _ => tape.neg(cur),
        };
    }
    tape.mean(cur)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_graph_gradients_match_finite_difference(
        data in prop::collection::vec(-2.0f64..2.0, 2..6),
        ops in prop::collection::vec(0u8..6, 1..5),
    ) {
        let input = Tensor::vector(data.clone());
        let mut tape = Tape::new();
        let x = tape.input(input.clone());
        let loss = build_graph(&mut tape, x, &ops);
        let grads = tape.backward(loss);
        let gx = grads.get(x, &tape);
        let eps = 1e-6;
        for i in 0..data.len() {
            let eval = |delta: f64| {
                let mut t = input.clone();
                t.data_mut()[i] += delta;
                let mut tape = Tape::new();
                let x = tape.input(t);
                let loss = build_graph(&mut tape, x, &ops);
                tape.value(loss).item()
            };
            let fd = (eval(eps) - eval(-eps)) / (2.0 * eps);
            prop_assert!(
                (gx.data()[i] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                "element {}: autodiff {} vs fd {}", i, gx.data()[i], fd
            );
        }
    }

    #[test]
    fn normalization_output_is_standardized(
        rows in prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 3), 4..12),
    ) {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_rows(&rows));
        let b = rows.len();
        let mu = tape.mean_axis0(x);
        let mub = tape.broadcast0(mu, b);
        let centered = tape.sub(x, mub);
        let var = tape.var_axis0(x);
        let var_eps = tape.add_scalar(var, 1e-9);
        let sd = tape.sqrt(var_eps);
        let sdb = tape.broadcast0(sd, b);
        let norm = tape.div(centered, sdb);
        let v = tape.value(norm);
        for j in 0..3 {
            let col: Vec<f64> = (0..b).map(|i| v.get2(i, j)).collect();
            let mean = col.iter().sum::<f64>() / b as f64;
            prop_assert!(mean.abs() < 1e-8);
        }
    }

    #[test]
    fn quantize_is_idempotent(v in -5.0f64..5.0, levels in 2usize..9) {
        let q = quantize_value(v, levels, -2.0, 2.0);
        prop_assert_eq!(quantize_value(q, levels, -2.0, 2.0), q);
        // Output is one of the centroids.
        let centroids = quantization_centroids(levels, -2.0, 2.0);
        prop_assert!(centroids.iter().any(|&c| (c - q).abs() < 1e-12));
    }

    #[test]
    fn quantize_error_is_bounded(v in -2.0f64..2.0, levels in 2usize..9) {
        let q = quantize_value(v, levels, -2.0, 2.0);
        let step = 4.0 / (levels - 1) as f64;
        prop_assert!((v - q).abs() <= step / 2.0 + 1e-12);
    }

    #[test]
    fn softmax_ce_gradient_rows_sum_to_zero(
        logits in prop::collection::vec(prop::collection::vec(-3.0f64..3.0, 3), 1..6),
    ) {
        let labels: Vec<usize> = (0..logits.len()).map(|i| i % 3).collect();
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_rows(&logits));
        let loss = tape.softmax_cross_entropy(x, &labels);
        let grads = tape.backward(loss);
        let g = grads.get(x, &tape);
        for i in 0..logits.len() {
            let row_sum: f64 = (0..3).map(|j| g.get2(i, j)).sum();
            // Softmax gradient rows sum to zero (probabilities − one-hot).
            prop_assert!(row_sum.abs() < 1e-10);
        }
    }
}
