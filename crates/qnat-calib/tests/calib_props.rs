//! Property pins for the calibration tracker's three contracts (ISSUE 9):
//!
//! 1. **Arrival-order invariance** — tracker state is a function of the
//!    observation *set*, not the arrival schedule: any permutation of
//!    ticket deliveries (any split of the stream across workers/pilots,
//!    any epoch boundary) lands on bitwise-identical tracker state,
//!    because the reorder buffer applies strictly in ticket order.
//! 2. **Replayable decisions** — [`replay_decision`] recomputes a routing
//!    winner from the recorded score components alone, with ties broken
//!    toward the lower fleet index, for arbitrary candidate tables.
//! 3. **Clamped estimates** — no report stream, however pathological
//!    (zero attempts, `usize::MAX` counters, saturated backoff), drives
//!    any estimate out of `[0, 1]` or produces a non-finite number.

use proptest::prelude::*;
use qnat_calib::{replay_decision, CalibConfig, CalibDecision, CalibrationTracker};
use qnat_calib::{CandidateScore, NoiseSource};
use qnat_core::executor::BackendUsage;

/// One delivered-job observation: device index, usage evidence, outcome.
type Obs = (usize, BackendUsage, bool);

const N_DEVICES: usize = 3;

fn usage_from(
    (attempts, retries, vf, ff, fb, backoff): (usize, usize, usize, usize, usize, u64),
) -> BackendUsage {
    BackendUsage {
        attempts,
        retries,
        validation_failures: vf,
        fast_failed_jobs: ff,
        fallback_jobs: fb,
        backoff_ms: backoff,
    }
}

/// Realistic usage: a handful of attempts with correlated counters.
fn arb_usage() -> impl Strategy<Value = BackendUsage> {
    (0usize..6, 0usize..8, 0usize..4, 0usize..2, 0usize..2, 0u64..2000).prop_map(usage_from)
}

/// Pathological usage: every counter independently 0, huge, or saturated.
fn pathological_usage() -> impl Strategy<Value = BackendUsage> {
    let count = || prop_oneof![Just(0usize), Just(1), Just(usize::MAX), 0usize..1000];
    let ms = prop_oneof![Just(0u64), Just(u64::MAX), 0u64..100_000];
    (count(), count(), count(), count(), count(), ms).prop_map(usage_from)
}

fn arb_obs(usage: impl Strategy<Value = BackendUsage>) -> impl Strategy<Value = Obs> {
    (0..N_DEVICES, usage, prop_oneof![Just(true), Just(false)])
}

/// A seed-keyed Fisher–Yates permutation of `0..n` — the arbitrary
/// arrival schedule (any worker interleaving, any epoch split).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed;
    let mut next = move || {
        // splitmix64: cheap, uniform-enough for a shuffle key.
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

fn tracker() -> CalibrationTracker {
    CalibrationTracker::new(
        CalibConfig {
            min_observations: 1,
            window: 8,
            ..CalibConfig::default()
        },
        (0..N_DEVICES).map(|i| format!("dev-{i}")).collect(),
    )
}

/// One device's comparable state: estimate and routing-estimate bits,
/// residual bits, window-fill bits, observation count.
type DeviceBits = (Option<u64>, Option<u64>, u64, u64, u64);

/// The per-device state the properties compare, with the floats as raw
/// bits so "equal" means *bitwise* equal, not merely approximately.
fn fingerprint(t: &CalibrationTracker) -> Vec<DeviceBits> {
    (0..N_DEVICES)
        .map(|i| {
            (
                t.estimate(i).map(f64::to_bits),
                t.routing_estimate(i).map(f64::to_bits),
                t.residual(i).to_bits(),
                t.window_fill(i).to_bits(),
                t.observations(i),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Delivering the same ticketed observations in *any* arrival order —
    /// any interleaving of workers, any epoch split — produces bitwise
    /// identical tracker state, and the reorder buffer fully drains.
    #[test]
    fn tracker_state_is_bitwise_invariant_to_arrival_order(
        obs in prop::collection::vec(arb_obs(arb_usage()), 1..24),
        shuffle_seed in 0u64..u64::MAX,
    ) {
        let arrival = permutation(obs.len(), shuffle_seed);
        let mut in_order = tracker();
        for (ticket, (device, usage, ok)) in obs.iter().enumerate() {
            in_order.observe(ticket as u64, *device, usage, *ok);
        }
        let mut permuted = tracker();
        for &ticket in &arrival {
            let (device, usage, ok) = &obs[ticket];
            permuted.observe(ticket as u64, *device, usage, *ok);
        }
        prop_assert_eq!(fingerprint(&in_order), fingerprint(&permuted));
        prop_assert_eq!(in_order.health(), permuted.health());
        prop_assert_eq!(permuted.pending(), 0, "reorder buffer must drain");
        prop_assert_eq!(permuted.applied(), obs.len() as u64);
    }

    /// A decision whose winner is *constructed* to score strictly below
    /// every other candidate replays to exactly that winner, whatever the
    /// other components are; exact score ties break to the lower index.
    #[test]
    fn replay_recovers_the_winner_and_breaks_ties_low(
        depth_weight in 0.0f64..2.0,
        noise_weight in 0.1f64..2.0,
        rows in prop::collection::vec(
            (0.0f64..1.0, 0.0f64..50.0, 0.0f64..0.5),
            2..6,
        ),
        winner in 0usize..64,
    ) {
        let candidates: Vec<CandidateScore> = rows
            .iter()
            .enumerate()
            .map(|(index, &(noise, depth, penalty))| CandidateScore {
                device: format!("dev-{index}"),
                index,
                noise,
                source: NoiseSource::Predicted,
                depth,
                penalty,
                score: depth_weight * depth + noise_weight * noise + penalty,
            })
            .collect();
        let chosen = winner % candidates.len();
        let mut rigged = candidates.clone();
        // Pull the designated winner strictly below the field: zero its
        // additive terms and shrink its noise term under the global min.
        let floor = candidates
            .iter()
            .map(|c| c.score)
            .fold(f64::INFINITY, f64::min);
        rigged[chosen].depth = 0.0;
        rigged[chosen].penalty = 0.0;
        rigged[chosen].noise = (floor / noise_weight * 0.5).clamp(0.0, 1.0) * 0.5;
        let decision = CalibDecision {
            job: 0,
            depth_weight,
            noise_weight,
            candidates: rigged,
            chosen,
        };
        let replayed = replay_decision(&decision).expect("non-empty");
        // The rigged winner is unbeatable unless another candidate also
        // scores exactly 0 — then the router's rule says lower index.
        let rigged_score = decision.depth_weight * decision.candidates[chosen].depth
            + decision.noise_weight * decision.candidates[chosen].noise
            + decision.candidates[chosen].penalty;
        let expected = decision
            .candidates
            .iter()
            .position(|c| {
                decision.depth_weight * c.depth
                    + decision.noise_weight * c.noise
                    + c.penalty
                    <= rigged_score
            })
            .expect("the rigged winner itself qualifies");
        prop_assert_eq!(replayed, expected);
    }

    /// However pathological the report stream, every exposed number stays
    /// finite and inside its documented range.
    #[test]
    fn estimates_stay_finite_and_clamped_under_pathological_streams(
        obs in prop::collection::vec(arb_obs(pathological_usage()), 1..40),
    ) {
        let mut t = tracker();
        for (ticket, (device, usage, ok)) in obs.iter().enumerate() {
            t.observe(ticket as u64, *device, usage, *ok);
        }
        prop_assert_eq!(t.applied(), obs.len() as u64);
        for i in 0..N_DEVICES {
            if let Some(e) = t.estimate(i) {
                prop_assert!(e.is_finite() && (0.0..=1.0).contains(&e), "estimate {e}");
            }
            if let Some(r) = t.routing_estimate(i) {
                prop_assert!(
                    r.is_finite() && (0.0..=1.0).contains(&r),
                    "routing estimate {r}"
                );
            }
            if let Some(m) = t.mae(i) {
                prop_assert!(m.is_finite() && m >= 0.0, "mae {m}");
            }
            if let Some(b) = t.brier(i) {
                prop_assert!(b.is_finite() && b >= 0.0, "brier {b}");
            }
            let res = t.residual(i);
            prop_assert!(res.is_finite() && res >= 0.0, "residual {res}");
            let fill = t.window_fill(i);
            prop_assert!((0.0..=1.0).contains(&fill), "window fill {fill}");
        }
    }
}
