//! [`CalibTrace`]: the replayable record of prediction-driven routing.
//!
//! Which device a fleet router picks under `ScorePolicy::Predicted`
//! depends on tracker state at decision time, which is timing-dependent
//! (the documented relaxation the routing layer already accepts for
//! breaker state). What must *not* be lost is auditability: every
//! decision records the exact score components of every candidate —
//! estimate source included — so [`replay_decision`] recomputes the
//! winner from the trace alone, bitwise, with no tracker or fleet state
//! in hand. The serving-side replay story is unchanged: the winning
//! attempt still re-executes bitwise from the `RoutingTrace`, because
//! per-job seeds never depend on the routing decision.

/// Where a candidate's noise term came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseSource {
    /// The static (or declared-drift) calibration estimate — used during
    /// tracker cold start.
    Static,
    /// The tracker's routing estimate (prediction + uncertainty margin).
    Predicted,
}

/// One candidate's scored row in a routing decision.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateScore {
    /// Device name.
    pub device: String,
    /// Device index in fleet order (the tie-break key: lower wins).
    pub index: usize,
    /// The noise term used (tracker estimate or static fallback).
    pub noise: f64,
    /// Which source produced `noise`.
    pub source: NoiseSource,
    /// Engine load (queued + running) at decision time.
    pub depth: f64,
    /// Breaker penalty applied (0 / half-open / open).
    pub penalty: f64,
    /// The final score: `w.depth·depth + w.noise·noise + penalty`.
    pub score: f64,
}

/// One prediction-driven routing decision.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibDecision {
    /// Fleet ticket the decision routed.
    pub job: u64,
    /// Depth weight in force.
    pub depth_weight: f64,
    /// Noise weight in force.
    pub noise_weight: f64,
    /// Every candidate scored, in fleet-index order.
    pub candidates: Vec<CandidateScore>,
    /// Fleet index of the chosen device.
    pub chosen: usize,
}

/// Every prediction-driven decision, in routing order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CalibTrace {
    /// Decisions in the order the router made them.
    pub decisions: Vec<CalibDecision>,
}

/// Recomputes a decision's winner from its recorded components: each
/// candidate's score is rebuilt as
/// `depth_weight·depth + noise_weight·noise + penalty` and the argmin
/// wins, ties to the lower fleet index — the router's exact rule.
/// Returns `None` for a decision with no candidates.
///
/// A mismatch with [`CalibDecision::chosen`] (or with the recorded
/// per-candidate scores) means the trace was corrupted or the scoring
/// rule changed — the determinism property `tests/calib_props.rs` pins.
pub fn replay_decision(decision: &CalibDecision) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for c in &decision.candidates {
        let score = decision.depth_weight * c.depth + decision.noise_weight * c.noise + c.penalty;
        let better = match best {
            None => true,
            Some((_, b)) => score < b,
        };
        if better {
            best = Some((c.index, score));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(index: usize, noise: f64, depth: f64, penalty: f64) -> CandidateScore {
        CandidateScore {
            device: format!("d{index}"),
            index,
            noise,
            source: NoiseSource::Predicted,
            depth,
            penalty,
            score: 0.01 * depth + noise + penalty,
        }
    }

    #[test]
    fn replay_picks_the_recorded_argmin() {
        let d = CalibDecision {
            job: 7,
            depth_weight: 0.01,
            noise_weight: 1.0,
            candidates: vec![
                candidate(0, 0.4, 2.0, 0.0),
                candidate(1, 0.1, 0.0, 0.0),
                candidate(2, 0.1, 0.0, 0.05),
            ],
            chosen: 1,
        };
        assert_eq!(replay_decision(&d), Some(1));
    }

    #[test]
    fn ties_break_toward_the_lower_index() {
        let d = CalibDecision {
            job: 0,
            depth_weight: 0.0,
            noise_weight: 1.0,
            candidates: vec![candidate(3, 0.2, 0.0, 0.0), candidate(5, 0.2, 0.0, 0.0)],
            chosen: 3,
        };
        assert_eq!(replay_decision(&d), Some(3));
        assert_eq!(replay_decision(&CalibDecision { candidates: vec![], ..d }), None);
    }
}
