//! # qnat-calib — learned calibration tracking for a QuantumNAT fleet
//!
//! QuantumNAT's premise is that *knowing* a device's noise lets you act
//! on it. The fleet layer acts on static presets plus breaker state,
//! even though every delivered job's `ExecutionReport` carries live
//! evidence of calibration drift. This crate closes that gap, following
//! the noise-prediction line of work (Zlokapa & Gheorghiu's deep
//! learning noise predictor; ML for quantum noise reduction):
//!
//! * [`CalibrationTracker`] — per-device online logistic regressors
//!   (`qnat-autodiff` tape + `qnat-core` Adam) trained one step per
//!   delivered job on features extracted from the report stream through
//!   the stable per-backend accessors. Estimates the device's
//!   instantaneous error rate in `[0, 1]`, tracks prediction residuals,
//!   and applies updates strictly in fleet-ticket order so tracker state
//!   is bitwise invariant to worker/pilot timing.
//! * [`CalibTrace`] / [`replay_decision`] — the audit log of
//!   prediction-driven routing: every decision's full candidate scoring
//!   is recorded and the winner recomputes from the trace alone.
//! * [`CalibrationTracker::compile_view`] — the loop closed into
//!   compilation: tracker estimates become the calibration source for
//!   level-3 noise-adaptive transpilation via
//!   [`qnat_compiler::calibrated_view`], quantized so plan-cache
//!   fingerprints only move under meaningful drift.
//!
//! The fleet router consumes this crate behind its `ScorePolicy` toggle;
//! see `qnat-fleet` for the routing integration and
//! `benches/calib_tracking.rs` for the accuracy-per-attempt gate.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod trace;
pub mod tracker;

pub use trace::{replay_decision, CalibDecision, CalibTrace, CandidateScore, NoiseSource};
pub use tracker::{CalibConfig, CalibrationHealth, CalibrationTracker, DeviceCalibrationView};
