//! The [`CalibrationTracker`]: an online learned estimator of per-device
//! instantaneous error rates, trained on the execution-report stream.
//!
//! ## Features and label
//!
//! Every delivered job contributes one observation per device, extracted
//! from the job's [`ExecutionReport`] through the stable per-backend
//! accessors ([`ExecutionReport::backend_usage`] and friends): retry
//! rate, terminal failure, validation-failure rate, breaker fast-fails,
//! normalized backoff and fallback usage. The supervised label is the
//! job's *empirical per-attempt failure fraction*
//! `y = (retries + terminal) / attempts` — the maximum-likelihood sample
//! of the device's effective failure probability that the fault layer's
//! drift coupling ties to calibration decay. Each observation carries an
//! importance weight equal to its attempt count: a per-job failure
//! fraction is a biased sample of the per-attempt rate (mean-of-ratios ≠
//! ratio-of-means), and attempt-weighting both the window summaries and
//! the regression loss moves the stationary point to exactly
//! `Σ failures / Σ attempts` — the unbiased per-attempt rate.
//!
//! ## Model
//!
//! Per device, a logistic regressor `ŷ = σ(w · φ)` over a sliding
//! feature window: `φ` summarizes the last `window` observations (means,
//! the latest label, and a first-half/second-half trend term that lets
//! the model extrapolate `DriftModel::Linear` creep instead of lagging
//! it). One Adam step per observation, on the driver thread, through the
//! `qnat-autodiff` tape — non-finite gradients are skipped by the
//! optimizer, and the sigmoid clamps every estimate into `[0, 1]` by
//! construction.
//!
//! ## Update discipline
//!
//! Observations arrive keyed by a dense, monotone ticket (the fleet-wide
//! job index). The tracker buffers out-of-order arrivals in a reorder
//! buffer and applies them strictly in ticket order, so the final
//! tracker state is a pure function of the observation *set* — bitwise
//! invariant to pilot/worker timing, the same epochs-of-one discipline
//! the health layer uses (property-pinned in `tests/calib_props.rs`).

use qnat_autodiff::tape::Tape;
use qnat_autodiff::tensor::Tensor;
use qnat_core::executor::{BackendUsage, ExecutionReport};
use qnat_core::train::{Adam, AdamConfig};
use qnat_noise::device::DeviceModel;
use std::collections::{BTreeMap, VecDeque};

/// Raw per-observation features (see module docs).
const N_RAW: usize = 6;
/// Regression features `φ` derived from the window.
const N_PHI: usize = 9;

/// Tracker hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibConfig {
    /// Sliding-window length per device (clamped to ≥ 2).
    pub window: usize,
    /// Observations required before [`CalibrationTracker::estimate`]
    /// returns `Some` — the cold-start guard under which callers fall
    /// back to static calibration.
    pub min_observations: u64,
    /// Adam learning rate for the per-observation update.
    pub lr: f64,
    /// EMA coefficient of the prediction-residual tracker (`0 < α ≤ 1`).
    pub residual_alpha: f64,
    /// Uncertainty margin: routing estimates are inflated by
    /// `margin · residual_ema`, so devices the model predicts badly look
    /// riskier to the router — the per-device adaptive score weight.
    pub uncertainty_margin: f64,
    /// Quantization step for compile-time calibration views
    /// ([`CalibrationTracker::compile_view`]); keeps plan-cache
    /// fingerprints stable under estimator jitter.
    pub quant_step: f64,
}

impl Default for CalibConfig {
    fn default() -> Self {
        CalibConfig {
            window: 32,
            min_observations: 8,
            lr: 0.08,
            residual_alpha: 0.1,
            uncertainty_margin: 1.0,
            quant_step: 0.02,
        }
    }
}

/// One raw observation in a device's window.
#[derive(Debug, Clone, Copy)]
struct Observation {
    raw: [f64; N_RAW],
    label: f64,
    /// Importance weight = attempts behind the label (clamped). A per-job
    /// failure fraction is a biased sample of the per-attempt rate
    /// (mean-of-ratios ≠ ratio-of-means); attempt-weighting the window
    /// means and the regression loss makes the stationary point exactly
    /// `Σ failures / Σ attempts` — the unbiased per-attempt rate.
    weight: f64,
}

/// Per-device estimator state.
#[derive(Debug, Clone)]
struct DeviceTrack {
    window: VecDeque<Observation>,
    weights: Vec<f64>,
    adam: Adam,
    residual_ema: f64,
    abs_err_sum: f64,
    /// Attempt-weighted squared prequential residuals (see
    /// [`CalibrationTracker::brier`]).
    sq_err_sum: f64,
    err_weight_sum: f64,
    err_count: u64,
    observations: u64,
    skipped: u64,
}

impl DeviceTrack {
    fn new(config: &CalibConfig) -> Self {
        let adam_config = AdamConfig {
            lr_max: config.lr,
            warmup_epochs: 0,
            total_epochs: 0,
            weight_decay: 0.0,
            ..AdamConfig::default()
        };
        DeviceTrack {
            window: VecDeque::with_capacity(config.window.max(2)),
            weights: vec![0.0; N_PHI],
            adam: Adam::new(adam_config, N_PHI),
            residual_ema: 0.0,
            abs_err_sum: 0.0,
            sq_err_sum: 0.0,
            err_weight_sum: 0.0,
            err_count: 0,
            observations: 0,
            skipped: 0,
        }
    }

    /// The window summary `φ` the regressor scores — `None` while the
    /// window is empty.
    fn phi(&self) -> Option<[f64; N_PHI]> {
        if self.window.is_empty() {
            return None;
        }
        let n = self.window.len();
        let mut mean_raw = [0.0; N_RAW];
        let mut mean_y = 0.0;
        let mut total_w = 0.0;
        for obs in &self.window {
            for (m, r) in mean_raw.iter_mut().zip(obs.raw) {
                *m += obs.weight * r;
            }
            mean_y += obs.weight * obs.label;
            total_w += obs.weight;
        }
        for m in &mut mean_raw {
            *m /= total_w;
        }
        mean_y /= total_w;
        // Old-half vs new-half weighted label means: positive when
        // failures are accelerating, negative when a recalibration
        // snapped them back.
        let half = n / 2;
        let trend = if half == 0 {
            0.0
        } else {
            let wmean = |it: &mut dyn Iterator<Item = &Observation>| {
                let (mut s, mut w) = (0.0, 0.0);
                for o in it {
                    s += o.weight * o.label;
                    w += o.weight;
                }
                s / w
            };
            wmean(&mut self.window.iter().skip(n - half)) - wmean(&mut self.window.iter().take(half))
        };
        let last = self.window.back().map_or(0.0, |o| o.label);
        Some([
            1.0,
            mean_y,
            last,
            trend,
            mean_raw[0],
            mean_raw[1],
            mean_raw[2],
            mean_raw[3],
            mean_raw[4],
        ])
    }

    fn predict(&self, phi: &[f64; N_PHI]) -> f64 {
        let z: f64 = self.weights.iter().zip(phi).map(|(w, x)| w * x).sum();
        sigmoid(z)
    }
}

/// Numerically stable logistic sigmoid (matches the tape's forward).
fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// One device's row in [`CalibrationHealth`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceCalibrationView {
    /// Device name.
    pub name: String,
    /// Current error-rate estimate (`None` during cold start).
    pub estimate: Option<f64>,
    /// The routing estimate: `estimate` plus the uncertainty margin.
    pub routing_estimate: Option<f64>,
    /// EMA of the absolute prediction residual.
    pub residual: f64,
    /// Window occupancy in `[0, 1]`.
    pub window_fill: f64,
    /// Observations applied so far (skipped no-evidence reports
    /// excluded).
    pub observations: u64,
}

/// A point-in-time view of the tracker, for `/healthz` and operators.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationHealth {
    /// One row per device, in fleet order.
    pub devices: Vec<DeviceCalibrationView>,
    /// Tickets applied in order so far.
    pub applied: u64,
    /// Out-of-order observations waiting in the reorder buffer.
    pub pending: usize,
}

/// A buffered observation awaiting its turn in ticket order.
#[derive(Debug, Clone)]
struct PendingObservation {
    device: usize,
    usage: BackendUsage,
    ok: bool,
}

/// Online learned calibration tracker over a fleet of named devices.
/// See the module docs for the model and update discipline.
#[derive(Debug, Clone)]
pub struct CalibrationTracker {
    config: CalibConfig,
    names: Vec<String>,
    tracks: Vec<DeviceTrack>,
    pending: BTreeMap<u64, PendingObservation>,
    next_ticket: u64,
}

impl CalibrationTracker {
    /// A tracker over `names` (fleet order), all devices cold.
    pub fn new(config: CalibConfig, names: Vec<String>) -> Self {
        let tracks = names.iter().map(|_| DeviceTrack::new(&config)).collect();
        CalibrationTracker {
            config,
            names,
            tracks,
            pending: BTreeMap::new(),
            next_ticket: 0,
        }
    }

    /// A tracker warm-started from declared per-device error rates.
    ///
    /// `φ[0]` is a constant bias feature, so seeding that weight to
    /// `logit(prior)` makes the cold regressor's first prediction exactly
    /// the declared calibration rate instead of the uninformed
    /// `σ(0) = 0.5` — prequential error during warm-up then starts from
    /// the same place as a frozen-preset baseline and Adam refines from
    /// the declared rate rather than from ignorance. Priors are clamped
    /// into `[1e-3, 1 − 1e-3]` (and non-finite priors ignored); devices
    /// beyond `priors.len()` stay cold at zero weights.
    pub fn with_priors(config: CalibConfig, names: Vec<String>, priors: &[f64]) -> Self {
        let mut tracker = Self::new(config, names);
        for (track, &prior) in tracker.tracks.iter_mut().zip(priors) {
            if !prior.is_finite() {
                continue;
            }
            let p = prior.clamp(1e-3, 1.0 - 1e-3);
            track.weights[0] = (p / (1.0 - p)).ln();
        }
        tracker
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &CalibConfig {
        &self.config
    }

    /// Tracked device names, in fleet order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Sums a report's per-backend usage into one evidence record via the
    /// stable [`ExecutionReport`] accessors — primary and fallback
    /// backends both count: the job's full attempt economy is the
    /// device's cost.
    pub fn report_usage(report: &ExecutionReport) -> BackendUsage {
        let mut total = BackendUsage::default();
        let keys: Vec<String> = report.backend_keys().map(str::to_owned).collect();
        for key in keys {
            total.merge(&report.backend_usage(&key));
        }
        total
    }

    /// Records the outcome of fleet ticket `ticket` on device `device`.
    /// Applies buffered observations strictly in ticket order; tickets
    /// already applied are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn observe(&mut self, ticket: u64, device: usize, usage: &BackendUsage, ok: bool) {
        assert!(device < self.tracks.len(), "device index out of range");
        if ticket < self.next_ticket {
            return;
        }
        self.pending.insert(
            ticket,
            PendingObservation {
                device,
                usage: *usage,
                ok,
            },
        );
        while let Some(obs) = self.pending.remove(&self.next_ticket) {
            self.next_ticket += 1;
            self.apply(&obs);
        }
    }

    fn apply(&mut self, obs: &PendingObservation) {
        let Some((raw, label, weight)) = extract(&obs.usage, obs.ok) else {
            self.tracks[obs.device].skipped += 1;
            return;
        };
        let config = self.config;
        let track = &mut self.tracks[obs.device];
        // Prequential step: predict the incoming label from the window
        // *before* it, account the residual, then train on it.
        if let Some(phi) = track.phi() {
            let predicted = track.predict(&phi);
            let residual = (label - predicted).abs();
            track.residual_ema = if track.err_count == 0 {
                residual
            } else {
                config.residual_alpha * residual
                    + (1.0 - config.residual_alpha) * track.residual_ema
            };
            track.abs_err_sum += residual;
            track.sq_err_sum += weight * residual * residual;
            track.err_weight_sum += weight;
            track.err_count += 1;
            let mut tape = Tape::new();
            let wv = tape.input(Tensor::new(track.weights.clone(), vec![1, N_PHI]));
            let z = tape.matmul_const(wv, Tensor::new(phi.to_vec(), vec![N_PHI, 1]));
            let p = tape.sigmoid(z);
            let yv = tape.input(Tensor::new(vec![label], vec![1, 1]));
            let d = tape.sub(p, yv);
            let sq = tape.mul(d, d);
            // Importance-weight the squared error by the observation's
            // attempt count (see `Observation::weight`).
            let wt = tape.input(Tensor::new(vec![weight], vec![1, 1]));
            let weighted = tape.mul(sq, wt);
            let loss = tape.mean(weighted);
            let grads = tape.backward(loss);
            let gw = grads.get(wv, &tape);
            track.adam.step(&mut track.weights, gw.data(), config.lr);
        }
        track.window.push_back(Observation { raw, label, weight });
        while track.window.len() > config.window.max(2) {
            track.window.pop_front();
        }
        track.observations += 1;
    }

    /// The current error-rate estimate for `device` — `σ(w·φ)` over the
    /// live window, always finite and in `[0, 1]`. `None` during cold
    /// start (fewer than [`CalibConfig::min_observations`] applied).
    pub fn estimate(&self, device: usize) -> Option<f64> {
        let track = self.tracks.get(device)?;
        if track.observations < self.config.min_observations {
            return None;
        }
        let phi = track.phi()?;
        Some(track.predict(&phi).clamp(0.0, 1.0))
    }

    /// The routing estimate: [`CalibrationTracker::estimate`] inflated by
    /// the uncertainty margin `margin · residual_ema` and re-clamped —
    /// devices the model predicts badly score as riskier.
    pub fn routing_estimate(&self, device: usize) -> Option<f64> {
        let e = self.estimate(device)?;
        let margin = self.config.uncertainty_margin * self.tracks[device].residual_ema;
        Some((e + margin).clamp(0.0, 1.0))
    }

    /// EMA of the absolute prediction residual for `device` (0 while
    /// cold).
    pub fn residual(&self, device: usize) -> f64 {
        self.tracks.get(device).map_or(0.0, |t| t.residual_ema)
    }

    /// Mean absolute prequential prediction error so far (`None` before
    /// the first scored prediction).
    pub fn mae(&self, device: usize) -> Option<f64> {
        let track = self.tracks.get(device)?;
        if track.err_count == 0 {
            return None;
        }
        Some(track.abs_err_sum / track.err_count as f64)
    }

    /// Attempt-weighted mean squared prequential prediction error — the
    /// prequential Brier score (`None` before the first scored
    /// prediction). This is the *proper* accuracy yardstick for a
    /// per-attempt rate estimator, and both halves of the weighting
    /// matter: against noisy per-job failure fractions, mean absolute
    /// error is minimized by the label *median* (rewarding
    /// under-prediction), and even *unweighted* squared error is
    /// minimized by the mean of the per-job ratios — which sits below
    /// the per-attempt rate (mean-of-ratios ≠ ratio-of-means, exactly
    /// the bias the training loss weights away). Weighting each squared
    /// residual by its attempt count makes the minimizer
    /// `Σ failures / Σ attempts` — the same per-attempt rate the
    /// regressor targets. Benches gate tracker-vs-frozen-preset
    /// accuracy on this.
    pub fn brier(&self, device: usize) -> Option<f64> {
        let track = self.tracks.get(device)?;
        if track.err_count == 0 || track.err_weight_sum <= 0.0 {
            return None;
        }
        Some(track.sq_err_sum / track.err_weight_sum)
    }

    /// Window occupancy for `device` in `[0, 1]`.
    pub fn window_fill(&self, device: usize) -> f64 {
        self.tracks.get(device).map_or(0.0, |t| {
            t.window.len() as f64 / self.config.window.max(2) as f64
        })
    }

    /// Observations applied for `device` (evidence-free reports are
    /// skipped and not counted).
    pub fn observations(&self, device: usize) -> u64 {
        self.tracks.get(device).map_or(0, |t| t.observations)
    }

    /// The regressor weights for `device` — exposed so determinism tests
    /// can compare tracker states bitwise.
    pub fn weights(&self, device: usize) -> &[f64] {
        &self.tracks[device].weights
    }

    /// Tickets applied in order so far (the reorder buffer's low-water
    /// mark).
    pub fn applied(&self) -> u64 {
        self.next_ticket
    }

    /// Out-of-order observations waiting in the reorder buffer.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The calibration view this tracker implies for `device`'s `model`:
    /// [`qnat_compiler::calibrated_view`] fed the current estimate,
    /// quantized by [`CalibConfig::quant_step`] so plan-cache
    /// fingerprints move only under meaningful drift. `reference` is the
    /// error rate at calibration (drift scale 1). Cold devices return
    /// the static model unchanged.
    pub fn compile_view(&self, device: usize, model: &DeviceModel, reference: f64) -> DeviceModel {
        match self.estimate(device) {
            Some(e) => {
                qnat_compiler::calibrated_view(model, e, reference, self.config.quant_step)
            }
            None => model.clone(),
        }
    }

    /// A point-in-time health snapshot of every device.
    pub fn health(&self) -> CalibrationHealth {
        let devices = (0..self.tracks.len())
            .map(|i| DeviceCalibrationView {
                name: self.names[i].clone(),
                estimate: self.estimate(i),
                routing_estimate: self.routing_estimate(i),
                residual: self.residual(i),
                window_fill: self.window_fill(i),
                observations: self.observations(i),
            })
            .collect();
        CalibrationHealth {
            devices,
            applied: self.applied(),
            pending: self.pending(),
        }
    }
}

/// The largest importance weight one observation may carry — bounds the
/// influence of any single pathological report on the window.
const MAX_WEIGHT: f64 = 64.0;

/// Extracts `(raw features, label, weight)` from one usage record, or
/// `None` when the record carries no evidence (nothing was attempted and
/// no fast-fail was recorded). The weight is the attempt count clamped
/// to `[1, MAX_WEIGHT]`.
fn extract(usage: &BackendUsage, ok: bool) -> Option<([f64; N_RAW], f64, f64)> {
    let attempts = usage.attempts;
    if attempts == 0 {
        if usage.fast_failed_jobs == 0 {
            return None;
        }
        // A breaker fast-fail ran nothing, but it *is* evidence: the
        // breaker opened because recent attempts failed.
        return Some(([0.0, 1.0, 0.0, 1.0, 0.0, 0.0], 1.0, 1.0));
    }
    let a = attempts as f64;
    let weight = a.clamp(1.0, MAX_WEIGHT);
    let terminal = if ok { 0.0 } else { 1.0 };
    let retry_rate = (usage.retries as f64 / a).clamp(0.0, 1.0);
    let validation_rate = (usage.validation_failures as f64 / a).clamp(0.0, 1.0);
    let fast_fail = if usage.fast_failed_jobs > 0 { 1.0 } else { 0.0 };
    let backoff_per_attempt = usage.backoff_ms as f64 / a;
    let backoff_norm = backoff_per_attempt / (backoff_per_attempt + 50.0);
    let fallback = if usage.fallback_jobs > 0 { 1.0 } else { 0.0 };
    let label = ((usage.retries as f64 + terminal) / a).clamp(0.0, 1.0);
    Some((
        [
            retry_rate,
            terminal,
            validation_rate,
            fast_fail,
            backoff_norm,
            fallback,
        ],
        label,
        weight,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A usage record for a job that succeeded after `retries` retries.
    fn usage(retries: usize) -> BackendUsage {
        BackendUsage {
            attempts: retries + 1,
            retries,
            backoff_ms: 8 * retries as u64,
            ..BackendUsage::default()
        }
    }

    fn tracker() -> CalibrationTracker {
        CalibrationTracker::new(CalibConfig::default(), vec!["a".into(), "b".into()])
    }

    /// A seed-deterministic retry count whose long-run failure fraction
    /// is close to `rate` (each attempt fails with probability ≈ rate,
    /// geometric retries capped at 3).
    fn synthetic_retries(rate: f64, t: u64) -> usize {
        let mut r = 0;
        for k in 0..3u64 {
            let h = qnat_core::executor::splitmix64(t.wrapping_mul(0x9e37) ^ k);
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            if u < rate {
                r += 1;
            } else {
                break;
            }
        }
        r
    }

    #[test]
    fn cold_start_returns_none_then_estimates() {
        let mut t = tracker();
        for k in 0..7 {
            assert_eq!(t.estimate(0), None, "cold at {k}");
            t.observe(k, 0, &usage(0), true);
        }
        t.observe(7, 0, &usage(0), true);
        let e = t.estimate(0).expect("warm after min_observations");
        assert!((0.0..=1.0).contains(&e));
        // Device 1 saw nothing and stays cold.
        assert_eq!(t.estimate(1), None);
    }

    #[test]
    fn tracks_a_constant_failure_rate() {
        let mut t = tracker();
        for k in 0..600 {
            t.observe(k, 0, &usage(synthetic_retries(0.35, k)), true);
        }
        let e = t.estimate(0).expect("warm");
        assert!(
            (e - 0.35).abs() < 0.12,
            "estimate {e} should approach the true per-attempt rate 0.35"
        );
        // The frozen wrong prior (0.0) is much farther than the tracker.
        let mae = t.mae(0).expect("scored");
        assert!(mae < 0.35, "prequential MAE {mae} beats predicting zero");
    }

    #[test]
    fn out_of_order_tickets_apply_in_ticket_order() {
        let obs: Vec<(u64, usize, BackendUsage, bool)> = (0..40u64)
            .map(|k| (k, (k % 2) as usize, usage(synthetic_retries(0.4, k)), k % 5 != 0))
            .collect();
        let mut in_order = tracker();
        for (t, d, u, ok) in &obs {
            in_order.observe(*t, *d, u, *ok);
        }
        let mut shuffled = tracker();
        // A worst-case arrival order: all of the tail first, then the
        // head that unblocks the whole buffer.
        for (t, d, u, ok) in obs.iter().rev() {
            shuffled.observe(*t, *d, u, *ok);
        }
        for d in 0..2 {
            assert_eq!(in_order.weights(d), shuffled.weights(d), "device {d}");
            assert_eq!(in_order.estimate(d), shuffled.estimate(d));
            assert_eq!(in_order.residual(d), shuffled.residual(d));
        }
        assert_eq!(shuffled.pending(), 0);
        assert_eq!(shuffled.applied(), 40);
    }

    #[test]
    fn pathological_usage_keeps_estimates_clamped_and_finite() {
        let mut t = tracker();
        let nasty = [
            BackendUsage {
                attempts: usize::MAX,
                retries: usize::MAX,
                validation_failures: usize::MAX,
                fast_failed_jobs: usize::MAX,
                fallback_jobs: usize::MAX,
                backoff_ms: u64::MAX,
            },
            BackendUsage::default(),
            BackendUsage {
                attempts: 1,
                backoff_ms: u64::MAX,
                ..BackendUsage::default()
            },
        ];
        for k in 0..60u64 {
            t.observe(k, 0, &nasty[(k % 3) as usize], k % 2 == 0);
        }
        let e = t.estimate(0).expect("warm");
        assert!(e.is_finite() && (0.0..=1.0).contains(&e), "estimate {e}");
        assert!(t.residual(0).is_finite());
        for w in t.weights(0) {
            assert!(w.is_finite(), "weights stay finite");
        }
    }

    #[test]
    fn evidence_free_reports_are_skipped_not_counted() {
        let mut t = tracker();
        // attempts == 0 and no fast-fail: no evidence.
        t.observe(0, 0, &BackendUsage::default(), true);
        assert_eq!(t.observations(0), 0);
        assert_eq!(t.applied(), 1, "the ticket still advances");
        // A fast-fail with zero attempts *is* evidence (label 1).
        t.observe(
            1,
            0,
            &BackendUsage {
                fast_failed_jobs: 1,
                ..BackendUsage::default()
            },
            false,
        );
        assert_eq!(t.observations(0), 1);
    }

    #[test]
    fn report_usage_folds_every_backend_key() {
        let mut report = ExecutionReport::default();
        report.by_backend.insert(
            "emulator(a)".into(),
            BackendUsage {
                attempts: 4,
                retries: 3,
                backoff_ms: 24,
                ..BackendUsage::default()
            },
        );
        report.by_backend.insert(
            "noise-model(a)".into(),
            BackendUsage {
                attempts: 1,
                fallback_jobs: 1,
                ..BackendUsage::default()
            },
        );
        let total = CalibrationTracker::report_usage(&report);
        assert_eq!(total.attempts, 5);
        assert_eq!(total.retries, 3);
        assert_eq!(total.fallback_jobs, 1);
        assert_eq!(total.backoff_ms, 24);
    }
}
