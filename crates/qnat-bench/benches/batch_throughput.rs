//! Worker-pool batch submission throughput (ISSUE 2 acceptance bench).
//!
//! Retrying cloud-QPU jobs are latency-bound, not compute-bound: most of a
//! flaky job's wall-clock is spent *sleeping* between retries. A single-
//! threaded executor serializes those sleeps; the worker pool overlaps
//! them, so the speedup holds even on a single CPU. This bench drives a
//! 64-job batch with a 50% transient-fault rate and real
//! (`ThreadSleeper`) backoff through pools of 1/2/4/8 workers, and fails
//! loudly unless 4 workers beat the single-threaded path by ≥ 2×.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qnat_core::batch::{BatchExecutor, BatchJob};
use qnat_core::executor::{ResilientExecutor, RetryPolicy, ThreadSleeper};
use qnat_noise::backend::{BackendError, SimulatorBackend};
use qnat_noise::fault::{FaultSpec, FaultyBackend};
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::Gate;
use std::time::Instant;

const BATCH: usize = 64;
const FAULT_RATE: f64 = 0.5;

fn jobs() -> Vec<BatchJob> {
    (0..BATCH)
        .map(|k| {
            let mut c = Circuit::new(2);
            c.push(Gate::ry(0, 0.07 * k as f64 + 0.1));
            c.push(Gate::cx(0, 1));
            c.push(Gate::rz(1, 0.03 * k as f64));
            BatchJob::exact(c)
        })
        .collect()
}

/// Flaky-primary / clean-fallback executor with real wall-clock backoff.
/// Small intervals keep the bench quick; the retry *count* is what the
/// pool overlaps.
fn factory(_job: u64, seed: u64) -> Result<ResilientExecutor, BackendError> {
    let policy = RetryPolicy {
        max_attempts: 4,
        base_backoff_ms: 3,
        max_backoff_ms: 12,
        ..RetryPolicy::default()
    };
    Ok(ResilientExecutor::with_fallback(
        Box::new(FaultyBackend::new(
            SimulatorBackend::new(seed),
            FaultSpec::transient(FAULT_RATE, seed),
        )),
        Box::new(SimulatorBackend::new(seed ^ 0x5eed)),
        policy,
    )
    .with_sleeper(Box::new(ThreadSleeper::default())))
}

fn run_once(workers: usize) -> std::time::Duration {
    let jobs = jobs();
    let pool = BatchExecutor::new(workers, 0xB47C, factory);
    let start = Instant::now();
    let out = pool.execute(&jobs);
    let elapsed = start.elapsed();
    assert_eq!(out.failed_jobs(), 0, "fallback absorbs exhausted retries");
    assert!(out.report.retries > 0, "fault rate must force retries");
    black_box(out);
    elapsed
}

fn bench_batch_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_throughput");
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| run_once(workers));
            },
        );
    }
    group.finish();

    // Acceptance gate: ≥ 2× wall-clock speedup at 4 workers on the 64-job
    // batch. Median of 3 to shrug off scheduler hiccups.
    let median = |workers: usize| {
        let mut times: Vec<_> = (0..3).map(|_| run_once(workers)).collect();
        times.sort();
        times[1]
    };
    let serial = median(1);
    let pooled = median(4);
    let speedup = serial.as_secs_f64() / pooled.as_secs_f64();
    println!(
        "batch_throughput: 64 jobs, serial {:?} vs 4 workers {:?} → {speedup:.2}x",
        serial, pooled
    );
    assert!(
        speedup >= 2.0,
        "4-worker pool must be ≥ 2x faster than single-threaded: got {speedup:.2}x"
    );
}

criterion_group!(benches, bench_batch_throughput);
criterion_main!(benches);
