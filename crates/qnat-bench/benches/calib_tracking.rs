//! Calibration-tracking accuracy and latency (ISSUE 9 acceptance bench).
//!
//! The pitch of `qnat-calib` is that *learned* per-device error estimates
//! beat frozen presets once hardware drifts: a fleet whose preferred
//! device degrades through an **undeclared** coupled drift trajectory
//! (`FaultSpec::failure_drift_coupling`) wastes attempts under
//! `ScorePolicy::Static` — the static score keeps sending jobs into the
//! failure ramp — while `ScorePolicy::Predicted` learns the ramp from
//! the report stream and routes around it.
//!
//! Measures, over RandomWalk and StepRecalibration heavy-drift
//! scenarios with identical seeds and workloads:
//!
//! * **accuracy-per-attempt** (delivered successes / total attempts
//!   consumed) for Static vs Predicted routing — the gate requires
//!   Predicted to win both scenarios;
//! * **prediction Brier score** — the tracker's attempt-weighted
//!   prequential mean *squared* error on the drifting device vs a
//!   frozen-preset baseline that always predicts the base (undrifted)
//!   failure rate — the gate requires the tracker to beat the frozen
//!   baseline on both scenarios. The weighting and the squaring are
//!   both load-bearing: the per-delivery labels are noisy ratios
//!   (mostly 0, occasionally 1/2, 2/3, 1), so MAE is minimized by the
//!   label *median* and even unweighted squared error is minimized by
//!   the mean-of-ratios — both sit below the per-attempt rate the
//!   estimators actually predict, handing an unearned win to any
//!   frozen low guess. Attempt-weighted squared error is minimized by
//!   `Σ failures / Σ attempts`, the per-attempt rate itself. MAE is
//!   still reported alongside for context;
//! * **tracker update latency** p50/p90/p99 over a synthetic
//!   observation stream (the cost added to the pilot delivery path).
//!
//! Writes `results/BENCH_calib.json` and fails loudly on gate misses.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qnat_bench::stats::latency_percentiles_ms;
use qnat_calib::{CalibConfig, CalibrationTracker};
use qnat_core::batch::BatchJob;
use qnat_core::executor::{BackendUsage, ResilientExecutor, RetryPolicy};
use qnat_fleet::{
    Disposition, FleetConfig, FleetDevice, FleetRouter, QuarantinePolicy, ScorePolicy,
};
use qnat_json::Json;
use qnat_noise::backend::SimulatorBackend;
use qnat_noise::fault::{DriftModel, FaultSpec, FaultyBackend};
use qnat_noise::presets;
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::Gate;
use std::time::{Duration, Instant};

const JOBS: usize = 150;
const SEED: u64 = 0xCA11B;
/// Base (undrifted) transient-failure rate of the drifting device — low
/// enough that the static score's preference for it is defensible at
/// calibration time.
const BASE_RATE: f64 = 0.08;
/// Heavy coupling: at drift scale 2 the effective failure rate is
/// `0.08 · (1 + 5·1) = 0.48`.
const COUPLING: f64 = 5.0;
/// RandomWalk step amplitude — ramps the effective failure rate from
/// ~0.18 to ~0.49 across the run under the pinned trajectory seed.
const RW_DRIFT_PER_JOB: f64 = 0.08;
/// StepRecalibration slope — shallower, because the step model pre-pays
/// up to half a session of baseline drift per recalibration: at 0.02 the
/// sawtooth peaks around a 0.5 effective failure rate, heavy enough to
/// matter but below the always-fail regime where the breaker walls the
/// device off and starves both the static router *and* the tracker of
/// evidence.
const STEP_DRIFT_PER_JOB: f64 = 0.02;
/// Pinned trajectory seed: under [`DriftModel::RandomWalk`] this walk
/// ramps the effective failure rate upward across the run — "heavy
/// drift", not a flat or improving trajectory that would make the
/// frozen preset accidentally competitive.
const DRIFT_SEED: u64 = 0;
/// Executor attempts per *terminally failed* routing round, per device
/// (drifting device's `max_attempts` = 3, steady's default = 4) — a
/// failed round means retries were exhausted.
const DRIFTY_MAX_ATTEMPTS: usize = 3;
const STEADY_MAX_ATTEMPTS: usize = 4;

fn jobs() -> Vec<BatchJob> {
    (0..JOBS)
        .map(|k| {
            let mut c = Circuit::new(2);
            c.push(Gate::ry(0, 0.05 * k as f64 + 0.1));
            c.push(Gate::cx(0, 1));
            BatchJob::exact(c)
        })
        .collect()
}

fn drift_spec(drift: DriftModel, per_job: f64, seed: u64) -> FaultSpec {
    FaultSpec {
        gate_drift_per_job: per_job,
        readout_drift_per_job: per_job * 0.6,
        failure_drift_coupling: COUPLING,
        drift,
        // One fleet-wide trajectory: fault rolls stay seed-decorrelated
        // per backend, the calibration ramp is shared and pinned.
        drift_seed: DRIFT_SEED,
        ..FaultSpec::transient(BASE_RATE, seed)
    }
}

/// The statically-preferred device whose health decays along an
/// undeclared drift trajectory: the router's static view stays the clean
/// preset; only the report stream betrays the ramp.
fn drifting_device(drift: DriftModel, per_job: f64) -> FleetDevice {
    FleetDevice::new(presets::santiago(), move |global, seed| {
        Ok(ResilientExecutor::new(
            Box::new(FaultyBackend::starting_at(
                SimulatorBackend::new(seed),
                drift_spec(drift, per_job, seed),
                global,
            )),
            RetryPolicy {
                max_attempts: DRIFTY_MAX_ATTEMPTS,
                ..RetryPolicy::default()
            },
        ))
    })
}

fn steady_device() -> FleetDevice {
    FleetDevice::new(presets::quito(), |_global, seed| {
        Ok(ResilientExecutor::new(
            Box::new(SimulatorBackend::new(seed)),
            RetryPolicy::default(),
        ))
    })
}

struct ScenarioRun {
    successes: u64,
    attempts: u64,
    /// Delivered successes per attempt consumed.
    accuracy_per_attempt: f64,
    /// Jobs the drifting device delivered.
    drifty_serves: u64,
    /// Tracker's prequential MAE on the drifting device (reported only).
    tracker_mae: Option<f64>,
    /// Frozen-preset baseline MAE: always predicts `BASE_RATE`.
    frozen_mae: Option<f64>,
    /// Tracker's prequential Brier (mean squared error) on the drifting
    /// device — the gated metric.
    tracker_brier: Option<f64>,
    /// Frozen-preset baseline Brier: always predicts `BASE_RATE`.
    frozen_brier: Option<f64>,
}

/// Per-attempt failure label of a delivered outcome, mirroring the
/// tracker's own evidence extraction.
fn label(usage: &BackendUsage, ok: bool) -> Option<f64> {
    if usage.attempts == 0 {
        return (usage.fast_failed_jobs > 0).then_some(1.0);
    }
    let terminal = if ok { 0.0 } else { 1.0 };
    Some(((usage.retries as f64 + terminal) / usage.attempts as f64).clamp(0.0, 1.0))
}

fn run_scenario(drift: DriftModel, per_job: f64, policy: ScorePolicy) -> ScenarioRun {
    let drifty_name = presets::santiago().name().to_owned();
    let router = FleetRouter::new(
        FleetConfig {
            seed: SEED,
            pilots: 1,
            engine_workers: 1,
            hedge: None,
            score_policy: policy,
            calibration: CalibConfig {
                min_observations: 6,
                ..CalibConfig::default()
            },
            // Quarantine off: it would eventually wall off the degraded
            // device under *either* policy and mask the thing this bench
            // measures — what the scoring policy alone does with the
            // evidence. Production fleets run both; the breaker still
            // trips and penalizes here.
            quarantine: QuarantinePolicy {
                trip_threshold: u64::MAX,
                probe_every: u64::MAX,
            },
            ..FleetConfig::default()
        },
        vec![drifting_device(drift, per_job), steady_device()],
    )
    .expect("two-device fleet builds");

    let tickets: Vec<_> = jobs()
        .into_iter()
        .map(|j| router.submit(j).expect("bounded queue accepts the batch"))
        .collect();
    let outcomes: Vec<_> = tickets
        .into_iter()
        .map(|t| router.wait(t).expect("every job delivered"))
        .collect();

    let successes = outcomes.iter().filter(|o| o.result.is_ok()).count() as u64;
    // Executor attempts actually burned: the winning round's real count
    // from its report, plus a full retry budget for every terminally
    // failed round (that is what "exhausted" means). Fast-failed,
    // refused and hedge-lost rounds ran nothing.
    let trace = router.trace();
    let mut attempts = 0u64;
    for (jt, o) in trace.jobs.iter().zip(&outcomes) {
        for (i, at) in jt.attempts.iter().enumerate() {
            attempts += match &at.disposition {
                Disposition::Won => {
                    let ran = CalibrationTracker::report_usage(&o.report).attempts;
                    ran.max(1) as u64
                }
                Disposition::Failed(_) if Some(i) == jt.winner => {
                    CalibrationTracker::report_usage(&o.report).attempts.max(1) as u64
                }
                Disposition::Failed(_) if at.device == drifty_name => {
                    DRIFTY_MAX_ATTEMPTS as u64
                }
                Disposition::Failed(_) => STEADY_MAX_ATTEMPTS as u64,
                _ => 0,
            };
        }
    }
    let mut drifty_serves = 0u64;
    let mut frozen_abs = Vec::new();
    // Attempt-weighted squared errors, mirroring the tracker's own Brier
    // accounting: the weighted minimizer is the per-attempt rate both
    // estimators claim to predict.
    let mut frozen_sq = 0.0;
    let mut frozen_w = 0.0;
    for o in &outcomes {
        if o.device != drifty_name {
            continue;
        }
        drifty_serves += 1;
        let usage = CalibrationTracker::report_usage(&o.report);
        if let Some(y) = label(&usage, o.result.is_ok()) {
            let w = usage.attempts.clamp(1, 64) as f64;
            frozen_abs.push((y - BASE_RATE).abs());
            frozen_sq += w * (y - BASE_RATE) * (y - BASE_RATE);
            frozen_w += w;
        }
    }
    let tracker_mae = router.with_tracker(|t| t.mae(0));
    let tracker_brier = router.with_tracker(|t| t.brier(0));
    let frozen_mae = (!frozen_abs.is_empty())
        .then(|| frozen_abs.iter().sum::<f64>() / frozen_abs.len() as f64);
    let frozen_brier = (frozen_w > 0.0).then(|| frozen_sq / frozen_w);
    router.drain();
    ScenarioRun {
        successes,
        attempts,
        accuracy_per_attempt: successes as f64 / attempts.max(1) as f64,
        drifty_serves,
        tracker_mae,
        frozen_mae,
        tracker_brier,
        frozen_brier,
    }
}

/// Median accuracy over 3 runs — routing interleaves with breaker state,
/// so individual runs wobble slightly even with fixed seeds.
fn median_run(drift: DriftModel, per_job: f64, policy: ScorePolicy) -> ScenarioRun {
    let mut runs: Vec<ScenarioRun> =
        (0..3).map(|_| run_scenario(drift, per_job, policy)).collect();
    runs.sort_by(|a, b| {
        a.accuracy_per_attempt
            .partial_cmp(&b.accuracy_per_attempt)
            .expect("accuracy is finite")
    });
    runs.swap_remove(1)
}

/// Synthetic observation stream timing the pilot-path cost of one
/// `observe` (feature extraction + prequential Adam step).
fn update_latencies(n: usize) -> Vec<Duration> {
    let mut tracker = CalibrationTracker::new(
        CalibConfig::default(),
        vec!["a".into(), "b".into()],
    );
    let mut out = Vec::with_capacity(n);
    for t in 0..n {
        let usage = BackendUsage {
            attempts: 1 + t % 3,
            retries: t % 3,
            backoff_ms: 4 * (t % 3) as u64,
            ..BackendUsage::default()
        };
        let start = Instant::now();
        tracker.observe(t as u64, t % 2, &usage, t % 5 != 0);
        out.push(start.elapsed());
    }
    out
}

fn scenario_json(name: &str, stat: &ScenarioRun, pred: &ScenarioRun) -> (String, Json) {
    let run = |r: &ScenarioRun| {
        Json::obj([
            ("successes", Json::Num(r.successes as f64)),
            ("attempts", Json::Num(r.attempts as f64)),
            ("accuracy_per_attempt", Json::Num(r.accuracy_per_attempt)),
            ("drifty_serves", Json::Num(r.drifty_serves as f64)),
            ("tracker_mae", r.tracker_mae.map_or(Json::Null, Json::Num)),
            ("frozen_preset_mae", r.frozen_mae.map_or(Json::Null, Json::Num)),
            ("tracker_brier", r.tracker_brier.map_or(Json::Null, Json::Num)),
            (
                "frozen_preset_brier",
                r.frozen_brier.map_or(Json::Null, Json::Num),
            ),
        ])
    };
    (
        name.to_owned(),
        Json::obj([
            ("static", run(stat)),
            ("predicted", run(pred)),
            (
                "predicted_advantage",
                Json::Num(pred.accuracy_per_attempt - stat.accuracy_per_attempt),
            ),
        ]),
    )
}

fn bench_calib_tracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("calib_tracking");
    group.bench_function("tracker_observe_x256", |b| {
        b.iter(|| black_box(update_latencies(256)))
    });
    group.finish();

    let scenarios = [
        ("random_walk", DriftModel::RandomWalk, RW_DRIFT_PER_JOB),
        (
            "step_recalibration",
            DriftModel::StepRecalibration { interval: 40 },
            STEP_DRIFT_PER_JOB,
        ),
    ];
    let mut sections = Vec::new();
    let mut gates_ok = true;
    let mut gate_report = Vec::new();
    for (name, drift, per_job) in scenarios {
        let stat = median_run(drift, per_job, ScorePolicy::Static);
        let pred = median_run(drift, per_job, ScorePolicy::Predicted);
        println!(
            "calib_tracking[{name}]: static {:.4} acc/attempt ({} serves on drifty) vs \
             predicted {:.4} ({} serves); tracker Brier {:?} vs frozen {:?} \
             (MAE {:?} vs {:?})",
            stat.accuracy_per_attempt,
            stat.drifty_serves,
            pred.accuracy_per_attempt,
            pred.drifty_serves,
            stat.tracker_brier,
            stat.frozen_brier,
            stat.tracker_mae,
            stat.frozen_mae,
        );
        let accuracy_gate = pred.accuracy_per_attempt > stat.accuracy_per_attempt;
        // Brier accounting uses the *static* run: its traffic keeps
        // flowing into the drifting device across the whole trajectory,
        // so the tracker is graded on the full ramp, not just the part
        // Predicted saw before routing away.
        let brier_gate = match (stat.tracker_brier, stat.frozen_brier) {
            (Some(t), Some(f)) => t < f,
            _ => false,
        };
        gates_ok &= accuracy_gate && brier_gate;
        gate_report.push((name, accuracy_gate, brier_gate));
        sections.push(scenario_json(name, &stat, &pred));
    }

    let mut lat = update_latencies(2048);
    let (p50, p90, p99) = latency_percentiles_ms(&mut lat);
    println!("calib_tracking: observe latency p50 {p50:.4} ms, p90 {p90:.4} ms, p99 {p99:.4} ms");

    let doc = Json::obj([
        ("bench", Json::Str("calib_tracking".into())),
        ("jobs_per_scenario", Json::Num(JOBS as f64)),
        ("base_rate", Json::Num(BASE_RATE)),
        ("failure_drift_coupling", Json::Num(COUPLING)),
        (
            "drift_per_job",
            Json::obj([
                ("random_walk", Json::Num(RW_DRIFT_PER_JOB)),
                ("step_recalibration", Json::Num(STEP_DRIFT_PER_JOB)),
            ]),
        ),
        (
            "scenarios",
            Json::Obj(sections.into_iter().collect()),
        ),
        (
            "update_latency_ms",
            Json::obj([
                ("p50", Json::Num(p50)),
                ("p90", Json::Num(p90)),
                ("p99", Json::Num(p99)),
            ]),
        ),
        (
            "gates",
            Json::Arr(
                gate_report
                    .iter()
                    .map(|(name, acc, brier)| {
                        Json::obj([
                            ("scenario", Json::Str((*name).into())),
                            ("predicted_beats_static_accuracy", Json::Bool(*acc)),
                            ("tracker_beats_frozen_brier", Json::Bool(*brier)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("create results dir");
    std::fs::write(results.join("BENCH_calib.json"), doc.to_json_pretty())
        .expect("write results/BENCH_calib.json");

    assert!(
        gates_ok,
        "calibration gates failed: {gate_report:?} — Predicted must beat Static on \
         accuracy-per-attempt and the tracker must beat the frozen-preset Brier score \
         in every scenario"
    );
}

criterion_group!(benches, bench_calib_tracking);
criterion_main!(benches);
