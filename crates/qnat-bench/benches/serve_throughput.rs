//! Serving-engine throughput and latency (ISSUE 4 acceptance bench).
//!
//! A serving queue earns its keep the same way the batch pool does:
//! flaky-job wall-clock is dominated by retry backoff, and persistent
//! workers overlap those sleeps across queued tickets. This bench drives
//! 64 submissions with a 50% transient-fault rate and real
//! (`ThreadSleeper`) backoff through `ServeEngine`s of 1/2/4/8 workers,
//! measures per-ticket submit→completion latency percentiles off the
//! subscription stream, writes `results/BENCH_serve.json`, and fails
//! loudly unless the 4-worker engine sustains ≥ 2× the jobs/sec of a
//! sequential per-job `ResilientExecutor` loop over the same work.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qnat_bench::stats::latency_percentiles_ms;
use qnat_core::batch::{run_job, BatchJob};
use qnat_core::executor::{splitmix64, ResilientExecutor, RetryPolicy, ThreadSleeper};
use qnat_json::Json;
use qnat_noise::backend::{BackendError, SimulatorBackend};
use qnat_noise::fault::{FaultSpec, FaultyBackend};
use qnat_serve::{Lane, ServeConfig, ServeEngine};
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::Gate;
use std::time::{Duration, Instant};

const BATCH: usize = 64;
const FAULT_RATE: f64 = 0.5;
const SEED: u64 = 0xB47C;

fn jobs() -> Vec<BatchJob> {
    (0..BATCH)
        .map(|k| {
            let mut c = Circuit::new(2);
            c.push(Gate::ry(0, 0.07 * k as f64 + 0.1));
            c.push(Gate::cx(0, 1));
            c.push(Gate::rz(1, 0.03 * k as f64));
            BatchJob::exact(c)
        })
        .collect()
}

/// The batch bench's standard fault model: flaky primary, clean fallback,
/// real wall-clock backoff with small intervals.
fn factory(_job: u64, seed: u64) -> Result<ResilientExecutor, BackendError> {
    let policy = RetryPolicy {
        max_attempts: 4,
        base_backoff_ms: 3,
        max_backoff_ms: 12,
        ..RetryPolicy::default()
    };
    Ok(ResilientExecutor::with_fallback(
        Box::new(FaultyBackend::new(
            SimulatorBackend::new(seed),
            FaultSpec::transient(FAULT_RATE, seed),
        )),
        Box::new(SimulatorBackend::new(seed ^ 0x5eed)),
        policy,
    )
    .with_sleeper(Box::new(ThreadSleeper::default())))
}

/// The baseline a serving layer must beat: one fresh `ResilientExecutor`
/// per job, executed inline on the caller's thread, same per-job seeds.
fn run_sequential() -> Duration {
    let jobs = jobs();
    let start = Instant::now();
    for (k, job) in jobs.iter().enumerate() {
        let seed = splitmix64(SEED ^ splitmix64(k as u64));
        let (result, report) = run_job(&factory, k as u64, seed, job, false, None);
        assert!(result.is_ok(), "fallback absorbs exhausted retries");
        black_box(report);
    }
    start.elapsed()
}

struct ServeRun {
    elapsed: Duration,
    /// Submit→completion latency per ticket, ticket order.
    latencies: Vec<Duration>,
}

fn run_serve(workers: usize) -> ServeRun {
    let engine = ServeEngine::new(
        ServeConfig {
            workers,
            seed: SEED,
            ..ServeConfig::default()
        },
        factory,
    );
    let stream = engine.subscribe();
    let start = Instant::now();
    let mut submitted_at = Vec::with_capacity(BATCH);
    for job in jobs() {
        let t = engine
            .submit(job, Lane::Interactive)
            .expect("blocking lane accepts the batch");
        assert_eq!(t as usize, submitted_at.len(), "tickets are dense");
        submitted_at.push(Instant::now());
    }
    let mut latencies = vec![Duration::ZERO; BATCH];
    for _ in 0..BATCH {
        let (ticket, result) = stream.recv().expect("engine outlives the batch");
        latencies[ticket as usize] = submitted_at[ticket as usize].elapsed();
        assert!(result.is_ok(), "fallback absorbs exhausted retries");
    }
    let elapsed = start.elapsed();
    let stats = engine.drain();
    assert_eq!(stats.completed, BATCH as u64);
    ServeRun { elapsed, latencies }
}

fn bench_serve_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.bench_function("sequential", |b| b.iter(run_sequential));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| run_serve(workers).elapsed);
            },
        );
    }
    group.finish();

    // Acceptance gate: the 4-worker engine sustains ≥ 2× the sequential
    // jobs/sec on the standard 64-job / 50%-fault workload. Median of 3
    // to shrug off scheduler hiccups.
    let median_of_3 = |mut runs: Vec<Duration>| {
        runs.sort();
        runs[1]
    };
    let sequential = median_of_3((0..3).map(|_| run_sequential()).collect());
    let serve_runs: Vec<ServeRun> = (0..3).map(|_| run_serve(4)).collect();
    let served = median_of_3(serve_runs.iter().map(|r| r.elapsed).collect());
    let seq_rate = BATCH as f64 / sequential.as_secs_f64();
    let serve_rate = BATCH as f64 / served.as_secs_f64();
    let speedup = serve_rate / seq_rate;

    // Latency percentiles pooled over the three gate runs.
    let mut pooled: Vec<Duration> = serve_runs.iter().flat_map(|r| r.latencies.clone()).collect();
    let (p50, p90, p99) = latency_percentiles_ms(&mut pooled);
    println!(
        "serve_throughput: {BATCH} jobs, sequential {seq_rate:.1} jobs/s vs 4 workers \
         {serve_rate:.1} jobs/s → {speedup:.2}x; latency p50 {p50:.1} ms, p90 {p90:.1} ms, \
         p99 {p99:.1} ms"
    );

    let doc = Json::obj([
        ("bench", Json::Str("serve_throughput".into())),
        ("jobs", Json::Num(BATCH as f64)),
        ("fault_rate", Json::Num(FAULT_RATE)),
        ("workers", Json::Num(4.0)),
        ("sequential_jobs_per_sec", Json::Num(seq_rate)),
        ("serve_jobs_per_sec", Json::Num(serve_rate)),
        ("speedup", Json::Num(speedup)),
        (
            "latency_ms",
            Json::obj([
                ("p50", Json::Num(p50)),
                ("p90", Json::Num(p90)),
                ("p99", Json::Num(p99)),
            ]),
        ),
    ]);
    // Anchor on the manifest dir: cargo runs benches from the package
    // root, but the results belong next to the workspace's other outputs.
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("create results dir");
    std::fs::write(results.join("BENCH_serve.json"), doc.to_json_pretty())
        .expect("write results/BENCH_serve.json");

    assert!(
        speedup >= 2.0,
        "4-worker serving engine must sustain ≥ 2x sequential jobs/sec: got {speedup:.2}x"
    );
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
