//! Fleet-routing throughput and rescue accounting (ISSUE 6 acceptance
//! bench).
//!
//! The robustness pitch of the fleet layer is that device-level failover
//! replaces executor-level fallback without giving up throughput: a
//! router over {flaky preferred device, clean spare} must complete 100%
//! of jobs and sustain ≥ 2× the jobs/sec of a sequential per-job loop
//! that patches over the same faults with an in-executor fallback.
//! Drives 64 jobs at a 50% transient-fault rate with real
//! (`ThreadSleeper`) backoff, measures submit→completion latency
//! percentiles, writes `results/BENCH_fleet.json`, and fails loudly if
//! the gate regresses.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qnat_bench::stats::latency_percentiles_ms;
use qnat_core::batch::{run_job, BatchJob};
use qnat_core::executor::{splitmix64, ResilientExecutor, RetryPolicy, ThreadSleeper};
use qnat_fleet::{FleetConfig, FleetDevice, FleetRouter, FleetStats};
use qnat_json::Json;
use qnat_noise::backend::{BackendError, SimulatorBackend};
use qnat_noise::fault::{FaultSpec, FaultyBackend};
use qnat_noise::presets;
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::Gate;
use std::time::{Duration, Instant};

const BATCH: usize = 64;
const FAULT_RATE: f64 = 0.5;
const SEED: u64 = 0xF1EE7;

fn jobs() -> Vec<BatchJob> {
    (0..BATCH)
        .map(|k| {
            let mut c = Circuit::new(2);
            c.push(Gate::ry(0, 0.07 * k as f64 + 0.1));
            c.push(Gate::cx(0, 1));
            c.push(Gate::rz(1, 0.03 * k as f64));
            BatchJob::exact(c)
        })
        .collect()
}

fn retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        base_backoff_ms: 3,
        max_backoff_ms: 12,
        ..RetryPolicy::default()
    }
}

/// The baseline: one fresh executor per job on the caller's thread, the
/// 50%-flaky primary patched by an in-executor clean fallback — the
/// pre-fleet way to guarantee completion.
fn sequential_factory(_job: u64, seed: u64) -> Result<ResilientExecutor, BackendError> {
    Ok(ResilientExecutor::with_fallback(
        Box::new(FaultyBackend::new(
            SimulatorBackend::new(seed),
            FaultSpec::transient(FAULT_RATE, seed),
        )),
        Box::new(SimulatorBackend::new(seed ^ 0x5eed)),
        retry(),
    )
    .with_sleeper(Box::new(ThreadSleeper::default())))
}

fn run_sequential() -> Duration {
    let jobs = jobs();
    let start = Instant::now();
    for (k, job) in jobs.iter().enumerate() {
        let seed = splitmix64(SEED ^ splitmix64(k as u64));
        let (result, report) = run_job(&sequential_factory, k as u64, seed, job, false, None);
        assert!(result.is_ok(), "fallback absorbs exhausted retries");
        black_box(report);
    }
    start.elapsed()
}

/// The fleet under test: santiago flaky with NO in-executor fallback
/// (exhausted retries surface as terminal errors — rescue is the
/// router's job), lima clean and steady.
fn fleet() -> FleetRouter {
    let flaky = FleetDevice::new(presets::santiago(), |global, seed| {
        Ok(ResilientExecutor::new(
            Box::new(FaultyBackend::starting_at(
                SimulatorBackend::new(seed),
                FaultSpec::transient(FAULT_RATE, seed),
                global,
            )),
            retry(),
        )
        .with_sleeper(Box::new(ThreadSleeper::default())))
    });
    let clean = FleetDevice::new(presets::lima(), |_global, seed| {
        Ok(ResilientExecutor::new(
            Box::new(SimulatorBackend::new(seed)),
            RetryPolicy::default(),
        ))
    });
    FleetRouter::new(
        FleetConfig {
            seed: SEED,
            pilots: 4,
            engine_workers: 2,
            ..FleetConfig::default()
        },
        vec![flaky, clean],
    )
    .expect("two-device fleet builds")
}

struct FleetRun {
    elapsed: Duration,
    /// Submit→wait-return latency per fleet ticket, ticket order.
    latencies: Vec<Duration>,
    stats: FleetStats,
}

fn run_fleet() -> FleetRun {
    let router = fleet();
    let start = Instant::now();
    let mut submitted_at = Vec::with_capacity(BATCH);
    let tickets: Vec<_> = jobs()
        .into_iter()
        .map(|job| {
            let t = router.submit(job).expect("bounded queue accepts the batch");
            submitted_at.push(Instant::now());
            t
        })
        .collect();
    let mut latencies = vec![Duration::ZERO; BATCH];
    for (k, t) in tickets.into_iter().enumerate() {
        let outcome = router.wait(t).expect("every job delivered");
        latencies[k] = submitted_at[k].elapsed();
        assert!(outcome.result.is_ok(), "failover absorbs terminal errors");
    }
    let elapsed = start.elapsed();
    let stats = router.drain();
    assert_eq!(stats.completed, BATCH as u64, "100% completion");
    FleetRun {
        elapsed,
        latencies,
        stats,
    }
}

fn bench_fleet_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_routing");
    group.bench_function("sequential_fallback", |b| b.iter(run_sequential));
    group.bench_function("routed_fleet", |b| b.iter(|| run_fleet().elapsed));
    group.finish();

    // Acceptance gate: median of 3 to shrug off scheduler hiccups.
    let median_of_3 = |mut runs: Vec<Duration>| {
        runs.sort();
        runs[1]
    };
    let sequential = median_of_3((0..3).map(|_| run_sequential()).collect());
    let fleet_runs: Vec<FleetRun> = (0..3).map(|_| run_fleet()).collect();
    let routed = median_of_3(fleet_runs.iter().map(|r| r.elapsed).collect());
    let seq_rate = BATCH as f64 / sequential.as_secs_f64();
    let fleet_rate = BATCH as f64 / routed.as_secs_f64();
    let speedup = fleet_rate / seq_rate;

    let mut pooled: Vec<Duration> = fleet_runs.iter().flat_map(|r| r.latencies.clone()).collect();
    let (p50, p90, p99) = latency_percentiles_ms(&mut pooled);
    let failovers: u64 = fleet_runs.iter().map(|r| r.stats.failovers).sum();
    let hedges: u64 = fleet_runs.iter().map(|r| r.stats.hedges).sum();
    let hedge_wins: u64 = fleet_runs.iter().map(|r| r.stats.hedge_wins).sum();
    println!(
        "fleet_routing: {BATCH} jobs, sequential {seq_rate:.1} jobs/s vs routed fleet \
         {fleet_rate:.1} jobs/s → {speedup:.2}x; latency p50 {p50:.1} ms, p90 {p90:.1} ms, \
         p99 {p99:.1} ms; failovers {failovers}, hedges {hedges} (wins {hedge_wins}) over 3 runs"
    );

    let doc = Json::obj([
        ("bench", Json::Str("fleet_routing".into())),
        ("jobs", Json::Num(BATCH as f64)),
        ("fault_rate", Json::Num(FAULT_RATE)),
        ("pilots", Json::Num(4.0)),
        ("engine_workers", Json::Num(2.0)),
        ("sequential_jobs_per_sec", Json::Num(seq_rate)),
        ("fleet_jobs_per_sec", Json::Num(fleet_rate)),
        ("speedup", Json::Num(speedup)),
        ("failovers_over_3_runs", Json::Num(failovers as f64)),
        ("hedges_over_3_runs", Json::Num(hedges as f64)),
        ("hedge_wins_over_3_runs", Json::Num(hedge_wins as f64)),
        (
            "latency_ms",
            Json::obj([
                ("p50", Json::Num(p50)),
                ("p90", Json::Num(p90)),
                ("p99", Json::Num(p99)),
            ]),
        ),
    ]);
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("create results dir");
    std::fs::write(results.join("BENCH_fleet.json"), doc.to_json_pretty())
        .expect("write results/BENCH_fleet.json");

    assert!(
        speedup >= 2.0,
        "routed fleet must sustain ≥ 2x sequential jobs/sec: got {speedup:.2}x"
    );
}

criterion_group!(benches, bench_fleet_routing);
criterion_main!(benches);
