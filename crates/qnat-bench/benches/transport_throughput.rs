//! HTTP front-door throughput and latency (ISSUE 5 acceptance bench).
//!
//! Same workload as `serve_throughput` — 64 jobs, 50% transient faults,
//! real (`ThreadSleeper`) 3–12 ms backoff — but every job now crosses a
//! real TCP socket twice: submitted with `POST /v1/jobs` and collected
//! with `GET /v1/jobs/{t}/wait` through the in-repo blocking client.
//! The HTTP tax must not eat the serving engine's win: the gate fails
//! unless the 4-worker engine behind the front door still sustains
//! ≥ 2× the jobs/sec of a sequential inline `ResilientExecutor` loop
//! over the same work. Latency percentiles (submit → wait completion,
//! socket round trips included) go to `results/BENCH_transport.json`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qnat_bench::stats::latency_percentiles_ms;
use qnat_core::batch::{run_job, BatchJob};
use qnat_core::executor::{splitmix64, ResilientExecutor, RetryPolicy, ThreadSleeper};
use qnat_json::Json;
use qnat_noise::backend::{BackendError, SimulatorBackend};
use qnat_noise::fault::{FaultSpec, FaultyBackend};
use qnat_serve::{Lane, ServeConfig, ServeEngine};
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::Gate;
use qnat_transport::{TransportClient, TransportConfig, TransportServer};
use std::time::{Duration, Instant};

const BATCH: usize = 64;
const FAULT_RATE: f64 = 0.5;
const SEED: u64 = 0xB47C;
/// Concurrent `/wait` collectors — matches the front door's HTTP
/// worker pool so waits never queue behind each other.
const COLLECTORS: usize = 4;

fn jobs() -> Vec<BatchJob> {
    (0..BATCH)
        .map(|k| {
            let mut c = Circuit::new(2);
            c.push(Gate::ry(0, 0.07 * k as f64 + 0.1));
            c.push(Gate::cx(0, 1));
            c.push(Gate::rz(1, 0.03 * k as f64));
            BatchJob::exact(c)
        })
        .collect()
}

/// The throughput benches' standard fault model: flaky primary, clean
/// fallback, real wall-clock backoff with small intervals.
fn factory(_job: u64, seed: u64) -> Result<ResilientExecutor, BackendError> {
    let policy = RetryPolicy {
        max_attempts: 4,
        base_backoff_ms: 3,
        max_backoff_ms: 12,
        ..RetryPolicy::default()
    };
    Ok(ResilientExecutor::with_fallback(
        Box::new(FaultyBackend::new(
            SimulatorBackend::new(seed),
            FaultSpec::transient(FAULT_RATE, seed),
        )),
        Box::new(SimulatorBackend::new(seed ^ 0x5eed)),
        policy,
    )
    .with_sleeper(Box::new(ThreadSleeper::default())))
}

/// The baseline the front door must beat: one fresh `ResilientExecutor`
/// per job, executed inline on the caller's thread — no engine, no HTTP.
fn run_sequential() -> Duration {
    let jobs = jobs();
    let start = Instant::now();
    for (k, job) in jobs.iter().enumerate() {
        let seed = splitmix64(SEED ^ splitmix64(k as u64));
        let (result, report) = run_job(&factory, k as u64, seed, job, false, None);
        assert!(result.is_ok(), "fallback absorbs exhausted retries");
        black_box(report);
    }
    start.elapsed()
}

struct TransportRun {
    elapsed: Duration,
    /// Submit → `/wait` completion latency per ticket, ticket order.
    latencies: Vec<Duration>,
}

fn run_transport(workers: usize) -> TransportRun {
    let engine = ServeEngine::new(
        ServeConfig {
            workers,
            seed: SEED,
            ..ServeConfig::default()
        },
        factory,
    );
    let server = TransportServer::bind(
        "127.0.0.1:0",
        TransportConfig {
            http_workers: COLLECTORS + 1,
            request_deadline_ms: 120_000,
            ..TransportConfig::default()
        },
        engine,
    )
    .expect("bind an ephemeral port");
    let client = TransportClient::new(server.local_addr());

    let start = Instant::now();
    let mut submitted_at = Vec::with_capacity(BATCH);
    for job in jobs() {
        let t = client
            .submit(&job, Lane::Interactive)
            .expect("blocking lane accepts the batch");
        assert_eq!(t as usize, submitted_at.len(), "tickets are dense");
        submitted_at.push(Instant::now());
    }

    // Collect every ticket over concurrent `/wait` calls, striped so
    // each collector owns tickets ≡ its index (mod COLLECTORS).
    let latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..COLLECTORS)
            .map(|c| {
                let client = client.clone();
                let submitted_at = &submitted_at;
                scope.spawn(move || {
                    let mut got = Vec::new();
                    let mut t = c;
                    while t < BATCH {
                        let outcome = client
                            .wait(t as u64)
                            .expect("wait over TCP")
                            .expect("engine knows the ticket");
                        got.push((t, submitted_at[t].elapsed()));
                        assert!(outcome.result.is_ok(), "fallback absorbs exhausted retries");
                        t += COLLECTORS;
                    }
                    got
                })
            })
            .collect();
        let mut latencies = vec![Duration::ZERO; BATCH];
        for h in handles {
            for (t, latency) in h.join().expect("collector thread") {
                latencies[t] = latency;
            }
        }
        latencies
    });
    let elapsed = start.elapsed();

    let stats = server.shutdown();
    assert_eq!(stats.completed, BATCH as u64);
    TransportRun { elapsed, latencies }
}

fn bench_transport_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_throughput");
    group.bench_function("sequential", |b| b.iter(run_sequential));
    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| run_transport(workers).elapsed);
            },
        );
    }
    group.finish();

    // Acceptance gate: 4 engine workers behind the HTTP front door
    // sustain ≥ 2× the sequential jobs/sec on the standard 64-job /
    // 50%-fault workload. Median of 3 to shrug off scheduler hiccups.
    let median_of_3 = |mut runs: Vec<Duration>| {
        runs.sort();
        runs[1]
    };
    let sequential = median_of_3((0..3).map(|_| run_sequential()).collect());
    let transport_runs: Vec<TransportRun> = (0..3).map(|_| run_transport(4)).collect();
    let served = median_of_3(transport_runs.iter().map(|r| r.elapsed).collect());
    let seq_rate = BATCH as f64 / sequential.as_secs_f64();
    let transport_rate = BATCH as f64 / served.as_secs_f64();
    let speedup = transport_rate / seq_rate;

    // Latency percentiles pooled over the three gate runs.
    let mut pooled: Vec<Duration> = transport_runs
        .iter()
        .flat_map(|r| r.latencies.clone())
        .collect();
    let (p50, p90, p99) = latency_percentiles_ms(&mut pooled);
    println!(
        "transport_throughput: {BATCH} jobs over TCP, sequential {seq_rate:.1} jobs/s vs \
         4 workers {transport_rate:.1} jobs/s → {speedup:.2}x; latency p50 {p50:.1} ms, \
         p90 {p90:.1} ms, p99 {p99:.1} ms"
    );

    let doc = Json::obj([
        ("bench", Json::Str("transport_throughput".into())),
        ("jobs", Json::Num(BATCH as f64)),
        ("fault_rate", Json::Num(FAULT_RATE)),
        ("workers", Json::Num(4.0)),
        ("collectors", Json::Num(COLLECTORS as f64)),
        ("sequential_jobs_per_sec", Json::Num(seq_rate)),
        ("transport_jobs_per_sec", Json::Num(transport_rate)),
        ("speedup", Json::Num(speedup)),
        (
            "latency_ms",
            Json::obj([
                ("p50", Json::Num(p50)),
                ("p90", Json::Num(p90)),
                ("p99", Json::Num(p99)),
            ]),
        ),
    ]);
    // Anchor on the manifest dir: cargo runs benches from the package
    // root, but the results belong next to the workspace's other outputs.
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("create results dir");
    std::fs::write(results.join("BENCH_transport.json"), doc.to_json_pretty())
        .expect("write results/BENCH_transport.json");

    assert!(
        speedup >= 2.0,
        "the front door must sustain ≥ 2x sequential jobs/sec: got {speedup:.2}x"
    );
}

criterion_group!(benches, bench_transport_throughput);
criterion_main!(benches);
