//! Criterion benches for the transpiler: basis decomposition, routing and
//! the optimization levels, plus error-gate insertion sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qnat_compiler::transpile::{transpile, TranspileOptions};
use qnat_noise::inject::insert_error_gates;
use qnat_noise::presets;
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::Gate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ring_block(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..layers {
        for q in 0..n {
            c.push(Gate::u3(q, 0.2, -0.1, 0.4));
        }
        for q in 0..n {
            c.push(Gate::cu3(q, (q + 1) % n, 0.3, 0.1, -0.2));
        }
    }
    c
}

fn bench_transpile_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpile_4q_ring");
    let circuit = ring_block(4, 2);
    let model = presets::santiago();
    for level in 0..=3u8 {
        group.bench_with_input(BenchmarkId::from_parameter(level), &level, |b, &lv| {
            b.iter(|| transpile(&circuit, &model, TranspileOptions::level(lv)).unwrap())
        });
    }
    group.finish();
}

fn bench_error_injection(c: &mut Criterion) {
    let circuit = ring_block(4, 2);
    let model = presets::yorktown();
    let lowered = transpile(&circuit, &model, TranspileOptions::default())
        .unwrap()
        .circuit;
    let mut rng = StdRng::seed_from_u64(0);
    c.bench_function("error_gate_insertion", |b| {
        b.iter(|| insert_error_gates(&lowered, &model, 1.0, &mut rng))
    });
}

criterion_group!(benches, bench_transpile_levels, bench_error_injection);
criterion_main!(benches);
