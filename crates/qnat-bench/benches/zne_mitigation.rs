//! Error-mitigation sweep head-to-head (ISSUE 10 acceptance bench).
//!
//! Runs the §4.2 QNN block (standard 16-feature / 4-qubit model, routed
//! for Santiago at level 2) as a served [`MitigatedJob`] against the
//! exact density-matrix hardware emulator, and compares four arms
//! against the noise-free statevector ideal:
//!
//! * **raw** — the unmitigated noisy expectations (the sweep's scale-1
//!   baseline),
//! * **zne** — gate-folding zero-noise extrapolation (scales 1/3/5,
//!   per-gate folding, linear fit),
//! * **readout inversion** — per-qubit confusion inversion of the raw
//!   run, no folding,
//! * **combined** — readout inversion per scale, then ZNE.
//!
//! Every arm's mean absolute expectation error lands in
//! `results/BENCH_zne.json` next to the served sweep's latency
//! percentiles, and the gate fails loudly unless ZNE beats the raw
//! noisy error — the mitigation stack must *pay for itself* on the
//! paper's own workload.

use criterion::{criterion_group, criterion_main, Criterion};
use qnat_bench::stats::latency_percentiles_ms;
use qnat_core::executor::{ResilientExecutor, RetryPolicy};
use qnat_core::mitigate::unconfuse_expectations;
use qnat_core::model::{Qnn, QnnConfig};
use qnat_json::Json;
use qnat_noise::backend::EmulatorBackend;
use qnat_noise::presets;
use qnat_serve::{submit_mitigated, MitigatedJob, ServeConfig, ServeEngine};
use qnat_sim::circuit::Circuit;
use qnat_sim::statevector::StateVector;
use std::time::{Duration, Instant};

/// Served sweeps timed for the latency percentiles.
const SWEEPS: usize = 30;

/// The §4.2 QNN block exactly as `sim_fused` benches it: the standard
/// 16-feature / 4-qubit model's first block, routed for Santiago at
/// transpile level 2, with one encoder row and the trained parameters
/// bound in.
fn block_circuit() -> Circuit {
    let qnn = Qnn::new(QnnConfig::standard(16, 4, 1, 2), 7);
    let plans = qnn
        .route_plan(&presets::santiago(), 2)
        .expect("santiago fits the standard model");
    let block = &qnn.blocks()[0];
    let row: Vec<f64> = (0..16).map(|j| (j as f64 * 0.013).sin()).collect();
    let mut params = block.encoder.angles(&row);
    params.extend_from_slice(qnn.block_params(0));
    plans[0].lowered.bind(&params)
}

fn emulator_engine(workers: usize) -> ServeEngine {
    let device = presets::santiago();
    ServeEngine::new(
        ServeConfig {
            workers,
            seed: 7,
            ..ServeConfig::default()
        },
        move |_job, seed| {
            Ok(ResilientExecutor::new(
                Box::new(EmulatorBackend::new(&device, seed)?),
                RetryPolicy::default(),
            ))
        },
    )
}

fn mean_abs_error(zs: &[f64], ideal: &[f64]) -> f64 {
    zs.iter()
        .zip(ideal)
        .map(|(z, i)| (z - i).abs())
        .sum::<f64>()
        / ideal.len() as f64
}

fn bench_sweep(c: &mut Criterion) {
    let circuit = block_circuit();
    let engine = emulator_engine(2);
    let job = MitigatedJob::zne(circuit, None);
    let mut group = c.benchmark_group("zne_mitigation");
    group.bench_function("served_sweep_1_3_5", |b| {
        b.iter(|| {
            let sweep = submit_mitigated(&engine, &job, 0xA11CE).expect("submit");
            sweep.wait(&engine).expect("tickets live")
        })
    });
    group.finish();
    engine.drain();

    acceptance_gate();
}

/// Acceptance gate + `results/BENCH_zne.json`: the served ZNE sweep's
/// mean absolute expectation error on the §4.2 block under Santiago
/// emulator noise must beat the raw (unmitigated) error, bitwise
/// reproducibly (exact density-matrix sub-runs, pinned sweep seed).
fn acceptance_gate() {
    let circuit = block_circuit();
    let n = circuit.n_qubits();
    let device = presets::santiago();
    let confusions: Vec<_> = device.confusions().into_iter().take(n).collect();

    // Ground truth: the noise-free statevector.
    let mut psi = StateVector::zero_state(n);
    psi.run(&circuit);
    let ideal = psi.expect_all_z();

    let engine = emulator_engine(2);

    // ZNE arm (its scale-1 sub-run doubles as the raw arm), timed over
    // SWEEPS served repetitions for the latency percentiles.
    let zne_job = MitigatedJob::zne(circuit.clone(), None);
    let mut latencies: Vec<Duration> = Vec::with_capacity(SWEEPS);
    let mut zne_outcome = None;
    for _ in 0..SWEEPS {
        let t = Instant::now();
        let sweep = submit_mitigated(&engine, &zne_job, 0xA11CE).expect("submit zne");
        let outcome = sweep.wait(&engine).expect("tickets live");
        latencies.push(t.elapsed());
        zne_outcome = Some(outcome);
    }
    let zne_outcome = zne_outcome.expect("at least one sweep ran");
    let zne = zne_outcome.mitigated.expect("zne aggregation").expectations;
    let raw = zne_outcome.raw.expect("scale-1 run succeeded");

    // Combined arm: readout inversion per scale, then ZNE.
    let combined_job = MitigatedJob::zne(circuit.clone(), None).with_readout(confusions.clone());
    let sweep = submit_mitigated(&engine, &combined_job, 0xA11CE).expect("submit combined");
    let combined = sweep
        .wait(&engine)
        .expect("tickets live")
        .mitigated
        .expect("combined aggregation")
        .expectations;
    engine.drain();

    // Readout-inversion-only arm: pure math on the raw run.
    let inverted = unconfuse_expectations(&raw, &confusions).expect("santiago is invertible");

    let raw_err = mean_abs_error(&raw, &ideal);
    let zne_err = mean_abs_error(&zne, &ideal);
    let inv_err = mean_abs_error(&inverted, &ideal);
    let combined_err = mean_abs_error(&combined, &ideal);
    let (p50, p90, p99) = latency_percentiles_ms(&mut latencies);

    println!(
        "zne_mitigation: §4.2 block on santiago emulator — mean |Δ⟨Z⟩| raw {raw_err:.5}, \
         zne {zne_err:.5}, readout-inv {inv_err:.5}, combined {combined_err:.5}; \
         sweep p50 {p50:.2} ms"
    );

    let doc = Json::obj([
        ("bench", Json::Str("zne_mitigation".into())),
        ("block", Json::Str("standard(16,4,1,2) block 0, santiago, level 2".into())),
        ("backend", Json::Str("emulator(santiago), exact expectations".into())),
        ("scales", Json::nums([1.0, 3.0, 5.0])),
        ("strategy", Json::Str("per_gate".into())),
        ("method", Json::Str("linear".into())),
        ("sweeps_timed", Json::Num(SWEEPS as f64)),
        ("raw_mean_abs_error", Json::Num(raw_err)),
        ("zne_mean_abs_error", Json::Num(zne_err)),
        ("readout_inversion_mean_abs_error", Json::Num(inv_err)),
        ("combined_mean_abs_error", Json::Num(combined_err)),
        ("zne_error_reduction", Json::Num(1.0 - zne_err / raw_err)),
        ("combined_error_reduction", Json::Num(1.0 - combined_err / raw_err)),
        (
            "sweep_latency_ms",
            Json::obj([
                ("p50", Json::Num(p50)),
                ("p90", Json::Num(p90)),
                ("p99", Json::Num(p99)),
            ]),
        ),
    ]);
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("create results dir");
    std::fs::write(results.join("BENCH_zne.json"), doc.to_json_pretty())
        .expect("write results/BENCH_zne.json");

    assert!(
        zne_err < raw_err,
        "ZNE must beat the raw noisy expectation error on the §4.2 block: \
         zne {zne_err:.6} vs raw {raw_err:.6}"
    );
    assert!(
        combined_err < raw_err,
        "combined mitigation must beat the raw noisy expectation error: \
         combined {combined_err:.6} vs raw {raw_err:.6}"
    );
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
