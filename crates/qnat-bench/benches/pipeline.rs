//! Criterion benches for the end-to-end QuantumNAT pipeline: one training
//! step (forward + backward + Adam) and one hardware-deployment inference,
//! with and without noise injection.

use criterion::{criterion_group, criterion_main, Criterion};
use qnat_core::forward::{train_forward, PipelineOptions};
use qnat_core::infer::{infer, InferenceBackend, InferenceOptions};
use qnat_core::model::{NoiseSource, Qnn, QnnConfig};
use qnat_noise::presets;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn batch() -> (Vec<Vec<f64>>, Vec<usize>) {
    let features = (0..16)
        .map(|i| {
            (0..16)
                .map(|k| ((i * 16 + k) as f64 * 0.37).sin().abs())
                .collect()
        })
        .collect();
    let labels = (0..16).map(|i| i % 4).collect();
    (features, labels)
}

fn bench_train_step(c: &mut Criterion) {
    let device = presets::yorktown();
    let qnn = Qnn::for_device(QnnConfig::standard(16, 4, 2, 2), &device, 1).unwrap();
    let (features, labels) = batch();
    let mut rng = StdRng::seed_from_u64(0);
    c.bench_function("train_step_noise_free", |b| {
        b.iter(|| {
            train_forward(
                &qnn,
                &features,
                &labels,
                &PipelineOptions::baseline(),
                &mut rng,
            )
        })
    });
    let injected = PipelineOptions {
        noise: NoiseSource::GateInsertion {
            model: &device,
            factor: 0.5,
        },
        readout: Some(&device),
        ..PipelineOptions::default()
    };
    c.bench_function("train_step_noise_injected", |b| {
        b.iter(|| train_forward(&qnn, &features, &labels, &injected, &mut rng))
    });
}

fn bench_deployment(c: &mut Criterion) {
    let device = presets::yorktown();
    let qnn = Qnn::for_device(QnnConfig::standard(16, 4, 2, 2), &device, 1).unwrap();
    let dep = qnn.deploy(&device, 2).unwrap();
    let (features, _) = batch();
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("hardware_inference_batch16", |b| {
        b.iter(|| {
            infer(
                &qnn,
                &features,
                &InferenceBackend::Hardware(&dep),
                &InferenceOptions::default(),
                &mut rng,
            )
        })
    });
}

criterion_group!(benches, bench_train_step, bench_deployment);
criterion_main!(benches);
