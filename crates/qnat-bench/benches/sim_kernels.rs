//! Criterion benches for the simulator kernels: statevector gate
//! application, density-matrix channel application and shot sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qnat_noise::presets;
use qnat_sim::channel::Channel1;
use qnat_sim::circuit::Circuit;
use qnat_sim::density::DensityMatrix;
use qnat_sim::gate::Gate;
use qnat_sim::measure::sampled_expect_all_z;
use qnat_sim::statevector::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_circuit(n: usize, depth: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for d in 0..depth {
        for q in 0..n {
            c.push(Gate::u3(
                q,
                0.3 + 0.1 * d as f64,
                -0.2 + 0.05 * q as f64,
                0.7,
            ));
        }
        for q in 0..n.saturating_sub(1) {
            c.push(Gate::cx(q, q + 1));
        }
    }
    c
}

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_run");
    for &n in &[4usize, 8, 12] {
        let circuit = random_circuit(n, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut psi = StateVector::zero_state(n);
                psi.run(&circuit);
                psi.expect_all_z()
            })
        });
    }
    group.finish();
}

fn bench_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("density_channel");
    for &n in &[2usize, 4, 6] {
        let ch = Channel1::depolarizing(0.01).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rho = DensityMatrix::zero_state(n);
            rho.apply_gate(&Gate::h(0));
            b.iter(|| {
                rho.apply_channel1(0, &ch);
                rho.trace()
            })
        });
    }
    group.finish();
}

fn bench_hardware_emulator(c: &mut Criterion) {
    let circuit = random_circuit(4, 2);
    let emu = qnat_noise::HardwareEmulator::new(presets::yorktown());
    c.bench_function("hardware_emulator_4q_2layers", |b| {
        b.iter(|| emu.expect_all_z(&circuit).expect("emulation succeeds"))
    });
    let traj = qnat_noise::TrajectoryEmulator::new(presets::yorktown(), 16)
        .expect("trajectory emulator builds");
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("trajectory_emulator_4q_2layers_16traj", |b| {
        b.iter(|| {
            traj.expect_all_z(&circuit, &mut rng)
                .expect("emulation succeeds")
        })
    });
}

fn bench_sampling(c: &mut Criterion) {
    let circuit = random_circuit(4, 2);
    let mut psi = StateVector::zero_state(4);
    psi.run(&circuit);
    let probs = psi.probabilities();
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("shot_sampling_8192", |b| {
        b.iter(|| sampled_expect_all_z(&probs, 4, 8192, &mut rng))
    });
}

criterion_group!(
    benches,
    bench_statevector,
    bench_density,
    bench_hardware_emulator,
    bench_sampling
);
criterion_main!(benches);
