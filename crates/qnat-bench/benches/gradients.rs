//! Criterion benches for the gradient engines: adjoint differentiation vs
//! parameter-shift, and the symbolic-lowering chain rule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qnat_compiler::symbolic::lower_symbolic;
use qnat_sim::adjoint::adjoint_all_z;
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::Gate;
use qnat_sim::paramshift::paramshift_gradients;

/// A U3+CU3 block like the QuantumNAT default ansatz.
fn qnn_block(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::ry(q, 0.3 + q as f64 * 0.1));
    }
    for l in 0..layers {
        if l % 2 == 0 {
            for q in 0..n {
                c.push(Gate::u3(q, 0.2, -0.1, 0.4));
            }
        } else {
            for q in 0..n {
                c.push(Gate::cu3(q, (q + 1) % n, 0.3, 0.1, -0.2));
            }
        }
    }
    c
}

fn bench_adjoint_vs_paramshift(c: &mut Criterion) {
    let mut group = c.benchmark_group("gradients_4q_4layers");
    let circuit = qnn_block(4, 4);
    group.bench_function("adjoint", |b| b.iter(|| adjoint_all_z(&circuit)));
    group.bench_function("paramshift", |b| {
        b.iter(|| paramshift_gradients(&circuit, &[0, 1, 2, 3]))
    });
    group.finish();
}

fn bench_adjoint_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("adjoint_scaling");
    for &n in &[4usize, 6, 8, 10] {
        let circuit = qnn_block(n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| adjoint_all_z(&circuit))
        });
    }
    group.finish();
}

fn bench_symbolic_lowering(c: &mut Criterion) {
    let circuit = qnn_block(4, 4);
    c.bench_function("symbolic_lowering_4q_4layers", |b| {
        b.iter(|| lower_symbolic(&circuit))
    });
    let sym = lower_symbolic(&circuit);
    let params = circuit.parameters();
    c.bench_function("symbolic_bind", |b| b.iter(|| sym.bind(&params)));
    let grads = vec![0.5; sym.angles.len()];
    c.bench_function("symbolic_chain_gradient", |b| {
        b.iter(|| sym.chain_gradient(&grads))
    });
}

criterion_group!(
    benches,
    bench_adjoint_vs_paramshift,
    bench_adjoint_scaling,
    bench_symbolic_lowering
);
criterion_main!(benches);
