//! Fused-vs-unfused simulator throughput (ISSUE 7 acceptance bench).
//!
//! The QuantumNAT workload is repeated inference over the same §4.2 QNN
//! blocks — the ideal fuse-once-run-many case. This bench takes the
//! standard 4-qubit block transpiled for Santiago at level 2, binds one
//! row of encoder angles plus the trained parameters, and compares
//! gate-by-gate execution against running the [`FusedCircuit`] the
//! compiler's fusion pass produces. It also microbenches the raw
//! branch-free `apply_mat2`/`apply_mat4` kernels through single-gate
//! circuits on larger registers, writes `results/BENCH_sim.json`
//! (throughput plus per-run latency percentiles), and fails loudly unless
//! fused execution sustains ≥ 2× the unfused runs/sec.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qnat_bench::stats::latency_percentiles_ms;
use qnat_compiler::fusion::fuse;
use qnat_core::model::{Qnn, QnnConfig};
use qnat_json::Json;
use qnat_noise::presets;
use qnat_sim::circuit::Circuit;
use qnat_sim::fused::FusedCircuit;
use qnat_sim::gate::Gate;
use qnat_sim::statevector::StateVector;
use std::time::{Duration, Instant};

/// Per-run iterations of the acceptance gate (each run = full block
/// execution + ⟨Z⟩ readout, exactly the serving layer's per-job work).
const ITERS: usize = 2000;

/// The §4.2 QNN block as the simulator actually sees it: the standard
/// 16-feature / 4-qubit model's first block, routed for Santiago at
/// transpile level 2, with one encoder row and the trained parameters
/// bound into the symbolic circuit.
fn block_circuit() -> Circuit {
    let qnn = Qnn::new(QnnConfig::standard(16, 4, 1, 2), 7);
    let plans = qnn
        .route_plan(&presets::santiago(), 2)
        .expect("santiago fits the standard model");
    let block = &qnn.blocks()[0];
    let row: Vec<f64> = (0..16).map(|j| (j as f64 * 0.013).sin()).collect();
    let mut params = block.encoder.angles(&row);
    params.extend_from_slice(qnn.block_params(0));
    plans[0].lowered.bind(&params)
}

fn run_unfused(circuit: &Circuit) -> Vec<f64> {
    let mut psi = StateVector::zero_state(circuit.n_qubits());
    psi.run(circuit);
    psi.expect_all_z()
}

fn run_fused(fused: &FusedCircuit) -> Vec<f64> {
    let mut psi = StateVector::zero_state(fused.n_qubits());
    psi.run_fused(fused);
    psi.expect_all_z()
}

/// Times `ITERS` runs individually: total wall-clock plus the per-run
/// latency samples the percentile summary pools.
fn timed_pass<R>(mut run: impl FnMut() -> R) -> (Duration, Vec<Duration>) {
    let mut samples = Vec::with_capacity(ITERS);
    let start = Instant::now();
    for _ in 0..ITERS {
        let t = Instant::now();
        black_box(run());
        samples.push(t.elapsed());
    }
    (start.elapsed(), samples)
}

fn bench_block(c: &mut Criterion) {
    let circuit = block_circuit();
    // Fuse ONCE, outside every timed loop — the compiled-circuit cache
    // makes this the steady-state serving shape.
    let fused = fuse(&circuit);
    let mut group = c.benchmark_group("sim_fused_block");
    group.bench_function("unfused", |b| b.iter(|| run_unfused(&circuit)));
    group.bench_function("fused", |b| b.iter(|| run_fused(&fused)));
    group.finish();
}

/// Raw kernel microbench: one U3 (Mat2 path) and one CU3 (Mat4 path)
/// swept across register sizes, isolating the branch-free strided
/// kernels from circuit overhead.
fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_fused_kernels");
    for &n in &[8usize, 12, 16] {
        let mut one_q = Circuit::new(n);
        one_q.push(Gate::u3(n / 2, 0.3, -0.2, 0.7));
        let mut two_q = Circuit::new(n);
        two_q.push(Gate::cu3(0, n - 1, 0.3, -0.2, 0.7));
        group.bench_with_input(BenchmarkId::new("mat2", n), &n, |b, &n| {
            let mut psi = StateVector::zero_state(n);
            b.iter(|| psi.run(&one_q))
        });
        group.bench_with_input(BenchmarkId::new("mat4", n), &n, |b, &n| {
            let mut psi = StateVector::zero_state(n);
            b.iter(|| psi.run(&two_q))
        });
    }
    group.finish();

    acceptance_gate();
}

/// Acceptance gate + `results/BENCH_sim.json`: fused execution must
/// sustain ≥ 2× unfused runs/sec on the §4.2 block. Median of 3 passes
/// to shrug off scheduler hiccups; equivalence is asserted here too, so
/// a kernel regression cannot hide behind a fast wrong answer.
fn acceptance_gate() {
    let circuit = block_circuit();
    let fused = fuse(&circuit);
    let baseline = run_unfused(&circuit);
    let fused_out = run_fused(&fused);
    for (a, b) in baseline.iter().zip(&fused_out) {
        assert!((a - b).abs() < 1e-12, "fused must reproduce unfused");
    }

    let median_of_3 = |mut runs: Vec<Duration>| {
        runs.sort();
        runs[1]
    };
    let unfused_passes: Vec<(Duration, Vec<Duration>)> =
        (0..3).map(|_| timed_pass(|| run_unfused(&circuit))).collect();
    let fused_passes: Vec<(Duration, Vec<Duration>)> =
        (0..3).map(|_| timed_pass(|| run_fused(&fused))).collect();
    let unfused_t = median_of_3(unfused_passes.iter().map(|p| p.0).collect());
    let fused_t = median_of_3(fused_passes.iter().map(|p| p.0).collect());
    let unfused_rate = ITERS as f64 / unfused_t.as_secs_f64();
    let fused_rate = ITERS as f64 / fused_t.as_secs_f64();
    let speedup = fused_rate / unfused_rate;

    let mut unfused_lat: Vec<Duration> =
        unfused_passes.iter().flat_map(|p| p.1.clone()).collect();
    let mut fused_lat: Vec<Duration> = fused_passes.iter().flat_map(|p| p.1.clone()).collect();
    let (u50, u90, u99) = latency_percentiles_ms(&mut unfused_lat);
    let (f50, f90, f99) = latency_percentiles_ms(&mut fused_lat);

    println!(
        "sim_fused: §4.2 block {} gates → {} fused ops; unfused {unfused_rate:.0} runs/s vs \
         fused {fused_rate:.0} runs/s → {speedup:.2}x",
        circuit.len(),
        fused.len()
    );

    let doc = Json::obj([
        ("bench", Json::Str("sim_fused".into())),
        ("block", Json::Str("standard(16,4,1,2) block 0, santiago, level 2".into())),
        ("gates_unfused", Json::Num(circuit.len() as f64)),
        ("ops_fused", Json::Num(fused.len() as f64)),
        ("iters_per_pass", Json::Num(ITERS as f64)),
        ("unfused_runs_per_sec", Json::Num(unfused_rate)),
        ("fused_runs_per_sec", Json::Num(fused_rate)),
        ("speedup", Json::Num(speedup)),
        (
            "unfused_latency_ms",
            Json::obj([
                ("p50", Json::Num(u50)),
                ("p90", Json::Num(u90)),
                ("p99", Json::Num(u99)),
            ]),
        ),
        (
            "fused_latency_ms",
            Json::obj([
                ("p50", Json::Num(f50)),
                ("p90", Json::Num(f90)),
                ("p99", Json::Num(f99)),
            ]),
        ),
    ]);
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("create results dir");
    std::fs::write(results.join("BENCH_sim.json"), doc.to_json_pretty())
        .expect("write results/BENCH_sim.json");

    assert!(
        speedup >= 2.0,
        "fused execution must sustain ≥ 2x unfused runs/sec on the §4.2 block: got {speedup:.2}x"
    );
}

criterion_group!(benches, bench_block, bench_kernels);
criterion_main!(benches);
