//! Shared experiment harness: the Table-1 four-arm protocol and common
//! reduced-scale configuration.
//!
//! Every experiment binary builds on the same primitives: train a QNN
//! variant (one of the four ablation arms) against a device noise model,
//! then evaluate it on the emulated hardware. Experiments run at reduced
//! scale (smaller synthetic datasets, fewer epochs than the paper's 200)
//! so the full suite completes in minutes; EXPERIMENTS.md records how the
//! reduced numbers compare with the paper's.

use qnat_core::ansatz::DesignSpace;
use qnat_core::executor::{ExecutionReport, RetryPolicy};
use qnat_core::forward::{PipelineOptions, QuantizeSpec};
use qnat_core::infer::{infer, InferenceBackend, InferenceOptions, NormMode};
use qnat_core::model::{NoiseSource, Qnn, QnnConfig};
use qnat_core::train::{train, AdamConfig, TrainOptions, TrainReport};
use qnat_data::dataset::{build, Dataset, Task, TaskConfig};
use qnat_noise::device::DeviceModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The four ablation arms of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arm {
    /// Noise-unaware training, raw deployment.
    Baseline,
    /// + post-measurement normalization.
    Norm,
    /// + noise injection (gate insertion + readout emulation).
    NormInject,
    /// + post-measurement quantization (the full QuantumNAT).
    Full,
}

impl Arm {
    /// All arms in ablation order.
    pub fn all() -> [Arm; 4] {
        [Arm::Baseline, Arm::Norm, Arm::NormInject, Arm::Full]
    }

    /// Row label as in Table 1.
    pub fn label(&self) -> &'static str {
        match self {
            Arm::Baseline => "Baseline",
            Arm::Norm => "+ Post Norm.",
            Arm::NormInject => "+ Gate Insert.",
            Arm::Full => "+ Post Quant.",
        }
    }
}

/// Architecture shorthand: `B` blocks × `L` layers of a design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchSpec {
    /// Number of blocks.
    pub blocks: usize,
    /// Layers per block.
    pub layers: usize,
    /// Design space.
    pub design: DesignSpace,
}

impl ArchSpec {
    /// `B × L` of the default U3+CU3 space.
    pub fn u3cu3(blocks: usize, layers: usize) -> ArchSpec {
        ArchSpec {
            blocks,
            layers,
            design: DesignSpace::U3Cu3,
        }
    }

    /// Short display label, e.g. `2B×12L`.
    pub fn label(&self) -> String {
        format!("{}B×{}L", self.blocks, self.layers)
    }
}

/// Reduced-scale run configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Training epochs (paper: 200).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Peak learning rate.
    pub lr_max: f64,
    /// Dataset sizes.
    pub data: TaskConfig,
    /// Noise factor `T` for gate insertion.
    pub t_factor: f64,
    /// Quantization settings for the `Full` arm.
    pub quant: QuantizeSpec,
    /// Quantization penalty weight λ.
    pub quant_penalty: f64,
    /// Finite shots at deployment (paper: 8192; `None` = exact).
    pub shots: Option<usize>,
    /// Seed for all RNGs.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            epochs: 100,
            batch_size: 48,
            lr_max: 1.5e-2,
            data: TaskConfig {
                n_train: 192,
                n_valid: 64,
                n_test: 96,
                seed: 11,
            },
            t_factor: 0.5,
            quant: QuantizeSpec::levels(6),
            quant_penalty: 0.05,
            shots: None,
            seed: 7,
        }
    }
}

impl RunConfig {
    /// An even smaller configuration for the 10-qubit (Melbourne) cells and
    /// smoke tests.
    pub fn tiny() -> Self {
        RunConfig {
            epochs: 40,
            batch_size: 32,
            data: TaskConfig {
                n_train: 64,
                n_valid: 32,
                n_test: 32,
                seed: 11,
            },
            ..RunConfig::default()
        }
    }
}

/// Builds the QNN config for a task and architecture.
pub fn qnn_config(task: Task, arch: ArchSpec) -> QnnConfig {
    QnnConfig::standard(
        task.n_features(),
        task.n_classes(),
        arch.blocks,
        arch.layers,
    )
    .with_design(arch.design)
}

/// Trains one arm of the ablation against a device; returns the model and
/// its training report.
pub fn train_arm(
    task: Task,
    arch: ArchSpec,
    device: &DeviceModel,
    arm: Arm,
    cfg: &RunConfig,
) -> (Qnn, Dataset, TrainReport) {
    let dataset = build(task, &cfg.data);
    let mut qnn = Qnn::for_device(qnn_config(task, arch), device, cfg.seed)
        .expect("architecture fits the device");
    let pipeline = match arm {
        Arm::Baseline => PipelineOptions::baseline(),
        Arm::Norm => PipelineOptions {
            noise: NoiseSource::None,
            readout: None,
            normalize: true,
            quantize: None,
            quant_penalty: 0.0,
            process_last: false,
        },
        Arm::NormInject => PipelineOptions {
            noise: NoiseSource::GateInsertion {
                model: device,
                factor: cfg.t_factor,
            },
            readout: Some(device),
            normalize: true,
            quantize: None,
            quant_penalty: 0.0,
            process_last: false,
        },
        Arm::Full => PipelineOptions {
            noise: NoiseSource::GateInsertion {
                model: device,
                factor: cfg.t_factor,
            },
            readout: Some(device),
            normalize: true,
            quantize: Some(cfg.quant),
            quant_penalty: cfg.quant_penalty,
            process_last: false,
        },
    };
    let options = TrainOptions {
        adam: AdamConfig {
            lr_max: cfg.lr_max,
            warmup_epochs: (cfg.epochs / 5).max(1),
            total_epochs: cfg.epochs,
            ..AdamConfig::default()
        },
        batch_size: cfg.batch_size,
        pipeline,
        seed: cfg.seed,
    };
    let report = train(&mut qnn, &dataset, &options).expect("validation pass succeeds");
    (qnn, dataset, report)
}

/// Inference options matching an arm's pipeline.
pub fn arm_inference_options(arm: Arm, cfg: &RunConfig) -> InferenceOptions {
    match arm {
        Arm::Baseline => InferenceOptions::baseline(),
        Arm::Norm | Arm::NormInject => InferenceOptions {
            normalize: NormMode::BatchStats,
            quantize: None,
            process_last: false,
        },
        Arm::Full => InferenceOptions {
            normalize: NormMode::BatchStats,
            quantize: Some(cfg.quant),
            process_last: false,
        },
    }
}

/// Evaluates a trained model on the emulated hardware test set.
pub fn eval_on_hardware(
    qnn: &Qnn,
    dataset: &Dataset,
    device: &DeviceModel,
    arm: Arm,
    cfg: &RunConfig,
    opt_level: u8,
) -> f64 {
    let mut dep = qnn.deploy(device, opt_level).expect("deployable");
    dep.shots = cfg.shots;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE7A1);
    let features: Vec<Vec<f64>> = dataset.test.iter().map(|s| s.features.clone()).collect();
    let labels: Vec<usize> = dataset.test.iter().map(|s| s.label).collect();
    let result = infer(
        qnn,
        &features,
        &InferenceBackend::Hardware(&dep),
        &arm_inference_options(arm, cfg),
        &mut rng,
    )
    .expect("hardware inference succeeds");
    result.accuracy(&labels)
}

/// Evaluates a trained model on the emulated hardware test set through the
/// pooled batch deployment path: every block's test batch fans across
/// `workers` threads, each job behind its own resilient executor. The
/// accuracy is bitwise identical to any other worker count; the merged
/// [`ExecutionReport`] is returned alongside it.
pub fn eval_on_hardware_batched(
    qnn: &Qnn,
    dataset: &Dataset,
    device: &DeviceModel,
    arm: Arm,
    cfg: &RunConfig,
    opt_level: u8,
    workers: usize,
) -> (f64, ExecutionReport) {
    let mut dep = qnn
        .deploy_batch(
            device,
            opt_level,
            RetryPolicy::default(),
            None,
            workers,
            cfg.seed ^ 0xBA7C,
        )
        .expect("deployable");
    dep.shots = cfg.shots;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE7A1);
    let features: Vec<Vec<f64>> = dataset.test.iter().map(|s| s.features.clone()).collect();
    let labels: Vec<usize> = dataset.test.iter().map(|s| s.label).collect();
    let result = infer(
        qnn,
        &features,
        &InferenceBackend::Batch(&dep),
        &arm_inference_options(arm, cfg),
        &mut rng,
    )
    .expect("batched hardware inference succeeds");
    let report = result.report.clone().unwrap_or_default();
    (result.accuracy(&labels), report)
}

/// Evaluates a trained model noise-free (the "simulation" reference).
pub fn eval_noise_free(qnn: &Qnn, dataset: &Dataset, arm: Arm, cfg: &RunConfig) -> f64 {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x51A7);
    let features: Vec<Vec<f64>> = dataset.test.iter().map(|s| s.features.clone()).collect();
    let labels: Vec<usize> = dataset.test.iter().map(|s| s.label).collect();
    let result = infer(
        qnn,
        &features,
        &InferenceBackend::NoiseFree,
        &arm_inference_options(arm, cfg),
        &mut rng,
    )
    .expect("noise-free inference succeeds");
    result.accuracy(&labels)
}

/// The full four-arm ladder of one (task, architecture, device) cell.
pub fn run_ladder(
    task: Task,
    arch: ArchSpec,
    device: &DeviceModel,
    cfg: &RunConfig,
) -> Vec<(Arm, f64)> {
    Arm::all()
        .into_iter()
        .map(|arm| {
            let (qnn, dataset, _) = train_arm(task, arch, device, arm, cfg);
            let acc = eval_on_hardware(&qnn, &dataset, device, arm, cfg, 2);
            (arm, acc)
        })
        .collect()
}

/// Markdown-ish table printer used by all experiment binaries.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", header.join(" | "));
    println!("|{}|", header.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}
