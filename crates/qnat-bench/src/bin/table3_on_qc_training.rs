//! **Table 3** — scalable noise-aware training directly on (emulated)
//! hardware with the parameter-shift rule.
//!
//! The paper's setup: a 2-class task with two input features; the QNN has
//! two blocks, each with 2 RY gates and a CNOT. The *noise-unaware*
//! baseline trains classically (exact simulation) and tests on hardware;
//! QuantumNAT trains with parameter-shift gradients evaluated **on the
//! noisy hardware**, so the gradients are "naturally noise-aware".

use qnat_bench::harness::print_table;
use qnat_core::head::{predict, softmax};
use qnat_core::train::{Adam, AdamConfig};
use qnat_noise::emulator::HardwareEmulator;
use qnat_noise::presets;
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::Gate;
use qnat_sim::paramshift::{paramshift_gradients_with, Evaluator, ExactEvaluator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The toy model: block = RY(x0+θ0) q0, RY(x1+θ1) q1, CX(0,1); two blocks.
fn toy_circuit(x: &[f64], params: &[f64]) -> Circuit {
    let mut c = Circuit::new(2);
    for b in 0..2 {
        c.push(Gate::ry(0, x[0] * std::f64::consts::PI + params[b * 2]));
        c.push(Gate::ry(1, x[1] * std::f64::consts::PI + params[b * 2 + 1]));
        c.push(Gate::cx(0, 1));
    }
    c
}

/// Hardware-backed evaluator: rebinds the circuit's flat gate angles and
/// measures ⟨Z⟩ on the noisy emulator. The parameter-shift engine shifts
/// the *bound* angles; since each trainable θ enters one angle with
/// coefficient 1, the gradients transfer directly.
struct NoisyEvaluator<'a> {
    emulator: &'a HardwareEmulator,
    template: Circuit,
}

impl Evaluator for NoisyEvaluator<'_> {
    fn evaluate(&mut self, params: &[f64]) -> Vec<f64> {
        self.template.set_parameters(params);
        self.emulator
            .expect_all_z(&self.template)
            .expect("emulation succeeds")
    }
}

fn dataset(seed: u64, n: usize) -> Vec<(Vec<f64>, usize)> {
    // Two Gaussian blobs in [0,1]²: class 0 near (0.25, 0.35),
    // class 1 near (0.7, 0.6).
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let label = i % 2;
            let (cx, cy) = if label == 0 { (0.38, 0.46) } else { (0.58, 0.54) };
            let x = vec![
                (cx + rng.gen_range(-0.16..0.16f64)).clamp(0.0, 1.0),
                (cy + rng.gen_range(-0.16..0.16f64)).clamp(0.0, 1.0),
            ];
            (x, label)
        })
        .collect()
}

fn loss_and_grad<E: Evaluator>(
    x: &[f64],
    label: usize,
    params: &[f64],
    make: impl Fn(&[f64]) -> E,
) -> (f64, Vec<f64>) {
    let circuit = toy_circuit(x, params);
    let mut eval = make(x);
    let r = paramshift_gradients_with(&circuit, 2, &mut eval);
    // Logits = per-qubit expectations; softmax cross-entropy.
    let probs = softmax(&r.expectations);
    let loss = -probs[label].max(1e-12).ln();
    // dL/dz_q = p_q − 1{q==label}.
    let mut grads = vec![0.0; params.len()];
    for q in 0..2 {
        let dz = probs[q] - if q == label { 1.0 } else { 0.0 };
        for (j, g) in grads.iter_mut().enumerate() {
            *g += dz * r.gradients[q][j];
        }
    }
    (loss, grads)
}

fn accuracy_on_hardware(
    emulator: &HardwareEmulator,
    data: &[(Vec<f64>, usize)],
    params: &[f64],
) -> f64 {
    let correct = data
        .iter()
        .filter(|(x, y)| {
            let z = emulator
                .expect_all_z(&toy_circuit(x, params))
                .expect("emulation succeeds");
            predict(&z) == *y
        })
        .count();
    correct as f64 / data.len() as f64
}

fn main() {
    let train_set = dataset(5, 40);
    let test_set = dataset(99, 60);
    let epochs = 25;
    let mut rows = Vec::new();
    for device in [presets::bogota(), presets::santiago(), presets::lima()] {
        // Exaggerate the device noise slightly so the toy circuit (only 2
        // CX) feels it, mirroring the paper's real-hardware conditions.
        let device = device.scaled(8.0);
        let emulator = HardwareEmulator::new(device.clone());
        let mut accs = Vec::new();
        for noise_aware in [false, true] {
            let mut params = vec![0.1, -0.2, 0.15, 0.05];
            let mut adam = Adam::new(
                AdamConfig {
                    weight_decay: 0.0,
                    ..AdamConfig::default()
                },
                params.len(),
            );
            for _epoch in 0..epochs {
                let mut grads = vec![0.0; params.len()];
                let mut _loss = 0.0;
                for (x, y) in &train_set {
                    let (l, g) = if noise_aware {
                        loss_and_grad(x, *y, &params, |x| NoisyEvaluator {
                            emulator: &emulator,
                            template: toy_circuit(x, &[0.0; 4]),
                        })
                    } else {
                        loss_and_grad(x, *y, &params, |x| {
                            ExactEvaluator::new(toy_circuit(x, &[0.0; 4]), vec![0, 1])
                        })
                    };
                    _loss += l;
                    for (a, b) in grads.iter_mut().zip(&g) {
                        *a += b / train_set.len() as f64;
                    }
                }
                adam.step(&mut params, &grads, 0.08);
            }
            accs.push(accuracy_on_hardware(&emulator, &test_set, &params));
        }
        rows.push(vec![
            device.name().to_string(),
            format!("{:.2}", accs[0]),
            format!("{:.2}", accs[1]),
        ]);
    }
    print_table(
        "Table 3: parameter-shift training on noisy hardware (2-feature task)",
        &["machine", "noise-unaware", "QuantumNAT (train on QC)"],
        &rows,
    );
    println!("\nExpected shape (paper Table 3): training on the noisy device");
    println!("matches or beats classical noise-unaware training on every machine.");
}
