//! **Table 1** — the main result: the four-arm ablation
//! (Baseline / +Post Norm. / +Gate Insert. / +Post Quant.) over the
//! paper's (device, architecture) cells and tasks, on emulated hardware.
//!
//! Also prints the **Table 12** aggregation (improvement vs number of
//! classes) and the **Table 14** hyper-parameters used.
//!
//! Cells follow the paper: Santiago 2B×12L, Yorktown 2B×2L, Belem 2B×6L,
//! Athens 3B×10L on the six 4-qubit tasks, and Melbourne 2B×2L on the two
//! 10-class tasks. Set `QNAT_FAST=1` to run a reduced grid.

use qnat_bench::harness::*;
use qnat_data::dataset::Task;
use qnat_noise::device::DeviceModel;
use qnat_noise::presets;
use std::time::Instant;

fn main() {
    let fast = std::env::var("QNAT_FAST").is_ok();
    let cfg = RunConfig::default();
    let tiny = RunConfig::tiny();

    let cells: Vec<(DeviceModel, ArchSpec, Vec<Task>, RunConfig)> = if fast {
        vec![
            (
                presets::yorktown(),
                ArchSpec::u3cu3(2, 2),
                vec![Task::Mnist4, Task::Mnist2],
                cfg,
            ),
            (
                presets::santiago(),
                ArchSpec::u3cu3(2, 4),
                vec![Task::Fashion4],
                cfg,
            ),
        ]
    } else {
        let four_q = vec![
            Task::Mnist4,
            Task::Fashion4,
            Task::Vowel4,
            Task::Mnist2,
            Task::Fashion2,
            Task::Cifar2,
        ];
        // The deepest cells use fewer epochs (to keep the grid tractable)
        // and a smaller noise factor T, matching the paper's Table 14 where
        // the deep Athens/Santiago models select T = 0.1-0.5 while shallow
        // Yorktown models use T = 0.5: injected noise per training step
        // grows with circuit depth, so deep circuits need less scaling.
        let deep = RunConfig { epochs: 60, t_factor: 0.12, ..cfg };
        let mid = RunConfig { t_factor: 0.25, ..cfg };
        vec![
            (presets::santiago(), ArchSpec::u3cu3(2, 12), four_q.clone(), deep),
            (presets::yorktown(), ArchSpec::u3cu3(2, 2), four_q.clone(), cfg),
            (presets::belem(), ArchSpec::u3cu3(2, 6), four_q.clone(), mid),
            (presets::athens(), ArchSpec::u3cu3(3, 10), four_q, deep),
            (
                presets::melbourne(),
                ArchSpec::u3cu3(2, 2),
                vec![Task::Mnist10, Task::Fashion10],
                tiny,
            ),
        ]
    };

    // Accumulators for Table 12 (per class count: baseline vs full sums).
    let mut agg: std::collections::BTreeMap<usize, (f64, f64, usize)> =
        std::collections::BTreeMap::new();

    for (device, arch, tasks, cell_cfg) in cells {
        let mut rows = Vec::new();
        for &task in &tasks {
            let t0 = Instant::now();
            let mut row = vec![task.name().to_string()];
            let mut accs = Vec::new();
            for arm in Arm::all() {
                let (qnn, ds, _) = train_arm(task, arch, &device, arm, &cell_cfg);
                let acc = eval_on_hardware(&qnn, &ds, &device, arm, &cell_cfg, 2);
                row.push(format!("{acc:.2}"));
                accs.push(acc);
            }
            row.push(format!("{:.0}s", t0.elapsed().as_secs_f32()));
            rows.push(row);
            let e = agg.entry(task.n_classes()).or_insert((0.0, 0.0, 0));
            e.0 += accs[0];
            e.1 += accs[3];
            e.2 += 1;
        }
        print_table(
            &format!(
                "Table 1 cell: {} ({}) — hardware accuracy",
                device.name(),
                arch.label()
            ),
            &["task", "Baseline", "+Norm", "+GateInsert", "+Quant", "time"],
            &rows,
        );
    }

    let rows: Vec<Vec<String>> = agg
        .iter()
        .map(|(&classes, &(base, full, n))| {
            let b = base / n as f64;
            let f = full / n as f64;
            vec![
                format!("{classes}-classification"),
                format!("{b:.2}"),
                format!("{f:.2}"),
                format!("{:+.2}", f - b),
                format!("{:.0}%", (f - b) / b.max(1e-9) * 100.0),
            ]
        })
        .collect();
    print_table(
        "Table 12: improvement vs number of classes",
        &["task group", "Baseline", "QuantumNAT", "absolute", "relative"],
        &rows,
    );

    print_table(
        "Table 14: hyper-parameters used (fixed instead of the paper's 16-way sweep)",
        &["parameter", "value"],
        &[
            vec!["noise factor T".into(), format!("{}", cfg.t_factor)],
            vec!["quantization levels".into(), format!("{}", cfg.quant.levels)],
            vec![
                "clip range".into(),
                format!("[{}, {}]", cfg.quant.p_min, cfg.quant.p_max),
            ],
            vec!["quant penalty λ".into(), format!("{}", cfg.quant_penalty)],
            vec!["epochs".into(), format!("{}", cfg.epochs)],
        ],
    );
    println!("\nExpected shape (paper Table 1): each added technique raises hardware");
    println!("accuracy; the largest single jump usually comes from normalization.");
}
