//! **Table 11 (Appendix A.3.5)** — reliability of noise models: accuracy
//! evaluated with the stochastic Pauli noise model (the training-time
//! approximation) vs the full density-matrix "real QC" emulator (which adds
//! the amplitude/phase damping the twirled model misses).

use qnat_bench::harness::*;
use qnat_core::infer::{infer, InferenceBackend};
use qnat_data::dataset::Task;
use qnat_noise::presets;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let fast = std::env::var("QNAT_FAST").is_ok();
    let cfg = RunConfig::default();
    let tasks: Vec<Task> = if fast {
        vec![Task::Mnist4]
    } else {
        vec![Task::Mnist4, Task::Fashion4, Task::Mnist2, Task::Fashion2]
    };
    for (device, arch) in [
        (presets::santiago(), ArchSpec::u3cu3(2, 6)),
        (presets::yorktown(), ArchSpec::u3cu3(2, 2)),
    ] {
        let mut rows = Vec::new();
        for &task in &tasks {
            let (qnn, ds, _) = train_arm(task, arch, &device, Arm::Full, &cfg);
            let feats: Vec<Vec<f64>> = ds.test.iter().map(|s| s.features.clone()).collect();
            let labels: Vec<usize> = ds.test.iter().map(|s| s.label).collect();
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x11);
            // "Noise model" = exact density-matrix evaluation under the
            // Pauli-twirled calibration model (no damping) — what a
            // downloaded noise model captures.
            let pauli_dev = device.pauli_only();
            let pauli_dep = qnn.deploy(&pauli_dev, 2).expect("deployable");
            let model_acc = infer(
                &qnn,
                &feats,
                &InferenceBackend::Hardware(&pauli_dep),
                &arm_inference_options(Arm::Full, &cfg),
                &mut rng,
            )
            .expect("inference succeeds")
            .accuracy(&labels);
            let real_acc = eval_on_hardware(&qnn, &ds, &device, Arm::Full, &cfg, 2);
            rows.push(vec![
                task.name().to_string(),
                format!("{model_acc:.2}"),
                format!("{real_acc:.2}"),
                format!("{:+.2}", model_acc - real_acc),
            ]);
        }
        print_table(
            &format!(
                "Table 11: noise-model vs real-QC accuracy on {} ({})",
                device.name(),
                arch.label()
            ),
            &["task", "noise model", "real QC (emulated)", "gap"],
            &rows,
        );
    }
    println!("\nExpected shape (paper Table 11): gaps typically below 5 points —");
    println!("the Pauli-twirled model tracks the full-noise hardware closely.");
}
