//! **Table 7 (Appendix A.3.2)** — compatibility with noise-adaptive
//! compilation: deploying at optimization level 3 (noise-adaptive qubit
//! layout) improves the baseline, and QuantumNAT still adds on top.

use qnat_bench::harness::*;
use qnat_data::dataset::Task;
use qnat_noise::presets;

fn main() {
    let cfg = RunConfig::default();
    let arch = ArchSpec::u3cu3(2, 2);
    let mut rows: Vec<Vec<String>> = vec![
        vec!["Baseline (opt3)".into()],
        vec!["+Norm (opt3)".into()],
        vec!["+Noise & Quant (opt3)".into()],
    ];
    let devices = [
        presets::santiago(),
        presets::yorktown(),
        presets::belem(),
        presets::athens(),
    ];
    for device in &devices {
        for (i, arm) in [Arm::Baseline, Arm::Norm, Arm::Full].iter().enumerate() {
            let (qnn, ds, _) = train_arm(Task::Mnist2, arch, device, *arm, &cfg);
            let acc = eval_on_hardware(&qnn, &ds, device, *arm, &cfg, 3);
            rows[i].push(format!("{acc:.2}"));
        }
    }
    print_table(
        "Table 7: MNIST-2 with noise-adaptive compilation (opt level 3)",
        &["method", "santiago", "yorktown", "belem", "athens"],
        &rows,
    );
    println!("\nExpected shape (paper Table 7): level-3 layout lifts the baseline,");
    println!("and the QuantumNAT pipeline still adds ≈10 points on top.");
}
