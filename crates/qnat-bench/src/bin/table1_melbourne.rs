//! The Melbourne 10-class cells of Table 1 at a workable data budget
//! (10-class learning needs more than the tiny smoke config).

use qnat_bench::harness::*;
use qnat_data::dataset::{Task, TaskConfig};
use qnat_noise::presets;

fn main() {
    let cfg = RunConfig {
        epochs: 25,
        batch_size: 40,
        data: TaskConfig {
            n_train: 160,
            n_valid: 40,
            n_test: 64,
            seed: 11,
        },
        t_factor: 0.25,
        ..RunConfig::default()
    };
    let device = presets::melbourne();
    let arch = ArchSpec::u3cu3(2, 2);
    let mut rows = Vec::new();
    for task in [Task::Mnist10, Task::Fashion10] {
        let mut row = vec![task.name().to_string()];
        for arm in Arm::all() {
            let (qnn, ds, _) = train_arm(task, arch, &device, arm, &cfg);
            let acc = eval_on_hardware(&qnn, &ds, &device, arm, &cfg, 2);
            row.push(format!("{acc:.2}"));
        }
        rows.push(row);
    }
    print_table(
        "Table 1 cell: ibmq-melbourne (2B×2L) — hardware accuracy",
        &["task", "Baseline", "+Norm", "+GateInsert", "+Quant"],
        &rows,
    );
}
