//! **Figure 4** — post-measurement normalization reduces the mismatch
//! between noise-free and noisy measurement distributions and improves SNR.
//!
//! For a trained MNIST-4 model on Santiago, prints each qubit's outcome
//! mean/std in the noise-free and noisy cases before and after
//! normalization, plus the SNR improvement.

use qnat_bench::harness::*;
use qnat_core::infer::{infer, InferenceBackend, InferenceOptions};
use qnat_core::metrics::snr;
use qnat_core::normalize::normalize_batch;
use qnat_data::dataset::Task;
use qnat_noise::presets;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn col_stats(m: &[Vec<f64>], q: usize) -> (f64, f64) {
    let n = m.len() as f64;
    let mean = m.iter().map(|r| r[q]).sum::<f64>() / n;
    let var = m.iter().map(|r| (r[q] - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn main() {
    let cfg = RunConfig::default();
    let device = presets::santiago();
    let (qnn, ds, _) = train_arm(Task::Mnist4, ArchSpec::u3cu3(2, 2), &device, Arm::Norm, &cfg);
    let dep = qnn.deploy(&device, 2).expect("deployable");
    let mut rng = StdRng::seed_from_u64(1);
    let feats: Vec<Vec<f64>> = ds.test.iter().map(|s| s.features.clone()).collect();
    let clean = infer(
        &qnn,
        &feats,
        &InferenceBackend::NoiseFree,
        &InferenceOptions::baseline(),
        &mut rng,
    )
    .expect("inference succeeds");
    let noisy = infer(
        &qnn,
        &feats,
        &InferenceBackend::Hardware(&dep),
        &InferenceOptions::baseline(),
        &mut rng,
    )
    .expect("inference succeeds");
    let mut c = clean.block_outputs[0].clone();
    let mut n = noisy.block_outputs[0].clone();
    let mut rows = Vec::new();
    for q in 0..4 {
        let (cm, cs) = col_stats(&c, q);
        let (nm, ns) = col_stats(&n, q);
        rows.push(vec![
            format!("qubit {q}"),
            format!("{cm:+.3} ± {cs:.3}"),
            format!("{nm:+.3} ± {ns:.3}"),
        ]);
    }
    print_table(
        "Figure 4: block-1 outcome distributions (before normalization)",
        &["qubit", "noise-free μ±σ", "noisy μ±σ"],
        &rows,
    );
    let snr_before = snr(&c, &n);
    normalize_batch(&mut c);
    normalize_batch(&mut n);
    let snr_after = snr(&c, &n);
    println!("\nSNR before normalization: {snr_before:.3}");
    println!("SNR after  normalization: {snr_after:.3}");
    println!("Expected shape (paper Fig. 4): SNR clearly improves after normalization.");
    assert!(snr_after > snr_before, "normalization must improve SNR");
}
