//! **Figure 1 (right)** — the motivation plot: the same QNN deployed on
//! devices with different error rates suffers different accuracy drops.
//!
//! Trains one noise-unaware MNIST-2 model (2B×2L) and evaluates it
//! noise-free and on five emulated devices, printing the series
//! (device, single-qubit error rate, accuracy) the figure plots.

use qnat_bench::harness::*;
use qnat_data::dataset::Task;
use qnat_noise::presets;

fn main() {
    let cfg = RunConfig::default();
    let arch = ArchSpec::u3cu3(2, 2);
    // One noise-unaware model; it must fit every device, so build it for
    // the largest ring-compatible topology (line) and re-deploy per device.
    let (qnn, ds, _) = train_arm(Task::Mnist2, arch, &presets::santiago(), Arm::Baseline, &cfg);
    let clean = eval_noise_free(&qnn, &ds, Arm::Baseline, &cfg);
    let mut rows = vec![vec![
        "noise-free".into(),
        "0".into(),
        format!("{clean:.3}"),
    ]];
    for device in [
        presets::santiago(),
        presets::athens(),
        presets::belem(),
        presets::quito(),
        presets::yorktown(),
    ] {
        let acc = eval_on_hardware(&qnn, &ds, &device, Arm::Baseline, &cfg, 2);
        rows.push(vec![
            device.name().to_string(),
            format!("{:.2e}", device.mean_single_qubit_error()),
            format!("{acc:.3}"),
        ]);
    }
    print_table(
        "Figure 1: device error rate vs MNIST-2 accuracy (noise-unaware model)",
        &["device", "1q error rate", "accuracy"],
        &rows,
    );
    println!("\nExpected shape (paper): accuracy decreases as error rate grows;");
    println!("gap between noise-free and the noisiest device is tens of points.");
}
