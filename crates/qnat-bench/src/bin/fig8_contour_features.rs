//! **Figure 8** — left: accuracy contour over (noise factor `T`,
//! quantization levels) on Fashion-4 / Athens; right: the 2-D feature
//! visualization for MNIST-2 on Belem (feature 1 = z₀+z₁, feature 2 =
//! z₂+z₃) for baseline / +norm / +injection pipelines.

use qnat_bench::harness::*;
use qnat_core::forward::QuantizeSpec;
use qnat_core::infer::{infer, InferenceBackend, InferenceOptions, NormMode};
use qnat_core::normalize::normalize_batch;
use qnat_data::dataset::Task;
use qnat_noise::presets;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let fast = std::env::var("QNAT_FAST").is_ok();
    let cfg = RunConfig::default();

    // Left: (T, levels) contour.
    let device = presets::athens();
    let factors: &[f64] = if fast { &[0.2, 1.0] } else { &[0.1, 0.2, 0.5, 1.0] };
    let levels: &[usize] = if fast { &[5] } else { &[3, 4, 5, 6] };
    let mut rows = Vec::new();
    for &t in factors {
        let mut row = vec![format!("T={t}")];
        for &lv in levels {
            let cell = RunConfig {
                t_factor: t,
                quant: QuantizeSpec::levels(lv),
                ..cfg
            };
            let (qnn, ds, _) =
                train_arm(Task::Fashion4, ArchSpec::u3cu3(2, 2), &device, Arm::Full, &cell);
            let acc = eval_on_hardware(&qnn, &ds, &device, Arm::Full, &cell, 2);
            row.push(format!("{acc:.2}"));
        }
        rows.push(row);
    }
    let mut header = vec!["noise factor".to_string()];
    header.extend(levels.iter().map(|l| format!("q{l}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table(
        "Figure 8 (left): Fashion-4 / Athens accuracy over (T, quant levels)",
        &header_refs,
        &rows,
    );
    println!("Expected shape: an interior maximum — too little noise/levels and");
    println!("too much both hurt (paper found the peak near T=0.2, 5 levels).");

    // Right: feature scatter on Belem MNIST-2.
    let device = presets::belem();
    let mut rows = Vec::new();
    for arm in [Arm::Baseline, Arm::Norm, Arm::NormInject] {
        let (qnn, ds, _) = train_arm(Task::Mnist2, ArchSpec::u3cu3(2, 2), &device, arm, &cfg);
        let dep = qnn.deploy(&device, 2).expect("deployable");
        let mut rng = StdRng::seed_from_u64(4);
        let feats: Vec<Vec<f64>> = ds.test.iter().take(48).map(|s| s.features.clone()).collect();
        let labels: Vec<usize> = ds.test.iter().take(48).map(|s| s.label).collect();
        let result = infer(
            &qnn,
            &feats,
            &InferenceBackend::Hardware(&dep),
            &InferenceOptions {
                normalize: if arm == Arm::Baseline {
                    NormMode::Off
                } else {
                    NormMode::BatchStats
                },
                quantize: None,
                process_last: false,
            },
            &mut rng,
        )
        .expect("inference succeeds");
        // Last-block outputs → the two features.
        let last = result.block_outputs.last().expect("has blocks");
        let mut z = last.clone();
        if arm != Arm::Baseline {
            // The figure plots the normalized features for the norm arms.
            normalize_batch(&mut z);
        }
        let feature_pairs: Vec<(f64, f64, usize)> = z
            .iter()
            .zip(&labels)
            .map(|(row, &y)| (row[0] + row[1], row[2] + row[3], y))
            .collect();
        // Summaries: class centroids and margin statistics.
        for class in 0..2 {
            let pts: Vec<(f64, f64)> = feature_pairs
                .iter()
                .filter(|&&(_, _, y)| y == class)
                .map(|&(a, b, _)| (a, b))
                .collect();
            let n = pts.len() as f64;
            let cx = pts.iter().map(|p| p.0).sum::<f64>() / n;
            let cy = pts.iter().map(|p| p.1).sum::<f64>() / n;
            let spread = (pts
                .iter()
                .map(|p| (p.0 - cx).powi(2) + (p.1 - cy).powi(2))
                .sum::<f64>()
                / n)
                .sqrt();
            rows.push(vec![
                arm.label().to_string(),
                format!("class {class}"),
                format!("({cx:+.2}, {cy:+.2})"),
                format!("{spread:.2}"),
            ]);
        }
        // Distance of centroids from the boundary f1 = f2.
        let margin: f64 = feature_pairs
            .iter()
            .map(|&(a, b, y)| {
                let signed = (a - b) / std::f64::consts::SQRT_2;
                if y == 0 {
                    signed
                } else {
                    -signed
                }
            })
            .sum::<f64>()
            / feature_pairs.len() as f64;
        rows.push(vec![
            arm.label().to_string(),
            "mean margin".into(),
            format!("{margin:+.3}"),
            String::new(),
        ]);
    }
    print_table(
        "Figure 8 (right): MNIST-2 / Belem feature-space summary",
        &["pipeline", "group", "centroid (f1,f2)", "spread"],
        &rows,
    );
    println!("\nExpected shape (paper Fig. 8 right): baseline features huddle");
    println!("together near the boundary; normalization expands them; injection");
    println!("enlarges the class margin further.");
}
