//! **Table 2** — QuantumNAT across four alternative design spaces
//! (`ZZ+RY`, `RXYZ`, `ZX+XX`, `RXYZ+U1+CU3`) on MNIST-4 and Fashion-2,
//! Yorktown and Santiago: baseline vs +QuantumNAT hardware accuracy.

use qnat_bench::harness::*;
use qnat_core::ansatz::DesignSpace;
use qnat_data::dataset::Task;
use qnat_noise::presets;

fn main() {
    let cfg = RunConfig::default();
    let spaces = [
        DesignSpace::ZzRy,
        DesignSpace::Rxyz,
        DesignSpace::ZxXx,
        DesignSpace::RxyzU1Cu3,
    ];
    for task in [Task::Mnist4, Task::Fashion2] {
        let mut rows = Vec::new();
        for space in spaces {
            // One "design-space layer" is already a composite; keep 2 blocks
            // × 2 layers across spaces for comparability.
            let arch = ArchSpec {
                blocks: 2,
                layers: 2,
                design: space,
            };
            let mut row = vec![space.name().to_string()];
            for device in [presets::yorktown(), presets::santiago()] {
                let (b_qnn, ds, _) = train_arm(task, arch, &device, Arm::Baseline, &cfg);
                let base = eval_on_hardware(&b_qnn, &ds, &device, Arm::Baseline, &cfg, 2);
                let (f_qnn, ds, _) = train_arm(task, arch, &device, Arm::Full, &cfg);
                let full = eval_on_hardware(&f_qnn, &ds, &device, Arm::Full, &cfg, 2);
                row.push(format!("{base:.2}"));
                row.push(format!("{full:.2}"));
            }
            rows.push(row);
        }
        print_table(
            &format!("Table 2: design spaces on {}", task.name()),
            &[
                "design space",
                "yorktown base",
                "yorktown +QNAT",
                "santiago base",
                "santiago +QNAT",
            ],
            &rows,
        );
    }
    println!("\nExpected shape (paper Table 2): +QuantumNAT wins in most cells");
    println!("(13/16 in the paper), demonstrating design-space agnosticism.");
}
