//! **Fault-tolerance sweep** — Full-arm deployment behind the resilient
//! executor under increasing transient-failure rates.
//!
//! For each fault rate the primary (hardware emulator) backend randomly
//! rejects jobs; the executor retries with exponential backoff and, when a
//! job exhausts its attempts, answers from the Pauli noise-model
//! simulator instead (the paper's Table 11 shows the two agree closely,
//! which is what makes the fallback acceptable). The table reports the
//! delivered accuracy together with the execution-report counters, so the
//! cost of each failure regime is visible: retries, virtual backoff,
//! fallback jobs and whether the deployment degraded permanently.

use qnat_bench::harness::*;
use qnat_core::infer::{infer, InferenceBackend};
use qnat_core::{HealthPolicy, RetryPolicy};
use qnat_data::dataset::Task;
use qnat_noise::{presets, FaultSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let fast = std::env::var("QNAT_FAST").is_ok();
    let cfg = RunConfig::default();
    let device = presets::santiago();
    let arch = ArchSpec::u3cu3(2, 2);
    let task = Task::Mnist4;

    let (qnn, ds, _) = train_arm(task, arch, &device, Arm::Full, &cfg);
    let feats: Vec<Vec<f64>> = ds.test.iter().map(|s| s.features.clone()).collect();
    let labels: Vec<usize> = ds.test.iter().map(|s| s.label).collect();

    let rates: &[f64] = if fast {
        &[0.0, 0.3]
    } else {
        &[0.0, 0.1, 0.3, 0.5, 0.9, 1.0]
    };
    let mut rows = Vec::new();
    for &rate in rates {
        let faults = if rate > 0.0 {
            Some(FaultSpec {
                timeout_rate: rate / 10.0,
                shot_truncation_rate: rate / 5.0,
                shot_truncation_factor: 0.5,
                ..FaultSpec::transient(rate, 0xFA01 + (rate * 100.0) as u64)
            })
        } else {
            None
        };
        let dep = qnn
            .deploy_resilient(&device, 2, RetryPolicy::default(), faults, cfg.seed)
            .expect("deployable");
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xFA);
        let result = infer(
            &qnn,
            &feats,
            &InferenceBackend::Resilient(&dep),
            &arm_inference_options(Arm::Full, &cfg),
            &mut rng,
        )
        .expect("resilient inference survives injected faults");
        let acc = result.accuracy(&labels);
        let report = result.report.expect("resilient run carries a report");
        rows.push(vec![
            format!("{rate:.1}"),
            format!("{acc:.2}"),
            format!("{}", report.jobs),
            format!("{}", report.attempts),
            format!("{}", report.retries),
            format!("{}", report.fallback_jobs),
            format!("{}", report.total_backoff_ms),
            if report.degraded { "yes" } else { "no" }.to_string(),
        ]);
    }
    print_table(
        &format!(
            "Fault tolerance: Full arm on {} ({}), transient-failure sweep",
            device.name(),
            arch.label()
        ),
        &[
            "fault rate",
            "accuracy",
            "jobs",
            "attempts",
            "retries",
            "fallbacks",
            "backoff ms",
            "degraded",
        ],
        &rows,
    );
    println!("\nRetry + backoff absorbs moderate transient rates with no accuracy");
    println!("loss; at total outage the executor degrades to the Pauli noise-model");
    println!("simulator, trading the Table-11 model-vs-real gap for availability.");

    // Fleet-health sweep: the same model through the pooled batch
    // deployment, with and without the shared circuit breaker. At high
    // fault rates every per-job executor rediscovers the dying primary
    // from scratch unless the breaker remembers for the fleet; the rows
    // show the attempt/backoff bill the breaker cuts at equal accuracy.
    let brates: &[f64] = if fast { &[1.0] } else { &[0.5, 0.9, 1.0] };
    let mut health_rows = Vec::new();
    for &rate in brates {
        for breaker in [false, true] {
            let faults = FaultSpec::transient(rate, 0xFA02 + (rate * 100.0) as u64);
            let mut dep = qnn
                .deploy_batch(&device, 2, RetryPolicy::default(), Some(faults), 4, cfg.seed)
                .expect("deployable");
            if breaker {
                dep = dep.with_health(HealthPolicy::breaker_only());
            }
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xFB);
            let result = infer(
                &qnn,
                &feats,
                &InferenceBackend::Batch(&dep),
                &arm_inference_options(Arm::Full, &cfg),
                &mut rng,
            )
            .expect("batched inference survives injected faults");
            let acc = result.accuracy(&labels);
            let report = result.report.expect("batch run carries a report");
            let registry = dep.health_registry();
            let trips: u64 = registry
                .keys()
                .iter()
                .filter_map(|k| registry.snapshot(k))
                .map(|s| s.trips)
                .sum();
            health_rows.push(vec![
                format!("{rate:.1}"),
                if breaker { "on" } else { "off" }.to_string(),
                format!("{acc:.2}"),
                format!("{}", report.attempts),
                format!("{}", report.retries),
                format!("{}", report.short_circuited_jobs),
                format!("{}", report.total_backoff_ms),
                format!("{trips}"),
            ]);
        }
    }
    print_table(
        &format!(
            "Fleet health: batched deployment on {} (4 workers), breaker off vs on",
            device.name()
        ),
        &[
            "fault rate",
            "breaker",
            "accuracy",
            "attempts",
            "retries",
            "short-circuited",
            "backoff ms",
            "trips",
        ],
        &health_rows,
    );
    println!("\nBelow the trip threshold the breaker is free (identical rows). Once");
    println!("it trips, later jobs skip straight to the fallback: a fraction of the");
    println!("attempts and backoff, at the fallback's (Table-11-close) accuracy.");
}
