//! **Table 5** — post-measurement normalization improves both accuracy and
//! SNR across four architectures and three devices (MNIST-4).

use qnat_bench::harness::*;
use qnat_core::infer::{infer, InferenceBackend, InferenceOptions};
use qnat_core::metrics::snr;
use qnat_core::normalize::normalize_batch;
use qnat_data::dataset::Task;
use qnat_noise::presets;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let fast = std::env::var("QNAT_FAST").is_ok();
    let cfg = RunConfig::default();
    let archs: Vec<ArchSpec> = if fast {
        vec![ArchSpec::u3cu3(2, 2)]
    } else {
        vec![
            ArchSpec::u3cu3(2, 2),
            ArchSpec::u3cu3(2, 8),
            ArchSpec::u3cu3(4, 2),
            ArchSpec::u3cu3(4, 4),
        ]
    };
    for device in [presets::santiago(), presets::quito(), presets::athens()] {
        let mut rows = Vec::new();
        for &arch in &archs {
            // Baseline arm (no normalization anywhere).
            let (b_qnn, ds, _) = train_arm(Task::Mnist4, arch, &device, Arm::Baseline, &cfg);
            let acc_base = eval_on_hardware(&b_qnn, &ds, &device, Arm::Baseline, &cfg, 2);
            // SNR of the baseline model's block-1 outcomes.
            let dep = b_qnn.deploy(&device, 2).expect("deployable");
            let mut rng = StdRng::seed_from_u64(3);
            let feats: Vec<Vec<f64>> =
                ds.test.iter().map(|s| s.features.clone()).collect();
            let clean = infer(
                &b_qnn,
                &feats,
                &InferenceBackend::NoiseFree,
                &InferenceOptions::baseline(),
                &mut rng,
            )
            .expect("inference succeeds");
            let noisy = infer(
                &b_qnn,
                &feats,
                &InferenceBackend::Hardware(&dep),
                &InferenceOptions::baseline(),
                &mut rng,
            )
            .expect("inference succeeds");
            let snr_base = snr(&clean.block_outputs[0], &noisy.block_outputs[0]);
            let mut cn = clean.block_outputs[0].clone();
            let mut nn = noisy.block_outputs[0].clone();
            normalize_batch(&mut cn);
            normalize_batch(&mut nn);
            let snr_norm = snr(&cn, &nn);
            // +Norm arm accuracy.
            let (n_qnn, ds2, _) = train_arm(Task::Mnist4, arch, &device, Arm::Norm, &cfg);
            let acc_norm = eval_on_hardware(&n_qnn, &ds2, &device, Arm::Norm, &cfg, 2);
            rows.push(vec![
                arch.label(),
                format!("{acc_base:.2}"),
                format!("{snr_base:.2}"),
                format!("{acc_norm:.2}"),
                format!("{snr_norm:.2}"),
            ]);
        }
        print_table(
            &format!("Table 5: normalization ablation on {}", device.name()),
            &["arch", "base acc", "base SNR", "+norm acc", "+norm SNR"],
            &rows,
        );
    }
    println!("\nExpected shape (paper Table 5): +norm raises SNR in every cell and");
    println!("accuracy in nearly all; deeper models have lower raw SNR.");
}
