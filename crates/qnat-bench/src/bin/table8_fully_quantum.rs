//! **Table 8 (Appendix A.3.3)** — QuantumNAT on fully-quantum models:
//! a single block (no intermediate measurement); normalization and
//! quantization are applied to the *last* layer's outcomes.

use qnat_bench::harness::*;
use qnat_core::forward::PipelineOptions;
use qnat_core::infer::{infer, InferenceBackend, InferenceOptions, NormMode};
use qnat_core::model::{NoiseSource, Qnn};
use qnat_core::train::{train, AdamConfig, TrainOptions};
use qnat_data::dataset::{build, Task};
use qnat_noise::presets;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let fast = std::env::var("QNAT_FAST").is_ok();
    let cfg = RunConfig {
        t_factor: 0.5,
        quant: qnat_core::QuantizeSpec::levels(6),
        ..RunConfig::default()
    };
    let tasks: Vec<Task> = if fast {
        vec![Task::Mnist2]
    } else {
        vec![Task::Mnist4, Task::Fashion4, Task::Mnist2, Task::Fashion2]
    };
    let layer_counts: Vec<usize> = if fast { vec![3] } else { vec![3, 6] };
    for device in [presets::santiago(), presets::belem()] {
        for &layers in &layer_counts {
            let arch = ArchSpec::u3cu3(1, layers);
            let mut rows = Vec::new();
            for &task in &tasks {
                let dataset = build(task, &cfg.data);
                let mut accs = Vec::new();
                for full in [false, true] {
                    let mut qnn =
                        Qnn::for_device(qnn_config(task, arch), &device, cfg.seed)
                            .expect("fits");
                    let pipeline = if full {
                        PipelineOptions {
                            noise: NoiseSource::GateInsertion {
                                model: &device,
                                factor: cfg.t_factor,
                            },
                            readout: Some(&device),
                            normalize: true,
                            quantize: Some(cfg.quant),
                            quant_penalty: cfg.quant_penalty,
                            process_last: true,
                        }
                    } else {
                        PipelineOptions::baseline()
                    };
                    let options = TrainOptions {
                        adam: AdamConfig {
                            lr_max: cfg.lr_max,
                            warmup_epochs: (cfg.epochs / 5).max(1),
                            total_epochs: cfg.epochs,
                            ..AdamConfig::default()
                        },
                        batch_size: cfg.batch_size,
                        pipeline,
                        seed: cfg.seed,
                    };
                    train(&mut qnn, &dataset, &options).expect("training succeeds");
                    let dep = qnn.deploy(&device, 2).expect("deployable");
                    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x88);
                    let feats: Vec<Vec<f64>> =
                        dataset.test.iter().map(|s| s.features.clone()).collect();
                    let labels: Vec<usize> =
                        dataset.test.iter().map(|s| s.label).collect();
                    let opts = if full {
                        InferenceOptions {
                            normalize: NormMode::BatchStats,
                            quantize: Some(cfg.quant),
                            process_last: true,
                        }
                    } else {
                        InferenceOptions::baseline()
                    };
                    let acc = infer(
                        &qnn,
                        &feats,
                        &InferenceBackend::Hardware(&dep),
                        &opts,
                        &mut rng,
                    )
                    .expect("inference succeeds")
                    .accuracy(&labels);
                    accs.push(acc);
                }
                rows.push(vec![
                    task.name().to_string(),
                    format!("{:.2}", accs[0]),
                    format!("{:.2}", accs[1]),
                ]);
            }
            print_table(
                &format!(
                    "Table 8: fully-quantum {} model on {}",
                    arch.label(),
                    device.name()
                ),
                &["task", "Baseline", "QuantumNAT"],
                &rows,
            );
        }
    }
    println!("\nExpected shape (paper Table 8): QuantumNAT beats the baseline on");
    println!("most tasks even without intermediate measurements (+7.4% average).");
}
