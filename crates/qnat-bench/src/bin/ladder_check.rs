//! Smoke check: the Table-1 accuracy ladder on one cell.

use qnat_bench::harness::*;
use qnat_data::dataset::Task;
use qnat_noise::presets;
use std::time::Instant;

fn main() {
    let cfg = RunConfig::default();
    let device = presets::yorktown();
    let arch = ArchSpec::u3cu3(2, 2);
    for task in [Task::Mnist2, Task::Mnist4] {
        let t0 = Instant::now();
        println!("== {} on {} ({}) ==", task.name(), device.name(), arch.label());
        for arm in Arm::all() {
            let t1 = Instant::now();
            let (qnn, ds, report) = train_arm(task, arch, &device, arm, &cfg);
            let clean = eval_noise_free(&qnn, &ds, arm, &cfg);
            let hw = eval_on_hardware(&qnn, &ds, &device, arm, &cfg, 2);
            println!(
                "{:16} train_acc {:.3}  noise-free {:.3}  hardware {:.3}   ({:.1}s)",
                arm.label(),
                report.history.last().unwrap().train_acc,
                clean,
                hw,
                t1.elapsed().as_secs_f32()
            );
        }
        println!("cell total {:.1}s", t0.elapsed().as_secs_f32());
    }
}
