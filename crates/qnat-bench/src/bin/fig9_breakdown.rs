//! **Figure 9** — breakdown of the accuracy gain: noise injection and
//! quantization applied individually vs jointly (all on top of
//! normalization), MNIST-4.

use qnat_bench::harness::*;
use qnat_core::forward::PipelineOptions;
use qnat_core::infer::{infer, InferenceBackend, InferenceOptions, NormMode};
use qnat_core::model::{NoiseSource, Qnn};
use qnat_core::train::{train, AdamConfig, TrainOptions};
use qnat_data::dataset::build;
use qnat_data::Task;
use qnat_noise::presets;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = RunConfig::default();
    let device = presets::yorktown();
    let task = Task::Mnist4;
    let arch = ArchSpec::u3cu3(2, 2);
    let dataset = build(task, &cfg.data);

    let variants: Vec<(&str, bool, bool)> = vec![
        ("norm only", false, false),
        ("+ injection only", true, false),
        ("+ quantization only", false, true),
        ("+ both (QuantumNAT)", true, true),
    ];
    let mut rows = Vec::new();
    for (label, inject, quant) in variants {
        let mut qnn =
            Qnn::for_device(qnn_config(task, arch), &device, cfg.seed).expect("fits");
        let pipeline = PipelineOptions {
            noise: if inject {
                NoiseSource::GateInsertion {
                    model: &device,
                    factor: cfg.t_factor,
                }
            } else {
                NoiseSource::None
            },
            readout: if inject { Some(&device) } else { None },
            normalize: true,
            quantize: if quant { Some(cfg.quant) } else { None },
            quant_penalty: if quant { cfg.quant_penalty } else { 0.0 },
            process_last: false,
        };
        let options = TrainOptions {
            adam: AdamConfig {
                lr_max: cfg.lr_max,
                warmup_epochs: (cfg.epochs / 5).max(1),
                total_epochs: cfg.epochs,
                ..AdamConfig::default()
            },
            batch_size: cfg.batch_size,
            pipeline,
            seed: cfg.seed,
        };
        train(&mut qnn, &dataset, &options).expect("training succeeds");
        let dep = qnn.deploy(&device, 2).expect("deployable");
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xAB);
        let feats: Vec<Vec<f64>> = dataset.test.iter().map(|s| s.features.clone()).collect();
        let labels: Vec<usize> = dataset.test.iter().map(|s| s.label).collect();
        let acc = infer(
            &qnn,
            &feats,
            &InferenceBackend::Hardware(&dep),
            &InferenceOptions {
                normalize: NormMode::BatchStats,
                quantize: if quant { Some(cfg.quant) } else { None },
                process_last: false,
            },
            &mut rng,
        )
        .expect("inference succeeds")
        .accuracy(&labels);
        rows.push(vec![label.to_string(), format!("{acc:.2}")]);
    }
    print_table(
        "Figure 9: individual vs joint application (MNIST-4, Yorktown)",
        &["pipeline", "hardware accuracy"],
        &rows,
    );
    println!("\nExpected shape (paper Fig. 9): each technique alone helps;");
    println!("combining them delivers the best accuracy.");
}
