//! **Figure 7** — ablation of noise-injection methods.
//!
//! Left: without quantization, sweep the noise factor `T` for gate
//! insertion, measurement-outcome perturbation and rotation-angle
//! perturbation. Right: with quantization (T = 0.5), sweep quantization
//! levels for gate insertion vs outcome perturbation — perturbation is
//! largely cancelled by quantization, so insertion wins.
//!
//! Gaussian statistics for the perturbations are benchmarked from
//! validation-set error profiling, as in the paper.

use qnat_bench::harness::*;
use qnat_core::forward::{PipelineOptions, QuantizeSpec};
use qnat_core::infer::{infer, InferenceBackend, InferenceOptions, NormMode};
use qnat_core::model::{NoiseSource, Qnn};
use qnat_core::train::{train, AdamConfig, TrainOptions};
use qnat_data::dataset::{build, Task};
use qnat_noise::presets;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Benchmarks the noise-free vs noisy outcome error distribution on the
/// validation set, returning (μ_err, σ_err) — paper §3.2, "Direct
/// perturbation".
fn benchmark_error_stats(
    qnn: &Qnn,
    valid: &[qnat_data::Sample],
    device: &qnat_noise::DeviceModel,
) -> (f64, f64) {
    let dep = qnn.deploy(device, 2).expect("deployable");
    let mut rng = StdRng::seed_from_u64(17);
    let feats: Vec<Vec<f64>> = valid.iter().map(|s| s.features.clone()).collect();
    let clean = infer(
        qnn,
        &feats,
        &InferenceBackend::NoiseFree,
        &InferenceOptions::baseline(),
        &mut rng,
    )
    .expect("inference succeeds");
    let noisy = infer(
        qnn,
        &feats,
        &InferenceBackend::Hardware(&dep),
        &InferenceOptions::baseline(),
        &mut rng,
    )
    .expect("inference succeeds");
    let errs: Vec<f64> = clean.block_outputs[0]
        .iter()
        .flatten()
        .zip(noisy.block_outputs[0].iter().flatten())
        .map(|(c, n)| n - c)
        .collect();
    let mu = errs.iter().sum::<f64>() / errs.len() as f64;
    let var = errs.iter().map(|e| (e - mu).powi(2)).sum::<f64>() / errs.len() as f64;
    (mu, var.sqrt())
}

fn train_with(
    task: Task,
    device: &qnat_noise::DeviceModel,
    noise: NoiseSource<'_>,
    quantize: Option<QuantizeSpec>,
    cfg: &RunConfig,
) -> (Qnn, qnat_data::Dataset) {
    let dataset = build(task, &cfg.data);
    let arch = ArchSpec::u3cu3(2, 2);
    let mut qnn =
        Qnn::for_device(qnn_config(task, arch), device, cfg.seed).expect("fits device");
    let pipeline = PipelineOptions {
        noise,
        readout: Some(device),
        normalize: true,
        quantize,
        quant_penalty: if quantize.is_some() { cfg.quant_penalty } else { 0.0 },
        process_last: false,
    };
    let options = TrainOptions {
        adam: AdamConfig {
            lr_max: cfg.lr_max,
            warmup_epochs: (cfg.epochs / 5).max(1),
            total_epochs: cfg.epochs,
            ..AdamConfig::default()
        },
        batch_size: cfg.batch_size,
        pipeline,
        seed: cfg.seed,
    };
    train(&mut qnn, &dataset, &options).expect("training succeeds");
    (qnn, dataset)
}

fn hw_accuracy(
    qnn: &Qnn,
    ds: &qnat_data::Dataset,
    device: &qnat_noise::DeviceModel,
    quantize: Option<QuantizeSpec>,
    cfg: &RunConfig,
) -> f64 {
    let dep = qnn.deploy(device, 2).expect("deployable");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF1);
    let feats: Vec<Vec<f64>> = ds.test.iter().map(|s| s.features.clone()).collect();
    let labels: Vec<usize> = ds.test.iter().map(|s| s.label).collect();
    infer(
        qnn,
        &feats,
        &InferenceBackend::Hardware(&dep),
        &InferenceOptions {
            normalize: NormMode::BatchStats,
            quantize,
            process_last: false,
        },
        &mut rng,
    )
    .expect("inference succeeds")
    .accuracy(&labels)
}

fn main() {
    let fast = std::env::var("QNAT_FAST").is_ok();
    let cfg = RunConfig::default();
    let device = presets::yorktown();
    let task = Task::Mnist4;

    // Benchmark perturbation statistics from a +Norm reference model.
    let (ref_qnn, ds, _) = train_arm(task, ArchSpec::u3cu3(2, 2), &device, Arm::Norm, &cfg);
    let (mu, sigma) = benchmark_error_stats(&ref_qnn, &ds.valid, &device);
    println!("benchmarked outcome-error stats: mu = {mu:.4}, sigma = {sigma:.4}");

    // Left plot: accuracy vs noise factor, no quantization.
    let factors: &[f64] = if fast { &[0.5] } else { &[0.1, 0.5, 1.0, 1.5] };
    let mut rows = Vec::new();
    for &t in factors {
        let (gi, ds1) = train_with(
            task,
            &device,
            NoiseSource::GateInsertion {
                model: &device,
                factor: t,
            },
            None,
            &cfg,
        );
        let (op, ds2) = train_with(
            task,
            &device,
            NoiseSource::OutcomePerturb {
                mu: mu * t,
                sigma: sigma * t,
            },
            None,
            &cfg,
        );
        let (ap, ds3) = train_with(
            task,
            &device,
            NoiseSource::AnglePerturb { sigma: 0.12 * t },
            None,
            &cfg,
        );
        rows.push(vec![
            format!("{t}"),
            format!("{:.2}", hw_accuracy(&gi, &ds1, &device, None, &cfg)),
            format!("{:.2}", hw_accuracy(&op, &ds2, &device, None, &cfg)),
            format!("{:.2}", hw_accuracy(&ap, &ds3, &device, None, &cfg)),
        ]);
    }
    print_table(
        "Figure 7 (left): accuracy vs noise factor, no quantization",
        &["T", "gate insertion", "outcome perturb", "angle perturb"],
        &rows,
    );

    // Right plot: with quantization at T = 0.5, sweep levels.
    let levels: &[usize] = if fast { &[5] } else { &[3, 4, 5, 6] };
    let mut rows = Vec::new();
    for &lv in levels {
        let q = Some(QuantizeSpec::levels(lv));
        let (gi, ds1) = train_with(
            task,
            &device,
            NoiseSource::GateInsertion {
                model: &device,
                factor: 0.5,
            },
            q,
            &cfg,
        );
        let (op, ds2) = train_with(
            task,
            &device,
            NoiseSource::OutcomePerturb {
                mu: mu * 0.5,
                sigma: sigma * 0.5,
            },
            q,
            &cfg,
        );
        rows.push(vec![
            format!("{lv}"),
            format!("{:.2}", hw_accuracy(&gi, &ds1, &device, q, &cfg)),
            format!("{:.2}", hw_accuracy(&op, &ds2, &device, q, &cfg)),
        ]);
    }
    print_table(
        "Figure 7 (right): accuracy vs quantization levels (T = 0.5)",
        &["levels", "gate insertion", "outcome perturb"],
        &rows,
    );
    println!("\nExpected shape (paper Fig. 7): without quantization gate insertion ≈");
    println!("outcome perturbation > angle perturbation; with quantization gate");
    println!("insertion wins because added perturbations are cancelled by rounding.");
}
