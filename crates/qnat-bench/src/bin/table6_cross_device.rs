//! **Table 6 (Appendix A.3.1)** — hardware-specific noise models matter:
//! models trained with noise model X and deployed on device Y show a
//! diagonal accuracy pattern (best when X = Y).

use qnat_bench::harness::*;
use qnat_core::forward::PipelineOptions;
use qnat_core::infer::{infer, InferenceBackend, InferenceOptions, NormMode};
use qnat_core::model::{NoiseSource, Qnn};
use qnat_core::train::{train, AdamConfig, TrainOptions};
use qnat_data::dataset::build;
use qnat_data::Task;
use qnat_noise::presets;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = RunConfig::default();
    // The paper uses Fashion-2; our synthetic Fashion-2 saturates near 1.0
    // on all three devices (ceiling effect), so the harder MNIST-4 is used
    // to resolve the diagonal.
    let task = Task::Mnist4;
    let arch = ArchSpec::u3cu3(2, 2);
    let dataset = build(task, &cfg.data);
    let models = [presets::santiago(), presets::yorktown(), presets::lima()];

    // Train one model per noise model (all routed for the same line layout
    // so cross-device deployment is fair).
    let trained: Vec<Qnn> = models
        .iter()
        .map(|noise_model| {
            let mut qnn = Qnn::for_device(qnn_config(task, arch), noise_model, cfg.seed)
                .expect("fits");
            let options = TrainOptions {
                adam: AdamConfig {
                    lr_max: cfg.lr_max,
                    warmup_epochs: (cfg.epochs / 5).max(1),
                    total_epochs: cfg.epochs,
                    ..AdamConfig::default()
                },
                batch_size: cfg.batch_size,
                pipeline: PipelineOptions {
                    noise: NoiseSource::GateInsertion {
                        model: noise_model,
                        factor: cfg.t_factor,
                    },
                    readout: Some(noise_model),
                    normalize: true,
                    quantize: Some(cfg.quant),
                    quant_penalty: cfg.quant_penalty,
                    process_last: false,
                },
                seed: cfg.seed,
            };
            train(&mut qnn, &dataset, &options).expect("training succeeds");
            qnn
        })
        .collect();

    let feats: Vec<Vec<f64>> = dataset.test.iter().map(|s| s.features.clone()).collect();
    let labels: Vec<usize> = dataset.test.iter().map(|s| s.label).collect();
    let mut rows = Vec::new();
    for infer_device in &models {
        let mut row = vec![infer_device.name().to_string()];
        for qnn in &trained {
            let dep = qnn.deploy(infer_device, 2).expect("deployable");
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x66);
            let acc = infer(
                qnn,
                &feats,
                &InferenceBackend::Hardware(&dep),
                &InferenceOptions {
                    normalize: NormMode::BatchStats,
                    quantize: Some(cfg.quant),
                    process_last: false,
                },
                &mut rng,
            )
            .expect("inference succeeds")
            .accuracy(&labels);
            row.push(format!("{acc:.2}"));
        }
        rows.push(row);
    }
    print_table(
        "Table 6: noise model used for training (columns) vs inference device (rows)",
        &[
            "inference on ↓",
            "santiago model",
            "yorktown model",
            "lima model",
        ],
        &rows,
    );
    println!("\nExpected shape (paper Table 6): a diagonal pattern — matching the");
    println!("training noise model to the inference device gives the best accuracy.");
}
