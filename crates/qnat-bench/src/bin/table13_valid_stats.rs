//! **Table 13 (Appendix A.3.7)** — normalization with validation-set
//! statistics: when the deployment batch is small, per-block statistics
//! profiled on the validation set substitute for batch statistics with
//! little accuracy loss.

use qnat_bench::harness::*;
use qnat_core::infer::{
    infer, profile_stats, InferenceBackend, InferenceOptions, NormMode,
};
use qnat_data::dataset::Task;
use qnat_noise::presets;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let fast = std::env::var("QNAT_FAST").is_ok();
    let cfg = RunConfig::default();
    let arch = ArchSpec::u3cu3(2, 2);
    let tasks: Vec<Task> = if fast {
        vec![Task::Mnist2]
    } else {
        vec![Task::Fashion4, Task::Vowel4, Task::Mnist2]
    };
    let devices = if fast {
        vec![presets::yorktown()]
    } else {
        vec![presets::santiago(), presets::yorktown(), presets::belem()]
    };
    let mut rows = Vec::new();
    let mut sum_test = 0.0;
    let mut sum_valid = 0.0;
    let mut n_cells = 0usize;
    for &task in &tasks {
        for device in &devices {
            let (qnn, ds, _) = train_arm(task, arch, device, Arm::Full, &cfg);
            let dep = qnn.deploy(device, 2).expect("deployable");
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x13);
            let vfeats: Vec<Vec<f64>> =
                ds.valid.iter().map(|s| s.features.clone()).collect();
            let stats = profile_stats(
                &qnn,
                &vfeats,
                &InferenceBackend::Hardware(&dep),
                Some(cfg.quant),
                &mut rng,
            )
            .expect("inference succeeds");
            let feats: Vec<Vec<f64>> = ds.test.iter().map(|s| s.features.clone()).collect();
            let labels: Vec<usize> = ds.test.iter().map(|s| s.label).collect();
            let acc_test_stats = infer(
                &qnn,
                &feats,
                &InferenceBackend::Hardware(&dep),
                &arm_inference_options(Arm::Full, &cfg),
                &mut rng,
            )
            .expect("inference succeeds")
            .accuracy(&labels);
            let acc_valid_stats = infer(
                &qnn,
                &feats,
                &InferenceBackend::Hardware(&dep),
                &InferenceOptions {
                    normalize: NormMode::FixedStats(stats.clone()),
                    quantize: Some(cfg.quant),
                    process_last: false,
                },
                &mut rng,
            )
            .expect("inference succeeds")
            .accuracy(&labels);
            let s = &stats[0];
            rows.push(vec![
                format!("{}-{}", task.name(), device.name()),
                format!(
                    "[{}]",
                    s.mean
                        .iter()
                        .map(|m| format!("{m:+.3}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                format!("{acc_test_stats:.2}"),
                format!("{acc_valid_stats:.2}"),
            ]);
            sum_test += acc_test_stats;
            sum_valid += acc_valid_stats;
            n_cells += 1;
        }
    }
    rows.push(vec![
        "average".into(),
        String::new(),
        format!("{:.2}", sum_test / n_cells as f64),
        format!("{:.2}", sum_valid / n_cells as f64),
    ]);
    print_table(
        "Table 13: test-batch statistics vs validation-profiled statistics",
        &["task-device", "valid block-1 means", "test stats acc", "valid stats acc"],
        &rows,
    );
    println!("\nExpected shape (paper Table 13): the two accuracies are close");
    println!("(paper averages 0.67 vs 0.65), enabling small deployment batches.");
}
