//! **Tables 9 & 10 (Appendix A.3.4)** — the intermediate-measurement
//! trade-off: the same total layer budget split as 1×6, 2×3, 3×2 and 6×1
//! (blocks × layers). More measurements allow more normalization/
//! quantization denoising but collapse the Hilbert space.

use qnat_bench::harness::*;
use qnat_data::dataset::Task;
use qnat_noise::presets;

fn main() {
    let fast = std::env::var("QNAT_FAST").is_ok();
    let cfg = RunConfig::default();
    let device = presets::belem();
    let splits: Vec<(usize, usize)> = if fast {
        vec![(1, 6), (2, 3)]
    } else {
        vec![(1, 6), (2, 3), (3, 2), (6, 1)]
    };
    let tasks: Vec<Task> = if fast {
        vec![Task::Mnist4]
    } else {
        vec![Task::Mnist4, Task::Fashion4]
    };
    let mut rows = Vec::new();
    for &task in &tasks {
        let mut row = vec![task.name().to_string()];
        for &(blocks, layers) in &splits {
            let arch = ArchSpec::u3cu3(blocks, layers);
            let (qnn, ds, _) = train_arm(task, arch, &device, Arm::Full, &cfg);
            let acc = eval_on_hardware(&qnn, &ds, &device, Arm::Full, &cfg, 2);
            row.push(format!("{acc:.2}"));
        }
        rows.push(row);
    }
    let mut header = vec!["task".to_string()];
    header.extend(splits.iter().map(|&(b, l)| format!("{b}B×{l}L")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table(
        "Tables 9/10: intermediate-measurement trade-off (Belem, QuantumNAT)",
        &header_refs,
        &rows,
    );
    println!("\nExpected shape (paper Tables 9/10): an interior sweet spot —");
    println!("2 blocks × 3 layers beats both the fully-quantum 1×6 split and the");
    println!("measurement-heavy 6×1 split.");
}
